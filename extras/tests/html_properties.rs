//! Property-based tests: the parser must never panic, must always produce a
//! well-formed skeleton, and serialization must be a re-parse fixed point.

use cp_html::{parse_document, serialize, NodeId};
use proptest::prelude::*;

/// Random "HTML-ish" fragments: a mix of real tags, text and garbage.
fn arb_htmlish() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        prop::sample::select(vec![
            "<div>", "</div>", "<p>", "</p>", "<span>", "</span>", "<br>", "<li>", "<ul>",
            "</ul>", "<table>", "<tr>", "<td>", "</table>", "<script>", "</script>",
            "<!-- c -->", "<a href=x>", "</a>", "<img src=y>", "<input type=hidden>",
            "<b>", "</b>", "<title>", "</title>", "&amp;", "&#65;", "&bogus;", "<", ">",
            "<!doctype html>", "<body>", "<head>", "</head>", "<option>", "<select>",
        ])
        .prop_map(str::to_string),
        "[a-zA-Z0-9 .,!?]{0,12}",
    ];
    prop::collection::vec(piece, 0..40).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(input in arb_htmlish()) {
        let doc = parse_document(&input);
        prop_assert!(doc.body().is_some());
        prop_assert!(doc.head().is_some());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_unicode(input in "\\PC{0,200}") {
        let _ = parse_document(&input);
    }

    #[test]
    fn every_non_root_has_parent(input in arb_htmlish()) {
        let doc = parse_document(&input);
        for n in doc.preorder_all() {
            if n != NodeId::DOCUMENT {
                prop_assert!(doc.parent(n).is_some());
            }
        }
    }

    #[test]
    fn children_parent_links_consistent(input in arb_htmlish()) {
        let doc = parse_document(&input);
        for n in doc.preorder_all() {
            for &c in doc.children(n) {
                prop_assert_eq!(doc.parent(c), Some(n));
            }
        }
    }

    #[test]
    fn serialize_reparse_fixed_point(input in arb_htmlish()) {
        let d1 = parse_document(&input);
        let s1 = serialize(&d1, NodeId::DOCUMENT);
        let d2 = parse_document(&s1);
        let s2 = serialize(&d2, NodeId::DOCUMENT);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn same_input_same_tree(input in arb_htmlish()) {
        let d1 = parse_document(&input);
        let d2 = parse_document(&input);
        let shape = |d: &cp_html::Document| -> Vec<(String, usize)> {
            d.preorder_all().map(|n| (d.node_name(n).to_string(), d.depth(n))).collect()
        };
        prop_assert_eq!(shape(&d1), shape(&d2));
    }
}
