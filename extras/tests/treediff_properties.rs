//! Property-based tests for the tree-matching algorithms.

use cp_treediff::{
    bottom_up_matching, bottom_up_sim, countable_nodes, n_tree_sim, rstm, selkow_distance,
    selkow_sim, stm, stm_with_mapping, tree_size, zhang_shasha_distance, zhang_shasha_sim,
    SimpleTree, TreeView,
};
use proptest::prelude::*;

/// Strategy generating random labeled ordered trees, with small label
/// alphabets so collisions (and thus nontrivial matchings) are common.
fn arb_tree() -> impl Strategy<Value = SimpleTree> {
    let leaf = prop::sample::select(vec!["a", "b", "c", "d", "e"]).prop_map(SimpleTree::new);
    leaf.prop_recursive(4, 40, 4, |inner| {
        (prop::sample::select(vec!["a", "b", "c", "d", "e"]), prop::collection::vec(inner, 1..4)).prop_map(
            |(label, kids)| {
                let mut t = SimpleTree::new(label);
                fn graft(dst: &mut SimpleTree, parent: usize, src: &SimpleTree, node: usize) {
                    let id = dst.add_child(parent, src.label(node));
                    for c in src.children(node) {
                        graft(dst, id, src, c);
                    }
                }
                for k in kids {
                    graft(&mut t, 0, &k, k.root().unwrap());
                }
                t
            },
        )
    })
}

proptest! {
    #[test]
    fn stm_self_equals_size(t in arb_tree()) {
        prop_assert_eq!(stm(&t, &t), tree_size(&t));
    }

    #[test]
    fn stm_symmetric(a in arb_tree(), b in arb_tree()) {
        prop_assert_eq!(stm(&a, &b), stm(&b, &a));
    }

    #[test]
    fn stm_bounded_by_min_size(a in arb_tree(), b in arb_tree()) {
        prop_assert!(stm(&a, &b) <= tree_size(&a).min(tree_size(&b)));
    }

    #[test]
    fn rstm_bounded_by_stm(a in arb_tree(), b in arb_tree()) {
        // RSTM counts a subset of what STM counts.
        prop_assert!(rstm(&a, &b, 5) <= stm(&a, &b));
    }

    #[test]
    fn rstm_monotone_in_level(a in arb_tree(), b in arb_tree()) {
        let mut prev = 0;
        for l in 1..8 {
            let cur = rstm(&a, &b, l);
            prop_assert!(cur >= prev, "rstm must be monotone in level");
            prev = cur;
        }
    }

    #[test]
    fn rstm_self_equals_countable(t in arb_tree(), l in 1usize..8) {
        prop_assert_eq!(rstm(&t, &t, l), countable_nodes(&t, l));
    }

    #[test]
    fn n_tree_sim_in_unit_interval(a in arb_tree(), b in arb_tree(), l in 1usize..8) {
        let s = n_tree_sim(&a, &b, l);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn n_tree_sim_self_is_one(t in arb_tree(), l in 1usize..8) {
        prop_assert_eq!(n_tree_sim(&t, &t, l), 1.0);
    }

    #[test]
    fn n_tree_sim_symmetric(a in arb_tree(), b in arb_tree()) {
        let ab = n_tree_sim(&a, &b, 5);
        let ba = n_tree_sim(&b, &a, 5);
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn mapping_count_consistent(a in arb_tree(), b in arb_tree()) {
        let (count, pairs) = stm_with_mapping(&a, &b);
        prop_assert_eq!(count, stm(&a, &b));
        prop_assert_eq!(count, pairs.len());
        // Labels of matched pairs are equal; nodes are used at most once.
        let mut seen_a = std::collections::HashSet::new();
        let mut seen_b = std::collections::HashSet::new();
        for (na, nb) in pairs {
            prop_assert_eq!(a.label(na), b.label(nb));
            prop_assert!(seen_a.insert(na));
            prop_assert!(seen_b.insert(nb));
        }
    }

    #[test]
    fn selkow_identity_and_symmetry(a in arb_tree(), b in arb_tree()) {
        prop_assert_eq!(selkow_distance(&a, &a), 0);
        prop_assert_eq!(selkow_distance(&a, &b), selkow_distance(&b, &a));
    }

    #[test]
    fn selkow_bounded_by_total_size(a in arb_tree(), b in arb_tree()) {
        prop_assert!(selkow_distance(&a, &b) <= tree_size(&a) + tree_size(&b));
        let s = selkow_sim(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn bottom_up_bounded(a in arb_tree(), b in arb_tree()) {
        let m = bottom_up_matching(&a, &b);
        prop_assert!(m <= tree_size(&a).min(tree_size(&b)));
        let s = bottom_up_sim(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn bottom_up_self_total(t in arb_tree()) {
        prop_assert_eq!(bottom_up_matching(&t, &t), tree_size(&t));
    }

    #[test]
    fn zhang_shasha_identity_symmetry(a in arb_tree(), b in arb_tree()) {
        prop_assert_eq!(zhang_shasha_distance(&a, &a), 0);
        prop_assert_eq!(zhang_shasha_distance(&a, &b), zhang_shasha_distance(&b, &a));
    }

    #[test]
    fn zhang_shasha_never_exceeds_selkow(a in arb_tree(), b in arb_tree()) {
        // The unrestricted edit distance relaxes the top-down constraint.
        prop_assert!(zhang_shasha_distance(&a, &b) <= selkow_distance(&a, &b));
        let s = zhang_shasha_sim(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn zhang_shasha_size_bounds(a in arb_tree(), b in arb_tree()) {
        let d = zhang_shasha_distance(&a, &b);
        let (na, nb) = (tree_size(&a), tree_size(&b));
        prop_assert!(d <= na + nb);
        prop_assert!(d >= na.abs_diff(nb));
    }

    #[test]
    fn zhang_shasha_triangle_inequality(a in arb_tree(), b in arb_tree(), c in arb_tree()) {
        let ab = zhang_shasha_distance(&a, &b);
        let bc = zhang_shasha_distance(&b, &c);
        let ac = zhang_shasha_distance(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn alignment_sandwiched_between_edit_and_selkow(a in arb_tree(), b in arb_tree()) {
        let zs = cp_treediff::zhang_shasha_distance(&a, &b);
        let al = cp_treediff::alignment_distance(&a, &b);
        let sk = selkow_distance(&a, &b);
        prop_assert!(zs <= al, "edit {zs} must lower-bound alignment {al}");
        prop_assert!(al <= sk, "alignment {al} must lower-bound selkow {sk}");
    }

    #[test]
    fn constrained_upper_bounds_edit(a in arb_tree(), b in arb_tree()) {
        let zs = cp_treediff::zhang_shasha_distance(&a, &b);
        let cd = cp_treediff::constrained_distance(&a, &b);
        prop_assert!(zs <= cd, "edit {zs} must lower-bound constrained {cd}");
        prop_assert_eq!(cp_treediff::constrained_distance(&a, &a), 0);
        prop_assert_eq!(cd, cp_treediff::constrained_distance(&b, &a));
        let s = cp_treediff::constrained_sim(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn alignment_identity_and_symmetry(a in arb_tree(), b in arb_tree()) {
        prop_assert_eq!(cp_treediff::alignment_distance(&a, &a), 0);
        prop_assert_eq!(
            cp_treediff::alignment_distance(&a, &b),
            cp_treediff::alignment_distance(&b, &a)
        );
        let s = cp_treediff::alignment_sim(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn notation_round_trip(t in arb_tree()) {
        let s = t.to_notation();
        let back = SimpleTree::parse(&s).unwrap();
        prop_assert_eq!(back.to_notation(), s);
        prop_assert_eq!(tree_size(&back), tree_size(&t));
    }
}
