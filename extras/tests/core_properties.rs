//! Property-based tests for CVCE and the decision pipeline.

use cookiepicker_core::{
    content_extract, decide, n_text_sim, n_text_sim_strict, CookiePickerConfig, DomTreeView,
};
use cp_html::{parse_document, NodeId};
use cp_treediff::{n_tree_sim, TreeView};
use proptest::prelude::*;

/// Random HTML-ish body fragments.
fn arb_body() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        prop::sample::select(vec![
            "<div>", "</div>", "<p>", "</p>", "<ul><li>", "</li></ul>", "<span>", "</span>",
            "<table><tr><td>", "</td></tr></table>", "<script>junk()</script>",
            "<!-- c -->", "<h2>", "</h2>", "<div class=ad>", "<b>", "</b>",
        ])
        .prop_map(str::to_string),
        "[a-z ]{1,12}",
    ];
    prop::collection::vec(piece, 0..30).prop_map(|v| format!("<body>{}</body>", v.concat()))
}

fn extract(html: &str) -> cookiepicker_core::ContentSet {
    let doc = parse_document(html);
    content_extract(&doc, NodeId::DOCUMENT)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn n_text_sim_bounds_and_identity(a in arb_body()) {
        let sa = extract(&a);
        prop_assert_eq!(n_text_sim(&sa, &sa), 1.0);
        prop_assert_eq!(n_text_sim_strict(&sa, &sa), 1.0);
    }

    #[test]
    fn n_text_sim_symmetric(a in arb_body(), b in arb_body()) {
        let (sa, sb) = (extract(&a), extract(&b));
        let xy = n_text_sim(&sa, &sb);
        let yx = n_text_sim(&sb, &sa);
        prop_assert!((xy - yx).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&xy));
    }

    #[test]
    fn s_term_never_decreases_similarity(a in arb_body(), b in arb_body()) {
        let (sa, sb) = (extract(&a), extract(&b));
        prop_assert!(n_text_sim(&sa, &sb) >= n_text_sim_strict(&sa, &sb) - 1e-12);
    }

    #[test]
    fn decision_fields_consistent(a in arb_body(), b in arb_body()) {
        let da = parse_document(&a);
        let db = parse_document(&b);
        let cfg = CookiePickerConfig::default();
        let d = decide(&da, &db, &cfg);
        prop_assert!((0.0..=1.0).contains(&d.tree_sim));
        prop_assert!((0.0..=1.0).contains(&d.text_sim));
        prop_assert_eq!(
            d.cookies_caused_difference,
            d.tree_sim <= cfg.thresh1 && d.text_sim <= cfg.thresh2
        );
    }

    #[test]
    fn decision_self_is_never_cookie_caused(a in arb_body()) {
        let da = parse_document(&a);
        let d = decide(&da, &da, &CookiePickerConfig::default());
        prop_assert!(!d.cookies_caused_difference);
        prop_assert_eq!(d.tree_sim, 1.0);
        prop_assert_eq!(d.text_sim, 1.0);
    }

    #[test]
    fn dom_view_countable_only_visible_elements(a in arb_body()) {
        let doc = parse_document(&a);
        let view = DomTreeView::from_body(&doc);
        if let Some(root) = view.root() {
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                if view.countable(n) {
                    prop_assert!(doc.is_element(n));
                    prop_assert!(cp_html::is_node_visible(&doc, n));
                }
                stack.extend(view.children(n));
            }
        }
    }

    #[test]
    fn tree_sim_level_bounds(a in arb_body(), b in arb_body(), l in 1usize..8) {
        let da = parse_document(&a);
        let db = parse_document(&b);
        let s = n_tree_sim(&DomTreeView::from_body(&da), &DomTreeView::from_body(&db), l);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn content_extract_skips_scripts_and_ads(a in arb_body()) {
        let set = extract(&a);
        for s in set.strings() {
            prop_assert!(!s.contains("script"), "script text must be noise: {s}");
            prop_assert!(!s.contains("junk()"), "script body leaked: {s}");
        }
    }
}
