//! Property-based tests for cookie parsing and the jar.

use cp_cookies::{
    encode_cookie_header, parse_cookie_header, parse_set_cookie, Cookie, CookieJar, SimDuration,
    SimTime,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_-]{0,10}"
}

fn arb_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{0,16}"
}

fn arb_cookie() -> impl Strategy<Value = Cookie> {
    (
        arb_name(),
        arb_value(),
        prop::sample::select(vec!["a.com", "b.com", "www.a.com"]),
        prop::option::of(0u64..10_000),
        prop::sample::select(vec!["/", "/x", "/x/y"]),
        0u64..1_000,
    )
        .prop_map(|(name, value, domain, expiry, path, created)| {
            let created = SimTime::from_secs(created);
            let mut c = Cookie::new(name, value, domain, created).with_path(path);
            if let Some(e) = expiry {
                c = c.with_expiry(created + SimDuration::from_secs(e));
            }
            c
        })
}

proptest! {
    #[test]
    fn set_cookie_never_panics(header in "\\PC{0,80}") {
        let _ = parse_set_cookie(&header, "host.example", SimTime::EPOCH);
    }

    #[test]
    fn cookie_header_never_panics(header in "\\PC{0,80}") {
        let _ = parse_cookie_header(&header);
    }

    #[test]
    fn round_trip_name_value(name in arb_name(), value in arb_value()) {
        let header = format!("{name}={value}");
        let c = parse_set_cookie(&header, "h.example", SimTime::EPOCH).unwrap();
        prop_assert_eq!(&c.name, &name);
        prop_assert_eq!(&c.value, &value);
        let encoded = encode_cookie_header([&c]);
        let pairs = parse_cookie_header(&encoded);
        prop_assert_eq!(pairs, vec![(name, value)]);
    }

    #[test]
    fn jar_send_set_is_subset_of_store(cookies in prop::collection::vec(arb_cookie(), 0..20)) {
        let now = SimTime::from_secs(500);
        let mut jar = CookieJar::new();
        for c in cookies {
            jar.store(c, now);
        }
        for host in ["a.com", "b.com", "www.a.com"] {
            for path in ["/", "/x", "/x/y/z"] {
                let sent = jar.cookies_for(host, path, now);
                for c in &sent {
                    prop_assert!(c.matches_request(host, path, now));
                    prop_assert!(!c.is_expired(now));
                }
                // Path ordering invariant: non-increasing path lengths.
                for w in sent.windows(2) {
                    prop_assert!(w[0].path.len() >= w[1].path.len());
                }
            }
        }
    }

    #[test]
    fn jar_no_duplicate_identities(cookies in prop::collection::vec(arb_cookie(), 0..30)) {
        let now = SimTime::from_secs(0);
        let mut jar = CookieJar::new();
        for c in cookies {
            jar.store(c, now);
        }
        let mut identities: Vec<(String, String, String)> = jar
            .iter()
            .map(|c| (c.name.clone(), c.domain.clone(), c.path.clone()))
            .collect();
        let before = identities.len();
        identities.sort();
        identities.dedup();
        prop_assert_eq!(before, identities.len());
    }

    #[test]
    fn purge_removes_only_expired(cookies in prop::collection::vec(arb_cookie(), 0..20), at in 0u64..20_000) {
        let now = SimTime::from_secs(at);
        let mut jar = CookieJar::new();
        for c in cookies {
            jar.store(c, SimTime::EPOCH);
        }
        let live_before = jar.iter().filter(|c| !c.is_expired(now)).count();
        jar.purge_expired(now);
        prop_assert_eq!(jar.len(), live_before);
    }

    #[test]
    fn useful_marks_are_monotone_under_restore(c in arb_cookie()) {
        let now = c.created;
        let mut jar = CookieJar::new();
        let domain = c.domain.clone();
        let name = c.name.clone();
        jar.store(c.clone(), now);
        jar.mark_useful(&domain, &[name.as_str()]);
        // Re-issuing the same cookie must not clear the mark.
        jar.store(c, now);
        let still_marked = jar.iter().filter(|k| k.name == name).all(|k| k.useful());
        prop_assert!(still_marked);
    }
}
