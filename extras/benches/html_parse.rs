//! Criterion benchmarks for the HTML tokenizer and tree builder — the
//! per-hidden-response cost of FORCUM step 3 (build the hidden DOM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cp_cookies::SimTime;
use cp_html::{parse_document, tokenize};
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::{Category, CookieSpec, SiteSpec};
use cp_runtime::rng::{SeedableRng, StdRng};

fn page(richness: usize) -> String {
    let mut spec = SiteSpec::new("bench.example", Category::News, 3)
        .with_cookie(CookieSpec::tracker("trk"));
    spec.richness = richness;
    let input =
        RenderInput { spec: &spec, path: "/", cookies: &[], now: SimTime::from_secs(1) };
    render_page(&input, &mut StdRng::seed_from_u64(1))
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("html_parse");
    for richness in [3usize, 20, 80] {
        let html = page(richness);
        group.throughput(Throughput::Bytes(html.len() as u64));
        group.bench_with_input(BenchmarkId::new("tokenize", html.len()), &html, |b, html| {
            b.iter(|| tokenize(html))
        });
        group.bench_with_input(BenchmarkId::new("parse_document", html.len()), &html, |b, html| {
            b.iter(|| parse_document(html))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
