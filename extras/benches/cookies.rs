//! Criterion benchmarks for the cookie substrate: header codecs and jar
//! operations (these run on every request in the pipeline).

use criterion::{criterion_group, criterion_main, Criterion};

use cp_cookies::{parse_cookie_header, parse_set_cookie, Cookie, CookieJar, SimDuration, SimTime};

fn bench_cookies(c: &mut Criterion) {
    let now = SimTime::from_secs(100);

    c.bench_function("parse_set_cookie_full", |b| {
        b.iter(|| {
            parse_set_cookie(
                "sid=abc123def; Domain=.shop.example; Path=/cat; Expires=Tue, 01 Jan 2008 00:00:00 GMT; Secure; HttpOnly",
                "www.shop.example",
                now,
            )
        })
    });

    c.bench_function("parse_cookie_header_8", |b| {
        b.iter(|| parse_cookie_header("a=1; b=2; c=3; d=4; e=5; f=6; g=7; h=8"))
    });

    let mut jar = CookieJar::new();
    for i in 0..200 {
        let domain = format!("site{}.example", i % 20);
        let c = Cookie::new(format!("c{i}"), "v", domain, now)
            .with_expiry(now + SimDuration::from_days(365));
        jar.store(c, now);
    }
    c.bench_function("jar_cookies_for_200", |b| {
        b.iter(|| jar.cookies_for("site3.example", "/path/deep", now))
    });

    c.bench_function("jar_store_replace", |b| {
        let mut jar = jar.clone();
        b.iter(|| {
            jar.store(
                Cookie::new("c3", "new", "site3.example", now)
                    .with_expiry(now + SimDuration::from_days(30)),
                now,
            )
        })
    });
}

criterion_group!(benches, bench_cookies);
criterion_main!(benches);
