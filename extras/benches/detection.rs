//! Criterion benchmark of the full decision pipeline (Figure 5) — the
//! paper's "Detection Time" (experiment E3: avg 14.6 ms on a 2007 laptop,
//! far below user think time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cookiepicker_core::{decide, CookiePickerConfig};
use cp_cookies::SimTime;
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteSpec};
use cp_runtime::rng::{SeedableRng, StdRng};

fn pair(richness: usize) -> (cp_html::Document, cp_html::Document) {
    let mut spec = SiteSpec::new("bench.example", Category::Shopping, 9)
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
    spec.richness = richness;
    let regular = {
        let input = RenderInput {
            spec: &spec,
            path: "/",
            cookies: &[("pref".to_string(), "v".to_string())],
            now: SimTime::from_secs(1),
        };
        cp_html::parse_document(&render_page(&input, &mut StdRng::seed_from_u64(1)))
    };
    let hidden = {
        let input =
            RenderInput { spec: &spec, path: "/", cookies: &[], now: SimTime::from_secs(2) };
        cp_html::parse_document(&render_page(&input, &mut StdRng::seed_from_u64(2)))
    };
    (regular, hidden)
}

fn bench_decide(c: &mut Criterion) {
    let config = CookiePickerConfig::default();
    let mut group = c.benchmark_group("detection");
    for richness in [3usize, 20, 80] {
        let (regular, hidden) = pair(richness);
        group.bench_with_input(
            BenchmarkId::new("decide_rstm_plus_cvce", richness),
            &richness,
            |b, _| b.iter(|| decide(&regular, &hidden, &config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
