//! Criterion benchmarks for Context-aware Visual Content Extraction
//! (paper §4.2): the `contentExtract` O(n) walk and the NTextSim metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cookiepicker_core::{content_extract, n_text_sim, n_text_sim_strict};
use cp_cookies::SimTime;
use cp_html::NodeId;
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::{Category, CookieSpec, SiteSpec};
use cp_runtime::rng::{SeedableRng, StdRng};

fn doc(richness: usize, noise_seed: u64) -> cp_html::Document {
    let mut spec = SiteSpec::new("bench.example", Category::Society, 5)
        .with_cookie(CookieSpec::tracker("trk"));
    spec.richness = richness;
    let input =
        RenderInput { spec: &spec, path: "/", cookies: &[], now: SimTime::from_secs(noise_seed) };
    cp_html::parse_document(&render_page(&input, &mut StdRng::seed_from_u64(noise_seed)))
}

fn bench_cvce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cvce");
    for richness in [3usize, 20, 80] {
        let a = doc(richness, 1);
        let b = doc(richness, 2);
        let root_a = a.body().unwrap_or(NodeId::DOCUMENT);
        let root_b = b.body().unwrap_or(NodeId::DOCUMENT);
        group.bench_with_input(
            BenchmarkId::new("content_extract", richness),
            &richness,
            |bench, _| bench.iter(|| content_extract(&a, root_a)),
        );
        let sa = content_extract(&a, root_a);
        let sb = content_extract(&b, root_b);
        group.bench_with_input(
            BenchmarkId::new("n_text_sim", richness),
            &richness,
            |bench, _| bench.iter(|| n_text_sim(&sa, &sb)),
        );
        group.bench_with_input(
            BenchmarkId::new("n_text_sim_strict", richness),
            &richness,
            |bench, _| bench.iter(|| n_text_sim_strict(&sa, &sb)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cvce);
criterion_main!(benches);
