//! Criterion benchmarks for the tree-matching algorithms (paper §4.1.3's
//! cost argument, micro-benchmark form of experiment E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cookiepicker_core::DomTreeView;
use cp_cookies::SimTime;
use cp_treediff::{alignment_distance, bottom_up_matching, n_tree_sim, rstm, selkow_distance, stm, zhang_shasha_distance};
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::{Category, CookieSpec, SiteSpec};
use cp_runtime::rng::{SeedableRng, StdRng};

fn page_pair(richness: usize) -> (cp_html::Document, cp_html::Document) {
    let mut spec = SiteSpec::new("bench.example", Category::Reference, 7)
        .with_cookie(CookieSpec::tracker("trk"));
    spec.richness = richness;
    let render = |noise_seed: u64| {
        let input = RenderInput {
            spec: &spec,
            path: "/page/1",
            cookies: &[],
            now: SimTime::from_secs(noise_seed),
        };
        cp_html::parse_document(&render_page(&input, &mut StdRng::seed_from_u64(noise_seed)))
    };
    (render(1), render(2))
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("treediff");
    for richness in [3usize, 20, 80] {
        let (a, b) = page_pair(richness);
        let va = DomTreeView::from_body(&a);
        let vb = DomTreeView::from_body(&b);
        group.bench_with_input(BenchmarkId::new("stm_full", richness), &richness, |bench, _| {
            bench.iter(|| stm(&va, &vb))
        });
        group.bench_with_input(BenchmarkId::new("rstm_l5", richness), &richness, |bench, _| {
            bench.iter(|| rstm(&va, &vb, 5))
        });
        group.bench_with_input(BenchmarkId::new("n_tree_sim_l5", richness), &richness, |bench, _| {
            bench.iter(|| n_tree_sim(&va, &vb, 5))
        });
        group.bench_with_input(BenchmarkId::new("bottom_up", richness), &richness, |bench, _| {
            bench.iter(|| bottom_up_matching(&va, &vb))
        });
        if richness <= 20 {
            group.bench_with_input(BenchmarkId::new("selkow", richness), &richness, |bench, _| {
                bench.iter(|| selkow_distance(&va, &vb))
            });
        }
        if richness <= 3 {
            group.bench_with_input(
                BenchmarkId::new("zhang_shasha", richness),
                &richness,
                |bench, _| bench.iter(|| zhang_shasha_distance(&va, &vb)),
            );
            group.bench_with_input(
                BenchmarkId::new("alignment", richness),
                &richness,
                |bench, _| bench.iter(|| alignment_distance(&va, &vb)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
