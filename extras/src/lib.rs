//! Empty library target. This package exists only to host the property
//! tests (`tests/`) and Criterion benchmarks (`benches/`) that depend on
//! registry crates — see Cargo.toml for why they live outside the
//! workspace.
