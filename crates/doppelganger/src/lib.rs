//! A Doppelganger-style fork-window baseline (Shankar & Karlof, CCS'06).
//!
//! The paper positions CookiePicker against **Doppelganger**, the prior
//! state of the art in automatic cookie management (§6): Doppelganger
//! mirrors the user's *whole session* in a hidden fork window with cookies
//! disabled, and whenever the two windows differ it **asks the user** to
//! compare them and make the cookie decision. Its two drawbacks — high
//! overhead and human involvement — are exactly what CookiePicker removes:
//!
//! * CookiePicker issues **one** extra request per page view (the container
//!   page only); Doppelganger re-fetches the container *and every embedded
//!   object*;
//! * CookiePicker decides automatically; Doppelganger prompts the user
//!   whenever the fork diverges — which, on a 2007 page with rotating ads,
//!   is nearly every view.
//!
//! [`Doppelganger`] implements [`cp_browser::BrowserExtension`] so the same
//! harness can drive both systems over the same synthetic sites and compare
//! request counts, transferred bytes, and user prompts (experiment A4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cp_runtime::json::{Json, ToJson};

use cp_browser::{extract_object_urls, BrowserExtension, PageContext};
use cp_html::parse_document;
use cp_net::Request;

/// One fork-window mirror of a page view.
#[derive(Debug, Clone)]
pub struct MirrorRecord {
    /// Site host.
    pub host: String,
    /// Container path.
    pub path: String,
    /// Requests the fork window issued (container + objects).
    pub requests: usize,
    /// Total simulated latency spent by the fork (objects in parallel).
    pub latency_ms: u64,
    /// Whether the fork differed from the user's window.
    pub differed: bool,
    /// Whether the user was prompted to compare windows.
    pub prompted: bool,
}

impl ToJson for MirrorRecord {
    fn to_json(&self) -> Json {
        Json::object()
            .set("host", &self.host)
            .set("path", &self.path)
            .set("requests", self.requests)
            .set("latency_ms", self.latency_ms)
            .set("differed", self.differed)
            .set("prompted", self.prompted)
    }
}

/// How the simulated user answers a Doppelganger prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PromptPolicy {
    /// The user enables cookies for the site whenever prompted (the safe
    /// choice a non-expert makes).
    #[default]
    AlwaysEnable,
    /// The user ignores the prompt (keeps cookies blocked).
    AlwaysIgnore,
}

/// The fork-window baseline.
#[derive(Debug, Default)]
pub struct Doppelganger {
    records: Vec<MirrorRecord>,
    prompt_policy: PromptPolicy,
    prompts: usize,
}

impl Doppelganger {
    /// Creates a baseline instance with the given prompt policy.
    pub fn new(prompt_policy: PromptPolicy) -> Self {
        Doppelganger { records: Vec::new(), prompt_policy, prompts: 0 }
    }

    /// All mirror records.
    pub fn records(&self) -> &[MirrorRecord] {
        &self.records
    }

    /// Number of user prompts raised so far (CookiePicker's equivalent
    /// figure is zero).
    pub fn prompts(&self) -> usize {
        self.prompts
    }

    /// Total fork-window requests issued.
    pub fn total_requests(&self) -> usize {
        self.records.iter().map(|r| r.requests).sum()
    }
}

/// The fork window renders pages *visibly* for the user to compare, so its
/// difference test is rendered text plus image structure — deliberately
/// cruder than CookiePicker's two-metric decision, per the original design
/// where a human adjudicates.
fn windows_differ(a: &cp_html::Document, b: &cp_html::Document) -> bool {
    // innerText-style comparison: what the user would see side by side.
    let text_a = a.body().map(|n| cp_html::inner_text(a, n)).unwrap_or_default();
    let text_b = b.body().map(|n| cp_html::inner_text(b, n)).unwrap_or_default();
    text_a != text_b
}

impl BrowserExtension for Doppelganger {
    fn on_page_loaded(&mut self, ctx: &mut PageContext<'_>) {
        // Mirror the view with an empty cookie store: container first.
        let mut fork_req: Request = ctx.view.container_request.clone();
        fork_req.headers.remove("cookie");
        let Ok(container) = ctx.network.fetch(&fork_req, ctx.now) else { return };
        let mut requests = 1usize;
        let mut latency = container.latency;
        let fork_dom = parse_document(&container.response.body_string());

        // ... then every embedded object, exactly like a real window.
        let mut slowest = cp_cookies::SimDuration::ZERO;
        for obj in extract_object_urls(&fork_dom, &ctx.view.url) {
            let mut req = Request::get(obj);
            req.headers.remove("cookie");
            if let Ok(out) = ctx.network.fetch(&req, ctx.now) {
                requests += 1;
                slowest = slowest.max(out.latency);
            }
        }
        latency += slowest;
        ctx.advance(latency);

        let differed = windows_differ(&ctx.view.dom, &fork_dom);
        let mut prompted = false;
        if differed {
            prompted = true;
            self.prompts += 1;
            if self.prompt_policy == PromptPolicy::AlwaysEnable {
                // The user compares the windows and keeps cookies enabled:
                // mark everything this site sent as useful.
                let names: Vec<String> = ctx
                    .view
                    .container_request
                    .cookie_header()
                    .map(|h| {
                        cp_cookies::parse_cookie_header(h).into_iter().map(|(n, _)| n).collect()
                    })
                    .unwrap_or_default();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                ctx.jar.mark_useful(ctx.view.top_host(), &refs);
            }
        }

        self.records.push(MirrorRecord {
            host: ctx.view.top_host().to_string(),
            path: ctx.view.url.path().to_string(),
            requests,
            latency_ms: latency.as_millis(),
            differed,
            prompted,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use cp_browser::Browser;
    use cp_cookies::CookiePolicy;
    use cp_net::{SimNetwork, Url};
    use cp_webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};

    fn world(spec: SiteSpec) -> (Browser, Url) {
        let domain = spec.domain.clone();
        let mut net = SimNetwork::new(31);
        net.register(domain.clone(), SiteServer::new(spec));
        let browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 4);
        (browser, Url::parse(&format!("http://{domain}/")).unwrap())
    }

    #[test]
    fn fork_fetches_all_objects() {
        let spec =
            SiteSpec::new("d.example", Category::News, 41).with_cookie(CookieSpec::tracker("t"));
        let (mut browser, url) = world(spec);
        let mut dg = Doppelganger::default();
        browser.visit_with(&url, &mut dg).unwrap();
        let rec = &dg.records()[0];
        assert!(rec.requests > 3, "container + css + js + images, got {}", rec.requests);
    }

    #[test]
    fn noise_triggers_prompts() {
        // Rotating ad text differs between the two windows → Doppelganger
        // must bother the user even though no cookie matters.
        let spec =
            SiteSpec::new("n.example", Category::Arts, 42).with_cookie(CookieSpec::tracker("t"));
        let (mut browser, url) = world(spec);
        let mut dg = Doppelganger::new(PromptPolicy::AlwaysIgnore);
        for i in 0..5 {
            browser.visit_with(&url.join(&format!("/page/{i}")), &mut dg).unwrap();
            browser.think();
        }
        assert!(dg.prompts() > 0, "ad noise should trigger user prompts");
    }

    #[test]
    fn useful_cookie_difference_prompts_and_enables() {
        let spec = SiteSpec::new("u.example", Category::Shopping, 43)
            .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
        let (mut browser, url) = world(spec);
        let mut dg = Doppelganger::new(PromptPolicy::AlwaysEnable);
        for i in 0..3 {
            browser.visit_with(&url.join(&format!("/page/{i}")), &mut dg).unwrap();
            browser.think();
        }
        assert!(dg.prompts() > 0);
        assert!(browser.jar.iter().any(|c| c.name == "pref" && c.useful()));
    }

    #[test]
    fn overhead_far_exceeds_single_request() {
        let spec =
            SiteSpec::new("o.example", Category::Games, 44).with_cookie(CookieSpec::tracker("t"));
        let (mut browser, url) = world(spec);
        let mut dg = Doppelganger::default();
        let views = 4;
        for i in 0..views {
            browser.visit_with(&url.join(&format!("/page/{i}")), &mut dg).unwrap();
            browser.think();
        }
        // CookiePicker issues exactly `views` hidden requests in the same
        // scenario; Doppelganger issues container+objects per view.
        assert!(dg.total_requests() > views * 3);
    }
}
