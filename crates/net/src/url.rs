//! A small URL type covering what the simulation needs: `http`/`https`
//! scheme, host, optional port, path and query.

use std::fmt;

/// Error returned by [`Url::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUrlError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid url: {}", self.message)
    }
}

impl std::error::Error for ParseUrlError {}

fn err(message: impl Into<String>) -> ParseUrlError {
    ParseUrlError { message: message.into() }
}

/// An absolute HTTP(S) URL.
///
/// ```
/// use cp_net::Url;
/// let u = Url::parse("http://shop.example:8080/cat/item?id=3").unwrap();
/// assert_eq!(u.scheme(), "http");
/// assert_eq!(u.host(), "shop.example");
/// assert_eq!(u.port(), Some(8080));
/// assert_eq!(u.path(), "/cat/item");
/// assert_eq!(u.query(), Some("id=3"));
/// assert_eq!(u.to_string(), "http://shop.example:8080/cat/item?id=3");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    scheme: String,
    host: String,
    port: Option<u16>,
    path: String,
    query: Option<String>,
}

impl Url {
    /// Parses an absolute URL.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] when the scheme is missing/unsupported, the
    /// host is empty, or the port is not numeric.
    pub fn parse(input: &str) -> Result<Url, ParseUrlError> {
        let input = input.trim();
        let (scheme, rest) = input.split_once("://").ok_or_else(|| err("missing scheme"))?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return Err(err(format!("unsupported scheme {scheme:?}")));
        }
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(err("empty host"));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| err(format!("invalid port {p:?}")))?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        if host.is_empty() {
            return Err(err("empty host"));
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (path_query.to_string(), None),
        };
        Ok(Url { scheme, host: host.to_ascii_lowercase(), port, path, query })
    }

    /// Builds a URL from parts, normalizing the path to start with `/`.
    pub fn from_parts(scheme: &str, host: &str, path: &str) -> Url {
        let path = if path.starts_with('/') { path.to_string() } else { format!("/{path}") };
        Url {
            scheme: scheme.to_ascii_lowercase(),
            host: host.to_ascii_lowercase(),
            port: None,
            path,
            query: None,
        }
    }

    /// The scheme (`http` or `https`).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The lower-cased host.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The explicit port, if any.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The path (always starts with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string without the `?`, if any.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Whether this is an `https` URL.
    pub fn is_secure(&self) -> bool {
        self.scheme == "https"
    }

    /// Resolves a reference against this URL: absolute URLs pass through,
    /// `/rooted` paths replace the path, other strings are treated as
    /// relative to the current directory.
    ///
    /// ```
    /// use cp_net::Url;
    /// let base = Url::parse("http://a.example/dir/page").unwrap();
    /// assert_eq!(base.join("/img/x.png").to_string(), "http://a.example/img/x.png");
    /// assert_eq!(base.join("other").to_string(), "http://a.example/dir/other");
    /// assert_eq!(base.join("http://b.example/").host(), "b.example");
    /// ```
    pub fn join(&self, reference: &str) -> Url {
        if let Ok(abs) = Url::parse(reference) {
            return abs;
        }
        let mut out = self.clone();
        out.query = None;
        if let Some(stripped) = reference.strip_prefix('/') {
            let (p, q) = split_pq(stripped);
            out.path = format!("/{p}");
            out.query = q;
        } else {
            let dir = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            let (p, q) = split_pq(reference);
            out.path = format!("{dir}{p}");
            out.query = q;
        }
        out
    }
}

fn split_pq(s: &str) -> (String, Option<String>) {
    match s.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (s.to_string(), None),
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Url {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let u = Url::parse("http://a.example").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.port(), None);
        assert_eq!(u.query(), None);
    }

    #[test]
    fn parse_full() {
        let u = Url::parse("HTTPS://Host.Example:443/a/b?x=1&y=2").unwrap();
        assert_eq!(u.scheme(), "https");
        assert!(u.is_secure());
        assert_eq!(u.host(), "host.example");
        assert_eq!(u.port(), Some(443));
        assert_eq!(u.query(), Some("x=1&y=2"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Url::parse("not a url").is_err());
        assert!(Url::parse("ftp://x/").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("http://h:notaport/").is_err());
    }

    #[test]
    fn display_round_trip() {
        for s in ["http://a.example/", "https://b.example:8443/x?q=1", "http://c.example/p/q"] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn join_variants() {
        let base = Url::parse("http://a.example/dir/sub/page?old=1").unwrap();
        assert_eq!(base.join("/root").to_string(), "http://a.example/root");
        assert_eq!(base.join("sib?n=2").to_string(), "http://a.example/dir/sub/sib?n=2");
        assert_eq!(base.join("https://other.example/x").to_string(), "https://other.example/x");
    }

    #[test]
    fn from_parts_normalizes() {
        assert_eq!(Url::from_parts("http", "H.X", "p").to_string(), "http://h.x/p");
    }

    #[test]
    fn join_from_root_page() {
        let base = Url::parse("http://a.example/").unwrap();
        assert_eq!(base.join("x").to_string(), "http://a.example/x");
        assert_eq!(base.join("/y/z").to_string(), "http://a.example/y/z");
    }

    #[test]
    fn join_drops_base_query() {
        let base = Url::parse("http://a.example/p?q=1").unwrap();
        assert_eq!(base.join("/n").query(), None);
        assert_eq!(base.join("n?r=2").query(), Some("r=2"));
    }

    #[test]
    fn join_preserves_scheme_and_port() {
        let base = Url::parse("https://a.example:8443/d/p").unwrap();
        let joined = base.join("/other");
        assert_eq!(joined.scheme(), "https");
        assert_eq!(joined.port(), Some(8443));
    }

    #[test]
    fn whitespace_trimmed_on_parse() {
        assert_eq!(Url::parse("  http://a.example/x  ").unwrap().path(), "/x");
    }

    #[test]
    fn from_str_trait() {
        let u: Url = "http://a.example/p".parse().unwrap();
        assert_eq!(u.host(), "a.example");
        assert!("nope".parse::<Url>().is_err());
    }
}
