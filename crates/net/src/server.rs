//! The [`Server`] trait and a path-prefix [`Router`].

use std::collections::BTreeMap;

use cp_cookies::SimTime;

use crate::message::{Request, Response};

/// An origin server the simulated network can route requests to.
///
/// Implementations must be `Send + Sync` — experiment harnesses run sites in
/// parallel. Servers that need randomness (page-dynamics noise) should carry
/// their own seeded RNG behind interior mutability so runs stay
/// deterministic.
pub trait Server: Send + Sync {
    /// Produces the response for `req` at simulated time `now`.
    fn handle(&self, req: &Request, now: SimTime) -> Response;
}

impl<F> Server for F
where
    F: Fn(&Request, SimTime) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request, now: SimTime) -> Response {
        self(req, now)
    }
}

/// Routes requests to handlers by longest matching path prefix.
///
/// ```
/// use cp_net::{Method, Request, Response, Router, Server, StatusCode, Url};
/// use cp_cookies::SimTime;
///
/// let mut router = Router::new();
/// router.route("/", |_req: &Request, _now: SimTime| Response::html(StatusCode::OK, "home"));
/// router.route("/shop", |_req: &Request, _now: SimTime| Response::html(StatusCode::OK, "shop"));
///
/// let req = Request::get(Url::parse("http://x.example/shop/item").unwrap());
/// assert_eq!(router.handle(&req, SimTime::EPOCH).body_string(), "shop");
/// let req = Request::get(Url::parse("http://x.example/other").unwrap());
/// assert_eq!(router.handle(&req, SimTime::EPOCH).body_string(), "home");
/// ```
#[derive(Default)]
pub struct Router {
    // BTreeMap so iteration order (and thus longest-prefix wins) is stable.
    routes: BTreeMap<String, Box<dyn Server>>,
}

impl Router {
    /// Creates an empty router (every request 404s).
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a handler for a path prefix. Later registrations replace
    /// earlier ones for the same prefix.
    pub fn route(&mut self, prefix: impl Into<String>, server: impl Server + 'static) -> &mut Self {
        self.routes.insert(prefix.into(), Box::new(server));
        self
    }

    fn best_match(&self, path: &str) -> Option<&dyn Server> {
        self.routes
            .iter()
            .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, s)| s.as_ref())
    }
}

impl Server for Router {
    fn handle(&self, req: &Request, now: SimTime) -> Response {
        match self.best_match(req.url.path()) {
            Some(s) => s.handle(req, now),
            None => Response::not_found(),
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router").field("routes", &self.routes.keys().collect::<Vec<_>>()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;
    use crate::url::Url;

    fn req(path: &str) -> Request {
        Request::get(Url::parse(&format!("http://t.example{path}")).unwrap())
    }

    fn ok(body: &'static str) -> impl Server {
        move |_: &Request, _: SimTime| Response::html(StatusCode::OK, body)
    }

    #[test]
    fn empty_router_404s() {
        let router = Router::new();
        assert_eq!(router.handle(&req("/x"), SimTime::EPOCH).status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut router = Router::new();
        router.route("/", ok("root"));
        router.route("/a", ok("a"));
        router.route("/a/b", ok("ab"));
        assert_eq!(router.handle(&req("/a/b/c"), SimTime::EPOCH).body_string(), "ab");
        assert_eq!(router.handle(&req("/a/x"), SimTime::EPOCH).body_string(), "a");
        assert_eq!(router.handle(&req("/z"), SimTime::EPOCH).body_string(), "root");
    }

    #[test]
    fn replacement() {
        let mut router = Router::new();
        router.route("/", ok("first"));
        router.route("/", ok("second"));
        assert_eq!(router.handle(&req("/"), SimTime::EPOCH).body_string(), "second");
    }
}
