//! HTTP request and response messages.

use std::fmt;

use crate::headers::HeaderMap;
use crate::url::Url;

/// HTTP request method (the subset the simulation uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
    /// `HEAD`.
    Head,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        })
    }
}

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// `200 OK`.
    pub const OK: StatusCode = StatusCode(200);
    /// `302 Found` (temporary redirect).
    pub const FOUND: StatusCode = StatusCode(302);
    /// `304 Not Modified`.
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// `404 Not Found`.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// `500 Internal Server Error`.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);

    /// Whether the code is 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Whether the code is 3xx.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Request headers (`Host` is implied by the URL; `Cookie` is attached
    /// by the browser).
    pub headers: HeaderMap,
    /// Request body (empty for `GET`).
    pub body: Vec<u8>,
}

impl Request {
    /// Creates a body-less request.
    pub fn new(method: Method, url: Url) -> Self {
        Request { method, url, headers: HeaderMap::new(), body: Vec::new() }
    }

    /// Convenience `GET` constructor.
    pub fn get(url: Url) -> Self {
        Request::new(Method::Get, url)
    }

    /// The `Cookie` header, if present.
    pub fn cookie_header(&self) -> Option<&str> {
        self.headers.get("cookie")
    }

    /// Approximate wire size in bytes (request line + headers + body).
    pub fn wire_size(&self) -> usize {
        self.method.to_string().len()
            + self.url.to_string().len()
            + 12
            + self.headers.wire_size()
            + self.body.len()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.method, self.url)
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Response headers (including any `Set-Cookie`s).
    pub headers: HeaderMap,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// Creates a response with the given status and an empty body.
    pub fn new(status: StatusCode) -> Self {
        Response { status, headers: HeaderMap::new(), body: Vec::new() }
    }

    /// Creates a `text/html` response.
    pub fn html(status: StatusCode, body: impl Into<String>) -> Self {
        let mut r = Response::new(status);
        r.headers.set("Content-Type", "text/html; charset=utf-8");
        r.body = body.into().into_bytes();
        r
    }

    /// Creates a `404` response with a small HTML body.
    pub fn not_found() -> Self {
        Response::html(StatusCode::NOT_FOUND, "<html><body><h1>404 Not Found</h1></body></html>")
    }

    /// Creates a redirect to `location`.
    pub fn redirect(location: &str) -> Self {
        let mut r = Response::new(StatusCode::FOUND);
        r.headers.set("Location", location);
        r
    }

    /// Appends a `Set-Cookie` header.
    pub fn add_set_cookie(&mut self, value: impl Into<String>) {
        self.headers.append("Set-Cookie", value.into());
    }

    /// All `Set-Cookie` header values.
    pub fn set_cookies(&self) -> Vec<&str> {
        self.headers.get_all("set-cookie")
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        16 + self.headers.wire_size() + self.body.len()
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HTTP {} ({} bytes)", self.status, self.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_basics() {
        let req = Request::get(Url::parse("http://a.example/x").unwrap());
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.cookie_header(), None);
        assert!(req.wire_size() > 0);
    }

    #[test]
    fn response_html() {
        let r = Response::html(StatusCode::OK, "<p>x</p>");
        assert!(r.status.is_success());
        assert_eq!(r.body_string(), "<p>x</p>");
        assert_eq!(r.headers.get("content-type"), Some("text/html; charset=utf-8"));
    }

    #[test]
    fn set_cookie_accumulates() {
        let mut r = Response::new(StatusCode::OK);
        r.add_set_cookie("a=1");
        r.add_set_cookie("b=2; Path=/");
        assert_eq!(r.set_cookies(), vec!["a=1", "b=2; Path=/"]);
    }

    #[test]
    fn status_categories() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(Response::redirect("/x").headers.contains("location"));
    }

    #[test]
    fn not_found_has_body() {
        assert!(Response::not_found().body_string().contains("404"));
    }
}
