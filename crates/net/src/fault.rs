//! Deterministic fault injection for [`SimNetwork`](crate::SimNetwork).
//!
//! The paper's prototype talks to the live 2007 Web, where the hidden
//! request can vanish, reset, stall past any deadline, come back as an
//! error page, or arrive cut short. This module reproduces that substrate
//! misbehaviour *deterministically*: a seeded [`FaultPlan`] assigns
//! per-host, per-request-class [`FaultRates`], and a [`FaultInjector`]
//! derives every fault decision from a hash of the plan seed and the
//! request identity — never from the network's latency RNG — so installing
//! a plan with zero rates leaves every existing stream bit-identical.

use std::collections::HashMap;
use std::fmt;

use cp_cookies::SimDuration;
use cp_runtime::rng::{Rng, SeedableRng, StdRng};
use cp_runtime::sync::Mutex;

/// Fault probabilities for one class of traffic. All probabilities are in
/// `[0, 1]`; the four terminal kinds (`drop`, `reset`, `http_5xx`,
/// `truncate`) are mutually exclusive per request, and `extra_latency` is
/// rolled only when no terminal fault fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability the request (or its response) is lost in transit; the
    /// client observes a timeout.
    pub drop: f64,
    /// Probability the connection is reset mid-exchange.
    pub reset: f64,
    /// Probability the origin answers with an HTTP 5xx error page.
    pub http_5xx: f64,
    /// Probability the response body arrives truncated (Content-Length
    /// mismatch).
    pub truncate: f64,
    /// Probability of `extra_latency_ms` of added delay (e.g. an upstream
    /// retry inside the origin).
    pub extra_latency: f64,
    /// The added delay, in milliseconds, when `extra_latency` fires.
    pub extra_latency_ms: u64,
}

impl FaultRates {
    /// No faults at all — sampling always returns `None`.
    pub const NONE: FaultRates = FaultRates {
        drop: 0.0,
        reset: 0.0,
        http_5xx: 0.0,
        truncate: 0.0,
        extra_latency: 0.0,
        extra_latency_ms: 0,
    };

    /// Splits a total fault probability `rate` evenly across the five fault
    /// kinds, with a 45 s added delay on the latency kind (enough to blow
    /// any realistic think-time deadline budget).
    pub fn uniform(rate: f64) -> FaultRates {
        let p = rate.clamp(0.0, 1.0) / 5.0;
        FaultRates {
            drop: p,
            reset: p,
            http_5xx: p,
            truncate: p,
            extra_latency: p,
            extra_latency_ms: 45_000,
        }
    }

    /// Whether every rate is zero.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.reset == 0.0
            && self.http_5xx == 0.0
            && self.truncate == 0.0
            && self.extra_latency == 0.0
    }

    /// Draws at most one fault for a request from `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<FaultKind> {
        if self.is_none() {
            return None;
        }
        let roll = rng.gen::<f64>();
        let mut edge = self.drop;
        if roll < edge {
            return Some(FaultKind::Drop);
        }
        edge += self.reset;
        if roll < edge {
            let after = SimDuration::from_millis(10 + rng.gen_range(0..240u64));
            return Some(FaultKind::Reset(after));
        }
        edge += self.http_5xx;
        if roll < edge {
            let status = [500u16, 502, 503][rng.gen_range(0..3u64) as usize];
            return Some(FaultKind::Http5xx(status));
        }
        edge += self.truncate;
        if roll < edge {
            return Some(FaultKind::Truncate);
        }
        if self.extra_latency > 0.0 && rng.gen::<f64>() < self.extra_latency {
            return Some(FaultKind::ExtraLatency(SimDuration::from_millis(self.extra_latency_ms)));
        }
        None
    }
}

/// One injected fault, as drawn from [`FaultRates::sample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The request is lost; the client will time out waiting.
    Drop,
    /// The connection resets after the given span.
    Reset(SimDuration),
    /// The origin answers with this 5xx status and an error page body.
    Http5xx(u16),
    /// The response body is cut short.
    Truncate,
    /// This much latency is added on top of the model's sample.
    ExtraLatency(SimDuration),
}

/// A seeded, declarative assignment of [`FaultRates`] to traffic.
///
/// Precedence per request: a per-host override wins, then the hidden-class
/// override (for requests carrying `X-Requested-With`), then the default.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default: FaultRates,
    hidden: Option<FaultRates>,
    per_host: HashMap<String, FaultRates>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, default: FaultRates::NONE, hidden: None, per_host: HashMap::new() }
    }

    /// A plan faulting *all* traffic at a uniform total rate.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::new(seed).with_default(FaultRates::uniform(rate))
    }

    /// A plan faulting only the hidden request class, at a uniform rate.
    pub fn hidden_only(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::new(seed).with_hidden(FaultRates::uniform(rate))
    }

    /// Sets the default rates for all traffic.
    pub fn with_default(mut self, rates: FaultRates) -> FaultPlan {
        self.default = rates;
        self
    }

    /// Sets the rates for hidden (XHR-marked) requests.
    pub fn with_hidden(mut self, rates: FaultRates) -> FaultPlan {
        self.hidden = Some(rates);
        self
    }

    /// Overrides the rates for one host (wins over the class rates).
    pub fn with_host(mut self, host: impl Into<String>, rates: FaultRates) -> FaultPlan {
        self.per_host.insert(host.into().to_ascii_lowercase(), rates);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The effective rates for a request to `host`, hidden-class or not.
    pub fn rates_for(&self, host: &str, hidden: bool) -> FaultRates {
        if let Some(rates) = self.per_host.get(host) {
            return *rates;
        }
        if hidden {
            if let Some(rates) = self.hidden {
                return rates;
            }
        }
        self.default
    }
}

/// Executes a [`FaultPlan`]: derives one deterministic fault decision per
/// request from the plan seed, the request identity, and a per-host
/// sequence number — so same-seed runs replay the exact same faults, and
/// the network's own latency RNG is never consulted.
pub struct FaultInjector {
    plan: FaultPlan,
    seq: Mutex<HashMap<String, u64>>,
}

impl FaultInjector {
    /// Wraps a plan for execution.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, seq: Mutex::new(HashMap::new()) }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws the fault (if any) for the next request to `host`/`path`.
    /// Advances the host's sequence number, so retries of the same request
    /// re-roll their fate.
    pub fn sample(&self, host: &str, path: &str, hidden: bool) -> Option<FaultKind> {
        let seq = {
            let mut map = self.seq.lock();
            let counter = map.entry(host.to_string()).or_insert(0);
            *counter += 1;
            *counter
        };
        let rates = self.plan.rates_for(host, hidden);
        let mut rng = StdRng::seed_from_u64(fault_key(self.plan.seed, host, path, hidden, seq));
        rates.sample(&mut rng)
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector").field("plan", &self.plan).finish()
    }
}

/// FNV-1a over the request identity, mixed with the plan seed — the same
/// construction `cp-serve`'s embedded world uses for render noise.
fn fault_key(seed: u64, host: &str, path: &str, hidden: bool, seq: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17);
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(host.as_bytes());
    eat(&[0xFF, hidden as u8]);
    eat(path.as_bytes());
    eat(&seq.to_le_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(FaultRates::NONE.sample(&mut rng), None);
        }
    }

    #[test]
    fn uniform_rate_splits_and_fires() {
        let rates = FaultRates::uniform(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..500 {
            let Some(kind) = rates.sample(&mut rng) else { continue };
            match kind {
                FaultKind::Drop => kinds.insert("drop"),
                FaultKind::Reset(_) => kinds.insert("reset"),
                FaultKind::Http5xx(s) => {
                    assert!((500..=503).contains(&s));
                    kinds.insert("5xx")
                }
                FaultKind::Truncate => kinds.insert("truncate"),
                FaultKind::ExtraLatency(d) => {
                    assert!(d > SimDuration::ZERO);
                    kinds.insert("latency")
                }
            };
        }
        assert_eq!(kinds.len(), 5, "all five kinds occur: {kinds:?}");
    }

    #[test]
    fn plan_precedence_host_then_class_then_default() {
        let plan = FaultPlan::new(7)
            .with_default(FaultRates::uniform(0.1))
            .with_hidden(FaultRates::uniform(0.5))
            .with_host("slow.example", FaultRates::uniform(0.9));
        assert_eq!(plan.rates_for("slow.example", true), FaultRates::uniform(0.9));
        assert_eq!(plan.rates_for("a.example", true), FaultRates::uniform(0.5));
        assert_eq!(plan.rates_for("a.example", false), FaultRates::uniform(0.1));
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let inj = FaultInjector::new(FaultPlan::uniform(seed, 0.5));
            (0..50)
                .map(|i| inj.sample("a.example", &format!("/p/{}", i % 5), i % 2 == 0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds draw different fault schedules");
    }

    #[test]
    fn retries_reroll_their_fate() {
        // Same host+path sampled twice advances the sequence number, so a
        // faulted first attempt does not doom the retry.
        let inj = FaultInjector::new(FaultPlan::uniform(11, 0.5));
        let draws: Vec<_> = (0..64).map(|_| inj.sample("a.example", "/p", true)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }
}
