//! A case-insensitive, insertion-ordered header multimap.

use std::fmt;

/// HTTP headers: a multimap preserving insertion order, with
/// case-insensitive name matching (header names are stored lower-cased).
///
/// ```
/// use cp_net::HeaderMap;
/// let mut h = HeaderMap::new();
/// h.append("Set-Cookie", "a=1");
/// h.append("Set-Cookie", "b=2");
/// h.set("Content-Type", "text/html");
/// assert_eq!(h.get("content-type"), Some("text/html"));
/// assert_eq!(h.get_all("SET-COOKIE"), vec!["a=1", "b=2"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// Creates an empty header map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Number of header entries (not distinct names).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a header, keeping existing entries with the same name.
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((name.to_ascii_lowercase(), value.into()));
    }

    /// Sets a header, removing any existing entries with the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.append(name, value);
    }

    /// Removes all entries with the given name; returns how many were
    /// removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let name = name.to_ascii_lowercase();
        let before = self.entries.len();
        self.entries.retain(|(k, _)| *k != name);
        before - self.entries.len()
    }

    /// The first value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.entries.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        let name = name.to_ascii_lowercase();
        self.entries.iter().filter(|(k, _)| *k == name).map(|(_, v)| v.as_str()).collect()
    }

    /// Whether a header with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Approximate wire size of the headers in bytes (for traffic
    /// accounting).
    pub fn wire_size(&self) -> usize {
        self.entries.iter().map(|(k, v)| k.len() + v.len() + 4).sum()
    }
}

impl fmt::Display for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.entries {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, String)> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        let mut map = HeaderMap::new();
        for (k, v) in iter {
            map.append(&k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_replaces_append_accumulates() {
        let mut h = HeaderMap::new();
        h.append("X", "1");
        h.append("X", "2");
        assert_eq!(h.get_all("x").len(), 2);
        h.set("X", "3");
        assert_eq!(h.get_all("x"), vec!["3"]);
    }

    #[test]
    fn case_insensitive() {
        let mut h = HeaderMap::new();
        h.set("Content-Type", "text/html");
        assert!(h.contains("CONTENT-TYPE"));
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.remove("Content-type"), 1);
        assert!(h.is_empty());
    }

    #[test]
    fn missing_headers() {
        let h = HeaderMap::new();
        assert_eq!(h.get("nope"), None);
        assert!(h.get_all("nope").is_empty());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn from_iterator_and_iter() {
        let h: HeaderMap =
            vec![("A".to_string(), "1".to_string()), ("B".to_string(), "2".to_string())]
                .into_iter()
                .collect();
        let pairs: Vec<(&str, &str)> = h.iter().collect();
        assert_eq!(pairs, vec![("a", "1"), ("b", "2")]);
    }

    #[test]
    fn wire_size_positive() {
        let mut h = HeaderMap::new();
        h.set("Host", "example.com");
        assert!(h.wire_size() >= "host".len() + "example.com".len());
    }
}
