//! In-process HTTP substrate: message types, servers, and a simulated
//! network with a deterministic latency model.
//!
//! The paper's prototype talks to the live 2007 Web; this crate replaces the
//! wire with an in-process [`SimNetwork`] that routes
//! [`Request`]s to registered [`Server`]
//! implementations and charges each exchange a latency drawn from a seeded
//! [`LatencyModel`]. Everything CookiePicker observes
//! — headers, cookies, bodies, and elapsed time — flows through here.
//!
//! # Example
//!
//! ```
//! use cp_net::{Method, Request, Response, Server, SimNetwork, StatusCode, Url};
//! use cp_cookies::SimTime;
//!
//! struct Hello;
//! impl Server for Hello {
//!     fn handle(&self, _req: &Request, _now: SimTime) -> Response {
//!         Response::html(StatusCode::OK, "<p>hi</p>")
//!     }
//! }
//!
//! let mut net = SimNetwork::new(7);
//! net.register("hello.example", Hello);
//! let req = Request::new(Method::Get, Url::parse("http://hello.example/").unwrap());
//! let out = net.fetch(&req, SimTime::EPOCH).unwrap();
//! assert!(out.response.body_string().contains("hi"));
//! assert!(out.latency.as_millis() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod headers;
pub mod latency;
pub mod message;
pub mod network;
pub mod server;
pub mod url;

pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultRates};
pub use headers::HeaderMap;
pub use latency::LatencyModel;
pub use message::{Method, Request, Response, StatusCode};
pub use network::{FetchOutcome, HostResolver, LoggedRequest, NetError, NetworkStats, SimNetwork};
pub use server::{Router, Server};
pub use url::{ParseUrlError, Url};
