//! The simulated network: host registry, fetch, latency accounting and
//! traffic statistics.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use cp_runtime::rng::{SeedableRng, StdRng};
use cp_runtime::sync::Mutex;

use cp_cookies::{SimDuration, SimTime};

use crate::latency::LatencyModel;
use crate::message::{Request, Response};
use crate::server::Server;

/// Error returned by [`SimNetwork::fetch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No server is registered for the request host.
    UnknownHost(
        /// The host that could not be resolved.
        String,
    ),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(h) => write!(f, "unknown host {h:?}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The result of one simulated HTTP exchange.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// The server's response.
    pub response: Response,
    /// The simulated network latency of the exchange.
    pub latency: SimDuration,
}

/// Cumulative traffic statistics, for overhead experiments (E4/A4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total requests issued.
    pub requests: u64,
    /// Total request bytes (approximate wire size).
    pub bytes_up: u64,
    /// Total response bytes (approximate wire size).
    pub bytes_down: u64,
}

/// One entry of the network's request log (enabled via
/// [`SimNetwork::enable_request_log`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedRequest {
    /// Destination host.
    pub host: String,
    /// Request path.
    pub path: String,
    /// The `Cookie` header as sent, if any.
    pub cookie_header: Option<String>,
    /// Whether the request carried the `X-Requested-With` marker typical of
    /// extension XHRs (what an evasion-minded operator would look for).
    pub xhr: bool,
    /// Simulated time the request was issued.
    pub at: SimTime,
}

struct HostEntry {
    server: Arc<dyn Server>,
    latency: LatencyModel,
}

/// An in-process network connecting a browser to registered origin servers.
///
/// Deterministic: latency draws come from a single seeded RNG, so a fixed
/// seed and request sequence reproduce identical timings.
pub struct SimNetwork {
    hosts: HashMap<String, HostEntry>,
    rng: Mutex<StdRng>,
    stats: Mutex<NetworkStats>,
    log: Mutex<Option<Vec<LoggedRequest>>>,
}

impl SimNetwork {
    /// Creates an empty network with the given latency-RNG seed.
    pub fn new(seed: u64) -> Self {
        SimNetwork {
            hosts: HashMap::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            stats: Mutex::new(NetworkStats::default()),
            log: Mutex::new(None),
        }
    }

    /// Turns on per-request logging (off by default; the log grows without
    /// bound while enabled).
    pub fn enable_request_log(&mut self) {
        *self.log.lock() = Some(Vec::new());
    }

    /// Drains and returns the request log (empty if logging is disabled).
    pub fn take_request_log(&self) -> Vec<LoggedRequest> {
        self.log.lock().as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Registers `server` for `host` with the default latency model.
    pub fn register(&mut self, host: impl Into<String>, server: impl Server + 'static) {
        self.register_with_latency(host, server, LatencyModel::default());
    }

    /// Registers `server` for `host` with a specific latency model.
    pub fn register_with_latency(
        &mut self,
        host: impl Into<String>,
        server: impl Server + 'static,
        latency: LatencyModel,
    ) {
        self.hosts.insert(
            host.into().to_ascii_lowercase(),
            HostEntry { server: Arc::new(server), latency },
        );
    }

    /// Registers an already-shared server.
    pub fn register_shared(
        &mut self,
        host: impl Into<String>,
        server: Arc<dyn Server>,
        latency: LatencyModel,
    ) {
        self.hosts.insert(host.into().to_ascii_lowercase(), HostEntry { server, latency });
    }

    /// Hosts currently registered.
    pub fn hosts(&self) -> Vec<&str> {
        self.hosts.keys().map(String::as_str).collect()
    }

    /// Performs one HTTP exchange at simulated time `now`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownHost`] if no server is registered for the URL's
    /// host.
    pub fn fetch(&self, req: &Request, now: SimTime) -> Result<FetchOutcome, NetError> {
        let host = req.url.host();
        let entry = self.hosts.get(host).ok_or_else(|| NetError::UnknownHost(host.to_string()))?;
        if let Some(log) = self.log.lock().as_mut() {
            log.push(LoggedRequest {
                host: host.to_string(),
                path: req.url.path().to_string(),
                cookie_header: req.cookie_header().map(str::to_string),
                xhr: req.headers.contains("x-requested-with"),
                at: now,
            });
        }
        let response = entry.server.handle(req, now);
        let latency = entry.latency.sample(&mut *self.rng.lock(), response.body.len());
        let mut stats = self.stats.lock();
        stats.requests += 1;
        stats.bytes_up += req.wire_size() as u64;
        stats.bytes_down += response.wire_size() as u64;
        Ok(FetchOutcome { response, latency })
    }

    /// A snapshot of the cumulative traffic statistics.
    pub fn stats(&self) -> NetworkStats {
        self.stats.lock().clone()
    }

    /// Resets the traffic statistics (e.g. between experiment phases).
    pub fn reset_stats(&self) {
        *self.stats.lock() = NetworkStats::default();
    }
}

impl fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNetwork")
            .field("hosts", &self.hosts.keys().collect::<Vec<_>>())
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Method, StatusCode};
    use crate::url::Url;

    fn echo_server() -> impl Server {
        |req: &Request, _: SimTime| {
            Response::html(StatusCode::OK, format!("<p>{}</p>", req.url.path()))
        }
    }

    fn get(url: &str) -> Request {
        Request::new(Method::Get, Url::parse(url).unwrap())
    }

    #[test]
    fn fetch_routes_by_host() {
        let mut net = SimNetwork::new(1);
        net.register("a.example", echo_server());
        let out = net.fetch(&get("http://a.example/x"), SimTime::EPOCH).unwrap();
        assert!(out.response.body_string().contains("/x"));
        assert!(out.latency > SimDuration::ZERO);
    }

    #[test]
    fn unknown_host_errors() {
        let net = SimNetwork::new(1);
        let err = net.fetch(&get("http://nowhere.example/"), SimTime::EPOCH).unwrap_err();
        assert_eq!(err, NetError::UnknownHost("nowhere.example".into()));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut net = SimNetwork::new(1);
        net.register("a.example", echo_server());
        for _ in 0..3 {
            net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap();
        }
        let s = net.stats();
        assert_eq!(s.requests, 3);
        assert!(s.bytes_down > 0 && s.bytes_up > 0);
        net.reset_stats();
        assert_eq!(net.stats(), NetworkStats::default());
    }

    #[test]
    fn deterministic_latency_sequence() {
        let run = || {
            let mut net = SimNetwork::new(42);
            net.register("a.example", echo_server());
            (0..5)
                .map(|_| net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap().latency)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn request_log_captures_cookie_and_marker_headers() {
        let mut net = SimNetwork::new(4);
        net.register("a.example", echo_server());
        net.enable_request_log();
        let mut req = get("http://a.example/p");
        req.headers.set("Cookie", "a=1");
        net.fetch(&req, SimTime::from_secs(9)).unwrap();
        let mut hidden = get("http://a.example/p");
        hidden.headers.set("X-Requested-With", "XMLHttpRequest");
        net.fetch(&hidden, SimTime::from_secs(10)).unwrap();

        let log = net.take_request_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].cookie_header.as_deref(), Some("a=1"));
        assert!(!log[0].xhr);
        assert!(log[1].xhr);
        assert_eq!(log[1].at, SimTime::from_secs(10));
        assert!(net.take_request_log().is_empty(), "take drains the log");
    }

    #[test]
    fn request_log_disabled_by_default() {
        let mut net = SimNetwork::new(4);
        net.register("a.example", echo_server());
        net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap();
        assert!(net.take_request_log().is_empty());
    }

    #[test]
    fn per_host_latency_models() {
        let mut net = SimNetwork::new(7);
        net.register_with_latency("fast.example", echo_server(), LatencyModel::fast());
        net.register_with_latency("slow.example", echo_server(), LatencyModel::slow_site());
        let avg = |host: &str, net: &SimNetwork| -> u64 {
            (0..50)
                .map(|_| {
                    net.fetch(&get(&format!("http://{host}/")), SimTime::EPOCH)
                        .unwrap()
                        .latency
                        .as_millis()
                })
                .sum::<u64>()
                / 50
        };
        assert!(avg("slow.example", &net) > avg("fast.example", &net) * 3);
    }
}
