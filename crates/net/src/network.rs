//! The simulated network: host registry, fetch, latency accounting and
//! traffic statistics.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use cp_runtime::rng::{SeedableRng, StdRng};
use cp_runtime::sync::Mutex;

use cp_cookies::{SimDuration, SimTime};

use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::latency::LatencyModel;
use crate::message::{Request, Response, StatusCode};
use crate::server::Server;

/// How long a client waits on a dropped request before giving up, when the
/// caller supplied no deadline of its own.
const DROP_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Error returned by [`SimNetwork::fetch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No server is registered for the request host.
    UnknownHost(
        /// The host that could not be resolved.
        String,
    ),
    /// The request (or its response) vanished in transit; the client gave
    /// up after `waited`.
    Dropped {
        /// The destination host.
        host: String,
        /// How long the client waited before timing out.
        waited: SimDuration,
    },
    /// The connection was reset mid-exchange.
    ConnectionReset {
        /// The destination host.
        host: String,
        /// Time into the exchange when the reset hit.
        after: SimDuration,
    },
    /// The response did not arrive within the caller's deadline.
    DeadlineExceeded {
        /// The destination host.
        host: String,
        /// The deadline that was exceeded.
        deadline: SimDuration,
    },
    /// The response body arrived shorter than its declared length.
    TruncatedBody {
        /// The destination host.
        host: String,
        /// Time into the exchange when the stream ended.
        after: SimDuration,
        /// Bytes actually received.
        received: usize,
        /// Bytes the response declared.
        expected: usize,
    },
}

impl NetError {
    /// The host the failed exchange targeted.
    pub fn host(&self) -> &str {
        match self {
            NetError::UnknownHost(h) => h,
            NetError::Dropped { host, .. }
            | NetError::ConnectionReset { host, .. }
            | NetError::DeadlineExceeded { host, .. }
            | NetError::TruncatedBody { host, .. } => host,
        }
    }

    /// Whether retrying the same request can plausibly succeed. Resolution
    /// failures are permanent; everything else is substrate weather.
    pub fn is_transient(&self) -> bool {
        !matches!(self, NetError::UnknownHost(_))
    }

    /// The simulated time the failed attempt consumed before the client
    /// observed the failure (zero for resolution failures).
    pub fn elapsed(&self) -> SimDuration {
        match self {
            NetError::UnknownHost(_) => SimDuration::ZERO,
            NetError::Dropped { waited, .. } => *waited,
            NetError::ConnectionReset { after, .. } => *after,
            NetError::DeadlineExceeded { deadline, .. } => *deadline,
            NetError::TruncatedBody { after, .. } => *after,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(h) => write!(f, "unknown host {h:?}"),
            NetError::Dropped { host, waited } => {
                write!(f, "request to {host} dropped (timed out after {waited})")
            }
            NetError::ConnectionReset { host, after } => {
                write!(f, "connection to {host} reset after {after}")
            }
            NetError::DeadlineExceeded { host, deadline } => {
                write!(f, "request to {host} exceeded its {deadline} deadline")
            }
            NetError::TruncatedBody { host, received, expected, .. } => {
                write!(f, "response from {host} truncated ({received} of {expected} bytes)")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// The result of one simulated HTTP exchange.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// The server's response.
    pub response: Response,
    /// The simulated network latency of the exchange.
    pub latency: SimDuration,
}

/// Cumulative traffic statistics, for overhead experiments (E4/A4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total requests issued.
    pub requests: u64,
    /// Total request bytes (approximate wire size).
    pub bytes_up: u64,
    /// Total response bytes (approximate wire size).
    pub bytes_down: u64,
}

/// One entry of the network's request log (enabled via
/// [`SimNetwork::enable_request_log`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedRequest {
    /// Destination host.
    pub host: String,
    /// Request path.
    pub path: String,
    /// The `Cookie` header as sent, if any.
    pub cookie_header: Option<String>,
    /// Whether the request carried the `X-Requested-With` marker typical of
    /// extension XHRs (what an evasion-minded operator would look for).
    pub xhr: bool,
    /// Simulated time the request was issued.
    pub at: SimTime,
}

struct HostEntry {
    server: Arc<dyn Server>,
    latency: LatencyModel,
}

/// Resolves hosts that are not in a [`SimNetwork`]'s explicit registry.
///
/// This is how a network backs onto a *lazily derived* world: instead of
/// registering millions of servers up front, install a resolver that
/// derives a server for any host it recognizes. Resolution order in
/// [`SimNetwork::fetch_with_deadline`] is explicit registry first, then the
/// resolver; a host neither knows yields [`NetError::UnknownHost`].
///
/// Implementations are expected to be deterministic (same host → same
/// server) and to do their own memoization if derivation is costly.
pub trait HostResolver: Send + Sync {
    /// Returns the origin server and latency model for `host`, or `None`
    /// if the host does not exist in the resolver's world.
    fn resolve(&self, host: &str) -> Option<(Arc<dyn Server>, LatencyModel)>;
}

/// An in-process network connecting a browser to registered origin servers.
///
/// Deterministic: latency draws come from a single seeded RNG, so a fixed
/// seed and request sequence reproduce identical timings.
pub struct SimNetwork {
    hosts: HashMap<String, HostEntry>,
    resolver: Option<Arc<dyn HostResolver>>,
    rng: Mutex<StdRng>,
    stats: Mutex<NetworkStats>,
    log: Mutex<Option<Vec<LoggedRequest>>>,
    fault: Option<FaultInjector>,
}

impl SimNetwork {
    /// Creates an empty network with the given latency-RNG seed.
    pub fn new(seed: u64) -> Self {
        SimNetwork {
            hosts: HashMap::new(),
            resolver: None,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            stats: Mutex::new(NetworkStats::default()),
            log: Mutex::new(None),
            fault: None,
        }
    }

    /// Installs a fallback [`HostResolver`] consulted for hosts absent from
    /// the explicit registry. Explicit registrations always win.
    pub fn set_resolver(&mut self, resolver: Arc<dyn HostResolver>) {
        self.resolver = Some(resolver);
    }

    /// Builder-style [`SimNetwork::set_resolver`].
    pub fn with_resolver(mut self, resolver: Arc<dyn HostResolver>) -> Self {
        self.set_resolver(resolver);
        self
    }

    /// Installs a fault plan: subsequent fetches may fail or degrade per the
    /// plan's seeded rates. Fault decisions draw from their own hash-derived
    /// RNG, so the latency stream is unchanged — a plan with all-zero rates
    /// reproduces fault-free runs bit for bit.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultInjector::new(plan));
    }

    /// Removes any installed fault plan.
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(FaultInjector::plan)
    }

    /// Turns on per-request logging (off by default; the log grows without
    /// bound while enabled).
    pub fn enable_request_log(&mut self) {
        *self.log.lock() = Some(Vec::new());
    }

    /// Drains and returns the request log (empty if logging is disabled).
    pub fn take_request_log(&self) -> Vec<LoggedRequest> {
        self.log.lock().as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Registers `server` for `host` with the default latency model.
    pub fn register(&mut self, host: impl Into<String>, server: impl Server + 'static) {
        self.register_with_latency(host, server, LatencyModel::default());
    }

    /// Registers `server` for `host` with a specific latency model.
    pub fn register_with_latency(
        &mut self,
        host: impl Into<String>,
        server: impl Server + 'static,
        latency: LatencyModel,
    ) {
        self.hosts.insert(
            host.into().to_ascii_lowercase(),
            HostEntry { server: Arc::new(server), latency },
        );
    }

    /// Registers an already-shared server.
    pub fn register_shared(
        &mut self,
        host: impl Into<String>,
        server: Arc<dyn Server>,
        latency: LatencyModel,
    ) {
        self.hosts.insert(host.into().to_ascii_lowercase(), HostEntry { server, latency });
    }

    /// Hosts currently registered.
    pub fn hosts(&self) -> Vec<&str> {
        self.hosts.keys().map(String::as_str).collect()
    }

    /// Performs one HTTP exchange at simulated time `now`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownHost`] if no server is registered for the URL's
    /// host; with a fault plan installed, any other [`NetError`] variant per
    /// the plan's rates.
    pub fn fetch(&self, req: &Request, now: SimTime) -> Result<FetchOutcome, NetError> {
        self.fetch_with_deadline(req, now, None)
    }

    /// [`fetch`](Self::fetch) with a client-side response deadline: if the
    /// exchange's sampled latency exceeds `deadline`, the client abandons it
    /// and gets [`NetError::DeadlineExceeded`] after exactly `deadline` of
    /// simulated waiting.
    ///
    /// # Errors
    ///
    /// As [`fetch`](Self::fetch), plus [`NetError::DeadlineExceeded`].
    pub fn fetch_with_deadline(
        &self,
        req: &Request,
        now: SimTime,
        deadline: Option<SimDuration>,
    ) -> Result<FetchOutcome, NetError> {
        let host = req.url.host();
        // Explicit registrations win; the resolver is the lazy fallback.
        // A host neither knows fails with UnknownHost — resolution misses
        // are explicit, never silently-empty sites.
        let (server, latency_model) = match self.hosts.get(host) {
            Some(entry) => (Arc::clone(&entry.server), entry.latency.clone()),
            None => match self.resolver.as_ref().and_then(|r| r.resolve(host)) {
                Some(resolved) => resolved,
                None => return Err(NetError::UnknownHost(host.to_string())),
            },
        };
        if let Some(log) = self.log.lock().as_mut() {
            log.push(LoggedRequest {
                host: host.to_string(),
                path: req.url.path().to_string(),
                cookie_header: req.cookie_header().map(str::to_string),
                xhr: req.headers.contains("x-requested-with"),
                at: now,
            });
        }
        let fault = self.fault.as_ref().and_then(|inj| {
            inj.sample(host, req.url.path(), req.headers.contains("x-requested-with"))
        });

        // Faults that kill the exchange before any response bytes flow. The
        // request itself still went out, so upstream traffic is accounted.
        match fault {
            Some(FaultKind::Drop) => {
                self.count(req, None);
                let waited = deadline.map_or(DROP_TIMEOUT, |d| d.min(DROP_TIMEOUT));
                return Err(NetError::Dropped { host: host.to_string(), waited });
            }
            Some(FaultKind::Reset(after)) => {
                self.count(req, None);
                return Err(NetError::ConnectionReset { host: host.to_string(), after });
            }
            _ => {}
        }

        let mut response = server.handle(req, now);
        let mut latency = latency_model.sample(&mut *self.rng.lock(), response.body.len());
        match fault {
            Some(FaultKind::ExtraLatency(extra)) => latency += extra,
            Some(FaultKind::Http5xx(status)) => {
                response = Response::html(
                    StatusCode(status),
                    format!("<html><body><h1>{status} upstream error</h1></body></html>"),
                );
            }
            _ => {}
        }

        if let Some(d) = deadline {
            if latency > d {
                // The client hangs up at the deadline; the response is
                // abandoned on the wire.
                self.count(req, None);
                return Err(NetError::DeadlineExceeded { host: host.to_string(), deadline: d });
            }
        }

        if matches!(fault, Some(FaultKind::Truncate)) {
            let expected = response.body.len();
            let received = expected / 2;
            let mut stats = self.stats.lock();
            stats.requests += 1;
            stats.bytes_up += req.wire_size() as u64;
            stats.bytes_down += received as u64;
            return Err(NetError::TruncatedBody {
                host: host.to_string(),
                after: latency,
                received,
                expected,
            });
        }

        self.count(req, Some(&response));
        Ok(FetchOutcome { response, latency })
    }

    fn count(&self, req: &Request, response: Option<&Response>) {
        let mut stats = self.stats.lock();
        stats.requests += 1;
        stats.bytes_up += req.wire_size() as u64;
        if let Some(response) = response {
            stats.bytes_down += response.wire_size() as u64;
        }
    }

    /// A snapshot of the cumulative traffic statistics.
    pub fn stats(&self) -> NetworkStats {
        self.stats.lock().clone()
    }

    /// Resets the traffic statistics (e.g. between experiment phases).
    pub fn reset_stats(&self) {
        *self.stats.lock() = NetworkStats::default();
    }
}

impl fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNetwork")
            .field("hosts", &self.hosts.keys().collect::<Vec<_>>())
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Method, StatusCode};
    use crate::url::Url;

    fn echo_server() -> impl Server {
        |req: &Request, _: SimTime| {
            Response::html(StatusCode::OK, format!("<p>{}</p>", req.url.path()))
        }
    }

    fn get(url: &str) -> Request {
        Request::new(Method::Get, Url::parse(url).unwrap())
    }

    #[test]
    fn fetch_routes_by_host() {
        let mut net = SimNetwork::new(1);
        net.register("a.example", echo_server());
        let out = net.fetch(&get("http://a.example/x"), SimTime::EPOCH).unwrap();
        assert!(out.response.body_string().contains("/x"));
        assert!(out.latency > SimDuration::ZERO);
    }

    #[test]
    fn unknown_host_errors() {
        let net = SimNetwork::new(1);
        let err = net.fetch(&get("http://nowhere.example/"), SimTime::EPOCH).unwrap_err();
        assert_eq!(err, NetError::UnknownHost("nowhere.example".into()));
    }

    /// Resolves every `*.derived.example` host to a shared echo server.
    struct DerivedWorld;
    impl HostResolver for DerivedWorld {
        fn resolve(&self, host: &str) -> Option<(Arc<dyn Server>, LatencyModel)> {
            host.ends_with(".derived.example")
                .then(|| (Arc::new(echo_server()) as Arc<dyn Server>, LatencyModel::fast()))
        }
    }

    #[test]
    fn resolver_backfills_unregistered_hosts() {
        let mut net = SimNetwork::new(1);
        net.register("a.example", |_: &Request, _: SimTime| {
            Response::html(StatusCode::OK, "<p>registered</p>")
        });
        net.set_resolver(Arc::new(DerivedWorld));
        // Registered hosts still win over the resolver.
        let out = net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap();
        assert!(out.response.body_string().contains("registered"));
        // Unregistered-but-resolvable hosts are served lazily.
        let out = net.fetch(&get("http://x.derived.example/p"), SimTime::EPOCH).unwrap();
        assert!(out.response.body_string().contains("/p"));
        assert_eq!(net.stats().requests, 2);
        // Hosts outside the resolver's world stay explicit errors.
        let err = net.fetch(&get("http://nowhere.example/"), SimTime::EPOCH).unwrap_err();
        assert_eq!(err, NetError::UnknownHost("nowhere.example".into()));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut net = SimNetwork::new(1);
        net.register("a.example", echo_server());
        for _ in 0..3 {
            net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap();
        }
        let s = net.stats();
        assert_eq!(s.requests, 3);
        assert!(s.bytes_down > 0 && s.bytes_up > 0);
        net.reset_stats();
        assert_eq!(net.stats(), NetworkStats::default());
    }

    #[test]
    fn deterministic_latency_sequence() {
        let run = || {
            let mut net = SimNetwork::new(42);
            net.register("a.example", echo_server());
            (0..5)
                .map(|_| net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap().latency)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn request_log_captures_cookie_and_marker_headers() {
        let mut net = SimNetwork::new(4);
        net.register("a.example", echo_server());
        net.enable_request_log();
        let mut req = get("http://a.example/p");
        req.headers.set("Cookie", "a=1");
        net.fetch(&req, SimTime::from_secs(9)).unwrap();
        let mut hidden = get("http://a.example/p");
        hidden.headers.set("X-Requested-With", "XMLHttpRequest");
        net.fetch(&hidden, SimTime::from_secs(10)).unwrap();

        let log = net.take_request_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].cookie_header.as_deref(), Some("a=1"));
        assert!(!log[0].xhr);
        assert!(log[1].xhr);
        assert_eq!(log[1].at, SimTime::from_secs(10));
        assert!(net.take_request_log().is_empty(), "take drains the log");
    }

    #[test]
    fn request_log_disabled_by_default() {
        let mut net = SimNetwork::new(4);
        net.register("a.example", echo_server());
        net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap();
        assert!(net.take_request_log().is_empty());
    }

    #[test]
    fn zero_rate_fault_plan_is_bit_identical_to_no_plan() {
        use crate::fault::FaultPlan;
        let run = |plan: Option<FaultPlan>| {
            let mut net = SimNetwork::new(42);
            net.register("a.example", echo_server());
            if let Some(plan) = plan {
                net.set_fault_plan(plan);
            }
            (0..20)
                .map(|_| net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap().latency)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(None), run(Some(FaultPlan::new(9))));
    }

    #[test]
    fn injected_faults_surface_as_taxonomy_errors() {
        use crate::fault::{FaultPlan, FaultRates};
        let with_rates = |rates: FaultRates| {
            let mut net = SimNetwork::new(1);
            net.register("a.example", echo_server());
            net.set_fault_plan(FaultPlan::new(5).with_default(rates));
            net
        };

        let net = with_rates(FaultRates { drop: 1.0, ..FaultRates::NONE });
        let err = net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap_err();
        assert!(matches!(err, NetError::Dropped { .. }), "{err}");
        assert!(err.is_transient());
        assert_eq!(err.host(), "a.example");
        assert_eq!(err.elapsed(), SimDuration::from_secs(30), "default drop timeout");
        assert_eq!(net.stats().requests, 1, "failed attempts still count as traffic");
        assert_eq!(net.stats().bytes_down, 0);

        let net = with_rates(FaultRates { reset: 1.0, ..FaultRates::NONE });
        let err = net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap_err();
        assert!(matches!(err, NetError::ConnectionReset { .. }), "{err}");
        assert!(err.elapsed() > SimDuration::ZERO);

        let net = with_rates(FaultRates { http_5xx: 1.0, ..FaultRates::NONE });
        let out = net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap();
        assert!(!out.response.status.is_success(), "5xx is a response, not an error");
        assert!((500..=503).contains(&out.response.status.0));

        let net = with_rates(FaultRates { truncate: 1.0, ..FaultRates::NONE });
        let err = net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap_err();
        let NetError::TruncatedBody { received, expected, .. } = &err else {
            panic!("expected truncation, got {err}");
        };
        assert!(received < expected);
        assert!(net.stats().bytes_down < net.stats().bytes_up + *expected as u64);
    }

    #[test]
    fn deadline_trips_on_injected_latency_only() {
        use crate::fault::{FaultPlan, FaultRates};
        let mut net = SimNetwork::new(3);
        net.register("a.example", echo_server());
        let budget = Some(SimDuration::from_secs(60));
        let ok = net.fetch_with_deadline(&get("http://a.example/"), SimTime::EPOCH, budget);
        assert!(ok.is_ok(), "natural latency is far under a 60 s budget");

        net.set_fault_plan(FaultPlan::new(2).with_default(FaultRates {
            extra_latency: 1.0,
            extra_latency_ms: 120_000,
            ..FaultRates::NONE
        }));
        let err =
            net.fetch_with_deadline(&get("http://a.example/"), SimTime::EPOCH, budget).unwrap_err();
        assert_eq!(
            err,
            NetError::DeadlineExceeded {
                host: "a.example".into(),
                deadline: SimDuration::from_secs(60)
            }
        );
        assert_eq!(err.elapsed(), SimDuration::from_secs(60), "the client waits out the deadline");
        // Without a deadline the same fault just makes the fetch slow.
        let out = net.fetch(&get("http://a.example/"), SimTime::EPOCH).unwrap();
        assert!(out.latency >= SimDuration::from_secs(120));
    }

    #[test]
    fn hidden_class_rates_spare_regular_traffic() {
        use crate::fault::FaultPlan;
        let mut net = SimNetwork::new(8);
        net.register("a.example", echo_server());
        net.set_fault_plan(
            FaultPlan::new(8).with_hidden(crate::fault::FaultRates {
                drop: 1.0,
                ..crate::fault::FaultRates::NONE
            }),
        );
        assert!(net.fetch(&get("http://a.example/"), SimTime::EPOCH).is_ok());
        let mut hidden = get("http://a.example/");
        hidden.headers.set("X-Requested-With", "XMLHttpRequest");
        assert!(net.fetch(&hidden, SimTime::EPOCH).is_err());
    }

    #[test]
    fn per_host_latency_models() {
        let mut net = SimNetwork::new(7);
        net.register_with_latency("fast.example", echo_server(), LatencyModel::fast());
        net.register_with_latency("slow.example", echo_server(), LatencyModel::slow_site());
        let avg = |host: &str, net: &SimNetwork| -> u64 {
            (0..50)
                .map(|_| {
                    net.fetch(&get(&format!("http://{host}/")), SimTime::EPOCH)
                        .unwrap()
                        .latency
                        .as_millis()
                })
                .sum::<u64>()
                / 50
        };
        assert!(avg("slow.example", &net) > avg("fast.example", &net) * 3);
    }
}
