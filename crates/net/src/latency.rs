//! Deterministic request-latency model.
//!
//! Table 1's "CookiePicker Duration" column is dominated by network time:
//! the mean over 30 sites was ~2.7 s, with three slow sites near 10 s. The
//! model below reproduces that shape: a base round-trip, per-kilobyte
//! transfer time, multiplicative jitter, and an optional heavy "slow site"
//! tail.

use cp_runtime::rng::Rng;

use cp_cookies::SimDuration;

/// A latency model for one origin server.
///
/// Sampled latency = `(base + per_kb·kb) · jitter`, plus `slow_extra` with
/// probability `slow_probability`. All parameters in milliseconds.
///
/// ```
/// use cp_net::LatencyModel;
/// use cp_runtime::rng::SeedableRng;
/// let model = LatencyModel::default();
/// let mut rng = cp_runtime::rng::StdRng::seed_from_u64(1);
/// let lat = model.sample(&mut rng, 20_000);
/// assert!(lat.as_millis() >= 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Base round-trip + server time in milliseconds.
    pub base_ms: f64,
    /// Added milliseconds per kilobyte of response body.
    pub per_kb_ms: f64,
    /// Multiplicative jitter half-width: each sample is scaled by a factor
    /// drawn uniformly from `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Probability that a request hits the slow tail.
    pub slow_probability: f64,
    /// Extra milliseconds added on slow-tail requests.
    pub slow_extra_ms: f64,
}

impl Default for LatencyModel {
    /// A 2007-era broadband profile: ~900 ms base, ~60 ms/KB, 35% jitter,
    /// a small slow tail — calibrated so a typical container fetch lands
    /// near Table 1's ~2.7 s average duration.
    fn default() -> Self {
        LatencyModel {
            base_ms: 900.0,
            per_kb_ms: 60.0,
            jitter: 0.35,
            slow_probability: 0.08,
            slow_extra_ms: 2_500.0,
        }
    }
}

impl LatencyModel {
    /// A fast CDN-like profile (for embedded objects).
    pub fn fast() -> Self {
        LatencyModel { base_ms: 80.0, per_kb_ms: 10.0, jitter: 0.25, ..Self::default() }
    }

    /// A chronically slow origin (the paper's S4/S17/S28 sites, ~10 s page
    /// loads).
    pub fn slow_site() -> Self {
        LatencyModel {
            base_ms: 6_500.0,
            per_kb_ms: 180.0,
            jitter: 0.35,
            slow_probability: 0.5,
            slow_extra_ms: 4_000.0,
        }
    }

    /// Samples a latency for a response of `body_bytes` bytes.
    ///
    /// Always at least 1 ms so durations are never zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, body_bytes: usize) -> SimDuration {
        let kb = body_bytes as f64 / 1024.0;
        let mut ms = self.base_ms + self.per_kb_ms * kb;
        let factor = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        ms *= factor.max(0.05);
        if self.slow_probability > 0.0 && rng.gen::<f64>() < self.slow_probability {
            ms += self.slow_extra_ms;
        }
        SimDuration::from_millis(ms.max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_runtime::rng::{SeedableRng, StdRng};

    #[test]
    fn deterministic_given_seed() {
        let model = LatencyModel::default();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| model.sample(&mut rng, 10_000).as_millis()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| model.sample(&mut rng, 10_000).as_millis()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn bigger_bodies_take_longer_on_average() {
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let small: u64 =
            (0..200).map(|_| model.sample(&mut rng, 1_000).as_millis()).sum::<u64>() / 200;
        let big: u64 =
            (0..200).map(|_| model.sample(&mut rng, 100_000).as_millis()).sum::<u64>() / 200;
        assert!(big > small * 2, "big={big} small={small}");
    }

    #[test]
    fn slow_site_is_much_slower() {
        let mut rng = StdRng::seed_from_u64(2);
        let normal = LatencyModel::default();
        let slow = LatencyModel::slow_site();
        let avg = |m: &LatencyModel, rng: &mut StdRng| {
            (0..200).map(|_| m.sample(rng, 30_000).as_millis()).sum::<u64>() / 200
        };
        let n = avg(&normal, &mut rng);
        let s = avg(&slow, &mut rng);
        assert!(s > n * 3, "slow={s} normal={n}");
    }

    #[test]
    fn never_zero() {
        let model = LatencyModel {
            base_ms: 0.0,
            per_kb_ms: 0.0,
            jitter: 0.0,
            slow_probability: 0.0,
            slow_extra_ms: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert!(model.sample(&mut rng, 0).as_millis() >= 1);
    }
}
