//! Tree matching and edit-distance algorithms for the CookiePicker reproduction.
//!
//! This crate implements the tree-comparison machinery of Section 4.1 of
//! *"Automatic Cookie Usage Setting with CookiePicker"* (DSN 2007):
//!
//! * [`stm`](stm::stm) — Yang's **Simple Tree Matching** algorithm, the
//!   classical `O(|T|·|T'|)` top-down dynamic program that computes the number
//!   of pairs in a maximum top-down mapping between two rooted labeled ordered
//!   trees.
//! * [`rstm`] — the paper's **Restricted Simple Tree
//!   Matching** (Figure 2): STM restricted to the upper `maxLevel` levels of
//!   the trees, counting only *non-leaf, visible* nodes. The restriction both
//!   removes leaf-level page-dynamics noise and makes the computation cheap
//!   enough for online use.
//! * [`n_tree_sim`] — the normalized top-down
//!   distance metric of Formula 2, a Jaccard coefficient over matched pairs.
//! * [`selkow_distance`] and
//!   [`bottom_up_matching`] — the
//!   top-down *edit distance* (Selkow) and *bottom-up distance* (Valiente)
//!   baselines the paper discusses and argues against for DOM comparison.
//!
//! All algorithms are generic over the [`TreeView`] trait, so they run
//! directly over a browser DOM, the bundled [`SimpleTree`] test tree, or any
//! other rooted labeled ordered tree.
//!
//! # Example
//!
//! ```
//! use cp_treediff::{SimpleTree, stm, rstm, n_tree_sim};
//!
//! // The worked example of Figure 3 in the paper: STM returns 7 pairs.
//! let a = SimpleTree::parse("a(b(c,b),c(d,e,f,e,d),g(h,i,j))").unwrap();
//! let b = SimpleTree::parse("a(b,c(d,e),g(f,h))").unwrap();
//! assert_eq!(stm(&a, &b), 7);
//!
//! // The restricted variant only counts non-leaf nodes in the upper levels.
//! let pairs = rstm(&a, &b, 5);
//! let sim = n_tree_sim(&a, &b, 5);
//! assert!(pairs > 0 && sim > 0.0 && sim <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod bottom_up;
pub mod constrained;
pub mod detect;
pub mod metrics;
pub mod selkow;
pub mod stm;
pub mod tree;
pub mod zhang_shasha;

pub use alignment::{alignment_distance, alignment_sim};
pub use bottom_up::{bottom_up_matching, bottom_up_sim};
pub use constrained::{constrained_distance, constrained_sim};
pub use detect::{
    countable_nodes_detect, n_tree_sim_detect, rstm_detect, DetectTree, DetectTreeBuilder,
    MatchScratch, SymbolTable,
};
pub use metrics::{countable_nodes, jaccard, n_tree_sim, n_tree_sim_trees, tree_size};
pub use selkow::{selkow_distance, selkow_sim};
pub use stm::{rstm, rstm_with_mapping, stm, stm_with_mapping};
pub use tree::{ParseTreeError, SimpleTree, TreeView};
pub use zhang_shasha::{zhang_shasha_distance, zhang_shasha_sim};
