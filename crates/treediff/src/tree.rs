//! The [`TreeView`] abstraction and an owned [`SimpleTree`] implementation.
//!
//! Every algorithm in this crate is written against [`TreeView`], a read-only
//! view of a rooted, labeled, ordered tree. Browser DOM trees, synthetic test
//! trees, and the [`SimpleTree`] type below all implement it.

use std::fmt;

/// A read-only view of a rooted, labeled, ordered tree.
///
/// The three properties required by the paper's algorithms (§4.1):
///
/// * **rooted** — [`root`](TreeView::root) returns the single root node (or
///   `None` for an empty tree);
/// * **labeled** — every node carries a string label
///   ([`label`](TreeView::label)); for a DOM this is the node name;
/// * **ordered** — [`children`](TreeView::children) returns children in
///   document order, and the left-to-right order is significant.
///
/// [`countable`](TreeView::countable) implements the *visibility* restriction
/// of RSTM (Figure 2, line 5): comment nodes, script nodes and other nodes
/// with no visual effect return `false` and are skipped by the restricted
/// matcher. The default implementation counts every node.
pub trait TreeView {
    /// Node handle. Must be cheap to copy (an arena index, typically).
    type Node: Copy + Eq;

    /// The root node, or `None` if the tree is empty.
    fn root(&self) -> Option<Self::Node>;

    /// The children of `n`, in document order.
    fn children(&self, n: Self::Node) -> Vec<Self::Node>;

    /// The label of `n` (element name for a DOM node).
    fn label(&self, n: Self::Node) -> &str;

    /// Whether `n` participates in restricted matching (visible, non-comment,
    /// non-script). Leaf-ness is checked separately by the algorithms.
    fn countable(&self, n: Self::Node) -> bool {
        let _ = n;
        true
    }
}

/// An owned rooted labeled ordered tree, mainly used in tests, benches and
/// documentation examples.
///
/// Construct one programmatically with [`SimpleTree::new`] /
/// [`SimpleTree::add_child`], or parse the compact notation used throughout
/// this crate's tests with [`SimpleTree::parse`]:
///
/// ```
/// use cp_treediff::{SimpleTree, TreeView};
///
/// let t = SimpleTree::parse("a(b(c,d),e)").unwrap();
/// let root = t.root().unwrap();
/// assert_eq!(t.label(root), "a");
/// assert_eq!(t.children(root).len(), 2);
/// assert_eq!(t.len(), 5);
/// ```
///
/// A label prefixed with `~` is marked *non-countable* (it models a comment
/// or script node for RSTM):
///
/// ```
/// use cp_treediff::{SimpleTree, TreeView};
/// let t = SimpleTree::parse("a(~script(x),b)").unwrap();
/// let kids = t.children(t.root().unwrap());
/// assert!(!t.countable(kids[0]));
/// assert!(t.countable(kids[1]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimpleTree {
    nodes: Vec<SimpleNode>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SimpleNode {
    label: String,
    countable: bool,
    children: Vec<usize>,
}

/// Error returned by [`SimpleTree::parse`] for malformed tree notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTreeError {
    /// Byte offset of the problem in the input.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tree notation at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseTreeError {}

impl SimpleTree {
    /// Creates a tree containing a single root node with the given label.
    pub fn new(root_label: impl Into<String>) -> Self {
        let mut t = SimpleTree { nodes: Vec::new() };
        t.push_node(root_label.into(), true);
        t
    }

    /// Creates an empty tree (no root).
    pub fn empty() -> Self {
        SimpleTree { nodes: Vec::new() }
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a child with `label` under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a valid node id of this tree.
    pub fn add_child(&mut self, parent: usize, label: impl Into<String>) -> usize {
        let id = self.push_node(label.into(), true);
        self.nodes[parent].children.push(id);
        id
    }

    /// Adds a *non-countable* child (models a comment/script node).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a valid node id of this tree.
    pub fn add_uncountable_child(&mut self, parent: usize, label: impl Into<String>) -> usize {
        let id = self.push_node(label.into(), false);
        self.nodes[parent].children.push(id);
        id
    }

    fn push_node(&mut self, label: String, countable: bool) -> usize {
        let id = self.nodes.len();
        self.nodes.push(SimpleNode { label, countable, children: Vec::new() });
        id
    }

    /// Parses the compact notation `label(child,child(...),...)`.
    ///
    /// Labels are runs of characters other than `(`, `)` and `,`; leading
    /// whitespace is trimmed; a leading `~` marks the node non-countable.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTreeError`] on unbalanced parentheses, empty labels, or
    /// trailing garbage.
    pub fn parse(input: &str) -> Result<Self, ParseTreeError> {
        let mut tree = SimpleTree::empty();
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let root = parse_node(&mut tree, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseTreeError {
                position: pos,
                message: "trailing input after root".into(),
            });
        }
        debug_assert_eq!(root, 0);
        Ok(tree)
    }

    /// Serializes back into the compact notation accepted by [`parse`].
    ///
    /// [`parse`]: SimpleTree::parse
    pub fn to_notation(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.root() {
            self.write_notation(root, &mut out);
        }
        out
    }

    fn write_notation(&self, n: usize, out: &mut String) {
        if !self.nodes[n].countable {
            out.push('~');
        }
        out.push_str(&self.nodes[n].label);
        if !self.nodes[n].children.is_empty() {
            out.push('(');
            for (i, &c) in self.nodes[n].children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                self.write_notation(c, out);
            }
            out.push(')');
        }
    }

    /// Preorder traversal of all node ids.
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        if let Some(root) = self.root() {
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                out.push(n);
                for &c in self.nodes[n].children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Maximum depth of the tree (root = depth 1; empty tree = 0).
    pub fn depth(&self) -> usize {
        fn rec(t: &SimpleTree, n: usize) -> usize {
            1 + t.nodes[n].children.iter().map(|&c| rec(t, c)).max().unwrap_or(0)
        }
        self.root().map(|r| rec(self, r)).unwrap_or(0)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_node(
    tree: &mut SimpleTree,
    bytes: &[u8],
    pos: &mut usize,
) -> Result<usize, ParseTreeError> {
    skip_ws(bytes, pos);
    let mut countable = true;
    if *pos < bytes.len() && bytes[*pos] == b'~' {
        countable = false;
        *pos += 1;
    }
    let start = *pos;
    while *pos < bytes.len() && !matches!(bytes[*pos], b'(' | b')' | b',') {
        *pos += 1;
    }
    let label = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseTreeError { position: start, message: "label is not UTF-8".into() })?
        .trim()
        .to_string();
    if label.is_empty() {
        return Err(ParseTreeError { position: start, message: "empty label".into() });
    }
    let id = tree.push_node(label, countable);
    if *pos < bytes.len() && bytes[*pos] == b'(' {
        *pos += 1; // consume '('
        loop {
            let child = parse_node(tree, bytes, pos)?;
            tree.nodes[id].children.push(child);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => {
                    *pos += 1;
                }
                Some(b')') => {
                    *pos += 1;
                    break;
                }
                _ => {
                    return Err(ParseTreeError {
                        position: *pos,
                        message: "expected ',' or ')'".into(),
                    })
                }
            }
        }
    }
    Ok(id)
}

impl TreeView for SimpleTree {
    type Node = usize;

    fn root(&self) -> Option<usize> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn children(&self, n: usize) -> Vec<usize> {
        self.nodes[n].children.clone()
    }

    fn label(&self, n: usize) -> &str {
        &self.nodes[n].label
    }

    fn countable(&self, n: usize) -> bool {
        self.nodes[n].countable
    }
}

impl fmt::Display for SimpleTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_node() {
        let t = SimpleTree::parse("html").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.label(t.root().unwrap()), "html");
    }

    #[test]
    fn parse_nested() {
        let t = SimpleTree::parse("a(b(c,d),e)").unwrap();
        assert_eq!(t.len(), 5);
        let root = t.root().unwrap();
        let kids = t.children(root);
        assert_eq!(kids.len(), 2);
        assert_eq!(t.label(kids[0]), "b");
        assert_eq!(t.label(kids[1]), "e");
        assert_eq!(t.children(kids[0]).len(), 2);
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let t = SimpleTree::parse(" a ( b , c ) ").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.label(0), "a");
    }

    #[test]
    fn parse_uncountable_marker() {
        let t = SimpleTree::parse("a(~comment,b)").unwrap();
        let kids = t.children(0);
        assert!(!t.countable(kids[0]));
        assert!(t.countable(kids[1]));
        assert!(t.countable(0));
    }

    #[test]
    fn parse_rejects_unbalanced() {
        assert!(SimpleTree::parse("a(b").is_err());
        assert!(SimpleTree::parse("a(b))").is_err());
        assert!(SimpleTree::parse("a(,b)").is_err());
        assert!(SimpleTree::parse("").is_err());
    }

    #[test]
    fn notation_round_trip() {
        for s in ["a", "a(b)", "a(b(c,d),e)", "a(~x(y),b)"] {
            let t = SimpleTree::parse(s).unwrap();
            assert_eq!(t.to_notation(), s);
        }
    }

    #[test]
    fn preorder_order() {
        let t = SimpleTree::parse("a(b(c),d)").unwrap();
        let order: Vec<&str> = t.preorder().into_iter().map(|n| t.label(n)).collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
    }

    #[test]
    fn depth_computation() {
        assert_eq!(SimpleTree::parse("a").unwrap().depth(), 1);
        assert_eq!(SimpleTree::parse("a(b(c(d)))").unwrap().depth(), 4);
        assert_eq!(SimpleTree::empty().depth(), 0);
    }

    #[test]
    fn programmatic_construction() {
        let mut t = SimpleTree::new("root");
        let b = t.add_child(0, "b");
        t.add_child(b, "c");
        t.add_uncountable_child(0, "script");
        assert_eq!(t.len(), 4);
        assert_eq!(t.to_notation(), "root(b(c),~script)");
    }
}
