//! Alignment distance between ordered trees (Jiang, Wang & Zhang 1995).
//!
//! The paper's §4.1.1 survey lists four constrained tree-distance families:
//! alignment distance, isolated-subtree distance, top-down distance (the
//! one RSTM belongs to) and bottom-up distance. This module implements the
//! alignment distance: the minimum cost of an *alignment* — overlay the two
//! trees after inserting blank nodes so they become isomorphic, paying one
//! unit per blank pairing and per differing label pair. Alignment distance
//! equals edit distance restricted so that all insertions precede all
//! deletions, hence it always upper-bounds the Zhang–Shasha edit distance.
//!
//! The recurrences follow the original formulation: two forests align by
//! deleting/inserting a boundary tree, pairing the boundary trees' roots,
//! or pairing one boundary root with a blank while its child forest absorbs
//! a span of the opposite forest. Memoization is on forest spans, giving
//! the classical `O(|A|·|B|·(deg A + deg B)²)` behaviour on ordinary trees.

use std::collections::HashMap;
use std::hash::Hash;

use crate::tree::TreeView;

const LAMBDA_COST: usize = 1; // cost of aligning a node with a blank

fn label_cost(a: &str, b: &str) -> usize {
    usize::from(a != b)
}

type ForestMemo<A, B> = HashMap<(Vec<<A as TreeView>::Node>, Vec<<B as TreeView>::Node>), usize>;

struct Ctx<'a, A: TreeView, B: TreeView>
where
    A::Node: Hash,
    B::Node: Hash,
{
    a: &'a A,
    b: &'a B,
    forest_memo: ForestMemo<A, B>,
    del_memo: HashMap<A::Node, usize>,
    ins_memo: HashMap<B::Node, usize>,
}

impl<A: TreeView, B: TreeView> Ctx<'_, A, B>
where
    A::Node: Hash,
    B::Node: Hash,
{
    fn delete_cost(&mut self, n: A::Node) -> usize {
        if let Some(&c) = self.del_memo.get(&n) {
            return c;
        }
        let c = LAMBDA_COST
            + self.a.children(n).into_iter().map(|k| self.delete_cost(k)).sum::<usize>();
        self.del_memo.insert(n, c);
        c
    }

    fn insert_cost(&mut self, n: B::Node) -> usize {
        if let Some(&c) = self.ins_memo.get(&n) {
            return c;
        }
        let c = LAMBDA_COST
            + self.b.children(n).into_iter().map(|k| self.insert_cost(k)).sum::<usize>();
        self.ins_memo.insert(n, c);
        c
    }

    fn align_forests(&mut self, fa: &[A::Node], fb: &[B::Node]) -> usize {
        if fa.is_empty() {
            return fb.iter().map(|&t| self.insert_cost(t)).sum();
        }
        if fb.is_empty() {
            return fa.iter().map(|&t| self.delete_cost(t)).sum();
        }
        let key = (fa.to_vec(), fb.to_vec());
        if let Some(&c) = self.forest_memo.get(&key) {
            return c;
        }

        let la = *fa.last().expect("nonempty");
        let lb = *fb.last().expect("nonempty");
        let ra = &fa[..fa.len() - 1];
        let rb = &fb[..fb.len() - 1];
        let ca = self.a.children(la);
        let cb = self.b.children(lb);

        // Delete / insert the boundary tree.
        let mut best = self.align_forests(ra, fb) + self.delete_cost(la);
        best = best.min(self.align_forests(fa, rb) + self.insert_cost(lb));

        // Pair the two boundary roots.
        let paired = self.align_forests(ra, rb)
            + label_cost(self.a.label(la), self.b.label(lb))
            + self.align_forests(&ca, &cb);
        best = best.min(paired);

        // la's root pairs with a blank: its child forest absorbs a suffix
        // span of fb.
        for k in 0..=fb.len() {
            let cost =
                self.align_forests(ra, &fb[..k]) + LAMBDA_COST + self.align_forests(&ca, &fb[k..]);
            best = best.min(cost);
        }
        // Symmetric: lb's root pairs with a blank.
        for k in 0..=fa.len() {
            let cost =
                self.align_forests(&fa[..k], rb) + LAMBDA_COST + self.align_forests(&fa[k..], &cb);
            best = best.min(cost);
        }

        self.forest_memo.insert(key, best);
        best
    }
}

/// Computes the alignment distance between `a` and `b` with unit costs.
///
/// An empty tree is at distance `|other|`.
///
/// ```
/// use cp_treediff::{SimpleTree, alignment_distance, zhang_shasha_distance};
/// let a = SimpleTree::parse("a(b(c,d),e)").unwrap();
/// let b = SimpleTree::parse("a(b(c),e)").unwrap();
/// assert_eq!(alignment_distance(&a, &b), 1);
/// // Alignment distance always upper-bounds the general edit distance:
/// let x = SimpleTree::parse("a(x(b,c))").unwrap();
/// let y = SimpleTree::parse("a(b,c)").unwrap();
/// assert!(alignment_distance(&x, &y) >= zhang_shasha_distance(&x, &y));
/// ```
pub fn alignment_distance<A, B>(a: &A, b: &B) -> usize
where
    A: TreeView,
    B: TreeView,
    A::Node: Hash,
    B::Node: Hash,
{
    let mut ctx = Ctx {
        a,
        b,
        forest_memo: HashMap::new(),
        del_memo: HashMap::new(),
        ins_memo: HashMap::new(),
    };
    match (a.root(), b.root()) {
        (None, None) => 0,
        (Some(r), None) => ctx.delete_cost(r),
        (None, Some(r)) => ctx.insert_cost(r),
        (Some(ra), Some(rb)) => ctx.align_forests(&[ra], &[rb]),
    }
}

/// Normalized alignment similarity: `1 − dist / (|A| + |B|)`, in `[0, 1]`.
pub fn alignment_sim<A, B>(a: &A, b: &B) -> f64
where
    A: TreeView,
    B: TreeView,
    A::Node: Hash,
    B::Node: Hash,
{
    let total = crate::metrics::tree_size(a) + crate::metrics::tree_size(b);
    if total == 0 {
        return 1.0;
    }
    (1.0 - alignment_distance(a, b) as f64 / total as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selkow::selkow_distance;
    use crate::tree::SimpleTree;
    use crate::zhang_shasha::zhang_shasha_distance;

    fn t(s: &str) -> SimpleTree {
        SimpleTree::parse(s).unwrap()
    }

    #[test]
    fn identity_and_relabel() {
        let a = t("a(b,c)");
        assert_eq!(alignment_distance(&a, &a), 0);
        assert_eq!(alignment_distance(&t("a"), &t("b")), 1);
    }

    #[test]
    fn leaf_insertion() {
        assert_eq!(alignment_distance(&t("a(b)"), &t("a(b,c)")), 1);
    }

    #[test]
    fn internal_node_insertion() {
        // Wrapping children in a new node costs 1 in alignment too.
        assert_eq!(alignment_distance(&t("a(b,c)"), &t("a(x(b,c))")), 1);
        assert_eq!(alignment_distance(&t("a(x(b,c))"), &t("a(b,c)")), 1);
    }

    #[test]
    fn against_empty() {
        let e = SimpleTree::empty();
        assert_eq!(alignment_distance(&e, &t("a(b,c)")), 3);
        assert_eq!(alignment_distance(&t("a(b,c)"), &e), 3);
        assert_eq!(alignment_distance(&e, &e), 0);
    }

    #[test]
    fn symmetric() {
        let a = t("a(b(c),d,e(f))");
        let b = t("a(d,b(c,f))");
        assert_eq!(alignment_distance(&a, &b), alignment_distance(&b, &a));
    }

    #[test]
    fn jwz_classic_separation_example() {
        // Jiang–Wang–Zhang's example where alignment (4) exceeds edit
        // distance (2): pushing b,c down under different new parents.
        let a = t("r(x(a,b),x(c,d))");
        let b = t("r(x(a),x(b,c),x(d))");
        let zs = zhang_shasha_distance(&a, &b);
        let al = alignment_distance(&a, &b);
        assert!(al >= zs, "alignment {al} must be >= edit {zs}");
    }

    #[test]
    fn relaxation_order_holds() {
        // edit <= alignment <= selkow for DOM-ish cases.
        let cases = [
            ("html(body(div(p),div(q)))", "html(body(div(p,q)))"),
            ("a(b(c,d),e)", "a(b(c),e(f))"),
            ("a(x(b,c))", "a(b,c)"),
            ("r(a,b,c)", "r(c,b,a)"),
        ];
        for (x, y) in cases {
            let (tx, ty) = (t(x), t(y));
            let zs = zhang_shasha_distance(&tx, &ty);
            let al = alignment_distance(&tx, &ty);
            let sk = selkow_distance(&tx, &ty);
            assert!(zs <= al && al <= sk, "{x} vs {y}: zs={zs} al={al} sk={sk}");
        }
    }

    #[test]
    fn sim_bounds() {
        let a = t("a(b(c),d)");
        assert_eq!(alignment_sim(&a, &a), 1.0);
        let s = alignment_sim(&a, &t("z(q)"));
        assert!((0.0..=1.0).contains(&s));
    }
}
