//! Normalized similarity metrics (Formula 1 and Formula 2 of the paper).

use crate::stm::rstm;
use crate::tree::TreeView;

/// The Jaccard similarity coefficient `|A ∩ B| / |A ∪ B|` (Formula 1),
/// expressed over pre-computed sizes: `intersection / (size_a + size_b -
/// intersection)`.
///
/// Returns `1.0` when both sets are empty (two empty sets are identical) and
/// clamps to `[0, 1]` against floating-point drift.
///
/// ```
/// use cp_treediff::jaccard;
/// assert_eq!(jaccard(2, 3, 3), 0.5);    // |A∩B|=2, |A|=3, |B|=3 → 2/4
/// assert_eq!(jaccard(0, 0, 0), 1.0);    // both empty
/// assert_eq!(jaccard(0, 5, 5), 0.0);
/// ```
pub fn jaccard(intersection: usize, size_a: usize, size_b: usize) -> f64 {
    debug_assert!(
        intersection <= size_a && intersection <= size_b,
        "intersection larger than a set"
    );
    let union = size_a + size_b - intersection;
    if union == 0 {
        return 1.0;
    }
    (intersection as f64 / union as f64).clamp(0.0, 1.0)
}

/// `N(A, l)`: the number of nodes of `tree` that RSTM can count at level
/// bound `l` — non-leaf, countable nodes in the upper `l` levels, reachable
/// without passing through a leaf/non-countable node.
///
/// Equal to `RSTM(A, A, l)` but computed in a single `O(n)` preorder walk, as
/// the paper notes under Formula 2.
///
/// ```
/// use cp_treediff::{SimpleTree, countable_nodes};
/// let a = SimpleTree::parse("a(b(c),~script(x),d)").unwrap();
/// // a counts; b counts (non-leaf, level 2); c,d are leaves; script is not visible.
/// assert_eq!(countable_nodes(&a, 5), 2);
/// ```
pub fn countable_nodes<T: TreeView>(tree: &T, max_level: usize) -> usize {
    fn rec<T: TreeView>(tree: &T, n: T::Node, level: usize, max_level: usize) -> usize {
        let current = level + 1;
        if current > max_level || !tree.countable(n) {
            return 0;
        }
        let kids = tree.children(n);
        if kids.is_empty() {
            return 0;
        }
        1 + kids.into_iter().map(|c| rec(tree, c, current, max_level)).sum::<usize>()
    }
    match tree.root() {
        Some(r) => rec(tree, r, 0, max_level),
        None => 0,
    }
}

/// Total number of nodes in the tree (used by the unrestricted baselines).
pub fn tree_size<T: TreeView>(tree: &T) -> usize {
    fn rec<T: TreeView>(tree: &T, n: T::Node) -> usize {
        1 + tree.children(n).into_iter().map(|c| rec(tree, c)).sum::<usize>()
    }
    match tree.root() {
        Some(r) => rec(tree, r),
        None => 0,
    }
}

/// `NTreeSim(A, B, l)` — the normalized DOM-tree similarity metric of
/// Formula 2:
///
/// ```text
/// NTreeSim(A,B,l) = RSTM(A,B,l) / (N(A,l) + N(B,l) − RSTM(A,B,l))
/// ```
///
/// Result is in `[0, 1]`; `1.0` means the upper `l` levels of visible
/// structure are indistinguishable. Two trees with *no* countable structure
/// (e.g. both empty) are defined as fully similar (`1.0`).
///
/// ```
/// use cp_treediff::{SimpleTree, n_tree_sim};
/// let a = SimpleTree::parse("html(body(div(p(x)),div(q(y))))").unwrap();
/// assert_eq!(n_tree_sim(&a, &a, 5), 1.0);
/// let b = SimpleTree::parse("html(body(div(p(x))))").unwrap();
/// let sim = n_tree_sim(&a, &b, 5);
/// assert!(sim < 1.0 && sim > 0.0);
/// ```
pub fn n_tree_sim<A: TreeView, B: TreeView>(a: &A, b: &B, max_level: usize) -> f64 {
    let matched = rstm(a, b, max_level);
    let na = countable_nodes(a, max_level);
    let nb = countable_nodes(b, max_level);
    jaccard(matched, na, nb)
}

/// Convenience alias of [`n_tree_sim`] for two trees of the same type,
/// matching the paper's `NTreeSim(A, B, l)` call signature in Figure 5.
pub fn n_tree_sim_trees<T: TreeView>(a: &T, b: &T, max_level: usize) -> f64 {
    n_tree_sim(a, b, max_level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SimpleTree;

    fn t(s: &str) -> SimpleTree {
        SimpleTree::parse(s).unwrap()
    }

    #[test]
    fn jaccard_basic() {
        assert!((jaccard(1, 2, 2) - (1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(jaccard(3, 3, 3), 1.0);
    }

    #[test]
    fn countable_matches_rstm_self() {
        for s in [
            "a(b(c),d(e),f)",
            "html(head(title(x)),body(div(p(y),p(z)),~script(w)))",
            "a",
            "a(b,c,d)",
            "a(~x(b(c)),d(e))",
        ] {
            let tree = t(s);
            for l in 1..8 {
                assert_eq!(
                    countable_nodes(&tree, l),
                    rstm(&tree, &tree, l),
                    "N(A,l) must equal RSTM(A,A,l) for {s} at l={l}"
                );
            }
        }
    }

    #[test]
    fn tree_size_counts_everything() {
        assert_eq!(tree_size(&t("a(b(c),~x,d)")), 5);
        assert_eq!(tree_size(&SimpleTree::empty()), 0);
    }

    #[test]
    fn self_similarity_is_one() {
        let a = t("html(body(div(p(x)),div(p(y))))");
        assert_eq!(n_tree_sim(&a, &a, 5), 1.0);
    }

    #[test]
    fn all_leaf_trees_are_trivially_similar() {
        // A root with only leaves has no countable node beyond... none at all:
        // the root is non-leaf so it counts. Two such trees with same label:
        let a = t("a(x,y)");
        let b = t("a(p,q)");
        assert_eq!(n_tree_sim(&a, &b, 5), 1.0); // identical upper structure
    }

    #[test]
    fn disjoint_structure_is_zero() {
        let a = t("a(b(x))");
        let b = t("z(b(x))");
        assert_eq!(n_tree_sim(&a, &b, 5), 0.0);
    }

    #[test]
    fn empty_vs_empty_is_one() {
        let e = SimpleTree::empty();
        assert_eq!(n_tree_sim(&e, &e, 5), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero_when_structure_exists() {
        let e = SimpleTree::empty();
        let a = t("a(b(c))");
        assert_eq!(n_tree_sim(&e, &a, 5), 0.0);
    }

    #[test]
    fn sim_monotone_with_removed_panels() {
        // Removing more top-level panels lowers similarity monotonically.
        let full = t("html(body(d1(p(x)),d2(p(y)),d3(p(z)),d4(p(w))))");
        let m1 = t("html(body(d1(p(x)),d2(p(y)),d3(p(z))))");
        let m2 = t("html(body(d1(p(x)),d2(p(y))))");
        let s0 = n_tree_sim(&full, &full, 5);
        let s1 = n_tree_sim(&full, &m1, 5);
        let s2 = n_tree_sim(&full, &m2, 5);
        assert!(s0 > s1 && s1 > s2, "{s0} {s1} {s2}");
    }
}
