//! Simple Tree Matching (Yang 1991) and the paper's Restricted STM (Figure 2).
//!
//! Both algorithms compute the number of pairs in a **maximum top-down
//! mapping** between two rooted labeled ordered trees: a mapping in which a
//! pair of non-root nodes may match only if their parents match (Definition 3
//! in the paper). STM considers every node; RSTM additionally
//!
//! 1. stops at a maximum depth (`maxLevel`), because cookie-caused changes
//!    surface at the *upper* levels of the DOM while page-dynamics noise
//!    (rotating ads, tickers) lives near the leaves, and
//! 2. refuses to count leaf nodes and non-visible nodes (comments, scripts),
//!    which carry no perceivable structure.

use crate::tree::TreeView;

/// Computes the number of pairs in a maximum top-down mapping between `a`
/// and `b` — Yang's Simple Tree Matching algorithm.
///
/// Runs in `O(|A| · |B|)` time. Returns `0` if either tree is empty or the
/// root labels differ.
///
/// ```
/// use cp_treediff::{SimpleTree, stm};
/// let a = SimpleTree::parse("a(b(c,b),c(d,e,f,e,d),g(h,i,j))").unwrap();
/// let b = SimpleTree::parse("a(b,c(d,e),g(f,h))").unwrap();
/// assert_eq!(stm(&a, &b), 7); // the worked example of Figure 3
/// ```
pub fn stm<A: TreeView, B: TreeView>(a: &A, b: &B) -> usize {
    match (a.root(), b.root()) {
        (Some(ra), Some(rb)) => stm_rec(a, b, ra, rb, &mut Vec::new()),
        _ => 0,
    }
}

fn stm_rec<A: TreeView, B: TreeView>(
    a: &A,
    b: &B,
    na: A::Node,
    nb: B::Node,
    ws: &mut Vec<usize>,
) -> usize {
    if a.label(na) != b.label(nb) {
        return 0;
    }
    let ca = a.children(na);
    let cb = b.children(nb);
    forest_match(ca.len(), cb.len(), ws, |i, j, ws| stm_rec(a, b, ca[i], cb[j], ws)) + 1
}

/// The inner dynamic program shared by STM and RSTM: a weighted
/// longest-common-subsequence over the two child forests, where the weight of
/// pairing child `i` with child `j` is `w(i, j, ws)`.
///
/// The DP rows are carved out of the tail of the shared workspace `ws` with
/// stack discipline — the weight callback may grow `ws` past what this call
/// reserved (for its own nested forests) as long as it truncates back, so one
/// buffer serves the whole recursion and nothing is allocated per node pair
/// once the workspace is warm.
fn forest_match(
    m: usize,
    n: usize,
    ws: &mut Vec<usize>,
    mut w: impl FnMut(usize, usize, &mut Vec<usize>) -> usize,
) -> usize {
    if m == 0 || n == 0 {
        return 0;
    }
    // M[i][j] = best matching between the first i subtrees of A and the
    // first j subtrees of B. Rolling two-row representation, addressed by
    // offsets into the workspace rather than separate vectors.
    let base = ws.len();
    ws.resize(base + 2 * (n + 1), 0);
    let (mut prev, mut cur) = (base, base + n + 1);
    for i in 1..=m {
        for j in 1..=n {
            let pair = ws[prev + j - 1] + w(i - 1, j - 1, ws);
            ws[cur + j] = ws[cur + j - 1].max(ws[prev + j]).max(pair);
        }
        std::mem::swap(&mut prev, &mut cur);
        ws[cur] = 0;
    }
    let result = ws[prev + n];
    ws.truncate(base);
    result
}

/// The **Restricted Simple Tree Matching** algorithm of Figure 2.
///
/// Like [`stm`], but a matched pair is only *counted* when both nodes are
/// non-leaf, [countable](TreeView::countable) (visible), and within the upper
/// `max_level` levels of their trees (the root is level 1). Subtrees rooted
/// at nodes that fail those conditions are not explored at all, which both
/// suppresses leaf-level noise and bounds the cost.
///
/// With `max_level = usize::MAX` and all nodes countable non-leaves, RSTM
/// equals STM.
///
/// ```
/// use cp_treediff::{SimpleTree, rstm};
/// let a = SimpleTree::parse("a(b(c),d(e))").unwrap();
/// let b = SimpleTree::parse("a(b(c),d(e))").unwrap();
/// // With level 1, only the roots can count — and they do (non-leaf, visible).
/// assert_eq!(rstm(&a, &b, 1), 1);
/// // With level 2, b and d count too (c and e are leaves and never count).
/// assert_eq!(rstm(&a, &b, 2), 3);
/// ```
pub fn rstm<A: TreeView, B: TreeView>(a: &A, b: &B, max_level: usize) -> usize {
    match (a.root(), b.root()) {
        (Some(ra), Some(rb)) => rstm_rec(a, b, ra, rb, 0, max_level, &mut Vec::new()),
        _ => 0,
    }
}

fn rstm_rec<A: TreeView, B: TreeView>(
    a: &A,
    b: &B,
    na: A::Node,
    nb: B::Node,
    level: usize,
    max_level: usize,
    ws: &mut Vec<usize>,
) -> usize {
    // Figure 2 lines 1-3: roots with different symbols do not match at all.
    if a.label(na) != b.label(nb) {
        return 0;
    }
    // Figure 2 lines 4-8: the pair only counts if both nodes are internal,
    // visible and within the level bound; otherwise the subtree contributes 0.
    let current_level = level + 1;
    let ca = a.children(na);
    let cb = b.children(nb);
    if ca.is_empty()
        || cb.is_empty()
        || !a.countable(na)
        || !b.countable(nb)
        || current_level > max_level
    {
        return 0;
    }
    forest_match(ca.len(), cb.len(), ws, |i, j, ws| {
        rstm_rec(a, b, ca[i], cb[j], current_level, max_level, ws)
    }) + 1
}

/// Like [`stm`], but also returns the matched node pairs of one maximum
/// top-down mapping (recovered by backtracking the dynamic program).
///
/// The pairs are reported in preorder of tree `a`. Useful for debugging and
/// for verifying worked examples:
///
/// ```
/// use cp_treediff::{SimpleTree, stm_with_mapping, TreeView};
/// let a = SimpleTree::parse("a(b,c)").unwrap();
/// let b = SimpleTree::parse("a(c)").unwrap();
/// let (count, pairs) = stm_with_mapping(&a, &b);
/// assert_eq!(count, 2);
/// assert_eq!(pairs.len(), 2);
/// assert_eq!(a.label(pairs[1].0), "c");
/// ```
pub fn stm_with_mapping<A: TreeView, B: TreeView>(a: &A, b: &B) -> (usize, NodePairs<A, B>) {
    let mut pairs = Vec::new();
    let count = match (a.root(), b.root()) {
        (Some(ra), Some(rb)) => mapping_rec(a, b, ra, rb, usize::MAX, 0, false, &mut pairs),
        _ => 0,
    };
    (count, pairs)
}

/// Like [`rstm`], but also returns the matched (counted) node pairs.
pub fn rstm_with_mapping<A: TreeView, B: TreeView>(
    a: &A,
    b: &B,
    max_level: usize,
) -> (usize, NodePairs<A, B>) {
    let mut pairs = Vec::new();
    let count = match (a.root(), b.root()) {
        (Some(ra), Some(rb)) => mapping_rec(a, b, ra, rb, max_level, 0, true, &mut pairs),
        _ => 0,
    };
    (count, pairs)
}

/// The matched node pairs returned by the `*_with_mapping` variants.
pub type NodePairs<A, B> = Vec<(<A as TreeView>::Node, <B as TreeView>::Node)>;

#[allow(clippy::too_many_arguments)] // internal recursion carries the full traversal state
fn mapping_rec<A: TreeView, B: TreeView>(
    a: &A,
    b: &B,
    na: A::Node,
    nb: B::Node,
    max_level: usize,
    level: usize,
    restricted: bool,
    pairs: &mut NodePairs<A, B>,
) -> usize {
    if a.label(na) != b.label(nb) {
        return 0;
    }
    let current_level = level + 1;
    let ca = a.children(na);
    let cb = b.children(nb);
    if restricted
        && (ca.is_empty()
            || cb.is_empty()
            || !a.countable(na)
            || !b.countable(nb)
            || current_level > max_level)
    {
        return 0;
    }
    pairs.push((na, nb));
    let m = ca.len();
    let n = cb.len();
    if m == 0 || n == 0 {
        return 1;
    }
    // Full DP table (needed for backtracking). Weights computed into a side
    // table so each child pair recurses exactly once.
    let mut weight = vec![vec![0usize; n]; m];
    let mut scratch: Vec<(A::Node, B::Node)> = Vec::new();
    let mut sub_pairs: Vec<Vec<NodePairs<A, B>>> = vec![vec![Vec::new(); n]; m];
    for i in 0..m {
        for j in 0..n {
            scratch.clear();
            weight[i][j] =
                mapping_rec(a, b, ca[i], cb[j], max_level, current_level, restricted, &mut scratch);
            sub_pairs[i][j] = scratch.clone();
        }
    }
    let mut table = vec![vec![0usize; n + 1]; m + 1];
    for i in 1..=m {
        for j in 1..=n {
            table[i][j] = table[i][j - 1]
                .max(table[i - 1][j])
                .max(table[i - 1][j - 1] + weight[i - 1][j - 1]);
        }
    }
    // Backtrack.
    let (mut i, mut j) = (m, n);
    let mut chosen: Vec<(usize, usize)> = Vec::new();
    while i > 0 && j > 0 {
        if table[i][j] == table[i - 1][j - 1] + weight[i - 1][j - 1] && weight[i - 1][j - 1] > 0 {
            chosen.push((i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if table[i][j] == table[i - 1][j] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    chosen.reverse();
    for (ci, cj) in chosen {
        pairs.extend(sub_pairs[ci][cj].iter().copied());
    }
    table[m][n] + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SimpleTree;

    fn t(s: &str) -> SimpleTree {
        SimpleTree::parse(s).unwrap()
    }

    #[test]
    fn figure3_example_returns_seven() {
        // Tree A (14 nodes) and tree B (8 nodes) from Figure 3 of the paper.
        let a = t("a(b(c,b),c(d,e,f,e,d),g(h,i,j))");
        let b = t("a(b,c(d,e),g(f,h))");
        assert_eq!(stm(&a, &b), 7);
        assert_eq!(stm(&b, &a), 7);
    }

    #[test]
    fn figure3_mapping_pairs() {
        let a = t("a(b(c,b),c(d,e,f,e,d),g(h,i,j))");
        let b = t("a(b,c(d,e),g(f,h))");
        let (count, pairs) = stm_with_mapping(&a, &b);
        assert_eq!(count, 7);
        assert_eq!(pairs.len(), 7);
        // Every pair must have equal labels.
        for (na, nb) in &pairs {
            assert_eq!(a.label(*na), b.label(*nb));
        }
        // The multiset of matched labels from the worked example.
        let mut labels: Vec<&str> = pairs.iter().map(|(na, _)| a.label(*na)).collect();
        labels.sort_unstable();
        assert_eq!(labels, ["a", "b", "c", "d", "e", "g", "h"]);
    }

    #[test]
    fn different_roots_do_not_match() {
        assert_eq!(stm(&t("a(b,c)"), &t("x(b,c)")), 0);
        assert_eq!(rstm(&t("a(b,c)"), &t("x(b,c)"), 5), 0);
    }

    #[test]
    fn identical_trees_match_fully() {
        let a = t("a(b(c,d),e(f),g)");
        assert_eq!(stm(&a, &a), 7);
    }

    #[test]
    fn empty_trees() {
        let e = SimpleTree::empty();
        let a = t("a");
        assert_eq!(stm(&e, &a), 0);
        assert_eq!(stm(&a, &e), 0);
        assert_eq!(stm(&e, &e), 0);
        assert_eq!(rstm(&e, &e, 3), 0);
    }

    #[test]
    fn order_is_significant() {
        // a(b,c) vs a(c,b): besides the root, only one child can match while
        // preserving sibling order.
        assert_eq!(stm(&t("a(b,c)"), &t("a(c,b)")), 2);
        assert_eq!(stm(&t("a(b,c)"), &t("a(b,c)")), 3);
    }

    #[test]
    fn rstm_level_restriction() {
        let a = t("a(b(c(d(e))))");
        // Chain tree: each internal node is non-leaf. Level 1 counts only the
        // root, level 3 counts a,b,c; e is a leaf and d's pair at level 4 is
        // cut off when max_level = 3.
        assert_eq!(rstm(&a, &a, 1), 1);
        assert_eq!(rstm(&a, &a, 2), 2);
        assert_eq!(rstm(&a, &a, 3), 3);
        assert_eq!(rstm(&a, &a, 4), 4); // d is non-leaf (child e), level 4
        assert_eq!(rstm(&a, &a, 5), 4); // e is a leaf: never counted
        assert_eq!(rstm(&a, &a, 50), 4);
    }

    #[test]
    fn rstm_ignores_leaves() {
        let a = t("a(b,c)");
        // b and c are leaves; only the root counts.
        assert_eq!(rstm(&a, &a, 5), 1);
    }

    #[test]
    fn rstm_ignores_uncountable_nodes() {
        let a = t("a(~script(x,y),b(c))");
        let b = t("a(~script(p,q),b(c))");
        // script is non-visible: its subtree contributes nothing, so the
        // change inside it is invisible to RSTM.
        assert_eq!(rstm(&a, &b, 5), 2); // a + b
                                        // But full STM sees script itself matching (labels equal).
        assert!(stm(&a, &b) >= 3);
    }

    #[test]
    fn rstm_prunes_below_uncountable() {
        // A countable node nested inside an uncountable one must not count:
        // the recursion stops at the uncountable node.
        let a = t("a(~div(span(x)),b(c))");
        assert_eq!(rstm(&a, &a, 10), 2); // a + b only
    }

    #[test]
    fn rstm_equals_stm_when_unrestricted_on_internal_trees() {
        // For trees whose matched pairs are all internal+countable, RSTM with
        // a huge level differs from STM only by the leaf pairs.
        let a = t("a(b(x),c(y))");
        let b = t("a(b(x),c(z))");
        // STM: a,b,x,c = 4. RSTM: a,b,c = 3 (x,y leaves).
        assert_eq!(stm(&a, &b), 4);
        assert_eq!(rstm(&a, &b, usize::MAX), 3);
    }

    #[test]
    fn noise_at_leaf_level_invisible_to_rstm() {
        // Rotating-ad style noise: deep leaf content differs, structure same.
        let a = t("html(body(div(p(ad1),p(ad2)),div(x)))");
        let b = t("html(body(div(p(ad9),p(ad7)),div(x)))");
        let same = rstm(&a, &a, 4);
        assert_eq!(rstm(&a, &b, 4), same);
    }

    #[test]
    fn structural_change_visible_to_rstm() {
        // A cookie-caused change: a whole top-level panel disappears.
        let a = t("html(body(div(nav(x)),div(main(y)),div(panel(z))))");
        let b = t("html(body(div(nav(x)),div(main(y))))");
        assert!(rstm(&a, &b, 5) < rstm(&a, &a, 5));
    }

    #[test]
    fn stm_bounded_by_min_size() {
        let a = t("a(b(c,d),e)");
        let b = t("a(b(c,d),e(f,g),h)");
        let pairs = stm(&a, &b);
        let bound = crate::tree_size(&a).min(crate::tree_size(&b));
        assert!(pairs <= bound);
    }

    #[test]
    fn rstm_mapping_matches_count() {
        let a = t("html(body(div(p(x),q),div(r(s))))");
        let b = t("html(body(div(p(x)),div(r(s)),footer))");
        let (count, pairs) = rstm_with_mapping(&a, &b, 4);
        assert_eq!(count, rstm(&a, &b, 4));
        assert_eq!(count, pairs.len());
    }

    #[test]
    fn forest_match_is_order_preserving_lcs() {
        // Weighted LCS sanity: crossing pairs cannot both be chosen.
        let a = t("r(a,b)");
        let b = t("r(b,a)");
        // A maximum mapping keeps only one of a/b plus the root.
        assert_eq!(stm(&a, &b), 2);
    }

    #[test]
    fn repeated_labels_prefer_best_alignment() {
        let a = t("r(x(1,2,3),x)");
        let b = t("r(x(1,2,3))");
        // The DP must align b's x with a's *first* x to pick up the children.
        assert_eq!(stm(&a, &b), 5);
    }
}
