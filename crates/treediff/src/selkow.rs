//! Selkow's top-down tree-to-tree editing distance (1977).
//!
//! The paper cites Selkow as the origin of the *top-down distance* family
//! that RSTM belongs to (§4.1.2). We include the classical algorithm as a
//! baseline: it computes the minimum-cost edit script under the top-down
//! constraint, where inserting or deleting a node drags its whole subtree
//! along (cost = subtree size) and relabeling a node costs 1.

use crate::metrics::tree_size;
use crate::tree::TreeView;

/// Computes Selkow's top-down edit distance between `a` and `b`.
///
/// Costs: inserting/deleting a subtree costs its node count; changing one
/// node's label into another costs 1; matching identical labels costs 0.
/// Editing may only happen top-down: a node can be touched only if its parent
/// was matched (possibly with a relabel).
///
/// An empty tree is at distance `|other|` from any other tree.
///
/// ```
/// use cp_treediff::{SimpleTree, selkow_distance};
/// let a = SimpleTree::parse("a(b,c)").unwrap();
/// let b = SimpleTree::parse("a(b,c)").unwrap();
/// assert_eq!(selkow_distance(&a, &b), 0);
/// let c = SimpleTree::parse("a(b)").unwrap();
/// assert_eq!(selkow_distance(&a, &c), 1); // delete leaf c
/// ```
pub fn selkow_distance<A: TreeView, B: TreeView>(a: &A, b: &B) -> usize {
    match (a.root(), b.root()) {
        (None, None) => 0,
        (Some(ra), None) => subtree_size(a, ra),
        (None, Some(rb)) => subtree_size(b, rb),
        (Some(ra), Some(rb)) => dist_rec(a, b, ra, rb),
    }
}

fn subtree_size<T: TreeView>(t: &T, n: T::Node) -> usize {
    1 + t.children(n).into_iter().map(|c| subtree_size(t, c)).sum::<usize>()
}

fn dist_rec<A: TreeView, B: TreeView>(a: &A, b: &B, na: A::Node, nb: B::Node) -> usize {
    let relabel = usize::from(a.label(na) != b.label(nb));
    let ca = a.children(na);
    let cb = b.children(nb);
    let m = ca.len();
    let n = cb.len();
    // Sequence edit distance over the child forests where substitution cost
    // is the recursive distance, and ins/del cost is the subtree size.
    let mut table = vec![vec![0usize; n + 1]; m + 1];
    for i in 1..=m {
        table[i][0] = table[i - 1][0] + subtree_size(a, ca[i - 1]);
    }
    for j in 1..=n {
        table[0][j] = table[0][j - 1] + subtree_size(b, cb[j - 1]);
    }
    for i in 1..=m {
        for j in 1..=n {
            let del = table[i - 1][j] + subtree_size(a, ca[i - 1]);
            let ins = table[i][j - 1] + subtree_size(b, cb[j - 1]);
            let sub = table[i - 1][j - 1] + dist_rec(a, b, ca[i - 1], cb[j - 1]);
            table[i][j] = del.min(ins).min(sub);
        }
    }
    relabel + table[m][n]
}

/// A normalized similarity derived from [`selkow_distance`]:
/// `1 − dist / (|A| + |B|)`, in `[0, 1]`, `1.0` for two empty trees.
pub fn selkow_sim<A: TreeView, B: TreeView>(a: &A, b: &B) -> f64 {
    let total = tree_size(a) + tree_size(b);
    if total == 0 {
        return 1.0;
    }
    let d = selkow_distance(a, b) as f64;
    (1.0 - d / total as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SimpleTree;

    fn t(s: &str) -> SimpleTree {
        SimpleTree::parse(s).unwrap()
    }

    #[test]
    fn identical_distance_zero() {
        let a = t("a(b(c,d),e)");
        assert_eq!(selkow_distance(&a, &a), 0);
    }

    #[test]
    fn relabel_root() {
        assert_eq!(selkow_distance(&t("a"), &t("b")), 1);
    }

    #[test]
    fn insert_subtree_costs_size() {
        let a = t("a");
        let b = t("a(b(c,d))");
        assert_eq!(selkow_distance(&a, &b), 3);
    }

    #[test]
    fn symmetric() {
        let a = t("a(b(c),d)");
        let b = t("a(d,b(c,e))");
        assert_eq!(selkow_distance(&a, &b), selkow_distance(&b, &a));
    }

    #[test]
    fn against_empty() {
        let e = SimpleTree::empty();
        let a = t("a(b,c)");
        assert_eq!(selkow_distance(&e, &a), 3);
        assert_eq!(selkow_distance(&a, &e), 3);
        assert_eq!(selkow_distance(&e, &e), 0);
    }

    #[test]
    fn triangle_inequality_samples() {
        let xs = [t("a(b,c)"), t("a(b(x),c)"), t("a(c)"), t("z(q(r))")];
        for i in &xs {
            for j in &xs {
                for k in &xs {
                    let dij = selkow_distance(i, j);
                    let djk = selkow_distance(j, k);
                    let dik = selkow_distance(i, k);
                    assert!(dik <= dij + djk);
                }
            }
        }
    }

    #[test]
    fn sim_bounds() {
        let a = t("a(b(c),d)");
        let b = t("x(y)");
        let s = selkow_sim(&a, &b);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(selkow_sim(&a, &a), 1.0);
    }
}
