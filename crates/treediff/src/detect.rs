//! The compiled detection tree: a flattened preorder arena with interned
//! labels, built once per page and matched without touching the source DOM.
//!
//! [`rstm`](crate::stm::rstm) over a generic [`TreeView`] pays three costs
//! per visited node pair: a string comparison of the labels, a fresh `Vec`
//! from [`TreeView::children`], and two DP-row allocations inside the
//! forest matcher. None of those are inherent to the algorithm. A
//! [`DetectTree`] removes all three:
//!
//! * **labels** are interned into `u32` symbols by a per-tree
//!   [`SymbolTable`]; a per-comparison remap table translates one tree's
//!   symbols into the other's space, so label equality is one integer
//!   compare regardless of which pages the trees came from;
//! * **topology** is flattened into preorder arrays (`countable` flags and
//!   child index ranges), so the matcher walks plain slices instead of
//!   chasing node handles through a `Document`;
//! * **the DP workspace** is a single reusable [`MatchScratch`] threaded
//!   through the recursion with stack discipline — zero allocations per
//!   matched node pair once the scratch is warm.
//!
//! [`rstm_detect`] is the exact algorithm of Figure 2 — same recursion,
//! same weighted-LCS DP — so its result is always identical to
//! [`rstm`](crate::stm::rstm) over the view the tree was built from:
//!
//! ```
//! use cp_treediff::{DetectTree, MatchScratch, SimpleTree, rstm, rstm_detect};
//!
//! let a = SimpleTree::parse("html(body(div(p(x),q),div(r(s))))").unwrap();
//! let b = SimpleTree::parse("html(body(div(p(x)),div(r(s)),footer))").unwrap();
//! let (da, db) = (DetectTree::from_view(&a), DetectTree::from_view(&b));
//! let mut scratch = MatchScratch::default();
//! for level in 1..8 {
//!     assert_eq!(rstm_detect(&da, &db, level, &mut scratch), rstm(&a, &b, level));
//! }
//! ```

use crate::metrics::jaccard;
use crate::tree::TreeView;

/// FNV-1a 64 over a byte string — the hash behind the symbol index. Label
/// keys are short element names; FNV beats the DoS-resistant standard
/// hasher by a wide margin there, and symbol interning is on the
/// page-compilation hot path.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Interns label strings to dense `u32` symbols, per tree.
///
/// Symbols are only meaningful within the table that issued them; to
/// compare two trees, [`DetectTree::remap_symbols_from`] builds a
/// translation table between their symbol spaces.
///
/// All names live concatenated in one string arena with an open-addressed
/// hash index over them, so interning a page's worth of labels costs three
/// allocations total rather than one `String` plus a map node per distinct
/// label.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// All interned names, concatenated.
    buf: String,
    /// Byte range of each symbol's name within `buf`.
    spans: Vec<(u32, u32)>,
    /// Open-addressed index: `sym + 1`, or 0 for an empty slot. Length is
    /// a power of two, kept at most ~¾ full.
    index: Vec<u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Returns the symbol for `name`, interning it on first sight.
    pub fn intern(&mut self, name: &str) -> u32 {
        if self.spans.len() * 4 >= self.index.len() * 3 {
            self.grow();
        }
        let mask = self.index.len() - 1;
        let mut slot = fnv1a(name.as_bytes()) as usize & mask;
        loop {
            match self.index[slot] {
                0 => break,
                s if self.name(s - 1) == name => return s - 1,
                _ => slot = (slot + 1) & mask,
            }
        }
        let id = self.spans.len() as u32;
        let start = self.buf.len() as u32;
        self.buf.push_str(name);
        self.spans.push((start, self.buf.len() as u32));
        self.index[slot] = id + 1;
        id
    }

    /// Doubles (or seeds) the index and re-inserts every symbol.
    fn grow(&mut self) {
        let cap = (self.index.len() * 2).max(16);
        self.index.clear();
        self.index.resize(cap, 0);
        let mask = cap - 1;
        for id in 0..self.spans.len() {
            let mut slot = fnv1a(self.name(id as u32).as_bytes()) as usize & mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = id as u32 + 1;
        }
    }

    /// The symbol previously interned for `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        if self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut slot = fnv1a(name.as_bytes()) as usize & mask;
        loop {
            match self.index[slot] {
                0 => return None,
                s if self.name(s - 1) == name => return Some(s - 1),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// The name behind a symbol.
    pub fn name(&self, id: u32) -> &str {
        let (start, end) = self.spans[id as usize];
        &self.buf[start as usize..end as usize]
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no symbol was interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// A tree compiled for restricted matching: preorder node arrays plus a
/// flattened child index list.
///
/// Node `0` is the root; a node's children are a contiguous run of node
/// indices inside [`children`](DetectTree::from_view). Built once per page
/// with [`DetectTree::from_view`], then matched any number of times with
/// [`rstm_detect`] / [`n_tree_sim_detect`].
#[derive(Debug, Clone, Default)]
pub struct DetectTree {
    labels: Vec<u32>,
    countable: Vec<bool>,
    child_start: Vec<u32>,
    child_count: Vec<u32>,
    children: Vec<u32>,
    symbols: SymbolTable,
}

impl DetectTree {
    /// Compiles any [`TreeView`] into the flattened arena form.
    pub fn from_view<T: TreeView>(view: &T) -> Self {
        let mut builder = DetectTreeBuilder::new();
        if let Some(root) = view.root() {
            build(view, root, &mut builder);
        }
        builder.finish()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Fills `out` with a translation of `other`'s symbol space into this
    /// tree's: `out[sym_of_other] = sym_of_self`, or `u32::MAX` for labels
    /// this tree never saw (which therefore match nothing — `u32::MAX` is
    /// never a valid symbol id).
    ///
    /// Cost is one hash lookup per *distinct* label of `other`, typically a
    /// few dozen for an HTML page — negligible next to the matching DP.
    pub fn remap_symbols_from(&self, other: &DetectTree, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            (0..other.symbols.len() as u32)
                .map(|s| self.symbols.lookup(other.symbols.name(s)).unwrap_or(u32::MAX)),
        );
    }
}

fn build<T: TreeView>(view: &T, n: T::Node, builder: &mut DetectTreeBuilder) {
    builder.enter(view.label(n), view.countable(n));
    for c in view.children(n) {
        build(view, c, builder);
    }
    builder.leave();
}

/// Incremental [`DetectTree`] construction from enter/leave traversal
/// events, so callers walking a source structure for other reasons (e.g.
/// content extraction) can grow the tree in the same pass instead of
/// traversing twice.
///
/// Events must nest properly: one `leave` per `enter`, innermost first.
/// Node ids are assigned in `enter` (preorder) and every node's children
/// end up contiguous, exactly as [`DetectTree::from_view`] lays them out —
/// `from_view` is itself implemented on this builder.
///
/// During the traversal the builder only records each node's parent id —
/// two array pushes and a stack peek per node. The contiguous child lists
/// are produced in [`finish`](Self::finish) by a counting sort over the
/// parent array (preorder ids are increasing within every sibling list, so
/// the sort is stable by construction), which is three linear passes
/// instead of per-node child-list bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct DetectTreeBuilder {
    tree: DetectTree,
    /// Parent id per node, `u32::MAX` for roots.
    parents: Vec<u32>,
    /// Ids of the currently open nodes, outermost first.
    stack: Vec<u32>,
}

impl DetectTreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DetectTreeBuilder::default()
    }

    /// Creates a builder with arena capacity for `nodes` nodes, so callers
    /// that know the source size (e.g. a parsed document) avoid the
    /// doubling reallocations while the arrays grow.
    pub fn with_capacity(nodes: usize) -> Self {
        let mut builder = DetectTreeBuilder::new();
        builder.tree.labels.reserve(nodes);
        builder.tree.countable.reserve(nodes);
        builder.parents.reserve(nodes);
        builder.tree.child_count.reserve(nodes);
        builder.tree.child_start.reserve(nodes);
        builder.tree.children.reserve(nodes);
        // Seed the symbol index at a page-typical size (a few dozen
        // distinct labels) so interning skips the early grow-and-rehash
        // rounds at 16 and 32 slots.
        builder.tree.symbols.index.resize(64, 0);
        builder.tree.symbols.buf.reserve(256);
        builder.tree.symbols.spans.reserve(48);
        builder
    }

    /// Interns a label without adding a node, for callers that want to
    /// reuse the symbol across many [`enter_sym`](Self::enter_sym) /
    /// [`leaf_sym`](Self::leaf_sym) calls (e.g. the `#text` label of a
    /// document walk).
    pub fn intern(&mut self, label: &str) -> u32 {
        self.tree.symbols.intern(label)
    }

    /// Opens a node: assigns the next preorder id, interns the label, and
    /// registers the node as a child of the currently open node (if any).
    pub fn enter(&mut self, label: &str, countable: bool) {
        let sym = self.tree.symbols.intern(label);
        self.enter_sym(sym, countable);
    }

    /// [`enter`](Self::enter) with a pre-interned symbol.
    ///
    /// # Panics
    /// Panics when `sym` was not issued by this builder's table.
    pub fn enter_sym(&mut self, sym: u32, countable: bool) {
        let id = self.push_node(sym, countable);
        self.stack.push(id);
    }

    /// Adds a childless node without the open/close bookkeeping — the
    /// moral equivalent of `enter_sym(sym, countable); leave();` for
    /// leaves.
    ///
    /// # Panics
    /// Panics when `sym` was not issued by this builder's table.
    pub fn leaf_sym(&mut self, sym: u32, countable: bool) {
        self.push_node(sym, countable);
    }

    fn push_node(&mut self, sym: u32, countable: bool) -> u32 {
        assert!((sym as usize) < self.tree.symbols.len(), "unknown symbol");
        let id = self.tree.labels.len() as u32;
        self.tree.labels.push(sym);
        self.tree.countable.push(countable);
        self.parents.push(self.stack.last().copied().unwrap_or(u32::MAX));
        id
    }

    /// Closes the innermost open node.
    ///
    /// # Panics
    /// Panics when no node is open.
    pub fn leave(&mut self) {
        self.stack.pop().expect("DetectTreeBuilder::leave without enter");
    }

    /// Finishes construction: counting-sorts the parent array into the
    /// contiguous per-node child ranges.
    ///
    /// # Panics
    /// Panics when a node is still open.
    pub fn finish(mut self) -> DetectTree {
        assert!(self.stack.is_empty(), "DetectTreeBuilder::finish with open nodes");
        let n = self.parents.len();
        let tree = &mut self.tree;
        tree.child_count.clear();
        tree.child_count.resize(n, 0);
        for &p in &self.parents {
            if p != u32::MAX {
                tree.child_count[p as usize] += 1;
            }
        }
        tree.child_start.clear();
        tree.child_start.reserve(n);
        let mut next = 0u32;
        for &count in &tree.child_count {
            tree.child_start.push(next);
            next += count;
        }
        // Fill using child_start as the per-parent write cursor, then walk
        // the cursors back. Ids are scanned in increasing order, so each
        // child list comes out in sibling (preorder) order.
        tree.children.clear();
        tree.children.resize(next as usize, 0);
        for (id, &p) in self.parents.iter().enumerate() {
            if p != u32::MAX {
                let slot = &mut tree.child_start[p as usize];
                tree.children[*slot as usize] = id as u32;
                *slot += 1;
            }
        }
        for (start, &count) in tree.child_start.iter_mut().zip(&tree.child_count) {
            *start -= count;
        }
        self.tree
    }
}

/// Reusable workspace for [`rstm_detect`]: the DP rows (with stack
/// discipline across recursion levels) and the symbol remap table.
///
/// Create one per thread and reuse it across comparisons; after the first
/// few calls the buffers stop growing and matching allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    dp: Vec<usize>,
    remap: Vec<u32>,
    /// Per-column `(child id, translated symbol, gates passed)` rows of the
    /// forest DP, with the same stack discipline as `dp`.
    cols: Vec<(u32, u32, bool)>,
}

impl MatchScratch {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        MatchScratch::default()
    }
}

/// Restricted Simple Tree Matching (Figure 2) over two compiled trees —
/// identical in result to [`rstm`](crate::stm::rstm) over the views the
/// trees were built from, but label comparisons are integer compares and
/// the recursion allocates nothing (the DP rows live in `scratch`).
pub fn rstm_detect(
    a: &DetectTree,
    b: &DetectTree,
    max_level: usize,
    scratch: &mut MatchScratch,
) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let MatchScratch { dp, remap, cols } = scratch;
    a.remap_symbols_from(b, remap);
    dp.clear();
    cols.clear();
    // Figure 2 lines 1-3: roots with different symbols do not match at all.
    if a.labels[0] != remap[b.labels[0] as usize] {
        return 0;
    }
    // Figure 2 lines 4-8: the pair only counts if both nodes are internal,
    // countable and within the level bound.
    if a.child_count[0] == 0
        || b.child_count[0] == 0
        || !a.countable[0]
        || !b.countable[0]
        || max_level < 1
    {
        return 0;
    }
    forest_detect_rec(a, b, 0, 0, 1, max_level, remap, dp, cols) + 1
}

/// The forest DP under an already-matched pair `(ia, ib)` counted at
/// `current_level`. The Figure 2 line 1-8 checks (label match, both
/// internal, countable, level bound) run *at the call site* before
/// recursing, so mismatched child pairs — the overwhelming majority in
/// typical trees — cost three array reads instead of a call frame and a
/// pair of DP rows.
#[allow(clippy::too_many_arguments)] // internal recursion carries the full traversal state
fn forest_detect_rec(
    a: &DetectTree,
    b: &DetectTree,
    ia: usize,
    ib: usize,
    current_level: usize,
    max_level: usize,
    remap: &[u32],
    dp: &mut Vec<usize>,
    cols: &mut Vec<(u32, u32, bool)>,
) -> usize {
    let (ma, mb) = (a.child_count[ia] as usize, b.child_count[ib] as usize);
    let ca = a.child_start[ia] as usize;
    let cb = b.child_start[ib] as usize;
    let child_level = current_level + 1;
    // When children sit past the level bound every pair weighs 0, so the
    // whole row degenerates to the plain (weightless) LCS recurrence.
    let level_ok = child_level <= max_level;
    // Per-column data gathered once instead of on every row pass: the id,
    // translated symbol and gate verdict of each b-side child.
    let cbase = cols.len();
    for j in 0..mb {
        let child_b = b.children[cb + j] as usize;
        cols.push((
            child_b as u32,
            remap[b.labels[child_b] as usize],
            b.child_count[child_b] != 0 && b.countable[child_b],
        ));
    }
    // The weighted-LCS forest DP over two rolling rows carved out of the
    // shared workspace. Deeper recursion appends past `base` and truncates
    // back, so the rows stay valid (indices, not references).
    let base = dp.len();
    dp.resize(base + 2 * (mb + 1), 0);
    let (mut prev, mut cur) = (base, base + mb + 1);
    for i in 1..=ma {
        let child_a = a.children[ca + i - 1] as usize;
        let a_ok = level_ok && a.child_count[child_a] != 0 && a.countable[child_a];
        let la = a.labels[child_a];
        for j in 1..=mb {
            let (child_b, lb, b_ok) = cols[cbase + j - 1];
            let w = if a_ok && la == lb && b_ok {
                forest_detect_rec(
                    a,
                    b,
                    child_a,
                    child_b as usize,
                    child_level,
                    max_level,
                    remap,
                    dp,
                    cols,
                ) + 1
            } else {
                // Label mismatch, or a gate failed: either way Figure 2
                // scores the pair 0, so no recursion is needed.
                0
            };
            let pair = dp[prev + j - 1] + w;
            dp[cur + j] = dp[cur + j - 1].max(dp[prev + j]).max(pair);
        }
        std::mem::swap(&mut prev, &mut cur);
        dp[cur] = 0;
    }
    let result = dp[prev + mb];
    dp.truncate(base);
    cols.truncate(cbase);
    result
}

/// `N(A, l)` over a compiled tree — equal to
/// [`countable_nodes`](crate::metrics::countable_nodes) over the source
/// view, in one preorder walk of the flat arrays.
pub fn countable_nodes_detect(tree: &DetectTree, max_level: usize) -> usize {
    fn rec(tree: &DetectTree, n: u32, level: usize, max_level: usize) -> usize {
        let i = n as usize;
        let current = level + 1;
        if current > max_level || !tree.countable[i] {
            return 0;
        }
        let count = tree.child_count[i] as usize;
        if count == 0 {
            return 0;
        }
        let start = tree.child_start[i] as usize;
        1 + tree.children[start..start + count]
            .iter()
            .map(|&c| rec(tree, c, current, max_level))
            .sum::<usize>()
    }
    if tree.is_empty() {
        return 0;
    }
    rec(tree, 0, 0, max_level)
}

/// `NTreeSim(A, B, l)` (Formula 2) over compiled trees — bit-identical to
/// [`n_tree_sim`](crate::metrics::n_tree_sim) over the source views, since
/// the matched-pair and countable-node counts are identical integers.
pub fn n_tree_sim_detect(
    a: &DetectTree,
    b: &DetectTree,
    max_level: usize,
    scratch: &mut MatchScratch,
) -> f64 {
    let matched = rstm_detect(a, b, max_level, scratch);
    let na = countable_nodes_detect(a, max_level);
    let nb = countable_nodes_detect(b, max_level);
    jaccard(matched, na, nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{countable_nodes, n_tree_sim};
    use crate::stm::rstm;
    use crate::tree::SimpleTree;

    fn t(s: &str) -> SimpleTree {
        SimpleTree::parse(s).unwrap()
    }

    const CASES: [&str; 8] = [
        "a(b(c,b),c(d,e,f,e,d),g(h,i,j))",
        "a(b,c(d,e),g(f,h))",
        "html(body(div(p(x),q),div(r(s))))",
        "html(body(div(p(x)),div(r(s)),footer))",
        "a(~script(x,y),b(c))",
        "a(~div(span(x)),b(c))",
        "a",
        "html(head(title(x)),body(div(p(y),p(z)),~script(w)))",
    ];

    #[test]
    fn matches_rstm_on_all_case_pairs_and_levels() {
        let mut scratch = MatchScratch::new();
        for sa in CASES {
            for sb in CASES {
                let (a, b) = (t(sa), t(sb));
                let (da, db) = (DetectTree::from_view(&a), DetectTree::from_view(&b));
                for level in [1, 2, 3, 5, usize::MAX] {
                    assert_eq!(
                        rstm_detect(&da, &db, level, &mut scratch),
                        rstm(&a, &b, level),
                        "{sa} vs {sb} at level {level}"
                    );
                }
            }
        }
    }

    #[test]
    fn countable_nodes_match_view_walk() {
        for s in CASES {
            let tree = t(s);
            let compiled = DetectTree::from_view(&tree);
            for level in 1..8 {
                assert_eq!(
                    countable_nodes_detect(&compiled, level),
                    countable_nodes(&tree, level),
                    "{s} at level {level}"
                );
            }
        }
    }

    #[test]
    fn tree_sim_is_bit_identical() {
        let mut scratch = MatchScratch::new();
        for sa in CASES {
            for sb in CASES {
                let (a, b) = (t(sa), t(sb));
                let (da, db) = (DetectTree::from_view(&a), DetectTree::from_view(&b));
                for level in [1, 3, 5] {
                    let compiled = n_tree_sim_detect(&da, &db, level, &mut scratch);
                    let reference = n_tree_sim(&a, &b, level);
                    assert_eq!(compiled.to_bits(), reference.to_bits(), "{sa} vs {sb} l={level}");
                }
            }
        }
    }

    #[test]
    fn empty_trees() {
        let e = DetectTree::from_view(&SimpleTree::empty());
        let a = DetectTree::from_view(&t("a(b(c))"));
        let mut scratch = MatchScratch::new();
        assert!(e.is_empty());
        assert_eq!(rstm_detect(&e, &a, 5, &mut scratch), 0);
        assert_eq!(rstm_detect(&a, &e, 5, &mut scratch), 0);
        assert_eq!(n_tree_sim_detect(&e, &e, 5, &mut scratch), 1.0);
        assert_eq!(countable_nodes_detect(&e, 5), 0);
    }

    #[test]
    fn symbols_reconcile_across_trees() {
        // Different interning orders: the remap must translate correctly.
        let a = DetectTree::from_view(&t("x(y(z))"));
        let b = DetectTree::from_view(&t("z(y(x))"));
        let mut remap = Vec::new();
        a.remap_symbols_from(&b, &mut remap);
        for (bid, name) in ["z", "y", "x"].iter().enumerate() {
            assert_eq!(a.symbols().name(remap[bid]), *name);
        }
        // A label unknown to `a` maps to the never-matching sentinel.
        let c = DetectTree::from_view(&t("x(unseen)"));
        c.remap_symbols_from(&DetectTree::from_view(&t("q")), &mut remap);
        assert_eq!(remap, vec![u32::MAX]);
    }

    #[test]
    fn scratch_is_reusable_and_convergent() {
        let a = DetectTree::from_view(&t("html(body(div(p(x),q),div(r(s))))"));
        let mut scratch = MatchScratch::new();
        let first = rstm_detect(&a, &a, 5, &mut scratch);
        let dp_capacity = scratch.dp.capacity();
        for _ in 0..10 {
            assert_eq!(rstm_detect(&a, &a, 5, &mut scratch), first);
        }
        // The workspace reached steady state: repeated calls do not grow it.
        assert_eq!(scratch.dp.capacity(), dp_capacity);
        assert!(scratch.dp.is_empty(), "stack discipline restores the empty state");
    }

    #[test]
    fn interning_deduplicates_labels() {
        let tree = DetectTree::from_view(&t("div(div(div,span),span)"));
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.symbols().len(), 2);
        assert_eq!(tree.symbols().lookup("div"), Some(0));
        assert_eq!(tree.symbols().lookup("span"), Some(1));
        assert_eq!(tree.symbols().name(1), "span");
        assert!(tree.symbols().lookup("p").is_none());
    }
}
