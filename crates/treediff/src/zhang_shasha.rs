//! Zhang–Shasha ordered tree edit distance — the classical *unrestricted*
//! tree edit distance (Tai's problem, §4.1.1 of the paper).
//!
//! The paper surveys the edit-distance family and argues the generic
//! problem's cost is too high for online use, motivating the top-down
//! restriction. We include the canonical Zhang–Shasha algorithm as the
//! reference point: unit-cost insert/delete/relabel, `O(n² · min(depth,
//! leaves)²)` time — asymptotically and practically far heavier than RSTM,
//! which experiment E4 quantifies.

use crate::tree::TreeView;

struct Flattened {
    labels: Vec<String>,
    /// `l[i]`: postorder index of the leftmost leaf descendant of node `i`.
    l: Vec<usize>,
    keyroots: Vec<usize>,
}

fn flatten<T: TreeView>(tree: &T) -> Flattened {
    let mut labels = Vec::new();
    let mut l = Vec::new();

    fn rec<T: TreeView>(
        tree: &T,
        node: T::Node,
        labels: &mut Vec<String>,
        l: &mut Vec<usize>,
    ) -> usize {
        let children = tree.children(node);
        let mut leftmost = None;
        for c in children {
            let cl = rec(tree, c, labels, l);
            if leftmost.is_none() {
                leftmost = Some(cl);
            }
        }
        let idx = labels.len();
        labels.push(tree.label(node).to_string());
        let own_l = leftmost.unwrap_or(idx);
        l.push(own_l);
        own_l
    }

    if let Some(root) = tree.root() {
        rec(tree, root, &mut labels, &mut l);
    }

    // Keyroots: for each distinct l-value, the highest-postorder node.
    let mut keyroots = Vec::new();
    for i in 0..l.len() {
        let is_keyroot = !(i + 1..l.len()).any(|j| l[j] == l[i]);
        if is_keyroot {
            keyroots.push(i);
        }
    }
    Flattened { labels, l, keyroots }
}

/// Computes the Zhang–Shasha tree edit distance between `a` and `b` with
/// unit costs for insert, delete and relabel.
///
/// An empty tree is at distance `|other|` from any tree.
///
/// ```
/// use cp_treediff::{SimpleTree, zhang_shasha_distance};
/// let a = SimpleTree::parse("f(d(a,c(b)),e)").unwrap();
/// let b = SimpleTree::parse("f(c(d(a,b)),e)").unwrap();
/// // The classical worked example: distance 2.
/// assert_eq!(zhang_shasha_distance(&a, &b), 2);
/// ```
pub fn zhang_shasha_distance<A: TreeView, B: TreeView>(a: &A, b: &B) -> usize {
    let fa = flatten(a);
    let fb = flatten(b);
    let (n, m) = (fa.labels.len(), fb.labels.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }

    let mut treedist = vec![vec![0usize; m]; n];

    for &i in &fa.keyroots {
        for &j in &fb.keyroots {
            forest_dist(&fa, &fb, i, j, &mut treedist);
        }
    }
    treedist[n - 1][m - 1]
}

fn forest_dist(fa: &Flattened, fb: &Flattened, i: usize, j: usize, treedist: &mut [Vec<usize>]) {
    let li = fa.l[i];
    let lj = fb.l[j];
    let rows = i - li + 2;
    let cols = j - lj + 2;
    // fd[x][y]: distance between forest fa[li .. li+x-1] and fb[lj .. lj+y-1].
    let mut fd = vec![vec![0usize; cols]; rows];
    for x in 1..rows {
        fd[x][0] = fd[x - 1][0] + 1; // delete
    }
    for y in 1..cols {
        fd[0][y] = fd[0][y - 1] + 1; // insert
    }
    for x in 1..rows {
        for y in 1..cols {
            let di = li + x - 1; // node index in a
            let dj = lj + y - 1; // node index in b
            if fa.l[di] == li && fb.l[dj] == lj {
                // Both forests are whole trees rooted at di/dj.
                let relabel = usize::from(fa.labels[di] != fb.labels[dj]);
                fd[x][y] = (fd[x - 1][y] + 1).min(fd[x][y - 1] + 1).min(fd[x - 1][y - 1] + relabel);
                treedist[di][dj] = fd[x][y];
            } else {
                let xa = fa.l[di].saturating_sub(li);
                let ya = fb.l[dj].saturating_sub(lj);
                fd[x][y] =
                    (fd[x - 1][y] + 1).min(fd[x][y - 1] + 1).min(fd[xa][ya] + treedist[di][dj]);
            }
        }
    }
}

/// A normalized similarity derived from the Zhang–Shasha distance:
/// `1 − dist / (|A| + |B|)`, in `[0, 1]`, `1.0` for two empty trees.
pub fn zhang_shasha_sim<A: TreeView, B: TreeView>(a: &A, b: &B) -> f64 {
    let total = crate::metrics::tree_size(a) + crate::metrics::tree_size(b);
    if total == 0 {
        return 1.0;
    }
    (1.0 - zhang_shasha_distance(a, b) as f64 / total as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selkow::selkow_distance;
    use crate::tree::SimpleTree;

    fn t(s: &str) -> SimpleTree {
        SimpleTree::parse(s).unwrap()
    }

    #[test]
    fn identical_zero() {
        let a = t("a(b(c,d),e)");
        assert_eq!(zhang_shasha_distance(&a, &a), 0);
        assert_eq!(zhang_shasha_sim(&a, &a), 1.0);
    }

    #[test]
    fn classic_worked_example() {
        // Zhang & Shasha's original paper example: d(T1, T2) = 2.
        let a = t("f(d(a,c(b)),e)");
        let b = t("f(c(d(a,b)),e)");
        assert_eq!(zhang_shasha_distance(&a, &b), 2);
    }

    #[test]
    fn single_relabel() {
        assert_eq!(zhang_shasha_distance(&t("a(b,c)"), &t("a(b,x)")), 1);
        assert_eq!(zhang_shasha_distance(&t("a"), &t("b")), 1);
    }

    #[test]
    fn insert_delete_leaf() {
        assert_eq!(zhang_shasha_distance(&t("a(b)"), &t("a(b,c)")), 1);
        assert_eq!(zhang_shasha_distance(&t("a(b,c)"), &t("a(b)")), 1);
    }

    #[test]
    fn delete_internal_node() {
        // Removing an inner node and splicing its children costs 1 in the
        // general model (Selkow would charge the whole subtree).
        let a = t("a(x(b,c))");
        let b = t("a(b,c)");
        assert_eq!(zhang_shasha_distance(&a, &b), 1);
        assert!(selkow_distance(&a, &b) > 1);
    }

    #[test]
    fn against_empty() {
        let e = SimpleTree::empty();
        let a = t("a(b,c)");
        assert_eq!(zhang_shasha_distance(&e, &a), 3);
        assert_eq!(zhang_shasha_distance(&a, &e), 3);
        assert_eq!(zhang_shasha_distance(&e, &e), 0);
        assert_eq!(zhang_shasha_sim(&e, &e), 1.0);
    }

    #[test]
    fn symmetric() {
        let a = t("a(b(c),d,e(f,g))");
        let b = t("a(d,b(c,f),g)");
        assert_eq!(zhang_shasha_distance(&a, &b), zhang_shasha_distance(&b, &a));
    }

    #[test]
    fn never_exceeds_selkow() {
        // The general edit distance is a relaxation of Selkow's top-down
        // distance: it can never cost more.
        let cases = [
            ("a(b(c,d),e)", "a(b(c),e(f))"),
            ("html(body(div(p),div(q)))", "html(body(div(p,q)))"),
            ("a(b,c,d)", "x(y)"),
            ("a(a(a(a)))", "a(a)"),
        ];
        for (x, y) in cases {
            let (tx, ty) = (t(x), t(y));
            assert!(zhang_shasha_distance(&tx, &ty) <= selkow_distance(&tx, &ty), "{x} vs {y}");
        }
    }

    #[test]
    fn bounded_by_sizes() {
        let a = t("a(b(c,d),e)");
        let b = t("x(y(z))");
        let d = zhang_shasha_distance(&a, &b);
        assert!(d <= 5 + 3);
        assert!(d >= 2); // size difference lower bound
    }
}
