//! Bottom-up tree distance (Valiente 2001), the `O(|A| + |B|)` baseline.
//!
//! The paper rejects bottom-up distance for DOM comparison because "most of
//! the differences come from the leaf nodes" (§4.1.2), making it an
//! inaccurate metric for perceivable page change — a claim experiment E4
//! reproduces. The algorithm here follows Valiente's construction: build the
//! compacted shared-forest DAG by hashing canonical subtree shapes, then
//! greedily map the largest identical subtrees between the two trees.

use std::collections::HashMap;

use crate::metrics::tree_size;
use crate::tree::TreeView;

/// A canonical identifier of a subtree shape (label + child shapes).
type ShapeId = u64;

fn canonical_ids<T: TreeView>(
    tree: &T,
    interner: &mut HashMap<(String, Vec<ShapeId>), ShapeId>,
) -> Vec<(ShapeId, usize)> {
    // Returns (shape id, subtree size) for every node, in preorder.
    fn rec<T: TreeView>(
        tree: &T,
        n: T::Node,
        interner: &mut HashMap<(String, Vec<ShapeId>), ShapeId>,
        out: &mut Vec<(ShapeId, usize)>,
    ) -> (ShapeId, usize) {
        let slot = out.len();
        out.push((0, 0)); // placeholder, preorder position
        let mut child_ids = Vec::new();
        let mut size = 1usize;
        for c in tree.children(n) {
            let (cid, csize) = rec(tree, c, interner, out);
            child_ids.push(cid);
            size += csize;
        }
        let key = (tree.label(n).to_string(), child_ids);
        let next = interner.len() as ShapeId;
        let id = *interner.entry(key).or_insert(next);
        out[slot] = (id, size);
        (id, size)
    }
    let mut out = Vec::new();
    if let Some(r) = tree.root() {
        rec(tree, r, interner, &mut out);
    }
    out
}

/// Computes the size (in nodes) of a maximum **bottom-up mapping** between
/// `a` and `b`: a set of disjoint, identical subtrees paired between the two
/// trees, maximizing the total number of mapped nodes.
///
/// Greedy largest-first pairing over the shared-shape DAG, which is optimal
/// for disjoint identical-subtree packing between two trees.
///
/// ```
/// use cp_treediff::{SimpleTree, bottom_up_matching};
/// let a = SimpleTree::parse("r(a(x,y),b)").unwrap();
/// let b = SimpleTree::parse("r(a(x,y),c)").unwrap();
/// // The a(x,y) subtree (3 nodes) is shared; the roots differ in their
/// // children so the full trees do not map.
/// assert_eq!(bottom_up_matching(&a, &b), 3);
/// ```
pub fn bottom_up_matching<A: TreeView, B: TreeView>(a: &A, b: &B) -> usize {
    let mut interner = HashMap::new();
    let ids_a = canonical_ids(a, &mut interner);
    let ids_b = canonical_ids(b, &mut interner);
    if ids_a.is_empty() || ids_b.is_empty() {
        return 0;
    }

    // Count how many *maximal* occurrences of each shape are available on
    // each side. We process sizes from large to small; once a subtree is
    // mapped, its descendants are consumed.
    // Preorder + size lets us mark consumed ranges: in preorder, the subtree
    // of position i spans [i, i+size).
    let mut order: Vec<usize> = (0..ids_a.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ids_a[i].1));

    // For side B: bucket positions by shape, largest shapes first.
    let mut b_by_shape: HashMap<ShapeId, Vec<usize>> = HashMap::new();
    for (i, &(id, _)) in ids_b.iter().enumerate() {
        b_by_shape.entry(id).or_default().push(i);
    }

    let mut used_a = vec![false; ids_a.len()];
    let mut used_b = vec![false; ids_b.len()];
    let mut mapped = 0usize;

    for i in order {
        if used_a[i] {
            continue;
        }
        let (shape, size) = ids_a[i];
        let Some(cands) = b_by_shape.get_mut(&shape) else { continue };
        // Find an unused occurrence on the B side.
        let mut found = None;
        while let Some(&j) = cands.last() {
            if used_b[j] {
                cands.pop();
                continue;
            }
            found = Some(j);
            cands.pop();
            break;
        }
        let Some(j) = found else { continue };
        // Consume both subtrees (preorder ranges).
        used_a[i..i + size].fill(true);
        let bsize = ids_b[j].1;
        debug_assert_eq!(bsize, size, "identical shapes must have identical sizes");
        used_b[j..j + bsize].fill(true);
        mapped += size;
    }
    mapped
}

/// A normalized bottom-up similarity: `2·mapped / (|A| + |B|)`, in `[0, 1]`,
/// `1.0` for two empty trees.
///
/// This is the natural similarity induced by Valiente's bottom-up distance.
pub fn bottom_up_sim<A: TreeView, B: TreeView>(a: &A, b: &B) -> f64 {
    let total = tree_size(a) + tree_size(b);
    if total == 0 {
        return 1.0;
    }
    (2.0 * bottom_up_matching(a, b) as f64 / total as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SimpleTree;

    fn t(s: &str) -> SimpleTree {
        SimpleTree::parse(s).unwrap()
    }

    #[test]
    fn identical_trees_fully_mapped() {
        let a = t("a(b(c,d),e)");
        assert_eq!(bottom_up_matching(&a, &a), 5);
        assert_eq!(bottom_up_sim(&a, &a), 1.0);
    }

    #[test]
    fn no_shared_shapes() {
        let a = t("a(b)");
        let b = t("x(y)");
        assert_eq!(bottom_up_matching(&a, &b), 0);
        assert_eq!(bottom_up_sim(&a, &b), 0.0);
    }

    #[test]
    fn shared_subtree_only() {
        let a = t("r(a(x,y),b)");
        let b = t("q(a(x,y),c)");
        assert_eq!(bottom_up_matching(&a, &b), 3);
    }

    #[test]
    fn leaf_change_destroys_ancestor_mapping() {
        // The paper's point: one changed leaf unmaps the entire ancestor
        // chain in a bottom-up mapping.
        let a = t("html(body(div(p(ad1)),div(x)))");
        let b = t("html(body(div(p(ad2)),div(x)))");
        let mapped = bottom_up_matching(&a, &b);
        // Only div(x) (2 nodes) survives; the p/div/body/html chain over the
        // changed ad does not map.
        assert_eq!(mapped, 2);
        assert!(bottom_up_sim(&a, &b) < 0.5);
    }

    #[test]
    fn repeated_subtrees_pair_up() {
        let a = t("r(a(x),a(x),a(x))");
        let b = t("r(a(x),a(x))");
        // Two of the three a(x) (2 nodes each) can map.
        assert_eq!(bottom_up_matching(&a, &b), 4);
    }

    #[test]
    fn empty_trees() {
        let e = SimpleTree::empty();
        let a = t("a");
        assert_eq!(bottom_up_matching(&e, &a), 0);
        assert_eq!(bottom_up_sim(&e, &e), 1.0);
    }

    #[test]
    fn mapping_bounded() {
        let a = t("a(b(c,d),e)");
        let b = t("a(b(c,d),e(f,g))");
        let m = bottom_up_matching(&a, &b);
        assert!(m <= 5);
    }
}
