//! Constrained (isolated-subtree) tree edit distance — Zhang 1996, the
//! efficient algorithm for the *isolated-subtree distance* family the paper
//! cites as Tanaka & Tanaka (§4.1.1, ref. [18]).
//!
//! A constrained mapping requires disjoint subtrees to map to disjoint
//! subtrees (no mapping may "split" one subtree's nodes across two separate
//! subtrees of the other side). This completes the crate's coverage of all
//! four constrained families the paper surveys: top-down
//! ([`selkow`](crate::selkow)/[`stm`](crate::stm)), bottom-up
//! ([`bottom_up`](crate::bottom_up)), alignment
//! ([`alignment`](crate::alignment)) and isolated-subtree (here).
//!
//! Runs in `O(|A| · |B| · (deg A + deg B))` with unit costs.

use std::collections::HashMap;
use std::hash::Hash;

use crate::tree::TreeView;

const UNIT: usize = 1;

fn label_cost(a: &str, b: &str) -> usize {
    usize::from(a != b)
}

struct Ctx<'a, A: TreeView, B: TreeView>
where
    A::Node: Hash,
    B::Node: Hash,
{
    a: &'a A,
    b: &'a B,
    tree_memo: HashMap<(A::Node, B::Node), usize>,
    forest_memo: HashMap<(A::Node, B::Node), usize>,
    del_tree: HashMap<A::Node, usize>,
    ins_tree: HashMap<B::Node, usize>,
}

impl<A: TreeView, B: TreeView> Ctx<'_, A, B>
where
    A::Node: Hash,
    B::Node: Hash,
{
    fn del_tree(&mut self, n: A::Node) -> usize {
        if let Some(&c) = self.del_tree.get(&n) {
            return c;
        }
        let c = UNIT + self.del_forest(n);
        self.del_tree.insert(n, c);
        c
    }

    fn del_forest(&mut self, n: A::Node) -> usize {
        self.a.children(n).into_iter().map(|k| self.del_tree(k)).sum()
    }

    fn ins_tree(&mut self, n: B::Node) -> usize {
        if let Some(&c) = self.ins_tree.get(&n) {
            return c;
        }
        let c = UNIT + self.ins_forest(n);
        self.ins_tree.insert(n, c);
        c
    }

    fn ins_forest(&mut self, n: B::Node) -> usize {
        self.b.children(n).into_iter().map(|k| self.ins_tree(k)).sum()
    }

    /// Constrained distance between the trees rooted at `x` and `y`.
    fn tree_dist(&mut self, x: A::Node, y: B::Node) -> usize {
        if let Some(&c) = self.tree_memo.get(&(x, y)) {
            return c;
        }
        // Case 1: y survives, x's tree maps into one subtree of y.
        let mut best = usize::MAX;
        {
            let base = UNIT + self.ins_forest(y);
            for k in self.b.children(y) {
                let alt = base - self.ins_tree(k) + self.tree_dist(x, k);
                best = best.min(alt);
            }
        }
        // Case 2: symmetric.
        {
            let base = UNIT + self.del_forest(x);
            for k in self.a.children(x) {
                let alt = base - self.del_tree(k) + self.tree_dist(k, y);
                best = best.min(alt);
            }
        }
        // Case 3: roots map to each other; forests map constrained.
        let case3 = label_cost(self.a.label(x), self.b.label(y)) + self.forest_dist(x, y);
        best = best.min(case3);

        self.tree_memo.insert((x, y), best);
        best
    }

    /// Constrained distance between the child forests of `x` and `y`.
    fn forest_dist(&mut self, x: A::Node, y: B::Node) -> usize {
        if let Some(&c) = self.forest_memo.get(&(x, y)) {
            return c;
        }
        let ca = self.a.children(x);
        let cb = self.b.children(y);

        // Case 1: all of F(x) maps inside the forest of ONE child of y.
        let mut best = usize::MAX;
        {
            let base = self.ins_forest(y);
            for &k in &cb {
                let sub = self.ins_forest(k);
                let alt =
                    base - self.ins_tree(k) + (UNIT + sub) - sub + self.forest_dist_nodes(x, k);
                // = base − ins_tree(k) + UNIT + forest_dist(x within k)
                best = best.min(alt);
            }
        }
        // Case 2: symmetric.
        {
            let base = self.del_forest(x);
            for &k in &ca {
                let alt = base - self.del_tree(k) + UNIT + self.forest_dist_nodes(k, y);
                best = best.min(alt);
            }
        }
        // Case 3: sequence edit distance over whole subtrees.
        {
            let m = ca.len();
            let n = cb.len();
            let mut table = vec![vec![0usize; n + 1]; m + 1];
            for i in 1..=m {
                table[i][0] = table[i - 1][0] + self.del_tree(ca[i - 1]);
            }
            for j in 1..=n {
                table[0][j] = table[0][j - 1] + self.ins_tree(cb[j - 1]);
            }
            for i in 1..=m {
                for j in 1..=n {
                    let del = table[i - 1][j] + self.del_tree(ca[i - 1]);
                    let ins = table[i][j - 1] + self.ins_tree(cb[j - 1]);
                    let sub = table[i - 1][j - 1] + self.tree_dist(ca[i - 1], cb[j - 1]);
                    table[i][j] = del.min(ins).min(sub);
                }
            }
            best = best.min(table[m][n]);
        }

        self.forest_memo.insert((x, y), best);
        best
    }

    /// `forest_dist` but addressed by arbitrary node pairs (helper for the
    /// splice cases, where one side descends a level).
    fn forest_dist_nodes(&mut self, x: A::Node, y: B::Node) -> usize {
        self.forest_dist(x, y)
    }
}

/// Computes Zhang's constrained (isolated-subtree) edit distance between
/// `a` and `b` with unit costs.
///
/// The constrained distance upper-bounds the general (Zhang–Shasha) edit
/// distance and lower-bounds nothing in particular versus alignment — the
/// two families are incomparable in general — but on DOM-like trees it
/// tracks the general distance closely at a fraction of the cost.
///
/// ```
/// use cp_treediff::{SimpleTree, constrained_distance};
/// let a = SimpleTree::parse("a(b(c,d),e)").unwrap();
/// let b = SimpleTree::parse("a(b(c),e)").unwrap();
/// assert_eq!(constrained_distance(&a, &b), 1);
/// ```
pub fn constrained_distance<A, B>(a: &A, b: &B) -> usize
where
    A: TreeView,
    B: TreeView,
    A::Node: Hash,
    B::Node: Hash,
{
    let mut ctx = Ctx {
        a,
        b,
        tree_memo: HashMap::new(),
        forest_memo: HashMap::new(),
        del_tree: HashMap::new(),
        ins_tree: HashMap::new(),
    };
    match (a.root(), b.root()) {
        (None, None) => 0,
        (Some(r), None) => ctx.del_tree(r),
        (None, Some(r)) => ctx.ins_tree(r),
        (Some(ra), Some(rb)) => ctx.tree_dist(ra, rb),
    }
}

/// Normalized constrained similarity: `1 − dist / (|A| + |B|)`, in `[0, 1]`.
pub fn constrained_sim<A, B>(a: &A, b: &B) -> f64
where
    A: TreeView,
    B: TreeView,
    A::Node: Hash,
    B::Node: Hash,
{
    let total = crate::metrics::tree_size(a) + crate::metrics::tree_size(b);
    if total == 0 {
        return 1.0;
    }
    (1.0 - constrained_distance(a, b) as f64 / total as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SimpleTree;
    use crate::zhang_shasha::zhang_shasha_distance;

    fn t(s: &str) -> SimpleTree {
        SimpleTree::parse(s).unwrap()
    }

    #[test]
    fn identity_relabel_and_leaves() {
        let a = t("a(b,c)");
        assert_eq!(constrained_distance(&a, &a), 0);
        assert_eq!(constrained_distance(&t("a"), &t("b")), 1);
        assert_eq!(constrained_distance(&t("a(b)"), &t("a(b,c)")), 1);
    }

    #[test]
    fn internal_splice() {
        assert_eq!(constrained_distance(&t("a(x(b,c))"), &t("a(b,c)")), 1);
        assert_eq!(constrained_distance(&t("a(b,c)"), &t("a(x(b,c))")), 1);
    }

    #[test]
    fn against_empty() {
        let e = SimpleTree::empty();
        assert_eq!(constrained_distance(&e, &t("a(b,c)")), 3);
        assert_eq!(constrained_distance(&t("a(b,c)"), &e), 3);
        assert_eq!(constrained_distance(&e, &e), 0);
    }

    #[test]
    fn symmetric() {
        let a = t("a(b(c),d,e(f))");
        let b = t("a(d,b(c,f))");
        assert_eq!(constrained_distance(&a, &b), constrained_distance(&b, &a));
    }

    #[test]
    fn upper_bounds_general_edit_distance() {
        let cases = [
            ("a(b(c,d),e)", "a(b(c),e(f))"),
            ("html(body(div(p),div(q)))", "html(body(div(p,q)))"),
            ("r(x(a,b),x(c,d))", "r(x(a),x(b,c),x(d))"),
            ("a(a(a(a)))", "a(a)"),
        ];
        for (x, y) in cases {
            let (tx, ty) = (t(x), t(y));
            let zs = zhang_shasha_distance(&tx, &ty);
            let cd = constrained_distance(&tx, &ty);
            assert!(zs <= cd, "{x} vs {y}: zs={zs} cd={cd}");
        }
    }

    #[test]
    fn distributing_split_is_penalized() {
        // The signature case: T1 has one subtree whose leaves must split
        // across two subtrees of T2 — a constrained mapping forbids it, so
        // the constrained distance exceeds the general one.
        let a = t("r(x(p,q,s))");
        let b = t("r(x(p),x(q,s))");
        let zs = zhang_shasha_distance(&a, &b);
        let cd = constrained_distance(&a, &b);
        assert!(cd >= zs);
        assert!(cd > 0);
    }

    #[test]
    fn sim_bounds() {
        let a = t("a(b(c),d)");
        assert_eq!(constrained_sim(&a, &a), 1.0);
        let s = constrained_sim(&a, &t("z"));
        assert!((0.0..=1.0).contains(&s));
    }
}
