//! A seeded synthetic Web for evaluating CookiePicker.
//!
//! The paper evaluates against live 2007 Web sites drawn from
//! `directory.google.com`. Those sites (and that Web) no longer exist, so
//! this crate generates them: each [`SiteSpec`] describes a
//! deterministic website with
//!
//! * a set of cookies with **ground-truth roles** ([`CookieRole`]): trackers
//!   and analytics cookies that never affect rendering, and *useful* cookies
//!   (preference / sign-up / performance) that visibly change pages when
//!   absent — the three usage classes observed in Table 2;
//! * **page-dynamics noise** (rotating ads, tickers, timestamps) confined to
//!   the leaf levels of the DOM, exactly the noise RSTM's level restriction
//!   and CVCE's same-context forgiveness are designed to reject (§4.1.3);
//! * optionally, **structural noise bursts** — front-page layout rotations
//!   that occasionally alter the upper DOM levels. These produce the false
//!   "useful" marks the paper reports for 3 of its 30 sites;
//! * a latency profile, including the chronically slow origins behind the
//!   ~10 s outliers of Table 1.
//!
//! [`population`] builds the exact site populations of the paper's two
//! experiments (Table 1's S1–S30 and Table 2's P1–P6) plus the 5,000-site
//! population of the authors' cookie measurement study.
//!
//! Ground truth is available to experiments via
//! [`SiteSpec::useful_cookie_names`](spec::SiteSpec::useful_cookie_names) —
//! this replaces the paper's "careful manual verification".
//!
//! [`CookieRole`]: spec::CookieRole
//! [`SiteSpec`]: spec::SiteSpec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod corpus;
pub mod population;
pub mod render;
pub mod server;
pub mod spec;
pub mod universe;

pub use category::Category;
pub use population::{measurement_population, random_site, table1_population, table2_population};
pub use server::SiteServer;
pub use spec::{
    CookieRole, CookieSpec, EffectSize, LatencyProfile, NoiseSpec, PageSelector, SiteLayout,
    SiteSpec,
};
pub use universe::{uniform_host, Universe, UniverseResolver, WorldKind};
