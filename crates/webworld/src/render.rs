//! The synthetic page renderer.
//!
//! Renders a site page as HTML given the cookies the request carried. The
//! *base* content of a page is deterministic in `(site seed, path)`;
//! page-dynamics noise comes from a per-request RNG the caller supplies; and
//! cookie-dependent panels render only when the corresponding cookie is
//! present — which is exactly the contrast CookiePicker's hidden request
//! probes.

use cp_runtime::rng::{Rng, SeedableRng, StdRng};

use cp_cookies::SimTime;
use cp_html::entities::escape_text;

use crate::corpus;
use crate::spec::{CookieRole, EffectSize, SiteLayout, SiteSpec};

/// Everything the renderer needs for one page view.
#[derive(Debug)]
pub struct RenderInput<'a> {
    /// The site being rendered.
    pub spec: &'a SiteSpec,
    /// Request path.
    pub path: &'a str,
    /// `(name, value)` pairs from the request's `Cookie` header.
    pub cookies: &'a [(String, String)],
    /// Simulated time of the request (drives the timestamp noise).
    pub now: SimTime,
}

fn mix(seed: u64, s: &str, salt: u64) -> u64 {
    // FNV-1a over the path, mixed with the seed and salt.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17) ^ salt.wrapping_mul(0x9e37_79b9);
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic RNG for a page's base content.
fn page_rng(spec: &SiteSpec, path: &str, salt: u64) -> StdRng {
    StdRng::seed_from_u64(mix(spec.seed, path, salt))
}

fn has_cookie(input: &RenderInput<'_>, name: &str) -> bool {
    input.cookies.iter().any(|(n, _)| n == name)
}

/// Renders the container page for one request.
///
/// `noise_rng` drives the per-render dynamics (rotating ads, ticker,
/// structural bursts); pass a fixed-state RNG to get reproducible noise.
pub fn render_page<R: Rng + ?Sized>(input: &RenderInput<'_>, noise_rng: &mut R) -> String {
    let spec = input.spec;
    let mut rng = page_rng(spec, input.path, 1);
    let site_title = corpus::title(&mut page_rng(spec, "/", 0), 2);
    let page_title = corpus::title(&mut rng, 3);

    let mut html = String::with_capacity(8 * 1024);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n");
    html.push_str(&format!(
        "<title>{} - {}</title>\n",
        escape_text(&site_title),
        escape_text(&page_title)
    ));
    html.push_str("<meta charset=\"utf-8\">\n");
    html.push_str("<link rel=\"stylesheet\" href=\"/static/site.css\">\n");
    // A script whose body changes per render: invisible to both detectors.
    html.push_str(&format!(
        "<script src=\"/static/app.js\"></script>\n<script>var pageToken = \"{:x}\";</script>\n",
        noise_rng.gen::<u64>()
    ));
    html.push_str("</head>\n<body>\n");

    // Structural burst (bursty-noise sites only): the front page swaps in a
    // breaking-news layout that perturbs the upper DOM levels.
    let burst = spec.noise.structural_burst_prob > 0.0
        && noise_rng.gen::<f64>() < spec.noise.structural_burst_prob;

    render_header(&mut html, spec, &site_title, &mut rng);

    if spec.layout == SiteLayout::Portal {
        // Deterministic above-the-fold headline grid (same every render).
        let mut hrng = page_rng(spec, input.path, 15);
        html.push_str("<div id=\"headlines\">\n");
        for _ in 0..3 {
            html.push_str("<div class=\"headline\">\n");
            html.push_str(&format!(
                "<h3><a href=\"/page/2\">{}</a></h3>\n",
                escape_text(&corpus::title(&mut hrng, 3))
            ));
            html.push_str(&format!("<p>{}</p>\n", escape_text(&corpus::sentence(&mut hrng))));
            html.push_str("</div>\n");
        }
        html.push_str("</div>\n");
    }

    if spec.noise.ticker {
        html.push_str(&format!(
            "<div id=\"ticker\"><p>{}</p></div>\n",
            escape_text(&corpus::sentence(noise_rng))
        ));
    }

    if burst {
        render_breaking(&mut html, noise_rng);
    } else if spec.layout != SiteLayout::Minimal {
        render_banner(&mut html, spec, noise_rng);
    }

    if spec.noise.dynamic_teasers > 0 {
        // Story teasers: stable structure and context, rotating prose.
        html.push_str("<div id=\"teasers\">\n");
        for _ in 0..spec.noise.dynamic_teasers {
            html.push_str(&format!(
                "<p class=\"teaser\">{}</p>\n",
                escape_text(&corpus::sentence(noise_rng))
            ));
        }
        html.push_str("</div>\n");
    }

    html.push_str("<div id=\"main\">\n");

    // Preference effects are additive: every present preference cookie
    // controls its own piece of the page, so each one is independently
    // observable (and independently testable by a per-cookie probe).
    let prefs = active_cookies(input, CookieRole::Preference);
    let pref = prefs.first().copied();
    let perf = active_cookie(input, CookieRole::Performance);
    if !prefs.is_empty() {
        render_pref_sidebar(&mut html, spec, &prefs);
    }
    // A large performance cache also gets its own column of cached panels.
    if let Some((name, EffectSize::Large)) = perf {
        render_cache_column(&mut html, spec, name);
    }

    html.push_str("<div id=\"content\">\n");
    html.push_str(&format!("<h2>{}</h2>\n", escape_text(&page_title)));

    let signup =
        spec.cookies.iter().find(|c| c.role == CookieRole::SignUp && c.scope.matches(input.path));
    if let Some(su) = signup {
        if has_cookie(input, &su.name) {
            render_account_panel(&mut html, spec, &su.name);
        } else {
            render_signup_wall(&mut html, spec);
        }
        // Large sign-up walls replace the rest of the content.
        if su.effect == EffectSize::Large && !has_cookie(input, &su.name) {
            html.push_str("</div>\n"); // content
            render_ads(&mut html, spec, noise_rng);
            html.push_str("</div>\n"); // main
            render_footer(&mut html, spec, input, noise_rng);
            html.push_str("</body>\n</html>\n");
            return html;
        }
    }

    if let Some((name, EffectSize::Large)) = pref {
        // A Large preference cookie switches the whole content region to a
        // personalized dashboard layout — the "default home page vs my
        // home page" contrast behind Table 2's lowest similarity scores.
        render_pref_dashboard(&mut html, spec, name);
    } else {
        // Base article content, deterministic per page.
        for i in 0..spec.richness {
            html.push_str("<div class=\"section\">\n");
            html.push_str(&format!("<h3>{}</h3>\n", escape_text(&corpus::title(&mut rng, 2))));
            html.push_str(&format!("<p>{}</p>\n", escape_text(&corpus::paragraph(&mut rng, 3))));
            if i == 0 {
                // A data table.
                html.push_str("<table class=\"data\">\n");
                let rows = 3 + (rng.gen::<u64>() % 3) as usize;
                for _ in 0..rows {
                    html.push_str("<tr>");
                    for _ in 0..3 {
                        html.push_str(&format!("<td>{}</td>", escape_text(corpus::word(&mut rng))));
                    }
                    html.push_str("</tr>\n");
                }
                html.push_str("</table>\n");
            }
        }
    }

    // Performance effect: cached recent-query results panel.
    if let Some((name, effect)) = perf {
        render_recent_results(&mut html, spec, name, effect);
    }

    // Every active preference cookie beyond pure-sidebar Small adds its own
    // personalized panel (content keyed by the cookie name).
    for &(name, effect) in &prefs {
        if effect == EffectSize::Medium || (effect == EffectSize::Small && prefs.len() > 1) {
            render_pref_panel(&mut html, spec, name);
        }
    }

    html.push_str("</div>\n"); // content

    // Preference Medium/Large replaces the generic ads column with
    // personalized recommendations; otherwise generic rotating ads render.
    match pref {
        Some((name, EffectSize::Medium | EffectSize::Large)) => {
            render_recs(&mut html, spec, name);
        }
        _ => render_ads(&mut html, spec, noise_rng),
    }

    html.push_str("</div>\n"); // main
    render_footer(&mut html, spec, input, noise_rng);
    html.push_str("</body>\n</html>\n");
    html
}

/// Finds an active (present-in-request, scope-matching) useful cookie of the
/// given role; returns its name and effect size.
fn active_cookie<'a>(
    input: &'a RenderInput<'_>,
    role: CookieRole,
) -> Option<(&'a str, EffectSize)> {
    active_cookies(input, role).into_iter().next()
}

/// All active cookies of the given role, strongest effect first.
fn active_cookies<'a>(input: &'a RenderInput<'_>, role: CookieRole) -> Vec<(&'a str, EffectSize)> {
    let mut out: Vec<(&str, EffectSize)> = input
        .spec
        .cookies
        .iter()
        .filter(|c| c.role == role && c.scope.matches(input.path) && has_cookie(input, &c.name))
        .map(|c| (c.name.as_str(), c.effect))
        .collect();
    let rank = |e: EffectSize| match e {
        EffectSize::Large => 0,
        EffectSize::Medium => 1,
        EffectSize::Small => 2,
    };
    out.sort_by_key(|&(_, e)| rank(e));
    out
}

fn render_header(html: &mut String, spec: &SiteSpec, site_title: &str, rng: &mut StdRng) {
    html.push_str("<div id=\"header\">\n");
    html.push_str(&format!("<h1>{}</h1>\n", escape_text(site_title)));
    match spec.layout {
        SiteLayout::Minimal => {
            // A slim inline nav.
            html.push_str("<p class=\"nav\">");
            for i in 0..3 {
                html.push_str(&format!(
                    "<a href=\"/page/{}\">{}</a> ",
                    i + 1,
                    escape_text(&corpus::title(rng, 1))
                ));
            }
            html.push_str("</p>\n");
        }
        SiteLayout::Classic | SiteLayout::Portal => {
            html.push_str("<div class=\"nav\">\n<ul>\n");
            for i in 0..6 {
                html.push_str(&format!(
                    "<li><a href=\"/page/{}\">{}</a></li>\n",
                    i + 1,
                    escape_text(&corpus::title(rng, 1))
                ));
            }
            html.push_str("</ul>\n</div>\n");
        }
    }
    html.push_str("</div>\n");
}

fn render_banner(html: &mut String, spec: &SiteSpec, noise_rng: &mut (impl Rng + ?Sized)) {
    html.push_str("<div id=\"banner\">\n");
    if spec.noise.ad_slots > 0 {
        html.push_str(&format!(
            "<div class=\"ad\"><p>{}</p></div>\n",
            escape_text(&corpus::words(noise_rng, 4))
        ));
    } else {
        html.push_str("<div class=\"ad\"><p>advertisement</p></div>\n");
    }
    html.push_str("</div>\n");
}

fn render_breaking(html: &mut String, noise_rng: &mut (impl Rng + ?Sized)) {
    // The burst layout: replaces the banner with a multi-story panel,
    // perturbing DOM structure at levels 2–4.
    html.push_str("<div id=\"breaking\">\n");
    html.push_str(&format!("<h2>{}</h2>\n", escape_text(&corpus::title(noise_rng, 3))));
    for _ in 0..3 {
        html.push_str("<div class=\"story\">\n");
        html.push_str(&format!("<h3>{}</h3>\n", escape_text(&corpus::title(noise_rng, 2))));
        html.push_str(&format!("<p>{}</p>\n", escape_text(&corpus::sentence(noise_rng))));
        html.push_str("</div>\n");
    }
    html.push_str("<ul class=\"more\">\n");
    for _ in 0..4 {
        html.push_str(&format!(
            "<li><a href=\"#\">{}</a></li>\n",
            escape_text(&corpus::title(noise_rng, 2))
        ));
    }
    html.push_str("</ul>\n</div>\n");
}

fn render_pref_sidebar(html: &mut String, spec: &SiteSpec, prefs: &[(&str, EffectSize)]) {
    // One sidebar block per active preference cookie: each cookie's absence
    // removes its own chunk of structure, so every preference is
    // independently observable.
    html.push_str("<div id=\"sidebar\" class=\"personalized\">\n");
    for &(cookie, effect) in prefs {
        let mut rng = page_rng(spec, cookie, 7);
        let n = match effect {
            EffectSize::Small => 3,
            EffectSize::Medium => 5,
            EffectSize::Large => 8,
        };
        html.push_str("<div class=\"pref-section\">\n");
        html.push_str(&format!("<h3>Welcome back, {}</h3>\n", escape_text(corpus::word(&mut rng))));
        html.push_str("<ul class=\"mylinks\">\n");
        for _ in 0..n {
            html.push_str(&format!(
                "<li><a href=\"#\">{}</a></li>\n",
                escape_text(&corpus::title(&mut rng, 2))
            ));
        }
        html.push_str("</ul>\n");
        html.push_str("<dl class=\"settings\">\n");
        for label in ["Theme", "Layout", "Language"].iter().take(n.min(3)) {
            html.push_str(&format!(
                "<dt>{label}</dt><dd>{}</dd>\n",
                escape_text(corpus::word(&mut rng))
            ));
        }
        html.push_str("</dl>\n");
        html.push_str("<ul class=\"shortcuts\">\n");
        for _ in 0..n {
            html.push_str(&format!("<li>{}</li>\n", escape_text(&corpus::title(&mut rng, 1))));
        }
        html.push_str("</ul>\n");
        html.push_str(&format!(
            "<p class=\"status\">{}</p>\n",
            escape_text(&corpus::sentence(&mut rng))
        ));
        html.push_str("<div class=\"theme-box\"><p>Theme: dark</p><p>Layout: wide</p></div>\n");
        html.push_str("</div>\n");
    }
    html.push_str("</div>\n");
}

fn render_pref_panel(html: &mut String, spec: &SiteSpec, cookie: &str) {
    let mut rng = page_rng(spec, cookie, 8);
    html.push_str("<div class=\"panel saved-items\">\n<h3>Your saved items</h3>\n<ol>\n");
    for _ in 0..4 {
        html.push_str(&format!("<li>{}</li>\n", escape_text(&corpus::title(&mut rng, 3))));
    }
    html.push_str("</ol>\n</div>\n");
}

fn render_pref_dashboard(html: &mut String, spec: &SiteSpec, cookie: &str) {
    // Replaces the generic article sections entirely: a personalized
    // dashboard with a different element vocabulary (fieldsets, definition
    // lists, nested grids) so the upper-level structure diverges strongly.
    let mut rng = page_rng(spec, cookie, 9);
    html.push_str("<fieldset class=\"dash\">\n<legend>My dashboard</legend>\n");
    html.push_str("<dl class=\"stats\">\n");
    for label in ["Visits", "Saved", "Alerts", "Messages"] {
        html.push_str(&format!("<dt>{label}</dt><dd>{}</dd>\n", rng.gen_range(1..40)));
    }
    html.push_str("</dl>\n</fieldset>\n");
    for _ in 0..2 {
        html.push_str("<div class=\"grid personalized-grid\">\n");
        for _ in 0..3 {
            html.push_str("<div class=\"cell\">\n");
            html.push_str(&format!("<h4>{}</h4>\n", escape_text(&corpus::title(&mut rng, 2))));
            html.push_str(&format!("<p>{}</p>\n", escape_text(&corpus::sentence(&mut rng))));
            html.push_str("<ul class=\"cell-links\">\n");
            for _ in 0..2 {
                html.push_str(&format!(
                    "<li><a href=\"#\">{}</a></li>\n",
                    escape_text(&corpus::title(&mut rng, 1))
                ));
            }
            html.push_str("</ul>\n</div>\n");
        }
        html.push_str("</div>\n");
    }
    html.push_str("<div class=\"panel saved-items\">\n<h3>Your saved items</h3>\n<ol>\n");
    for _ in 0..5 {
        html.push_str(&format!("<li>{}</li>\n", escape_text(&corpus::title(&mut rng, 3))));
    }
    html.push_str("</ol>\n</div>\n");
}

fn render_cache_column(html: &mut String, spec: &SiteSpec, cookie: &str) {
    // A sidebar column of per-query cached panels (the P2 usage: a
    // server-side cache directory keyed by the persistent cookie).
    let mut rng = page_rng(spec, cookie, 14);
    html.push_str("<div id=\"cache-column\">\n<h3>Cached for you</h3>\n");
    for _ in 0..3 {
        html.push_str("<div class=\"cache-panel\">\n");
        html.push_str(&format!("<h4>{}</h4>\n", escape_text(&corpus::title(&mut rng, 2))));
        html.push_str("<ul>\n");
        for _ in 0..3 {
            html.push_str(&format!("<li>{}</li>\n", escape_text(&corpus::title(&mut rng, 2))));
        }
        html.push_str("</ul>\n</div>\n");
    }
    html.push_str("</div>\n");
}

fn render_recent_results(html: &mut String, spec: &SiteSpec, cookie: &str, effect: EffectSize) {
    let mut rng = page_rng(spec, cookie, 10);
    let (rows, items) = match effect {
        EffectSize::Small => (1, 3),
        EffectSize::Medium => (2, 4),
        EffectSize::Large => (3, 5),
    };
    html.push_str("<div id=\"recent\">\n<h3>Your recent queries</h3>\n");
    for _ in 0..rows {
        html.push_str("<div class=\"query-row\">\n");
        html.push_str(&format!("<h4>{}</h4>\n", escape_text(&corpus::title(&mut rng, 2))));
        html.push_str("<ol class=\"cached\">\n");
        for _ in 0..items {
            html.push_str(&format!(
                "<li><a href=\"#\">{}</a> <span class=\"hits\">{} results</span></li>\n",
                escape_text(&corpus::title(&mut rng, 2)),
                rng.gen_range(3..90)
            ));
        }
        html.push_str("</ol>\n</div>\n");
    }
    html.push_str(
        "<p class=\"cache-note\">Results served from your personal cache directory.</p>\n</div>\n",
    );
}

fn render_account_panel(html: &mut String, spec: &SiteSpec, cookie: &str) {
    let mut rng = page_rng(spec, cookie, 11);
    html.push_str("<div id=\"account\">\n");
    html.push_str(&format!("<h3>Account of {}</h3>\n", escape_text(corpus::word(&mut rng))));
    html.push_str("<dl class=\"details\">\n");
    for label in ["Member since", "Orders", "Points", "Status"] {
        html.push_str(&format!(
            "<dt>{}</dt><dd>{}</dd>\n",
            label,
            escape_text(corpus::word(&mut rng))
        ));
    }
    html.push_str("</dl>\n<table class=\"orders\">\n");
    for _ in 0..3 {
        html.push_str(&format!(
            "<tr><td>{}</td><td>{}</td></tr>\n",
            escape_text(&corpus::title(&mut rng, 2)),
            rng.gen_range(1..100)
        ));
    }
    html.push_str("</table>\n<ol class=\"history\">\n");
    for _ in 0..4 {
        html.push_str(&format!("<li>{}</li>\n", escape_text(&corpus::title(&mut rng, 3))));
    }
    html.push_str("</ol>\n<table class=\"addresses\">\n");
    for _ in 0..2 {
        html.push_str(&format!("<tr><td>{}</td></tr>\n", escape_text(&corpus::title(&mut rng, 4))));
    }
    html.push_str("</table>\n</div>\n");
}

fn render_signup_wall(html: &mut String, spec: &SiteSpec) {
    let mut rng = page_rng(spec, "signup", 12);
    html.push_str("<div id=\"signup-error\">\n");
    html.push_str("<h3>Sign up required</h3>\n");
    html.push_str("<p class=\"error\">We could not identify your registration. Please sign up again to continue.</p>\n");
    html.push_str("<form action=\"/signup\" method=\"post\">\n");
    html.push_str("<p><input type=\"text\" name=\"user\"></p>\n");
    html.push_str("<p><input type=\"text\" name=\"email\"></p>\n");
    html.push_str("<p><input type=\"submit\" value=\"Sign up\"></p>\n");
    html.push_str("</form>\n<ul class=\"reasons\">\n");
    for _ in 0..3 {
        html.push_str(&format!("<li>{}</li>\n", escape_text(&corpus::sentence(&mut rng))));
    }
    html.push_str("</ul>\n<div class=\"signup-help\">\n<h4>Why sign up</h4>\n");
    html.push_str(&format!(
        "<p>{}</p>\n<p>{}</p>\n",
        escape_text(&corpus::sentence(&mut rng)),
        escape_text(&corpus::sentence(&mut rng))
    ));
    html.push_str("</div>\n</div>\n");
}

fn render_recs(html: &mut String, spec: &SiteSpec, cookie: &str) {
    let mut rng = page_rng(spec, cookie, 13);
    html.push_str("<div id=\"recs\">\n<h3>Recommended for you</h3>\n<ol>\n");
    for _ in 0..4 {
        html.push_str(&format!("<li>{}</li>\n", escape_text(&corpus::title(&mut rng, 3))));
    }
    html.push_str("</ol>\n</div>\n");
}

fn render_ads(html: &mut String, spec: &SiteSpec, noise_rng: &mut (impl Rng + ?Sized)) {
    html.push_str("<div id=\"ads\">\n");
    for i in 0..spec.noise.ad_slots {
        html.push_str(&format!(
            "<div class=\"ad-slot\"><p>{}</p><img src=\"/static/ad{}.png\"></div>\n",
            escape_text(&corpus::words(noise_rng, 3)),
            i
        ));
    }
    html.push_str("</div>\n");
}

fn render_footer(
    html: &mut String,
    spec: &SiteSpec,
    input: &RenderInput<'_>,
    _noise_rng: &mut (impl Rng + ?Sized),
) {
    html.push_str("<div id=\"footer\">\n");
    html.push_str(&format!("<p>Copyright 2007 {}</p>\n", escape_text(&spec.domain)));
    if spec.layout != SiteLayout::Minimal {
        html.push_str("<ul class=\"links\"><li><a href=\"/\">Home</a></li><li><a href=\"/page/1\">News</a></li><li><a href=\"/page/2\">About</a></li></ul>\n");
    }
    if spec.noise.timestamp {
        html.push_str(&format!(
            "<p class=\"timestamp\">Page generated at t plus {} ms</p>\n",
            input.now.as_millis()
        ));
    }
    html.push_str("</div>\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::Category;
    use crate::spec::{CookieSpec, NoiseSpec};

    fn site() -> SiteSpec {
        SiteSpec::new("t.example", Category::News, 11)
            .with_cookie(CookieSpec::tracker("trk"))
            .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium))
    }

    fn render(
        spec: &SiteSpec,
        path: &str,
        cookies: &[(String, String)],
        noise_seed: u64,
    ) -> String {
        let input = RenderInput { spec, path, cookies, now: SimTime::from_secs(60) };
        let mut rng = StdRng::seed_from_u64(noise_seed);
        render_page(&input, &mut rng)
    }

    fn pair(n: &str) -> (String, String) {
        (n.to_string(), "v".to_string())
    }

    #[test]
    fn base_content_is_deterministic() {
        let spec = site().with_noise(NoiseSpec::none());
        let a = render(&spec, "/page/1", &[], 1);
        let b = render(&spec, "/page/1", &[], 2);
        // With noise disabled, renders are identical apart from the page
        // token script (which both detectors ignore); strip it for equality.
        let strip = |s: &str| -> String {
            s.lines().filter(|l| !l.contains("pageToken")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn different_pages_different_content() {
        let spec = site();
        assert_ne!(render(&spec, "/page/1", &[], 1), render(&spec, "/page/2", &[], 1));
    }

    #[test]
    fn tracker_cookie_does_not_change_page() {
        let spec = site().with_noise(NoiseSpec::none());
        let with = render(&spec, "/page/1", &[pair("trk")], 1);
        let without = render(&spec, "/page/1", &[], 1);
        let strip = |s: &str| -> String {
            s.lines().filter(|l| !l.contains("pageToken")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(strip(&with), strip(&without));
    }

    #[test]
    fn preference_cookie_changes_structure() {
        let spec = site().with_noise(NoiseSpec::none());
        let with = render(&spec, "/page/1", &[pair("pref")], 1);
        let without = render(&spec, "/page/1", &[], 1);
        assert!(with.contains("id=\"sidebar\""));
        assert!(!without.contains("id=\"sidebar\""));
        assert!(with.contains("id=\"recs\""));
        assert!(without.contains("id=\"ads\""));
    }

    #[test]
    fn signup_wall_renders_without_cookie() {
        let spec = SiteSpec::new("s.example", Category::Shopping, 3).with_cookie(
            CookieSpec::useful("uid", CookieRole::SignUp, EffectSize::Large).scoped("/account"),
        );
        let with = render(&spec, "/account/home", &[pair("uid")], 1);
        let without = render(&spec, "/account/home", &[], 1);
        assert!(with.contains("id=\"account\""));
        assert!(without.contains("id=\"signup-error\""));
        // Off the scoped path, neither renders.
        let other = render(&spec, "/page/1", &[pair("uid")], 1);
        assert!(!other.contains("id=\"account\"") && !other.contains("id=\"signup-error\""));
    }

    #[test]
    fn performance_cookie_adds_recent_panel() {
        let spec = SiteSpec::new("p.example", Category::Reference, 4)
            .with_cookie(CookieSpec::useful("cache", CookieRole::Performance, EffectSize::Medium));
        assert!(render(&spec, "/", &[pair("cache")], 1).contains("id=\"recent\""));
        assert!(!render(&spec, "/", &[], 1).contains("id=\"recent\""));
    }

    #[test]
    fn noise_changes_ads_not_structure() {
        let spec = site();
        let a = render(&spec, "/page/1", &[], 1);
        let b = render(&spec, "/page/1", &[], 99);
        assert_ne!(a, b, "ad/ticker noise must vary");
        // Element skeleton is identical: compare tag sequences.
        let tags = |s: &str| -> Vec<String> {
            let doc = cp_html::parse_document(s);
            doc.preorder_all().map(|n| doc.node_name(n).to_string()).collect()
        };
        assert_eq!(tags(&a), tags(&b), "noise must not alter the DOM skeleton");
    }

    #[test]
    fn burst_changes_structure() {
        let spec = site().with_noise(NoiseSpec::bursty(1.0));
        let bursty = render(&spec, "/", &[], 1);
        assert!(bursty.contains("id=\"breaking\""));
        assert!(!bursty.contains("id=\"banner\""));
        let calm = render(&site(), "/", &[], 1);
        assert!(calm.contains("id=\"banner\""));
    }

    #[test]
    fn layouts_render_distinct_skeletons() {
        use crate::spec::SiteLayout;
        let base = |layout| {
            let spec = site().with_noise(NoiseSpec::none()).with_layout(layout);
            render(&spec, "/page/1", &[], 1)
        };
        let classic = base(SiteLayout::Classic);
        let portal = base(SiteLayout::Portal);
        let minimal = base(SiteLayout::Minimal);
        assert!(classic.contains("id=\"banner\"") && !classic.contains("id=\"headlines\""));
        assert!(portal.contains("id=\"headlines\""));
        assert!(!minimal.contains("id=\"banner\""));
        assert!(minimal.contains("class=\"nav\""));
        // All three still parse and carry the content sections.
        for html in [&classic, &portal, &minimal] {
            let doc = cp_html::parse_document(html);
            assert!(doc.body().is_some());
            assert!(html.contains("class=\"section\""));
        }
    }

    #[test]
    fn layout_does_not_change_cookie_effects() {
        use crate::spec::SiteLayout;
        for layout in [SiteLayout::Classic, SiteLayout::Portal, SiteLayout::Minimal] {
            let spec = site().with_noise(NoiseSpec::none()).with_layout(layout);
            let with = render(&spec, "/page/1", &[pair("pref")], 1);
            let without = render(&spec, "/page/1", &[], 1);
            assert!(with.contains("id=\"sidebar\""), "{layout:?}");
            assert!(!without.contains("id=\"sidebar\""), "{layout:?}");
        }
    }

    #[test]
    fn portal_headlines_are_deterministic() {
        use crate::spec::SiteLayout;
        let spec = site().with_layout(SiteLayout::Portal);
        let a = render(&spec, "/", &[], 1);
        let b = render(&spec, "/", &[], 99);
        let grab = |s: &str| {
            let doc = cp_html::parse_document(s);
            let h = doc.element_by_id("headlines").unwrap();
            doc.text_content(h)
        };
        assert_eq!(grab(&a), grab(&b), "headline grid must not rotate with noise");
    }

    #[test]
    fn page_parses_cleanly() {
        let spec = site();
        let html = render(&spec, "/", &[pair("pref")], 1);
        let doc = cp_html::parse_document(&html);
        assert!(doc.body().is_some());
        assert!(doc.len() > 50, "page should have a rich DOM, got {}", doc.len());
    }
}
