//! Site and cookie specifications — the ground-truth model of a synthetic
//! website.

use cp_cookies::SimDuration;
use cp_runtime::json::{Json, ToJson};

use crate::category::Category;

/// What a cookie is *actually for* — the ground truth the paper established
/// by manual verification, available here by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CookieRole {
    /// Long-term user tracking; no effect on rendering. The common case.
    Tracking,
    /// Site-analytics beacons; no effect on rendering.
    Analytics,
    /// Stores a user preference (theme/layout); pages render a visibly
    /// different variant when it is present (Table 2: P1, P4, P6).
    Preference,
    /// Identifies a signed-up user; without it, account pages render a
    /// sign-up error instead of content (Table 2: P3, P5).
    SignUp,
    /// Keys a server-side cache of the user's recent queries; with it, a
    /// "recent results" panel renders (Table 2: P2's unique usage).
    Performance,
    /// A session-state cookie (session-lifetime, not persistent). Not under
    /// test — CookiePicker only targets first-party *persistent* cookies —
    /// but present for realism.
    SessionState,
}

impl CookieRole {
    /// Whether this role makes the cookie *really useful* in the paper's
    /// sense: disabling it causes a perceivable page change.
    pub fn is_useful(self) -> bool {
        matches!(self, CookieRole::Preference | CookieRole::SignUp | CookieRole::Performance)
    }
}

/// Which pages a cookie is attached to / affects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageSelector {
    /// Every page of the site (path `/`).
    All,
    /// Only paths under the given prefix (the cookie's `Path` attribute).
    Prefix(
        /// The path prefix, e.g. `/account`.
        String,
    ),
}

impl PageSelector {
    /// The cookie `Path` attribute value this selector corresponds to.
    pub fn cookie_path(&self) -> &str {
        match self {
            PageSelector::All => "/",
            PageSelector::Prefix(p) => p,
        }
    }

    /// Whether `path` is selected.
    pub fn matches(&self, path: &str) -> bool {
        match self {
            PageSelector::All => true,
            PageSelector::Prefix(p) => path.starts_with(p.as_str()),
        }
    }
}

/// How big the rendered difference is when a useful cookie is disabled —
/// used to spread the Table 2 similarity scores across their observed range
/// (NTreeSim 0.226–0.667).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectSize {
    /// One extra panel changes.
    Small,
    /// Several panels change.
    Medium,
    /// Most of the page changes (e.g. sign-up wall).
    Large,
}

/// Specification of one cookie a site sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CookieSpec {
    /// Cookie name.
    pub name: String,
    /// Ground-truth role.
    pub role: CookieRole,
    /// Lifetime; `None` = session cookie. (Per the authors' measurement
    /// study, >60% of first-party persistent cookies live ≥ 1 year.)
    pub lifetime: Option<SimDuration>,
    /// Which pages the cookie is scoped to (its `Path`) and, for useful
    /// roles, where its rendering effect shows.
    pub scope: PageSelector,
    /// Rendering-effect magnitude for useful roles.
    pub effect: EffectSize,
}

impl CookieSpec {
    /// A persistent tracking cookie on `/` with a one-year lifetime.
    pub fn tracker(name: impl Into<String>) -> Self {
        CookieSpec {
            name: name.into(),
            role: CookieRole::Tracking,
            lifetime: Some(SimDuration::from_days(365)),
            scope: PageSelector::All,
            effect: EffectSize::Medium,
        }
    }

    /// A persistent useful cookie with the given role.
    pub fn useful(name: impl Into<String>, role: CookieRole, effect: EffectSize) -> Self {
        debug_assert!(role.is_useful());
        CookieSpec {
            name: name.into(),
            role,
            lifetime: Some(SimDuration::from_days(365)),
            scope: PageSelector::All,
            effect,
        }
    }

    /// A session-state cookie.
    pub fn session(name: impl Into<String>) -> Self {
        CookieSpec {
            name: name.into(),
            role: CookieRole::SessionState,
            lifetime: None,
            scope: PageSelector::All,
            effect: EffectSize::Medium,
        }
    }

    /// Builder-style: restricts the cookie (and its effect) to a path
    /// prefix.
    pub fn scoped(mut self, prefix: impl Into<String>) -> Self {
        self.scope = PageSelector::Prefix(prefix.into());
        self
    }

    /// Builder-style: overrides the lifetime.
    pub fn with_lifetime(mut self, lifetime: Option<SimDuration>) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Whether this spec describes a persistent cookie.
    pub fn is_persistent(&self) -> bool {
        self.lifetime.is_some()
    }
}

/// Page-dynamics noise configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSpec {
    /// Number of rotating ad slots (leaf-level text changes per render).
    pub ad_slots: usize,
    /// Whether a "last updated" timestamp renders in the footer.
    pub timestamp: bool,
    /// Whether a one-line news ticker renders (text replaced per render,
    /// same context).
    pub ticker: bool,
    /// Number of rotating story-teaser paragraphs (text-heavy dynamics:
    /// prose that changes per render in a stable context — not ad-classed,
    /// not datetime-shaped, so only CVCE's `s` term can forgive it).
    pub dynamic_teasers: usize,
    /// Probability per render of a **structural burst**: the front page
    /// swaps in a breaking-news layout, changing upper DOM levels. This is
    /// the page-dynamics failure mode behind the paper's three false
    /// "useful" sites (S1, S10, S27).
    pub structural_burst_prob: f64,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        NoiseSpec {
            ad_slots: 3,
            timestamp: true,
            ticker: true,
            dynamic_teasers: 0,
            structural_burst_prob: 0.0,
        }
    }
}

impl NoiseSpec {
    /// Leaf-level noise only — the benign case RSTM/CVCE must ignore.
    pub fn benign() -> Self {
        NoiseSpec::default()
    }

    /// Noise including occasional structural bursts.
    pub fn bursty(prob: f64) -> Self {
        NoiseSpec { structural_burst_prob: prob, ..NoiseSpec::default() }
    }

    /// No dynamics at all (for calibration tests).
    pub fn none() -> Self {
        NoiseSpec {
            ad_slots: 0,
            timestamp: false,
            ticker: false,
            dynamic_teasers: 0,
            structural_burst_prob: 0.0,
        }
    }
}

/// Base page-layout archetype. Varying the skeleton across the population
/// shows the detectors are not tuned to one page shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SiteLayout {
    /// Header + nav, ad banner, main column with side ads, footer — the
    /// default 2007 portal-ish shape.
    #[default]
    Classic,
    /// News-portal: a deterministic headline grid above the fold and a
    /// right rail holding the ads.
    Portal,
    /// Minimal single-column blog-style layout.
    Minimal,
}

/// Origin latency profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyProfile {
    /// Typical 2007 origin.
    Normal,
    /// Chronically slow origin (Table 1's S4, S17, S28 at ~10 s).
    Slow,
    /// Fast origin / CDN.
    Fast,
}

/// Full specification of a synthetic website.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Host name, e.g. `shopping2.example`.
    pub domain: String,
    /// Directory category the site was "sampled" from.
    pub category: Category,
    /// Number of content pages (`/page/0` … `/page/n-1`).
    pub pages: usize,
    /// The cookies this site sets.
    pub cookies: Vec<CookieSpec>,
    /// Page-dynamics noise.
    pub noise: NoiseSpec,
    /// Origin latency profile.
    pub latency: LatencyProfile,
    /// Content-volume knob: paragraphs per page section.
    pub richness: usize,
    /// Base page-layout archetype.
    pub layout: SiteLayout,
    /// Whether the front page is a temporary-redirect entry page
    /// (`/` → `302` → `/home`), the pattern FORCUM's step 1 must see
    /// through to find "the real initial container document page".
    pub entry_redirect: bool,
    /// Base seed for the site's deterministic content.
    pub seed: u64,
}

impl SiteSpec {
    /// A minimal site with the given domain and seed.
    pub fn new(domain: impl Into<String>, category: Category, seed: u64) -> Self {
        SiteSpec {
            domain: domain.into(),
            category,
            pages: 12,
            cookies: Vec::new(),
            noise: NoiseSpec::default(),
            latency: LatencyProfile::Normal,
            richness: 3,
            layout: SiteLayout::default(),
            entry_redirect: false,
            seed,
        }
    }

    /// Builder-style: adds a cookie spec.
    pub fn with_cookie(mut self, cookie: CookieSpec) -> Self {
        self.cookies.push(cookie);
        self
    }

    /// Builder-style: sets the noise spec.
    pub fn with_noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = noise;
        self
    }

    /// Builder-style: sets the latency profile.
    pub fn with_latency(mut self, latency: LatencyProfile) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style: makes the front page a temporary-redirect entry page.
    pub fn with_entry_redirect(mut self) -> Self {
        self.entry_redirect = true;
        self
    }

    /// Builder-style: sets the layout archetype.
    pub fn with_layout(mut self, layout: SiteLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Names of the cookies that are *really useful* (ground truth): the
    /// persistent cookies whose absence perceivably changes some page.
    pub fn useful_cookie_names(&self) -> Vec<&str> {
        self.cookies
            .iter()
            .filter(|c| c.is_persistent() && c.role.is_useful())
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Number of persistent cookies the site sets.
    pub fn persistent_count(&self) -> usize {
        self.cookies.iter().filter(|c| c.is_persistent()).count()
    }

    /// The site's canonical page paths, in visit order: the front page,
    /// then the section pages hosting path-scoped cookies (so their
    /// cookies get exercised early), then the content pages.
    pub fn page_paths(&self) -> Vec<String> {
        let mut paths = vec!["/".to_string()];
        // Pages hosting scoped cookies' effects come early in a visit.
        for c in &self.cookies {
            if let PageSelector::Prefix(p) = &c.scope {
                let page = format!("{}/home", p.trim_end_matches('/'));
                if !paths.contains(&page) {
                    paths.push(page);
                }
            }
        }
        for i in 1..self.pages {
            paths.push(format!("/page/{i}"));
        }
        paths
    }
}

impl ToJson for CookieSpec {
    fn to_json(&self) -> Json {
        let role = match self.role {
            CookieRole::Tracking => "tracking",
            CookieRole::Analytics => "analytics",
            CookieRole::Preference => "preference",
            CookieRole::SignUp => "sign_up",
            CookieRole::Performance => "performance",
            CookieRole::SessionState => "session_state",
        };
        let effect = match self.effect {
            EffectSize::Small => "small",
            EffectSize::Medium => "medium",
            EffectSize::Large => "large",
        };
        Json::object()
            .set("name", self.name.as_str())
            .set("role", role)
            .set("lifetime_ms", self.lifetime.map_or(Json::Null, |d| Json::from(d.as_millis())))
            .set("scope", self.scope.cookie_path())
            .set("effect", effect)
    }
}

impl ToJson for NoiseSpec {
    fn to_json(&self) -> Json {
        Json::object()
            .set("ad_slots", self.ad_slots)
            .set("timestamp", self.timestamp)
            .set("ticker", self.ticker)
            .set("dynamic_teasers", self.dynamic_teasers)
            .set("structural_burst_prob", self.structural_burst_prob)
    }
}

impl ToJson for SiteSpec {
    fn to_json(&self) -> Json {
        let latency = match self.latency {
            LatencyProfile::Normal => "normal",
            LatencyProfile::Slow => "slow",
            LatencyProfile::Fast => "fast",
        };
        let layout = match self.layout {
            SiteLayout::Classic => "classic",
            SiteLayout::Portal => "portal",
            SiteLayout::Minimal => "minimal",
        };
        Json::object()
            .set("domain", self.domain.as_str())
            .set("category", self.category.slug())
            .set("pages", self.pages)
            .set("cookies", self.cookies.iter().map(ToJson::to_json).collect::<Vec<_>>())
            .set("noise", self.noise.to_json())
            .set("latency", latency)
            .set("layout", layout)
            .set("richness", self.richness)
            .set("entry_redirect", self.entry_redirect)
            // Hex keeps all 64 bits exact (JSON numbers would round trip
            // through f64 for seeds above 2^63).
            .set("seed", format!("0x{:016x}", self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_usefulness() {
        assert!(CookieRole::Preference.is_useful());
        assert!(CookieRole::SignUp.is_useful());
        assert!(CookieRole::Performance.is_useful());
        assert!(!CookieRole::Tracking.is_useful());
        assert!(!CookieRole::Analytics.is_useful());
        assert!(!CookieRole::SessionState.is_useful());
    }

    #[test]
    fn selector_matching() {
        assert!(PageSelector::All.matches("/anything"));
        let s = PageSelector::Prefix("/account".into());
        assert!(s.matches("/account/home"));
        assert!(!s.matches("/other"));
        assert_eq!(s.cookie_path(), "/account");
    }

    #[test]
    fn spec_builders() {
        let c = CookieSpec::tracker("uid").scoped("/shop");
        assert!(c.is_persistent());
        assert_eq!(c.scope, PageSelector::Prefix("/shop".into()));
        let s = CookieSpec::session("sid");
        assert!(!s.is_persistent());
    }

    #[test]
    fn ground_truth_names() {
        let site = SiteSpec::new("x.example", Category::Shopping, 1)
            .with_cookie(CookieSpec::tracker("t1"))
            .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium))
            .with_cookie(CookieSpec::session("sid"));
        assert_eq!(site.useful_cookie_names(), vec!["pref"]);
        assert_eq!(site.persistent_count(), 2);
    }

    #[test]
    fn page_paths_include_scoped_pages() {
        let site = SiteSpec::new("x.example", Category::News, 1).with_cookie(
            CookieSpec::useful("auth", CookieRole::SignUp, EffectSize::Large).scoped("/account"),
        );
        let paths = site.page_paths();
        assert!(paths.contains(&"/".to_string()));
        assert!(paths.contains(&"/account/home".to_string()));
    }
}
