//! The lazy universe: any site, derived on demand from `(seed, host)`.
//!
//! [`population`](crate::population) materializes fixed `Vec<SiteSpec>`s —
//! fine for the paper's 30 + 6 sites, structurally incapable of the
//! millions-of-hosts worlds the service roadmap needs. A [`Universe`] is
//! the pure-function alternative: `derive(host)` computes the [`SiteSpec`]
//! for any host from the world seed and the host name alone, in O(1) time
//! and memory, with nothing materialized up front.
//!
//! Two ingredients:
//!
//! * **Overlays** — the paper populations (Table 1's S1–S30 and Table 2's
//!   P1–P6) are pinned by name inside every universe. They draw from one
//!   *sequential* RNG stream shared across sites, so they cannot be
//!   re-derived per host; the universe materializes these 36 specs once
//!   (a few KB) and serves them bit-identically to
//!   [`table1_population`]/[`table2_population`] at the same seed.
//! * **Procedural hosts** — a [`WorldKind::Uniform`]`(n)` universe also
//!   recognizes the `n` hosts `{slug}-u{index}.example`. Each spec is drawn
//!   by seeding an RNG with an FNV-1a hash of `(world_seed, host)` and
//!   feeding it through the same procedural shape generator as
//!   [`random_site`](crate::population::random_site) — identical site
//!   statistics, but keyed by host instead of index.
//!
//! Everything else (enumeration, keyset pagination, the [`SimNetwork`]
//! resolver) is derived from those two rules.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use cp_net::{HostResolver, LatencyModel, Server, SimNetwork};
use cp_runtime::rng::{SeedableRng, StdRng};
use cp_runtime::sync::Mutex;

use crate::category::Category;
use crate::population::{self, table1_population, table2_population};
use crate::server::SiteServer;
use crate::spec::SiteSpec;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Which hosts a [`Universe`] *enumerates* (lists, counts, paginates).
///
/// Note that `derive` resolves the pinned overlay hosts in every kind;
/// the kind only selects the enumerable population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldKind {
    /// The paper's Table 1 population: 30 named sites, enumerated in
    /// lexicographic host order (matching the old materialized world).
    Table1,
    /// `n` procedural hosts `{slug}-u{index}.example`, enumerated in index
    /// order so any pagination cursor maps back to an index in O(1).
    Uniform(u64),
}

impl WorldKind {
    /// Parses `"table1"` or `"uniform:N"` (the `serve --world` syntax).
    pub fn parse(s: &str) -> Result<WorldKind, String> {
        if s == "table1" {
            return Ok(WorldKind::Table1);
        }
        if let Some(n) = s.strip_prefix("uniform:") {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("invalid world size in {s:?}: expected uniform:N"))?;
            if n == 0 {
                return Err("uniform world needs at least one host".into());
            }
            return Ok(WorldKind::Uniform(n));
        }
        Err(format!("unknown world {s:?}: expected table1 or uniform:N"))
    }
}

impl FromStr for WorldKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WorldKind::parse(s)
    }
}

impl fmt::Display for WorldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldKind::Table1 => write!(f, "table1"),
            WorldKind::Uniform(n) => write!(f, "uniform:{n}"),
        }
    }
}

/// A seeded world in which any site is a pure function of its host name.
///
/// Construction is O(overlays) — the 36 paper sites — regardless of the
/// enumerable world size: a `uniform:1000000` universe allocates nothing
/// for its million procedural hosts until each is derived.
pub struct Universe {
    seed: u64,
    kind: WorldKind,
    /// The pinned paper sites, keyed by host. `BTreeMap` so Table-1
    /// enumeration order (lexicographic) falls out of iteration.
    overlays: BTreeMap<String, Arc<SiteSpec>>,
    /// Table-1 hosts in enumeration order (the overlay keys that belong to
    /// the Table-1 population — Table 2's pinned hosts resolve but are not
    /// enumerated, exactly like the old `EmbeddedWorld`).
    table1_hosts: Vec<String>,
}

impl Universe {
    /// Creates a universe with the given seed and enumerable world kind.
    pub fn new(seed: u64, kind: WorldKind) -> Self {
        let mut overlays = BTreeMap::new();
        let mut table1_hosts = Vec::new();
        for spec in table1_population(seed) {
            table1_hosts.push(spec.domain.clone());
            overlays.insert(spec.domain.clone(), Arc::new(spec));
        }
        table1_hosts.sort_unstable();
        for spec in table2_population(seed) {
            overlays.insert(spec.domain.clone(), Arc::new(spec));
        }
        Universe { seed, kind, overlays, table1_hosts }
    }

    /// The paper's Table-1 world (the service default).
    pub fn table1(seed: u64) -> Self {
        Universe::new(seed, WorldKind::Table1)
    }

    /// A procedural world of `n` hosts.
    pub fn uniform(seed: u64, n: u64) -> Self {
        Universe::new(seed, WorldKind::Uniform(n))
    }

    /// The world seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The enumerable world kind.
    pub fn kind(&self) -> WorldKind {
        self.kind
    }

    /// Number of enumerable hosts.
    pub fn host_count(&self) -> u64 {
        match self.kind {
            WorldKind::Table1 => self.table1_hosts.len() as u64,
            WorldKind::Uniform(n) => n,
        }
    }

    /// The enumerable host at `index` in canonical order.
    pub fn host_at(&self, index: u64) -> Option<String> {
        match self.kind {
            WorldKind::Table1 => self.table1_hosts.get(index as usize).cloned(),
            WorldKind::Uniform(n) => (index < n).then(|| uniform_host(index)),
        }
    }

    /// The canonical-order index of an enumerable host. Pinned overlay
    /// hosts outside the enumerable set (for example Table 2's `p1.example`
    /// in a uniform world) have no index.
    pub fn index_of(&self, host: &str) -> Option<u64> {
        match self.kind {
            WorldKind::Table1 => {
                self.table1_hosts.binary_search_by(|h| h.as_str().cmp(host)).ok().map(|i| i as u64)
            }
            WorldKind::Uniform(n) => uniform_index(host).filter(|&i| i < n),
        }
    }

    /// Whether `host` exists in this universe (overlay or enumerable),
    /// without deriving its spec.
    pub fn contains(&self, host: &str) -> bool {
        self.overlays.contains_key(host) || self.index_of(host).is_some()
    }

    /// Derives the site for `host`: the pinned overlay spec if the host is
    /// a paper site, a procedurally derived spec if it is an enumerable
    /// uniform host, `None` otherwise.
    pub fn derive(&self, host: &str) -> Option<Arc<SiteSpec>> {
        if let Some(spec) = self.overlays.get(host) {
            return Some(Arc::clone(spec));
        }
        let index = self.index_of(host)?;
        let WorldKind::Uniform(_) = self.kind else { return None };
        let key = host_key(self.seed, host);
        let mut rng = StdRng::seed_from_u64(key);
        let site = SiteSpec::new(
            host.to_string(),
            Category::ALL[(index as usize) % Category::ALL.len()],
            key,
        );
        Some(Arc::new(population::procedural_shape(&mut rng, site)))
    }

    /// Keyset pagination over the enumerable hosts in canonical order:
    /// up to `limit` hosts strictly after `after` (or from the start when
    /// `after` is `None`). Returns `None` for an unknown cursor.
    pub fn hosts_after(&self, after: Option<&str>, limit: usize) -> Option<Vec<String>> {
        let start = match after {
            None => 0,
            Some(host) => self.index_of(host)? + 1,
        };
        let end = self.host_count().min(start.saturating_add(limit as u64));
        Some((start..end).map(|i| self.host_at(i).expect("index < host_count")).collect())
    }
}

/// The enumerable host name for `index` in a uniform world.
pub fn uniform_host(index: u64) -> String {
    let slug = Category::ALL[(index as usize) % Category::ALL.len()].slug();
    format!("{slug}-u{index}.example")
}

/// Inverse of [`uniform_host`]: `Some(index)` iff `host` is exactly the
/// canonical spelling for some index (slug consistent with `index % |C|`).
fn uniform_index(host: &str) -> Option<u64> {
    let stem = host.strip_suffix(".example")?;
    let (_, digits) = stem.rsplit_once("-u")?;
    if digits.is_empty() || digits.len() > 19 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    // No leading zeros: every index has exactly one canonical spelling.
    if digits.len() > 1 && digits.starts_with('0') {
        return None;
    }
    let index: u64 = digits.parse().ok()?;
    (host == uniform_host(index)).then_some(index)
}

/// The per-host derivation key: FNV-1a over the host bytes, offset by the
/// world seed. This is the seed of the RNG that draws the site shape *and*
/// the derived spec's `seed` field, so renders, cookies, and noise are all
/// pure functions of `(world_seed, host)`.
fn host_key(world_seed: u64, host: &str) -> u64 {
    let mut h = FNV_BASIS ^ world_seed.rotate_left(17);
    for b in host.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`HostResolver`] backed by a [`Universe`]: lets a [`SimNetwork`]
/// serve any host in the universe without registering servers up front.
///
/// Derived [`SiteServer`]s are memoized so repeat visits to a host reuse
/// one server (and its noise RNG stream); the memo is cleared wholesale
/// when it reaches `capacity`, bounding memory on huge worlds.
pub struct UniverseResolver {
    universe: Arc<Universe>,
    servers: Mutex<HashMap<String, (Arc<SiteServer>, LatencyModel)>>,
    capacity: usize,
}

impl UniverseResolver {
    /// Creates a resolver with the default memo capacity (1024 servers).
    pub fn new(universe: Arc<Universe>) -> Self {
        UniverseResolver::with_capacity(universe, 1024)
    }

    /// Creates a resolver whose server memo holds at most `capacity`
    /// entries before being reset.
    pub fn with_capacity(universe: Arc<Universe>, capacity: usize) -> Self {
        UniverseResolver {
            universe,
            servers: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
        }
    }

    /// The underlying universe.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Convenience: a network whose unregistered hosts resolve against
    /// `universe`.
    pub fn network(universe: Arc<Universe>, latency_seed: u64) -> SimNetwork {
        SimNetwork::new(latency_seed).with_resolver(Arc::new(UniverseResolver::new(universe)))
    }
}

impl HostResolver for UniverseResolver {
    fn resolve(&self, host: &str) -> Option<(Arc<dyn Server>, LatencyModel)> {
        let mut servers = self.servers.lock();
        if let Some((server, latency)) = servers.get(host) {
            return Some((Arc::clone(server) as Arc<dyn Server>, latency.clone()));
        }
        let spec = self.universe.derive(host)?;
        let server = Arc::new(SiteServer::new((*spec).clone()));
        let latency = server.latency_model();
        if servers.len() >= self.capacity {
            servers.clear();
        }
        servers.insert(host.to_string(), (Arc::clone(&server), latency.clone()));
        Some((server, latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_cookies::SimTime;
    use cp_net::{Method, Request, Url};

    #[test]
    fn world_kind_parses_and_displays() {
        assert_eq!(WorldKind::parse("table1"), Ok(WorldKind::Table1));
        assert_eq!(WorldKind::parse("uniform:42"), Ok(WorldKind::Uniform(42)));
        assert_eq!("uniform:1000000".parse(), Ok(WorldKind::Uniform(1_000_000)));
        assert!(WorldKind::parse("uniform:0").is_err());
        assert!(WorldKind::parse("uniform:x").is_err());
        assert!(WorldKind::parse("zipf").is_err());
        assert_eq!(WorldKind::Uniform(9).to_string(), "uniform:9");
        assert_eq!(WorldKind::Table1.to_string(), "table1");
    }

    #[test]
    fn overlays_match_materialized_populations() {
        for seed in [7u64, 42, 12345] {
            let u = Universe::table1(seed);
            for spec in table1_population(seed).iter().chain(table2_population(seed).iter()) {
                let derived = u.derive(&spec.domain).expect("overlay host resolves");
                assert_eq!(&*derived, spec, "overlay drift for {}", spec.domain);
            }
        }
    }

    #[test]
    fn table1_enumeration_is_sorted_and_complete() {
        let u = Universe::table1(7);
        assert_eq!(u.host_count(), 30);
        let hosts = u.hosts_after(None, 100).unwrap();
        assert_eq!(hosts.len(), 30);
        let mut sorted = hosts.clone();
        sorted.sort_unstable();
        assert_eq!(hosts, sorted);
        for (i, h) in hosts.iter().enumerate() {
            assert_eq!(u.index_of(h), Some(i as u64));
            assert_eq!(u.host_at(i as u64).as_deref(), Some(h.as_str()));
        }
        // Table-2 pins resolve but are not enumerable.
        assert!(u.derive("p1.example").is_some());
        assert_eq!(u.index_of("p1.example"), None);
    }

    #[test]
    fn uniform_hosts_round_trip() {
        let u = Universe::uniform(7, 1_000_000);
        assert_eq!(u.host_count(), 1_000_000);
        for index in [0u64, 1, 14, 15, 999_999] {
            let host = u.host_at(index).unwrap();
            assert_eq!(u.index_of(&host), Some(index), "{host}");
            assert!(u.contains(&host));
        }
        assert_eq!(u.host_at(1_000_000), None);
        assert!(u.derive("news-u1000000.example").is_none(), "beyond world size");
        assert!(u.derive("nope.example").is_none());
        // Non-canonical spellings of a valid index do not resolve.
        assert!(u.derive("news-u01.example").is_none());
        assert!(u.derive("sports-u0.example").is_none(), "wrong slug for index 0");
    }

    #[test]
    fn uniform_derivation_is_deterministic_and_bounded() {
        let a = Universe::uniform(7, 1000);
        let b = Universe::uniform(7, 1000);
        for index in 0..50u64 {
            let host = uniform_host(index);
            let sa = a.derive(&host).unwrap();
            let sb = b.derive(&host).unwrap();
            assert_eq!(*sa, *sb, "derivation must be a pure function of (seed, host)");
            assert_eq!(sa.domain, host);
            // Same shape contract as random_site: 1–5 persistent cookies,
            // at most one useful, never bursty.
            assert!((1..=5).contains(&sa.persistent_count()), "{host}");
            assert!(sa.useful_cookie_names().len() <= 1, "{host}");
            assert_eq!(sa.noise.structural_burst_prob, 0.0, "{host}");
        }
        // A different world seed derives a different world.
        let c = Universe::uniform(8, 1000);
        let host = uniform_host(3);
        assert_ne!(*a.derive(&host).unwrap(), *c.derive(&host).unwrap());
    }

    #[test]
    fn pagination_walks_the_world_exactly_once() {
        let u = Universe::uniform(7, 47);
        let mut seen = Vec::new();
        let mut cursor: Option<String> = None;
        loop {
            let page = u.hosts_after(cursor.as_deref(), 10).unwrap();
            if page.is_empty() {
                break;
            }
            cursor = page.last().cloned();
            seen.extend(page);
        }
        assert_eq!(seen.len(), 47);
        assert_eq!(seen, (0..47).map(uniform_host).collect::<Vec<_>>());
        assert_eq!(u.hosts_after(Some("not-a-host.example"), 10), None, "unknown cursor");
    }

    #[test]
    fn resolver_serves_derived_sites_over_the_network() {
        let universe = Arc::new(Universe::uniform(7, 100));
        let net = UniverseResolver::network(Arc::clone(&universe), 7);
        let host = uniform_host(12);
        // "/page/1" is a container page on every layout (the front page may
        // be an entry redirect on ~15% of procedural sites).
        let req = Request::new(Method::Get, Url::parse(&format!("http://{host}/page/1")).unwrap());
        let out = net.fetch(&req, SimTime::EPOCH).unwrap();
        assert!(out.response.status.is_success());
        assert!(!out.response.body.is_empty());
        // The same fetch twice reuses the memoized server.
        let again = net.fetch(&req, SimTime::EPOCH).unwrap();
        assert!(again.response.status.is_success());
        // Out-of-world hosts stay unknown.
        let bad = Request::new(Method::Get, Url::parse("http://zzz.example/").unwrap());
        assert!(net.fetch(&bad, SimTime::EPOCH).is_err());
    }
}
