//! The 15 top-level categories of 2007's `directory.google.com`, from which
//! the paper sampled its test sites (§5.2.1).

use std::fmt;

/// A Google Directory top-level category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Category {
    Arts,
    Business,
    Computers,
    Games,
    Health,
    Home,
    KidsAndTeens,
    News,
    Recreation,
    Reference,
    Regional,
    Science,
    Shopping,
    Society,
    Sports,
}

impl Category {
    /// All 15 categories, in directory order.
    pub const ALL: [Category; 15] = [
        Category::Arts,
        Category::Business,
        Category::Computers,
        Category::Games,
        Category::Health,
        Category::Home,
        Category::KidsAndTeens,
        Category::News,
        Category::Recreation,
        Category::Reference,
        Category::Regional,
        Category::Science,
        Category::Shopping,
        Category::Society,
        Category::Sports,
    ];

    /// A short lowercase slug usable in synthetic domain names.
    pub fn slug(self) -> &'static str {
        match self {
            Category::Arts => "arts",
            Category::Business => "business",
            Category::Computers => "computers",
            Category::Games => "games",
            Category::Health => "health",
            Category::Home => "home",
            Category::KidsAndTeens => "kids",
            Category::News => "news",
            Category::Recreation => "recreation",
            Category::Reference => "reference",
            Category::Regional => "regional",
            Category::Science => "science",
            Category::Shopping => "shopping",
            Category::Society => "society",
            Category::Sports => "sports",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::KidsAndTeens => "Kids and Teens",
            other => {
                return write!(f, "{other:?}");
            }
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_categories() {
        assert_eq!(Category::ALL.len(), 15);
    }

    #[test]
    fn slugs_unique() {
        let mut slugs: Vec<&str> = Category::ALL.iter().map(|c| c.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 15);
    }

    #[test]
    fn display() {
        assert_eq!(Category::KidsAndTeens.to_string(), "Kids and Teens");
        assert_eq!(Category::Shopping.to_string(), "Shopping");
    }
}
