//! [`SiteServer`] — a [`Server`] implementation that serves a
//! [`SiteSpec`]'s pages and sets its cookies.

use cp_runtime::rng::{SeedableRng, StdRng};
use cp_runtime::sync::Mutex;

use cp_cookies::date::format_http_date;
use cp_cookies::{parse_cookie_header, SimTime};
use cp_net::{LatencyModel, Request, Response, Server, StatusCode};

use crate::render::{render_page, RenderInput};
use crate::spec::{LatencyProfile, SiteSpec};

/// Serves one synthetic website.
///
/// * Container pages render via [`render_page`] with the request's cookies.
/// * `/static/*` serves stylesheet/script/image stand-ins (no cookies set),
///   so the browser's object-fetch pipeline has something to download.
/// * Every container response re-issues the site's cookies whose `Path`
///   scope covers the request path, exactly like a 2007 CGI app.
///
/// Noise is drawn from an internal seeded RNG: a fixed spec seed reproduces
/// the same noise sequence across runs.
pub struct SiteServer {
    spec: SiteSpec,
    noise: Mutex<StdRng>,
    evade_hidden_requests: bool,
}

impl SiteServer {
    /// Creates a server for `spec`.
    pub fn new(spec: SiteSpec) -> Self {
        let seed = spec.seed ^ 0xa5a5_5a5a_dead_beef;
        SiteServer {
            spec,
            noise: Mutex::new(StdRng::seed_from_u64(seed)),
            evade_hidden_requests: false,
        }
    }

    /// Enables the §5.3 evasion: the operator detects CookiePicker's hidden
    /// request (via its marker header) and serves the *cookie-enabled* page
    /// variant anyway, so no difference is ever observable.
    pub fn with_hidden_request_evasion(mut self) -> Self {
        self.evade_hidden_requests = true;
        self
    }

    /// The site specification served.
    pub fn spec(&self) -> &SiteSpec {
        &self.spec
    }

    /// The latency model matching the spec's profile.
    pub fn latency_model(&self) -> LatencyModel {
        match self.spec.latency {
            LatencyProfile::Normal => LatencyModel::default(),
            LatencyProfile::Slow => LatencyModel::slow_site(),
            LatencyProfile::Fast => LatencyModel::fast(),
        }
    }

    fn serve_static(&self, req: &Request, path: &str) -> Response {
        // Static assets are immutable: they carry a strong ETag and honour
        // If-None-Match with 304, like any 2007 Apache.
        let etag = format!("\"{:016x}\"", self.spec.seed ^ path.len() as u64 ^ fnv(path));
        if req.headers.get("if-none-match") == Some(etag.as_str()) {
            let mut r = Response::new(StatusCode::NOT_MODIFIED);
            r.headers.set("ETag", etag);
            return r;
        }
        let body = match path.rsplit('.').next() {
            Some("css") => "body { font-family: serif; } .ad { color: gray; }".repeat(8),
            Some("js") => "function init() { return 42; }\n".repeat(10),
            _ => "BINARYIMAGEDATA".repeat(64),
        };
        let mut r = Response::new(StatusCode::OK);
        r.headers.set("Content-Type", "application/octet-stream");
        r.headers.set("ETag", etag);
        r.body = body.into();
        r
    }

    fn set_cookie_headers(&self, resp: &mut Response, path: &str, now: SimTime) {
        for c in &self.spec.cookies {
            if !c.scope.matches(path) {
                continue;
            }
            let value = format!(
                "{}{:08x}",
                &c.name[..1.min(c.name.len())],
                self.spec.seed ^ c.name.len() as u64
            );
            let mut header = format!("{}={}; Path={}", c.name, value, c.scope.cookie_path());
            if let Some(lifetime) = c.lifetime {
                header.push_str(&format!("; Expires={}", format_http_date(now + lifetime)));
            }
            resp.add_set_cookie(header);
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Server for SiteServer {
    fn handle(&self, req: &Request, now: SimTime) -> Response {
        let path = req.url.path();
        if path.starts_with("/static/") {
            return self.serve_static(req, path);
        }
        if self.spec.entry_redirect && path == "/" {
            // A temporary "replacement page" in front of the real container.
            return Response::redirect("/home");
        }
        let mut cookies = req.cookie_header().map(parse_cookie_header).unwrap_or_default();

        // §5.3 evasion: a colluding operator that recognizes the hidden
        // request pretends all of its cookies were present.
        if self.evade_hidden_requests && req.headers.contains("x-requested-with") {
            for c in &self.spec.cookies {
                if c.scope.matches(path) && !cookies.iter().any(|(n, _)| n == &c.name) {
                    cookies.push((c.name.clone(), "evaded".to_string()));
                }
            }
        }

        let input = RenderInput { spec: &self.spec, path, cookies: &cookies, now };
        let html = render_page(&input, &mut *self.noise.lock());
        let mut resp = Response::html(StatusCode::OK, html);
        self.set_cookie_headers(&mut resp, path, now);
        resp
    }
}

impl std::fmt::Debug for SiteServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiteServer").field("domain", &self.spec.domain).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::Category;
    use crate::spec::{CookieRole, CookieSpec, EffectSize};
    use cp_net::{Method, Url};

    fn server() -> SiteServer {
        SiteServer::new(
            SiteSpec::new("t.example", Category::News, 5)
                .with_cookie(CookieSpec::tracker("trk"))
                .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium))
                .with_cookie(
                    CookieSpec::useful("auth", CookieRole::SignUp, EffectSize::Large)
                        .scoped("/account"),
                ),
        )
    }

    fn get(url: &str) -> Request {
        Request::new(Method::Get, Url::parse(url).unwrap())
    }

    #[test]
    fn container_page_sets_matching_cookies() {
        let s = server();
        let resp = s.handle(&get("http://t.example/"), SimTime::EPOCH);
        let cookies = resp.set_cookies();
        // trk and pref are root-scoped; auth only under /account.
        assert_eq!(cookies.len(), 2);
        assert!(cookies.iter().any(|c| c.starts_with("trk=")));
        assert!(cookies.iter().any(|c| c.starts_with("pref=")));
        let resp = s.handle(&get("http://t.example/account/home"), SimTime::EPOCH);
        assert_eq!(resp.set_cookies().len(), 3);
        assert!(resp
            .set_cookies()
            .iter()
            .any(|c| c.starts_with("auth=") && c.contains("Path=/account")));
    }

    #[test]
    fn persistent_cookies_have_expires() {
        let s = server();
        let resp = s.handle(&get("http://t.example/"), SimTime::EPOCH);
        for c in resp.set_cookies() {
            assert!(c.contains("Expires="), "tracker/pref are persistent: {c}");
        }
    }

    #[test]
    fn static_assets_serve_without_cookies() {
        let s = server();
        let resp = s.handle(&get("http://t.example/static/site.css"), SimTime::EPOCH);
        assert!(resp.status.is_success());
        assert!(resp.set_cookies().is_empty());
        assert!(!resp.body.is_empty());
        assert!(resp.headers.contains("etag"));
    }

    #[test]
    fn static_assets_honour_if_none_match() {
        let s = server();
        let first = s.handle(&get("http://t.example/static/app.js"), SimTime::EPOCH);
        let etag = first.headers.get("etag").unwrap().to_string();
        let mut revalidate = get("http://t.example/static/app.js");
        revalidate.headers.set("If-None-Match", etag.clone());
        let second = s.handle(&revalidate, SimTime::EPOCH);
        assert_eq!(second.status, StatusCode::NOT_MODIFIED);
        assert!(second.body.is_empty());
        // A different etag still yields the full body.
        let mut stale = get("http://t.example/static/app.js");
        stale.headers.set("If-None-Match", "\"deadbeef\"");
        assert!(s.handle(&stale, SimTime::EPOCH).status.is_success());
    }

    #[test]
    fn cookie_in_request_changes_render() {
        let s = server();
        let mut with = get("http://t.example/page/1");
        with.headers.set("Cookie", "pref=x");
        let with_body = s.handle(&with, SimTime::EPOCH).body_string();
        let without_body = s.handle(&get("http://t.example/page/1"), SimTime::EPOCH).body_string();
        assert!(with_body.contains("id=\"sidebar\""));
        assert!(!without_body.contains("id=\"sidebar\""));
    }

    #[test]
    fn evasion_hides_cookie_effect_from_hidden_request() {
        let s =
            SiteServer::new(SiteSpec::new("e.example", Category::Shopping, 6).with_cookie(
                CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium),
            ))
            .with_hidden_request_evasion();
        let mut hidden = get("http://e.example/");
        hidden.headers.set("X-Requested-With", "CookiePicker");
        // No cookie attached, but the evading server renders as if present.
        let body = s.handle(&hidden, SimTime::EPOCH).body_string();
        assert!(body.contains("id=\"sidebar\""));
    }

    #[test]
    fn entry_redirect_serves_302_then_container() {
        let s = SiteServer::new(
            SiteSpec::new("r.example", Category::News, 8)
                .with_cookie(CookieSpec::tracker("t"))
                .with_entry_redirect(),
        );
        let resp = s.handle(&get("http://r.example/"), SimTime::EPOCH);
        assert!(resp.status.is_redirect());
        assert_eq!(resp.headers.get("location"), Some("/home"));
        let resp = s.handle(&get("http://r.example/home"), SimTime::EPOCH);
        assert!(resp.status.is_success());
        assert!(!resp.set_cookies().is_empty());
    }

    #[test]
    fn cookie_values_are_stable() {
        let s = server();
        let a = s.handle(&get("http://t.example/"), SimTime::EPOCH);
        let b = s.handle(&get("http://t.example/"), SimTime::from_secs(60));
        let val = |resp: &Response| {
            resp.set_cookies()
                .iter()
                .find(|c| c.starts_with("trk="))
                .unwrap()
                .split(';')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(val(&a), val(&b), "re-issued cookie value must be stable");
    }
}
