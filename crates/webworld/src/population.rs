//! Site populations mirroring the paper's experimental setups.
//!
//! * [`table1_population`] — the 30 sites (S1–S30) of the first experiment:
//!   two per directory category, 103 persistent cookies in total, with the
//!   same per-site cookie counts as Table 1, useful cookies at S6 and S16,
//!   heavy page dynamics at S1/S10/S27 (the paper's three false-"useful"
//!   sites) and chronically slow origins at S4/S17/S28.
//! * [`table2_population`] — the 6 sites (P1–P6) whose persistent cookies
//!   are really useful, with the usage mix of Table 2 (3× preference,
//!   2× sign-up, 1× performance) and P5/P6 carrying extra useless cookies
//!   that ride along in the same requests.
//! * [`measurement_population`] — a large population with the lifetime
//!   distribution of the authors' 5,000-site measurement study (>60% of
//!   first-party persistent cookies expiring in a year or more).

use cp_runtime::rng::{Rng, SeedableRng, StdRng};

use cp_cookies::SimDuration;

use crate::category::Category;
use crate::spec::{
    CookieRole, CookieSpec, EffectSize, LatencyProfile, NoiseSpec, SiteLayout, SiteSpec,
};

/// Per-site persistent-cookie counts from Table 1 (S1…S30; total 103).
pub const TABLE1_COOKIE_COUNTS: [usize; 30] =
    [2, 4, 5, 4, 4, 2, 1, 3, 1, 1, 2, 4, 1, 9, 2, 25, 4, 1, 3, 6, 3, 1, 4, 1, 3, 1, 1, 1, 2, 2];

/// Indices (0-based) of the sites whose page dynamics occasionally change
/// the upper DOM levels — the mechanism behind the paper's false "useful"
/// marks at S1, S10 and S27.
pub const TABLE1_BURSTY_SITES: [usize; 3] = [0, 9, 26];

/// Indices (0-based) of the chronically slow origins (S4, S17, S28).
pub const TABLE1_SLOW_SITES: [usize; 3] = [3, 16, 27];

/// Builds the 30-site population of the paper's first experiment.
///
/// Site `i` (0-based) is `S{i+1}` in Table 1. Ground truth:
///
/// * S6 sets two useful preference cookies (`pref_main`, `pref_aux`);
/// * S16 sets one useful preference cookie scoped to `/prefs` among 24
///   path-scoped trackers — so the useful cookie travels alone in its
///   request group;
/// * every other persistent cookie is a tracker or analytics beacon.
pub fn table1_population(seed: u64) -> Vec<SiteSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sites = Vec::with_capacity(30);
    for (i, &count) in TABLE1_COOKIE_COUNTS.iter().enumerate() {
        let category = Category::ALL[i / 2];
        let domain = format!("{}{}.example", category.slug(), (i % 2) + 1);
        let mut site = SiteSpec::new(domain, category, seed.wrapping_add(i as u64 * 7919));
        site.richness = 2 + (rng.gen::<u64>() % 3) as usize;
        site.layout = match i % 3 {
            0 => SiteLayout::Classic,
            1 => SiteLayout::Portal,
            _ => SiteLayout::Minimal,
        };

        match i {
            5 => {
                // S6: two really-useful preference cookies.
                assert_eq!(count, 2);
                site = site
                    .with_cookie(CookieSpec::useful(
                        "pref_main",
                        CookieRole::Preference,
                        EffectSize::Medium,
                    ))
                    .with_cookie(CookieSpec::useful(
                        "pref_aux",
                        CookieRole::Preference,
                        EffectSize::Small,
                    ));
            }
            15 => {
                // S16: 25 persistent cookies; one useful preference cookie
                // scoped to its own section, 24 path-scoped trackers.
                assert_eq!(count, 25);
                site = site.with_cookie(
                    CookieSpec::useful("prefs_layout", CookieRole::Preference, EffectSize::Medium)
                        .scoped("/prefs"),
                );
                for k in 0..24 {
                    site = site.with_cookie(
                        CookieSpec::tracker(format!("sec{k}_trk")).scoped(format!("/sec{k}")),
                    );
                }
            }
            _ => {
                for k in 0..count {
                    let name = if k % 2 == 0 { format!("trk{k}") } else { format!("ga{k}") };
                    let mut c = CookieSpec::tracker(name);
                    if k % 2 == 1 {
                        c.role = CookieRole::Analytics;
                    }
                    // Lifetime spread (the measurement study's shape).
                    c.lifetime = Some(lifetime_sample(&mut rng));
                    site = site.with_cookie(c);
                }
            }
        }
        // Every site also keeps a session cookie (not under test).
        site = site.with_cookie(CookieSpec::session("jsession"));

        if TABLE1_BURSTY_SITES.contains(&i) {
            site = site.with_noise(NoiseSpec::bursty(0.18));
        }
        // A few sites hide their container behind a temporary entry
        // redirect (FORCUM step 1 must locate the real container page).
        if i % 7 == 3 {
            site = site.with_entry_redirect();
        }
        if TABLE1_SLOW_SITES.contains(&i) {
            site = site.with_latency(LatencyProfile::Slow);
        }
        sites.push(site);
    }
    sites
}

/// Builds the 6-site population of the paper's second experiment (Table 2).
///
/// | Site | Usage        | Cookies set                         | Really useful |
/// |------|--------------|--------------------------------------|---------------|
/// | P1   | Preference   | 1 preference                         | 1 |
/// | P2   | Performance  | 1 query-cache                        | 1 |
/// | P3   | Sign-up      | 1 uid (scoped `/member`)             | 1 |
/// | P4   | Preference   | 1 theme                              | 1 |
/// | P5   | Sign-up      | 1 uid + 8 trackers, all on `/`       | 1 |
/// | P6   | Preference   | 2 preference + 3 trackers, on `/`    | 2 |
pub fn table2_population(seed: u64) -> Vec<SiteSpec> {
    let cats = [
        Category::Society,
        Category::Reference,
        Category::Computers,
        Category::Arts,
        Category::Shopping,
        Category::Games,
    ];
    let mut sites = Vec::with_capacity(6);

    let mk = |i: usize| -> SiteSpec {
        SiteSpec::new(
            format!("p{}.example", i + 1),
            cats[i],
            seed.wrapping_add(1000 + i as u64 * 104_729),
        )
    };

    // P1: preference, large effect.
    sites.push(mk(0).with_cookie(CookieSpec::useful(
        "pref",
        CookieRole::Preference,
        EffectSize::Large,
    )));
    // P2: performance (cached recent query results).
    sites.push(mk(1).with_cookie(CookieSpec::useful(
        "qcache",
        CookieRole::Performance,
        EffectSize::Large,
    )));
    // P3: sign-up, effect confined to the member area.
    sites.push(mk(2).with_cookie(
        CookieSpec::useful("uid", CookieRole::SignUp, EffectSize::Medium).scoped("/member"),
    ));
    // P4: preference, large effect.
    sites.push(mk(3).with_cookie(CookieSpec::useful(
        "theme",
        CookieRole::Preference,
        EffectSize::Large,
    )));
    // P5: members-only site — sign-up wall everywhere — plus 8 trackers that
    // ride in the same requests (the paper's piggyback false positives).
    let mut p5 =
        mk(4).with_cookie(CookieSpec::useful("uid", CookieRole::SignUp, EffectSize::Large));
    for k in 0..8 {
        p5 = p5.with_cookie(CookieSpec::tracker(format!("trk{k}")));
    }
    sites.push(p5);
    // P6: two preference cookies plus 3 trackers in the same requests.
    let mut p6 = mk(5)
        .with_cookie(CookieSpec::useful("pref_nav", CookieRole::Preference, EffectSize::Medium))
        .with_cookie(CookieSpec::useful("pref_items", CookieRole::Performance, EffectSize::Small));
    for k in 0..3 {
        p6 = p6.with_cookie(CookieSpec::tracker(format!("trk{k}")));
    }
    sites.push(p6);

    sites
}

fn lifetime_sample<R: Rng + ?Sized>(rng: &mut R) -> SimDuration {
    // The measurement study's headline: >60% of first-party persistent
    // cookies expire after one year or more.
    let roll = rng.gen::<f64>();
    let days = if roll < 0.35 {
        365
    } else if roll < 0.55 {
        365 * 10
    } else if roll < 0.65 {
        365 * 30
    } else if roll < 0.80 {
        180
    } else if roll < 0.92 {
        30
    } else {
        7
    };
    SimDuration::from_days(days)
}

/// Generates a random site with ground-truth cookie roles — for fuzz-style
/// integration tests and open-ended simulations.
///
/// The site has 1–6 persistent cookies (mostly trackers, sometimes one
/// useful preference/sign-up/performance cookie with a clearly perceivable
/// effect), a random layout, leaf-level noise only (no structural bursts),
/// and normal latency — so detector invariants (never miss a useful cookie;
/// never mark a burst-free tracker-only site) are testable against it.
pub fn random_site(seed: u64, index: usize) -> SiteSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let category = Category::ALL[index % Category::ALL.len()];
    let site = SiteSpec::new(
        format!("{}-r{}.example", category.slug(), index),
        category,
        seed.wrapping_add(index as u64 * 31_337),
    );
    procedural_shape(&mut rng, site)
}

/// Draws the shared procedural site shape: richness, layout, entry redirect,
/// 1–4 trackers/analytics with sampled lifetimes, sometimes one useful
/// cookie, sometimes a session cookie — always burst-free.
///
/// Both the index-keyed [`random_site`] population and the host-keyed
/// uniform universe ([`crate::universe::Universe`]) feed a seeded RNG into
/// this exact draw sequence, so their sites have identical statistics; only
/// the keying differs.
pub(crate) fn procedural_shape(rng: &mut StdRng, mut site: SiteSpec) -> SiteSpec {
    site.richness = 2 + (rng.gen::<u64>() % 3) as usize;
    site.layout = match rng.gen_range(0..3) {
        0 => SiteLayout::Classic,
        1 => SiteLayout::Portal,
        _ => SiteLayout::Minimal,
    };
    if rng.gen::<f64>() < 0.15 {
        site = site.with_entry_redirect();
    }

    let trackers = rng.gen_range(1..=4);
    for k in 0..trackers {
        let mut c = CookieSpec::tracker(format!("t{k}"));
        if k % 2 == 1 {
            c.role = CookieRole::Analytics;
        }
        c.lifetime = Some(lifetime_sample(rng));
        site = site.with_cookie(c);
    }
    // Sometimes one genuinely useful cookie with a clearly visible effect.
    if rng.gen::<f64>() < 0.4 {
        let effect = if rng.gen::<bool>() { EffectSize::Medium } else { EffectSize::Large };
        let c = match rng.gen_range(0..3) {
            0 => CookieSpec::useful("u_pref", CookieRole::Preference, effect),
            1 => {
                let c = CookieSpec::useful("u_auth", CookieRole::SignUp, effect);
                if rng.gen::<bool>() {
                    c.scoped("/account")
                } else {
                    c
                }
            }
            _ => CookieSpec::useful("u_cache", CookieRole::Performance, EffectSize::Large),
        };
        site = site.with_cookie(c);
    }
    if rng.gen::<f64>() < 0.5 {
        site = site.with_cookie(CookieSpec::session("sid"));
    }
    site
}

/// Builds a large spec-only population with the lifetime distribution of
/// the authors' measurement study (used by experiment E5).
pub fn measurement_population(seed: u64, n: usize) -> Vec<SiteSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let category = Category::ALL[i % Category::ALL.len()];
            let mut site = SiteSpec::new(
                format!("{}-m{}.example", category.slug(), i),
                category,
                seed.wrapping_add(i as u64),
            );
            let persistent = 1 + (rng.gen::<u64>() % 5) as usize;
            for k in 0..persistent {
                let mut c = CookieSpec::tracker(format!("c{k}"));
                c.lifetime = Some(lifetime_sample(&mut rng));
                if k == 0 && rng.gen::<f64>() < 0.08 {
                    c.role = CookieRole::Preference;
                }
                site = site.with_cookie(c);
            }
            if rng.gen::<f64>() < 0.5 {
                site = site.with_cookie(CookieSpec::session("sid"));
            }
            site
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_match_paper() {
        let sites = table1_population(1);
        assert_eq!(sites.len(), 30);
        let total: usize = sites.iter().map(|s| s.persistent_count()).sum();
        assert_eq!(total, 103, "Table 1 reports 103 persistent cookies");
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.persistent_count(), TABLE1_COOKIE_COUNTS[i], "site S{}", i + 1);
        }
    }

    #[test]
    fn table1_ground_truth_matches_paper() {
        let sites = table1_population(1);
        let real_useful: usize = sites.iter().map(|s| s.useful_cookie_names().len()).sum();
        assert_eq!(real_useful, 3, "Table 1 reports 3 really-useful cookies");
        assert_eq!(sites[5].useful_cookie_names().len(), 2, "S6");
        assert_eq!(sites[15].useful_cookie_names().len(), 1, "S16");
    }

    #[test]
    fn table1_two_sites_per_category() {
        let sites = table1_population(1);
        for cat in Category::ALL {
            assert_eq!(sites.iter().filter(|s| s.category == cat).count(), 2);
        }
    }

    #[test]
    fn table1_bursty_and_slow_flags() {
        let sites = table1_population(1);
        for i in TABLE1_BURSTY_SITES {
            assert!(sites[i].noise.structural_burst_prob > 0.0);
        }
        for i in TABLE1_SLOW_SITES {
            assert_eq!(sites[i].latency, LatencyProfile::Slow);
        }
        assert_eq!(sites[4].noise.structural_burst_prob, 0.0);
    }

    #[test]
    fn table2_shape_matches_paper() {
        let sites = table2_population(1);
        assert_eq!(sites.len(), 6);
        let marked_candidates: Vec<usize> = sites.iter().map(|s| s.persistent_count()).collect();
        assert_eq!(marked_candidates, vec![1, 1, 1, 1, 9, 5]);
        let real: Vec<usize> = sites.iter().map(|s| s.useful_cookie_names().len()).collect();
        assert_eq!(real, vec![1, 1, 1, 1, 1, 2]);
    }

    #[test]
    fn table2_domains_unique() {
        let sites = table2_population(1);
        let mut domains: Vec<&str> = sites.iter().map(|s| s.domain.as_str()).collect();
        domains.sort_unstable();
        domains.dedup();
        assert_eq!(domains.len(), 6);
    }

    #[test]
    fn measurement_population_lifetime_distribution() {
        let sites = measurement_population(7, 5_000);
        assert_eq!(sites.len(), 5_000);
        let year = SimDuration::from_days(365);
        let (mut total, mut long) = (0usize, 0usize);
        for s in &sites {
            for c in &s.cookies {
                if let Some(lt) = c.lifetime {
                    total += 1;
                    if lt >= year {
                        long += 1;
                    }
                }
            }
        }
        let frac = long as f64 / total as f64;
        assert!(frac > 0.60, "paper: >60% live ≥ 1 year; got {frac:.3}");
        assert!(frac < 0.75, "distribution should not be degenerate; got {frac:.3}");
    }

    #[test]
    fn random_sites_deterministic_and_bounded() {
        for i in 0..20 {
            let a = random_site(9, i);
            let b = random_site(9, i);
            assert_eq!(a, b, "random_site must be deterministic");
            assert!(a.persistent_count() >= 1 && a.persistent_count() <= 5);
            assert!(a.useful_cookie_names().len() <= 1);
            assert_eq!(a.noise.structural_burst_prob, 0.0, "fuzz sites are burst-free");
        }
        assert_ne!(random_site(9, 0), random_site(9, 1));
    }

    #[test]
    fn populations_are_deterministic() {
        assert_eq!(table1_population(3), table1_population(3));
        assert_eq!(table2_population(3), table2_population(3));
        assert_eq!(measurement_population(3, 100), measurement_population(3, 100));
    }
}
