//! Deterministic filler-text generation.
//!
//! All page copy comes from a fixed word list sampled with seeded RNGs, so a
//! site renders the same base content on every run while still looking like
//! prose to the CVCE text extractor.

use cp_runtime::rng::Rng;

/// The word list backing all generated copy.
pub const WORDS: &[&str] = &[
    "market", "report", "system", "design", "player", "garden", "health", "museum", "gallery",
    "record", "travel", "nature", "planet", "signal", "studio", "weather", "journal", "archive",
    "network", "science", "history", "culture", "finance", "economy", "product", "service",
    "library", "student", "teacher", "concert", "theater", "fitness", "recipe", "kitchen",
    "village", "capital", "fortune", "journey", "harvest", "insight", "pattern", "quality",
    "reason", "season", "silver", "golden", "bright", "quiet", "rapid", "steady", "global",
    "local", "modern", "classic", "digital", "analog", "public", "private", "open", "secure",
    "review", "update", "notice", "detail", "summary", "feature", "article", "column", "editor",
    "reader", "member", "visitor", "account", "profile", "setting", "option", "result", "search",
    "query", "index", "volume", "chapter", "section", "series", "episode", "league", "match",
    "score", "team", "coach", "field", "track", "trail", "river", "mountain", "forest", "ocean",
    "island", "bridge", "castle", "garden", "temple", "harbor", "station", "airport", "engine",
    "motor", "circuit", "sensor", "camera", "screen", "window", "portal", "anchor", "beacon",
];

/// Picks one word deterministically from the RNG.
pub fn word<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

/// A space-joined sequence of `n` words.
pub fn words<R: Rng + ?Sized>(rng: &mut R, n: usize) -> String {
    (0..n).map(|_| word(rng)).collect::<Vec<_>>().join(" ")
}

/// A capitalized title of `n` words.
pub fn title<R: Rng + ?Sized>(rng: &mut R, n: usize) -> String {
    (0..n)
        .map(|_| {
            let w = word(rng);
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// A sentence of 6–14 words ending with a period.
pub fn sentence<R: Rng + ?Sized>(rng: &mut R) -> String {
    let n = rng.gen_range(6..=14);
    let mut s = words(rng, n);
    if let Some(first) = s.get_mut(0..1) {
        let upper = first.to_uppercase();
        s.replace_range(0..1, &upper);
    }
    s.push('.');
    s
}

/// A paragraph of `sentences` sentences.
pub fn paragraph<R: Rng + ?Sized>(rng: &mut R, sentences: usize) -> String {
    (0..sentences).map(|_| sentence(rng)).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_runtime::rng::{SeedableRng, StdRng};

    #[test]
    fn deterministic_given_seed() {
        let a = paragraph(&mut StdRng::seed_from_u64(5), 3);
        let b = paragraph(&mut StdRng::seed_from_u64(5), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = paragraph(&mut StdRng::seed_from_u64(5), 3);
        let b = paragraph(&mut StdRng::seed_from_u64(6), 3);
        assert_ne!(a, b);
    }

    #[test]
    fn title_capitalized() {
        let t = title(&mut StdRng::seed_from_u64(1), 3);
        assert!(t.split(' ').all(|w| w.chars().next().unwrap().is_uppercase()));
    }

    #[test]
    fn sentence_shape() {
        let s = sentence(&mut StdRng::seed_from_u64(2));
        assert!(s.ends_with('.'));
        assert!(s.chars().next().unwrap().is_uppercase());
        let wc = s.split_whitespace().count();
        assert!((6..=14).contains(&wc));
    }

    #[test]
    fn word_list_is_alphanumeric() {
        // CVCE treats non-alphanumeric text as noise; our corpus must not.
        for w in WORDS {
            assert!(w.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }
}
