//! Seeded equivalence suite: the compiled detection pipeline must agree
//! with the reference implementations on realistic generated pages, not
//! just hand-written fixtures.
//!
//! Pages come from the `cp-webworld` renderer — the same generator behind
//! the Table-1 corpus and the embedded serve world — rendered with and
//! without cookie groups and with varying noise seeds, so the pairs cover
//! identical pages, pure-noise differences, and real cookie-caused
//! differences.

use cookiepicker_core::{
    content_compile, content_extract, decide, decide_reference, n_text_sim, n_text_sim_compiled,
    n_text_sim_strict, n_text_sim_strict_compiled, CookiePickerConfig, DomTreeView,
};
use cp_cookies::SimTime;
use cp_html::{parse_document, Document, NodeId};
use cp_runtime::rng::{Rng, SeedableRng, StdRng};
use cp_treediff::{
    countable_nodes, countable_nodes_detect, rstm, rstm_detect, DetectTree, MatchScratch,
    TreeView as _,
};
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::table1_population;

/// Renders a deterministic corpus of page-version pairs: for each sampled
/// site, the page with all its cookies sent vs the page with a random
/// subset withheld (the hidden request), plus a same-page re-render with a
/// different noise stream.
fn corpus(seed: u64, sites: usize, paths_per_site: usize) -> Vec<(Document, Document)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let population = table1_population(seed);
    let mut pairs = Vec::new();
    for spec in population.iter().take(sites) {
        let all: Vec<(String, String)> =
            spec.cookies.iter().map(|c| (c.name.clone(), format!("v{:x}", spec.seed))).collect();
        let paths = spec.page_paths();
        for path in paths.iter().take(paths_per_site) {
            let kept: Vec<(String, String)> =
                all.iter().filter(|_| rng.gen_range(0..3u32) > 0).cloned().collect();
            let input_a = RenderInput { spec, path, cookies: &all, now: SimTime::EPOCH };
            let input_b = RenderInput { spec, path, cookies: &kept, now: SimTime::EPOCH };
            let mut noise_a = StdRng::seed_from_u64(rng.gen::<u64>());
            let mut noise_b = StdRng::seed_from_u64(rng.gen::<u64>());
            let html_a = render_page(&input_a, &mut noise_a);
            let html_b = render_page(&input_b, &mut noise_b);
            pairs.push((parse_document(&html_a), parse_document(&html_b)));
        }
    }
    pairs
}

#[test]
fn rstm_over_detect_tree_equals_rstm_over_domview() {
    let mut scratch = MatchScratch::new();
    for (a, b) in corpus(11, 8, 2) {
        let (va, vb) = (DomTreeView::from_body(&a), DomTreeView::from_body(&b));
        let (da, db) = (DetectTree::from_view(&va), DetectTree::from_view(&vb));
        for level in [1, 2, 3, 5, 8] {
            assert_eq!(
                rstm_detect(&da, &db, level, &mut scratch),
                rstm(&va, &vb, level),
                "rstm diverged at level {level}"
            );
            assert_eq!(countable_nodes_detect(&da, level), countable_nodes(&va, level));
            assert_eq!(countable_nodes_detect(&db, level), countable_nodes(&vb, level));
        }
    }
}

#[test]
fn merge_join_text_sim_equals_hashmap_reference() {
    for (a, b) in corpus(23, 8, 2) {
        let root_a = DomTreeView::from_body(&a).root().unwrap_or(NodeId::DOCUMENT);
        let root_b = DomTreeView::from_body(&b).root().unwrap_or(NodeId::DOCUMENT);
        let (ra, rb) = (content_extract(&a, root_a), content_extract(&b, root_b));
        let (ca, cb) = (content_compile(&a, root_a), content_compile(&b, root_b));
        assert_eq!(ca.len(), ra.len(), "extraction cardinality diverged");
        assert_eq!(
            n_text_sim_compiled(&ca, &cb).to_bits(),
            n_text_sim(&ra, &rb).to_bits(),
            "n_text_sim diverged"
        );
        assert_eq!(
            n_text_sim_strict_compiled(&ca, &cb).to_bits(),
            n_text_sim_strict(&ra, &rb).to_bits(),
            "strict variant diverged"
        );
    }
}

#[test]
fn compiled_decide_is_bit_identical_to_reference() {
    let configs = [
        CookiePickerConfig::default(),
        CookiePickerConfig { max_level: 3, ..CookiePickerConfig::default() },
        CookiePickerConfig { compare_from_body: false, ..CookiePickerConfig::default() },
        CookiePickerConfig::default().with_thresholds(0.95, 0.95),
    ];
    let mut saw_difference = false;
    let mut saw_same = false;
    for (a, b) in corpus(37, 10, 2) {
        for config in &configs {
            let compiled = decide(&a, &b, config);
            let reference = decide_reference(&a, &b, config);
            assert_eq!(compiled.tree_sim.to_bits(), reference.tree_sim.to_bits());
            assert_eq!(compiled.text_sim.to_bits(), reference.text_sim.to_bits());
            assert_eq!(compiled.cookies_caused_difference, reference.cookies_caused_difference);
            saw_difference |= compiled.cookies_caused_difference;
            saw_same |= !compiled.cookies_caused_difference;
        }
    }
    // The corpus must exercise both verdicts, or the test proves nothing.
    assert!(saw_difference && saw_same, "corpus did not cover both verdict branches");
}
