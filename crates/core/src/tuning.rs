//! Threshold auto-calibration — the fine-tuning the paper defers to future
//! work (§5.2.2: "the number may be further reduced if we fine-tune the two
//! thresholds").
//!
//! Given labelled similarity samples — *noise pairs* (two fetches of the
//! same page with identical cookies) and *effect pairs* (cookie disabled) —
//! [`fit_thresholds`] picks the smallest thresholds that keep the paper's
//! invariant "never miss a useful cookie" on the samples, which minimizes
//! the false-useful rate achievable without misses.

use cp_runtime::json::{Json, ToJson};

use crate::config::CookiePickerConfig;

/// One observed similarity pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSample {
    /// `NTreeSim` of the pair.
    pub tree_sim: f64,
    /// `NTextSim` of the pair.
    pub text_sim: f64,
}

impl SimSample {
    /// Convenience constructor.
    pub fn new(tree_sim: f64, text_sim: f64) -> Self {
        SimSample { tree_sim, text_sim }
    }
}

/// The result of [`fit_thresholds`].
#[derive(Debug, Clone, PartialEq)]
pub struct FittedThresholds {
    /// Recommended `Thresh1` (NTreeSim).
    pub thresh1: f64,
    /// Recommended `Thresh2` (NTextSim).
    pub thresh2: f64,
    /// Fraction of the noise samples that would (still) be misclassified as
    /// cookie-caused at the recommended thresholds.
    pub residual_false_rate: f64,
    /// Whether the samples are separable: zero misses *and* zero false
    /// positives simultaneously.
    pub separable: bool,
}

impl ToJson for SimSample {
    fn to_json(&self) -> Json {
        Json::object().set("tree_sim", self.tree_sim).set("text_sim", self.text_sim)
    }
}

impl ToJson for FittedThresholds {
    fn to_json(&self) -> Json {
        Json::object()
            .set("thresh1", self.thresh1)
            .set("thresh2", self.thresh2)
            .set("residual_false_rate", self.residual_false_rate)
            .set("separable", self.separable)
    }
}

impl FittedThresholds {
    /// Applies the fitted thresholds to a configuration.
    pub fn apply(&self, config: &mut CookiePickerConfig) {
        config.thresh1 = self.thresh1;
        config.thresh2 = self.thresh2;
    }
}

/// Safety margin added above the largest observed effect similarity, so a
/// marginally-larger unseen effect is still caught.
const MARGIN: f64 = 0.02;

/// Fits decision thresholds from labelled samples.
///
/// The decision (Figure 5) marks cookies when **both** similarities fall at
/// or below their thresholds. Zero misses on the samples therefore requires
/// `thresh1 ≥ max(effect tree sims)` and `thresh2 ≥ max(effect text sims)`;
/// any increase beyond that can only add false positives. The fit returns
/// those maxima plus a small safety margin (clamped to 1.0) and reports the
/// residual noise-misclassification rate.
///
/// With no effect samples the paper's defaults (0.85) are returned.
///
/// ```
/// use cookiepicker_core::tuning::{fit_thresholds, SimSample};
/// let noise = vec![SimSample::new(1.0, 1.0), SimSample::new(0.97, 0.92)];
/// let effects = vec![SimSample::new(0.55, 0.40), SimSample::new(0.70, 0.62)];
/// let fit = fit_thresholds(&noise, &effects);
/// assert!(fit.separable);
/// assert!(fit.thresh1 >= 0.70 && fit.thresh1 < 0.85);
/// assert_eq!(fit.residual_false_rate, 0.0);
/// ```
pub fn fit_thresholds(noise: &[SimSample], effects: &[SimSample]) -> FittedThresholds {
    if effects.is_empty() {
        let defaults = CookiePickerConfig::default();
        let rate = false_rate(noise, defaults.thresh1, defaults.thresh2);
        return FittedThresholds {
            thresh1: defaults.thresh1,
            thresh2: defaults.thresh2,
            residual_false_rate: rate,
            separable: rate == 0.0,
        };
    }
    let max_tree = effects.iter().map(|s| s.tree_sim).fold(0.0f64, f64::max);
    let max_text = effects.iter().map(|s| s.text_sim).fold(0.0f64, f64::max);
    let thresh1 = (max_tree + MARGIN).min(1.0);
    let thresh2 = (max_text + MARGIN).min(1.0);
    let residual_false_rate = false_rate(noise, thresh1, thresh2);
    FittedThresholds {
        thresh1,
        thresh2,
        residual_false_rate,
        separable: residual_false_rate == 0.0,
    }
}

/// Fraction of noise samples a `(thresh1, thresh2)` pair would misread as
/// cookie-caused.
pub fn false_rate(noise: &[SimSample], thresh1: f64, thresh2: f64) -> f64 {
    if noise.is_empty() {
        return 0.0;
    }
    let bad = noise.iter().filter(|s| s.tree_sim <= thresh1 && s.text_sim <= thresh2).count();
    bad as f64 / noise.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(a: f64, b: f64) -> SimSample {
        SimSample::new(a, b)
    }

    #[test]
    fn separable_case() {
        let noise = vec![s(1.0, 1.0), s(0.95, 0.99), s(0.98, 0.90)];
        let effects = vec![s(0.3, 0.2), s(0.6, 0.5)];
        let fit = fit_thresholds(&noise, &effects);
        assert!(fit.separable);
        assert_eq!(fit.residual_false_rate, 0.0);
        // Every effect sample is caught at the fitted thresholds.
        for e in &effects {
            assert!(e.tree_sim <= fit.thresh1 && e.text_sim <= fit.thresh2);
        }
        // And tighter than the paper's conservative default.
        assert!(fit.thresh1 < 0.85 && fit.thresh2 < 0.85);
    }

    #[test]
    fn overlapping_case_reports_residual() {
        // A burst-noise sample that looks exactly like an effect.
        let noise = vec![s(0.5, 0.4), s(1.0, 1.0)];
        let effects = vec![s(0.6, 0.5)];
        let fit = fit_thresholds(&noise, &effects);
        assert!(!fit.separable);
        assert_eq!(fit.residual_false_rate, 0.5);
    }

    #[test]
    fn no_effects_returns_paper_defaults() {
        let fit = fit_thresholds(&[s(1.0, 1.0)], &[]);
        assert_eq!(fit.thresh1, 0.85);
        assert_eq!(fit.thresh2, 0.85);
        assert!(fit.separable);
    }

    #[test]
    fn thresholds_clamped_to_one() {
        let fit = fit_thresholds(&[], &[s(0.999, 0.999)]);
        assert!(fit.thresh1 <= 1.0 && fit.thresh2 <= 1.0);
    }

    #[test]
    fn apply_updates_config() {
        let fit = fit_thresholds(&[s(1.0, 1.0)], &[s(0.4, 0.3)]);
        let mut cfg = CookiePickerConfig::default();
        fit.apply(&mut cfg);
        assert_eq!(cfg.thresh1, fit.thresh1);
        assert_eq!(cfg.thresh2, fit.thresh2);
    }

    #[test]
    fn false_rate_boundaries() {
        assert_eq!(false_rate(&[], 0.85, 0.85), 0.0);
        // The decision's ≤ is inclusive.
        assert_eq!(false_rate(&[s(0.85, 0.85)], 0.85, 0.85), 1.0);
        assert_eq!(false_rate(&[s(0.86, 0.85)], 0.85, 0.85), 0.0);
    }
}
