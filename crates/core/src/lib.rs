//! # CookiePicker — automatic cookie usage setting
//!
//! The core of the DSN 2007 paper *"Automatic Cookie Usage Setting with
//! CookiePicker"*: a browser extension that decides, **fully automatically**,
//! which first-party persistent cookies of a Web site are useful, enables
//! those, and disables (and eventually removes) the rest.
//!
//! The mechanism (§3): when the user views a page, CookiePicker issues one
//! extra *hidden request* for the container page with the cookies under test
//! stripped, builds the hidden DOM with the same parser, and compares the
//! two versions with two complementary detectors:
//!
//! * [`decision::decide`] — Figure 5's decision algorithm over
//!   [`cp_treediff::n_tree_sim`] (RSTM, Formula 2) and
//!   [`cvce::n_text_sim`] (CVCE, Formula 3);
//! * if **both** similarities fall at or below their thresholds (0.85 in the
//!   paper), the difference is attributed to the disabled cookies and the
//!   whole test group is marked useful (§3.2, step 5).
//!
//! [`picker::CookiePicker`] packages this as a
//! [`cp_browser::BrowserExtension`]; [`forcum`] implements the per-site
//! training lifecycle; [`recovery`] the backward-error-recovery button.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cookiepicker_core::{CookiePicker, CookiePickerConfig, TestGroupStrategy};
//! use cp_browser::Browser;
//! use cp_cookies::CookiePolicy;
//! use cp_net::{SimNetwork, Url};
//! use cp_webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};
//!
//! // A site with one tracking cookie and one genuinely useful preference cookie.
//! let spec = SiteSpec::new("shop.example", Category::Shopping, 9)
//!     .with_cookie(CookieSpec::tracker("trk"))
//!     .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
//! let mut net = SimNetwork::new(2);
//! net.register("shop.example", SiteServer::new(spec));
//!
//! let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 7);
//! // Test one cookie per page view so the tracker cannot piggyback.
//! let mut picker = CookiePicker::new(
//!     CookiePickerConfig::default().with_strategy(TestGroupStrategy::PerCookie),
//! );
//! let url = Url::parse("http://shop.example/").unwrap();
//! for _ in 0..6 {
//!     browser.visit_with(&url, &mut picker).unwrap();
//!     browser.think();
//! }
//! // The preference cookie ends up marked useful; the tracker does not.
//! let marked: Vec<&str> = browser.jar.iter().filter(|c| c.useful()).map(|c| c.name.as_str()).collect();
//! assert_eq!(marked, ["pref"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod cvce;
pub mod decision;
pub mod domview;
pub mod explain;
pub mod forcum;
pub mod picker;
pub mod probe;
pub mod recovery;
pub mod report;
pub mod tuning;

pub use analysis::PageAnalysis;
pub use config::{CookiePickerConfig, TestGroupStrategy};
pub use cvce::{
    content_compile, content_extract, fnv1a64, n_text_sim, n_text_sim_compiled, n_text_sim_strict,
    n_text_sim_strict_compiled, CompiledContentSet, ContentSet,
};
pub use decision::{decide, decide_analyzed, decide_reference, Decision};
pub use domview::{DomTreeView, IdAwareDomView};
pub use explain::{explain, DiffReport};
pub use forcum::{ForcumState, SiteTraining};
pub use picker::{CookiePicker, DetectionRecord, InconclusiveProbe, TrainingSummary};
pub use probe::{InconclusiveReason, ProbeOutcome, ProbeReport, RetryPolicy};
pub use recovery::RecoveryLog;
pub use tuning::{fit_thresholds, FittedThresholds, SimSample};
