//! The CookiePicker decision algorithm (Figure 5).

use std::time::Instant;

use cp_html::Document;
use cp_runtime::json::{FromJson, Json, JsonError, ToJson};
use cp_treediff::{n_tree_sim, n_tree_sim_detect, MatchScratch};

use crate::analysis::PageAnalysis;
use crate::config::CookiePickerConfig;
use crate::cvce::{content_extract, n_text_sim, n_text_sim_compiled};
use crate::domview::DomTreeView;

/// The outcome of comparing a regular and a hidden page version.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// `NTreeSim(A, B, l)` — Formula 2.
    pub tree_sim: f64,
    /// `NTextSim(S1, S2)` — Formula 3.
    pub text_sim: f64,
    /// `true` when both similarities are at or below their thresholds:
    /// the difference is attributed to the disabled cookies ⇒ the cookies
    /// are useful. `false`: the difference (if any) is page-dynamics noise.
    pub cookies_caused_difference: bool,
    /// Wall-clock time the detection algorithms took (the paper's
    /// "Detection Time" column, averaging 14.6 ms on 2007 hardware).
    pub detection_micros: u64,
}

impl ToJson for Decision {
    fn to_json(&self) -> Json {
        Json::object()
            .set("tree_sim", self.tree_sim)
            .set("text_sim", self.text_sim)
            .set("cookies_caused_difference", self.cookies_caused_difference)
            .set("detection_micros", self.detection_micros)
    }
}

impl FromJson for Decision {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Decision {
            tree_sim: f64::from_json(value.require("tree_sim")?)?,
            text_sim: f64::from_json(value.require("text_sim")?)?,
            cookies_caused_difference: bool::from_json(
                value.require("cookies_caused_difference")?,
            )?,
            detection_micros: u64::from_json(value.require("detection_micros")?)?,
        })
    }
}

/// Runs both detection algorithms on the two page versions and applies
/// Figure 5: the difference is attributed to cookies only when **both**
/// `NTreeSim ≤ Thresh1` **and** `NTextSim ≤ Thresh2`.
///
/// ```
/// use cookiepicker_core::{decide, CookiePickerConfig};
/// use cp_html::parse_document;
///
/// let regular = parse_document("<body><div id=s><ul><li>a</li><li>b</li></ul></div><div><p>main text here</p></div></body>");
/// let hidden = parse_document("<body><div><p>main text here</p></div></body>");
/// let d = decide(&regular, &hidden, &CookiePickerConfig::default());
/// assert!(d.cookies_caused_difference);
///
/// let same = decide(&regular, &regular, &CookiePickerConfig::default());
/// assert!(!same.cookies_caused_difference);
/// assert_eq!(same.tree_sim, 1.0);
/// ```
pub fn decide(regular: &Document, hidden: &Document, config: &CookiePickerConfig) -> Decision {
    let start = Instant::now();
    let a = PageAnalysis::from_document(regular, config.compare_from_body);
    let b = PageAnalysis::from_document(hidden, config.compare_from_body);
    with_scratch(|scratch| decide_compiled(&a, &b, config, scratch, start))
}

/// [`decide`] over pre-compiled analyses: when both pages are already in
/// [`PageAnalysis`] form (e.g. served from `cp-serve`'s page cache), the
/// comparison skips parsing and extraction entirely and only runs the two
/// similarity kernels. `detection_micros` then covers just those kernels.
pub fn decide_analyzed(
    a: &PageAnalysis,
    b: &PageAnalysis,
    config: &CookiePickerConfig,
) -> Decision {
    let start = Instant::now();
    with_scratch(|scratch| decide_compiled(a, b, config, scratch, start))
}

/// Runs `f` with this thread's reusable [`MatchScratch`], so repeated
/// decisions stop allocating DP workspace once the buffers are warm.
fn with_scratch<R>(f: impl FnOnce(&mut MatchScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<MatchScratch> =
            std::cell::RefCell::new(MatchScratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Only reachable if `f` somehow re-enters a decision; correctness
        // over speed in that case.
        Err(_) => f(&mut MatchScratch::new()),
    })
}

fn decide_compiled(
    a: &PageAnalysis,
    b: &PageAnalysis,
    config: &CookiePickerConfig,
    scratch: &mut MatchScratch,
    start: Instant,
) -> Decision {
    let tree_sim = n_tree_sim_detect(a.tree(), b.tree(), config.max_level, scratch);
    let text_sim = n_text_sim_compiled(a.content(), b.content());
    let cookies_caused_difference = tree_sim <= config.thresh1 && text_sim <= config.thresh2;
    Decision {
        tree_sim,
        text_sim,
        cookies_caused_difference,
        detection_micros: start.elapsed().as_micros() as u64,
    }
}

/// The uncompiled reference implementation of [`decide`]: string-labeled
/// tree views and `HashMap`-based content sets, exactly as Figure 5 reads.
/// Kept as the debug oracle — the equivalence suite and the detect
/// benchmark both pit `decide` against it.
pub fn decide_reference(
    regular: &Document,
    hidden: &Document,
    config: &CookiePickerConfig,
) -> Decision {
    let start = Instant::now();

    let (view_a, view_b) = if config.compare_from_body {
        (DomTreeView::from_body(regular), DomTreeView::from_body(hidden))
    } else {
        (DomTreeView::from_document(regular), DomTreeView::from_document(hidden))
    };
    let tree_sim = n_tree_sim(&view_a, &view_b, config.max_level);

    let root_a = view_a.root().unwrap_or(cp_html::NodeId::DOCUMENT);
    let root_b = view_b.root().unwrap_or(cp_html::NodeId::DOCUMENT);
    let set_a = content_extract(regular, root_a);
    let set_b = content_extract(hidden, root_b);
    let text_sim = n_text_sim(&set_a, &set_b);

    let cookies_caused_difference = tree_sim <= config.thresh1 && text_sim <= config.thresh2;
    Decision {
        tree_sim,
        text_sim,
        cookies_caused_difference,
        detection_micros: start.elapsed().as_micros() as u64,
    }
}

// Re-export used by `decide_reference`'s root selection above.
use cp_treediff::TreeView as _;

#[cfg(test)]
mod tests {
    use super::*;
    use cp_html::parse_document;

    fn config() -> CookiePickerConfig {
        CookiePickerConfig::default()
    }

    #[test]
    fn identical_pages_no_difference() {
        let doc = parse_document("<body><div><p>hello world</p></div></body>");
        let d = decide(&doc, &doc, &config());
        assert!(!d.cookies_caused_difference);
        assert_eq!(d.tree_sim, 1.0);
        assert_eq!(d.text_sim, 1.0);
    }

    #[test]
    fn leaf_noise_rejected() {
        // Rotating ad text + timestamp: structure same, text replaced in
        // same contexts / filtered.
        let a = parse_document(
            r#"<body><div><p>article body text</p></div><div class=ad><p>buy shoes</p></div><p class=t>story teaser alpha</p></body>"#,
        );
        let b = parse_document(
            r#"<body><div><p>article body text</p></div><div class=ad><p>buy hats</p></div><p class=t>story teaser beta</p></body>"#,
        );
        let d = decide(&a, &b, &config());
        assert!(!d.cookies_caused_difference, "noise must not be attributed to cookies: {d:?}");
        assert_eq!(d.tree_sim, 1.0);
        assert_eq!(d.text_sim, 1.0);
    }

    #[test]
    fn structural_and_text_change_detected() {
        let a = parse_document(
            "<body><div id=sidebar><h3>welcome user</h3><ul><li>saved one</li><li>saved two</li><li>saved three</li></ul><div class=theme><p>dark mode</p></div></div><div id=c><p>content</p></div></body>",
        );
        let b = parse_document("<body><div id=c><p>content</p></div></body>");
        let d = decide(&a, &b, &config());
        assert!(d.tree_sim < 0.85, "tree_sim {}", d.tree_sim);
        assert!(d.text_sim < 0.85, "text_sim {}", d.text_sim);
        assert!(d.cookies_caused_difference);
    }

    #[test]
    fn both_conditions_required() {
        // Structure changes (empty divs shuffle) but visible text identical
        // and plentiful: NTextSim stays high → no decision.
        let a = parse_document(
            "<body><div><div><div></div></div></div><p>alpha</p><p>beta</p><p>gamma</p></body>",
        );
        let b = parse_document("<body><span><span><span></span></span></span><p>alpha</p><p>beta</p><p>gamma</p></body>");
        let d = decide(&a, &b, &config());
        assert!(d.tree_sim < 0.85, "structure did change: {}", d.tree_sim);
        assert!(d.text_sim > 0.85, "text did not: {}", d.text_sim);
        assert!(!d.cookies_caused_difference);
    }

    #[test]
    fn detection_time_recorded() {
        let doc = parse_document("<body><div><p>x</p></div></body>");
        let d = decide(&doc, &doc, &config());
        // Sub-millisecond on modern hardware, but strictly measured.
        assert!(d.detection_micros < 1_000_000);
    }

    #[test]
    fn json_round_trip() {
        let d = Decision {
            tree_sim: 0.5,
            text_sim: 0.25,
            cookies_caused_difference: true,
            detection_micros: 123,
        };
        let back = Decision::from_json(&Json::parse(&d.to_json().to_compact()).unwrap()).unwrap();
        assert_eq!(back, d);
        assert!(Decision::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn compiled_decide_equals_reference() {
        let pages = [
            "<body><div><p>hello world</p></div></body>",
            "<body><div id=s><ul><li>a</li><li>b</li></ul></div><div><p>main text</p></div></body>",
            "<body><div><p>main text</p></div></body>",
            "<body></body>",
        ];
        for pa in pages {
            for pb in pages {
                for cfg in [config(), CookiePickerConfig { compare_from_body: false, ..config() }] {
                    let (a, b) = (parse_document(pa), parse_document(pb));
                    let compiled = decide(&a, &b, &cfg);
                    let reference = decide_reference(&a, &b, &cfg);
                    assert_eq!(compiled.tree_sim.to_bits(), reference.tree_sim.to_bits());
                    assert_eq!(compiled.text_sim.to_bits(), reference.text_sim.to_bits());
                    assert_eq!(
                        compiled.cookies_caused_difference,
                        reference.cookies_caused_difference
                    );
                }
            }
        }
    }

    #[test]
    fn decide_analyzed_equals_decide() {
        let a = parse_document("<body><div><p>alpha beta</p></div></body>");
        let b = parse_document("<body><div><p>alpha</p></div><span>extra</span></body>");
        let cfg = config();
        let (pa, pb) = (
            PageAnalysis::from_document(&a, cfg.compare_from_body),
            PageAnalysis::from_document(&b, cfg.compare_from_body),
        );
        let fresh = decide(&a, &b, &cfg);
        let cached = decide_analyzed(&pa, &pb, &cfg);
        assert_eq!(fresh.tree_sim.to_bits(), cached.tree_sim.to_bits());
        assert_eq!(fresh.text_sim.to_bits(), cached.text_sim.to_bits());
        assert_eq!(fresh.cookies_caused_difference, cached.cookies_caused_difference);
    }

    #[test]
    fn thresholds_are_inclusive() {
        // Degenerate empty bodies: sims are 1.0 > 0.85 → no difference.
        let a = parse_document("<body></body>");
        let d = decide(&a, &a, &config());
        assert!(!d.cookies_caused_difference);
        // With thresholds at 1.0, equal pages ARE attributed to cookies
        // (the ≤ in Figure 5 is inclusive) — degenerate but specified.
        let loose = CookiePickerConfig::default().with_thresholds(1.0, 1.0);
        let d = decide(&a, &a, &loose);
        assert!(d.cookies_caused_difference);
    }
}
