//! The CookiePicker decision algorithm (Figure 5).

use std::time::Instant;

use cp_html::Document;
use cp_runtime::json::{FromJson, Json, JsonError, ToJson};
use cp_treediff::n_tree_sim;

use crate::config::CookiePickerConfig;
use crate::cvce::{content_extract, n_text_sim};
use crate::domview::DomTreeView;

/// The outcome of comparing a regular and a hidden page version.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// `NTreeSim(A, B, l)` — Formula 2.
    pub tree_sim: f64,
    /// `NTextSim(S1, S2)` — Formula 3.
    pub text_sim: f64,
    /// `true` when both similarities are at or below their thresholds:
    /// the difference is attributed to the disabled cookies ⇒ the cookies
    /// are useful. `false`: the difference (if any) is page-dynamics noise.
    pub cookies_caused_difference: bool,
    /// Wall-clock time the detection algorithms took (the paper's
    /// "Detection Time" column, averaging 14.6 ms on 2007 hardware).
    pub detection_micros: u64,
}

impl ToJson for Decision {
    fn to_json(&self) -> Json {
        Json::object()
            .set("tree_sim", self.tree_sim)
            .set("text_sim", self.text_sim)
            .set("cookies_caused_difference", self.cookies_caused_difference)
            .set("detection_micros", self.detection_micros)
    }
}

impl FromJson for Decision {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Decision {
            tree_sim: f64::from_json(value.require("tree_sim")?)?,
            text_sim: f64::from_json(value.require("text_sim")?)?,
            cookies_caused_difference: bool::from_json(
                value.require("cookies_caused_difference")?,
            )?,
            detection_micros: u64::from_json(value.require("detection_micros")?)?,
        })
    }
}

/// Runs both detection algorithms on the two page versions and applies
/// Figure 5: the difference is attributed to cookies only when **both**
/// `NTreeSim ≤ Thresh1` **and** `NTextSim ≤ Thresh2`.
///
/// ```
/// use cookiepicker_core::{decide, CookiePickerConfig};
/// use cp_html::parse_document;
///
/// let regular = parse_document("<body><div id=s><ul><li>a</li><li>b</li></ul></div><div><p>main text here</p></div></body>");
/// let hidden = parse_document("<body><div><p>main text here</p></div></body>");
/// let d = decide(&regular, &hidden, &CookiePickerConfig::default());
/// assert!(d.cookies_caused_difference);
///
/// let same = decide(&regular, &regular, &CookiePickerConfig::default());
/// assert!(!same.cookies_caused_difference);
/// assert_eq!(same.tree_sim, 1.0);
/// ```
pub fn decide(regular: &Document, hidden: &Document, config: &CookiePickerConfig) -> Decision {
    let start = Instant::now();

    let (view_a, view_b) = if config.compare_from_body {
        (DomTreeView::from_body(regular), DomTreeView::from_body(hidden))
    } else {
        (DomTreeView::from_document(regular), DomTreeView::from_document(hidden))
    };
    let tree_sim = n_tree_sim(&view_a, &view_b, config.max_level);

    let root_a = view_a.root().unwrap_or(cp_html::NodeId::DOCUMENT);
    let root_b = view_b.root().unwrap_or(cp_html::NodeId::DOCUMENT);
    let set_a = content_extract(regular, root_a);
    let set_b = content_extract(hidden, root_b);
    let text_sim = n_text_sim(&set_a, &set_b);

    let cookies_caused_difference = tree_sim <= config.thresh1 && text_sim <= config.thresh2;
    Decision {
        tree_sim,
        text_sim,
        cookies_caused_difference,
        detection_micros: start.elapsed().as_micros() as u64,
    }
}

// Re-export used by `decide`'s signature resolution above.
use cp_treediff::TreeView as _;

#[cfg(test)]
mod tests {
    use super::*;
    use cp_html::parse_document;

    fn config() -> CookiePickerConfig {
        CookiePickerConfig::default()
    }

    #[test]
    fn identical_pages_no_difference() {
        let doc = parse_document("<body><div><p>hello world</p></div></body>");
        let d = decide(&doc, &doc, &config());
        assert!(!d.cookies_caused_difference);
        assert_eq!(d.tree_sim, 1.0);
        assert_eq!(d.text_sim, 1.0);
    }

    #[test]
    fn leaf_noise_rejected() {
        // Rotating ad text + timestamp: structure same, text replaced in
        // same contexts / filtered.
        let a = parse_document(
            r#"<body><div><p>article body text</p></div><div class=ad><p>buy shoes</p></div><p class=t>story teaser alpha</p></body>"#,
        );
        let b = parse_document(
            r#"<body><div><p>article body text</p></div><div class=ad><p>buy hats</p></div><p class=t>story teaser beta</p></body>"#,
        );
        let d = decide(&a, &b, &config());
        assert!(!d.cookies_caused_difference, "noise must not be attributed to cookies: {d:?}");
        assert_eq!(d.tree_sim, 1.0);
        assert_eq!(d.text_sim, 1.0);
    }

    #[test]
    fn structural_and_text_change_detected() {
        let a = parse_document(
            "<body><div id=sidebar><h3>welcome user</h3><ul><li>saved one</li><li>saved two</li><li>saved three</li></ul><div class=theme><p>dark mode</p></div></div><div id=c><p>content</p></div></body>",
        );
        let b = parse_document("<body><div id=c><p>content</p></div></body>");
        let d = decide(&a, &b, &config());
        assert!(d.tree_sim < 0.85, "tree_sim {}", d.tree_sim);
        assert!(d.text_sim < 0.85, "text_sim {}", d.text_sim);
        assert!(d.cookies_caused_difference);
    }

    #[test]
    fn both_conditions_required() {
        // Structure changes (empty divs shuffle) but visible text identical
        // and plentiful: NTextSim stays high → no decision.
        let a = parse_document(
            "<body><div><div><div></div></div></div><p>alpha</p><p>beta</p><p>gamma</p></body>",
        );
        let b = parse_document("<body><span><span><span></span></span></span><p>alpha</p><p>beta</p><p>gamma</p></body>");
        let d = decide(&a, &b, &config());
        assert!(d.tree_sim < 0.85, "structure did change: {}", d.tree_sim);
        assert!(d.text_sim > 0.85, "text did not: {}", d.text_sim);
        assert!(!d.cookies_caused_difference);
    }

    #[test]
    fn detection_time_recorded() {
        let doc = parse_document("<body><div><p>x</p></div></body>");
        let d = decide(&doc, &doc, &config());
        // Sub-millisecond on modern hardware, but strictly measured.
        assert!(d.detection_micros < 1_000_000);
    }

    #[test]
    fn json_round_trip() {
        let d = Decision {
            tree_sim: 0.5,
            text_sim: 0.25,
            cookies_caused_difference: true,
            detection_micros: 123,
        };
        let back = Decision::from_json(&Json::parse(&d.to_json().to_compact()).unwrap()).unwrap();
        assert_eq!(back, d);
        assert!(Decision::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn thresholds_are_inclusive() {
        // Degenerate empty bodies: sims are 1.0 > 0.85 → no difference.
        let a = parse_document("<body></body>");
        let d = decide(&a, &a, &config());
        assert!(!d.cookies_caused_difference);
        // With thresholds at 1.0, equal pages ARE attributed to cookies
        // (the ≤ in Figure 5 is inclusive) — degenerate but specified.
        let loose = CookiePickerConfig::default().with_thresholds(1.0, 1.0);
        let d = decide(&a, &a, &loose);
        assert!(d.cookies_caused_difference);
    }
}
