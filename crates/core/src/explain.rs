//! Decision explanation: *why* did CookiePicker judge two page versions
//! different?
//!
//! The paper's prototype only surfaces the verdict; for debugging,
//! threshold tuning, and the backward-error-recovery UI it helps to see
//! which structure and which text drove the score. [`explain`] reruns both
//! detectors and reports the unmatched elements (by DOM path) and the
//! contexts unique to each version.

use std::collections::HashSet;

use cp_html::Document;
use cp_runtime::json::{Json, ToJson};
use cp_treediff::{rstm_with_mapping, TreeView};

use crate::config::CookiePickerConfig;
use crate::cvce::content_extract;
use crate::decision::{decide, Decision};
use crate::domview::DomTreeView;

/// A human-readable account of one regular-vs-hidden comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The verdict and scores.
    pub decision: Decision,
    /// DOM paths (e.g. `body:div:ul`) of countable elements in the regular
    /// version that found no partner in the hidden version.
    pub unmatched_regular: Vec<String>,
    /// Unmatched countable elements of the hidden version.
    pub unmatched_hidden: Vec<String>,
    /// Text contexts present only in the regular version.
    pub contexts_only_regular: Vec<String>,
    /// Text contexts present only in the hidden version.
    pub contexts_only_hidden: Vec<String>,
}

impl ToJson for DiffReport {
    fn to_json(&self) -> Json {
        Json::object()
            .set("decision", self.decision.to_json())
            .set("unmatched_regular", self.unmatched_regular.clone())
            .set("unmatched_hidden", self.unmatched_hidden.clone())
            .set("contexts_only_regular", self.contexts_only_regular.clone())
            .set("contexts_only_hidden", self.contexts_only_hidden.clone())
    }
}

impl DiffReport {
    /// Whether the report contains any evidence of difference.
    pub fn is_clean(&self) -> bool {
        self.unmatched_regular.is_empty()
            && self.unmatched_hidden.is_empty()
            && self.contexts_only_regular.is_empty()
            && self.contexts_only_hidden.is_empty()
    }
}

fn countable_paths(view: &DomTreeView<'_>, max_level: usize) -> Vec<(cp_html::NodeId, String)> {
    // Mirror RSTM's pruned walk: stop at leaves, uncountable nodes, and the
    // level bound.
    fn rec(
        view: &DomTreeView<'_>,
        node: cp_html::NodeId,
        level: usize,
        max_level: usize,
        path: &mut String,
        out: &mut Vec<(cp_html::NodeId, String)>,
    ) {
        let current = level + 1;
        if current > max_level || !view.countable(node) {
            return;
        }
        let children = view.children(node);
        if children.is_empty() {
            return;
        }
        let saved = path.len();
        if !path.is_empty() {
            path.push(':');
        }
        path.push_str(view.label(node));
        out.push((node, path.clone()));
        for c in children {
            rec(view, c, current, max_level, path, out);
        }
        path.truncate(saved);
    }
    let mut out = Vec::new();
    if let Some(root) = view.root() {
        rec(view, root, 0, max_level, &mut String::new(), &mut out);
    }
    out
}

/// Explains the comparison of a regular and a hidden page version.
///
/// ```
/// use cookiepicker_core::{explain::explain, CookiePickerConfig};
/// use cp_html::parse_document;
///
/// let regular = parse_document("<body><div id=s><ul><li>a</li></ul></div><div><p>x</p></div></body>");
/// let hidden = parse_document("<body><div><p>x</p></div></body>");
/// let report = explain(&regular, &hidden, &CookiePickerConfig::default());
/// assert!(report.unmatched_regular.iter().any(|p| p.contains("ul")));
/// assert!(report.unmatched_hidden.is_empty());
/// ```
pub fn explain(regular: &Document, hidden: &Document, config: &CookiePickerConfig) -> DiffReport {
    let decision = decide(regular, hidden, config);

    let (view_a, view_b) = if config.compare_from_body {
        (DomTreeView::from_body(regular), DomTreeView::from_body(hidden))
    } else {
        (DomTreeView::from_document(regular), DomTreeView::from_document(hidden))
    };

    let (_count, pairs) = rstm_with_mapping(&view_a, &view_b, config.max_level);
    let matched_a: HashSet<_> = pairs.iter().map(|(a, _)| *a).collect();
    let matched_b: HashSet<_> = pairs.iter().map(|(_, b)| *b).collect();

    let unmatched_regular = countable_paths(&view_a, config.max_level)
        .into_iter()
        .filter(|(n, _)| !matched_a.contains(n))
        .map(|(_, p)| p)
        .collect();
    let unmatched_hidden = countable_paths(&view_b, config.max_level)
        .into_iter()
        .filter(|(n, _)| !matched_b.contains(n))
        .map(|(_, p)| p)
        .collect();

    let root_a = view_a.root().unwrap_or(cp_html::NodeId::DOCUMENT);
    let root_b = view_b.root().unwrap_or(cp_html::NodeId::DOCUMENT);
    let set_a = content_extract(regular, root_a);
    let set_b = content_extract(hidden, root_b);
    let ctx_a: HashSet<String> = set_a.contexts().map(str::to_string).collect();
    let ctx_b: HashSet<String> = set_b.contexts().map(str::to_string).collect();
    let mut contexts_only_regular: Vec<String> = ctx_a.difference(&ctx_b).cloned().collect();
    let mut contexts_only_hidden: Vec<String> = ctx_b.difference(&ctx_a).cloned().collect();
    contexts_only_regular.sort();
    contexts_only_hidden.sort();

    DiffReport {
        decision,
        unmatched_regular,
        unmatched_hidden,
        contexts_only_regular,
        contexts_only_hidden,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_html::parse_document;

    fn cfg() -> CookiePickerConfig {
        CookiePickerConfig::default()
    }

    #[test]
    fn identical_pages_are_clean() {
        let doc = parse_document("<body><div><ul><li>a</li></ul></div></body>");
        let r = explain(&doc, &doc, &cfg());
        assert!(r.is_clean());
        assert!(!r.decision.cookies_caused_difference);
    }

    #[test]
    fn removed_panel_reported_on_regular_side() {
        let a = parse_document(
            "<body><div id=side><ul><li>one</li><li>two</li></ul><dl><dt>k</dt></dl></div><div><p>base</p></div></body>",
        );
        let b = parse_document("<body><div><p>base</p></div></body>");
        let r = explain(&a, &b, &cfg());
        assert!(!r.unmatched_regular.is_empty());
        assert!(r.unmatched_regular.iter().any(|p| p.contains("ul")));
        assert!(r.unmatched_hidden.is_empty());
        assert!(r.contexts_only_regular.iter().any(|c| c.contains("li")));
    }

    #[test]
    fn added_panel_reported_on_hidden_side() {
        let a = parse_document("<body><div><p>base</p></div></body>");
        let b = parse_document("<body><div><p>base</p></div><form><p><input></p></form></body>");
        let r = explain(&a, &b, &cfg());
        assert!(r.unmatched_regular.is_empty());
        assert!(r.unmatched_hidden.iter().any(|p| p.contains("form")));
    }

    #[test]
    fn report_consistent_with_decision() {
        let a = parse_document(
            "<body><div id=s><ul><li>a</li><li>b</li></ul><dl><dt>x</dt><dd>y</dd></dl><ol><li>q</li></ol></div><div><p>t</p></div></body>",
        );
        let b = parse_document("<body><div><p>t</p></div></body>");
        let r = explain(&a, &b, &cfg());
        assert!(r.decision.cookies_caused_difference);
        assert!(!r.is_clean());
    }

    #[test]
    fn paths_are_rooted_at_body() {
        let a = parse_document("<body><div><section><p>x</p></section></div></body>");
        let b = parse_document("<body></body>");
        let r = explain(&a, &b, &cfg());
        for p in &r.unmatched_regular {
            assert!(p.starts_with("body"), "path {p} should start at body");
        }
    }
}
