//! Context-aware Visual Content Extraction (§4.2, Figure 4) and the
//! normalized context-content similarity metric (Formula 3).
//!
//! Every *non-noise* text node is paired with its **context** — the path of
//! element names from the root to the node — producing a set of
//! context-content strings. Two such sets are compared with a modified
//! Jaccard coefficient whose `s` term forgives *replacement* of text within
//! an identical context (rotating ads, tickers, timestamps), so only text
//! that appears under a context unique to one version counts as difference.

use std::borrow::Cow;
use std::collections::HashMap;

use cp_html::{Document, NodeData, NodeId};

/// The separator between context and content in a context-content string
/// (the `SEPARATOR` of Figure 4).
pub const SEPARATOR: &str = "||";

/// A multiset of context-content strings extracted from one DOM tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContentSet {
    /// `context → texts` under that context (a multiset per context).
    by_context: HashMap<String, Vec<String>>,
    len: usize,
}

impl ContentSet {
    /// Total number of context-content strings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no content was extracted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The distinct contexts present.
    pub fn contexts(&self) -> impl Iterator<Item = &str> {
        self.by_context.keys().map(String::as_str)
    }

    /// All context-content strings, `context||text`, unordered.
    pub fn strings(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len);
        for (ctx, texts) in &self.by_context {
            for t in texts {
                out.push(format!("{ctx}{SEPARATOR}{t}"));
            }
        }
        out
    }

    fn insert(&mut self, context: String, text: String) {
        self.by_context.entry(context).or_default().push(text);
        self.len += 1;
    }
}

/// Element names whose text content is noise per the paper (scripts,
/// styles, dropdown options) — §4.2: "scripts, styles, obvious
/// advertisement text, date and time string, and option text in dropdown
/// list … are regarded as noises".
pub(crate) fn noise_container(name: &str) -> bool {
    matches!(name, "script" | "style" | "option" | "select" | "noscript" | "template")
}

/// Heuristic for "obvious advertisement" containers: an `ad`-ish class
/// token or id.
pub(crate) fn ad_container(doc: &Document, id: NodeId) -> bool {
    match doc.data(id) {
        NodeData::Element { attrs, .. } => ad_attrs(attrs),
        _ => false,
    }
}

/// [`ad_container`] judged from the attribute list directly — one pass
/// instead of a scan per attribute name. First `class`/`id` occurrence
/// wins, matching `Document::attr`.
pub(crate) fn ad_attrs(attrs: &[(String, String)]) -> bool {
    const AD_TOKENS: [&str; 6] = ["ad", "ads", "advert", "advertisement", "sponsor", "sponsored"];
    let has_ad_token = |v: &str| {
        v.split([' ', '-', '_']).any(|tok| AD_TOKENS.iter().any(|t| tok.eq_ignore_ascii_case(t)))
    };
    let (mut class, mut id) = (None, None);
    for (k, v) in attrs {
        match k.as_str() {
            "class" if class.is_none() => class = Some(v.as_str()),
            "id" if id.is_none() => id = Some(v.as_str()),
            _ => {}
        }
    }
    class.is_some_and(has_ad_token) || id.is_some_and(has_ad_token)
}

/// Case-insensitive prefix probe for an ASCII-lowercase needle.
fn probe(rest: &[u8], needle: &str) -> bool {
    let n = needle.as_bytes();
    rest.len() >= n.len() && rest[..n.len()].eq_ignore_ascii_case(n)
}

/// Heuristic for date/time strings: wall-clock patterns, month-year pairs,
/// or generation timestamps.
pub fn looks_like_datetime(text: &str) -> bool {
    // One pass over the raw bytes finds the digit-driven gates and anchors
    // the timestamp phrases on their rarest bytes, so ordinary prose pays
    // roughly one branch per byte:
    //
    // * an hh:mm pattern — a colon flanked by a digit and two digits
    //   (digits and ':' are unaffected by case);
    // * a year — a run of exactly four digit bytes (digit runs are
    //   delimited identically whether scanned as chars or bytes, since
    //   UTF-8 continuation bytes are never ASCII digits);
    // * "generated at" and " gmt" both anchor on a `g`, "last updated" on
    //   the `p` of "updated" (six bytes in), all uncommon in prose.
    //
    // Month names only matter alongside a year, so that scan runs after
    // the pass, and only over the rare texts that contain one.
    let bytes = text.as_bytes();
    let mut run = 0usize;
    let mut has_year = false;
    for (i, &b) in bytes.iter().enumerate() {
        if b.is_ascii_digit() {
            run += 1;
            continue;
        }
        has_year |= run == 4;
        run = 0;
        match b {
            b':' if i >= 1
                && i + 2 < bytes.len()
                && bytes[i - 1].is_ascii_digit()
                && bytes[i + 1].is_ascii_digit()
                && bytes[i + 2].is_ascii_digit() =>
            {
                return true;
            }
            b'g' | b'G'
                if probe(&bytes[i..], "generated at")
                    || (i >= 1 && bytes[i - 1] == b' ' && probe(&bytes[i..], "gmt")) =>
            {
                return true;
            }
            b'p' | b'P' if i >= 6 && probe(&bytes[i - 6..], "last updated") => {
                return true;
            }
            _ => {}
        }
    }
    has_year |= run == 4;
    has_year && contains_month_name(bytes)
}

/// Any English month name as a case-insensitive substring. Candidate
/// positions are found by first letter, so non-matching text costs one
/// byte compare per position instead of twelve window searches.
fn contains_month_name(bytes: &[u8]) -> bool {
    for i in 0..bytes.len() {
        let rest = &bytes[i..];
        // `| 0x20` lowercases ASCII letters; other bytes map to values that
        // simply miss every arm.
        let hit = match bytes[i] | 0x20 {
            b'j' => probe(rest, "january") || probe(rest, "june") || probe(rest, "july"),
            b'f' => probe(rest, "february"),
            b'm' => probe(rest, "march") || probe(rest, "may"),
            b'a' => probe(rest, "april") || probe(rest, "august"),
            b's' => probe(rest, "september"),
            b'o' => probe(rest, "october"),
            b'n' => probe(rest, "november"),
            b'd' => probe(rest, "december"),
            _ => false,
        };
        if hit {
            return true;
        }
    }
    false
}

fn has_alphanumeric(text: &str) -> bool {
    text.chars().any(|c| c.is_alphanumeric())
}

/// Extracts the context-content string set of the subtree rooted at `root`
/// (Figure 4's `contentExtract`, plus the noise rules of §4.2).
///
/// ```
/// use cp_html::parse_document;
/// use cookiepicker_core::content_extract;
///
/// let doc = parse_document("<body><p>keep me</p><script>drop()</script><p>. .</p></body>");
/// let set = content_extract(&doc, doc.body().unwrap());
/// assert_eq!(set.len(), 1); // script text and non-alphanumeric text dropped
/// ```
pub fn content_extract(doc: &Document, root: NodeId) -> ContentSet {
    let mut sink =
        StringSink { context: String::new(), saved_lens: Vec::new(), set: ContentSet::default() };
    walk(doc, root, &mut sink);
    sink.set
}

/// Receives the CVCE traversal events. The reference and compiled
/// extractors are two sinks behind the *same* walker ([`walk`]), so both
/// see the identical sequence of visible, non-noise element entries and
/// normalized text nodes — the only difference is whether the context is
/// materialized as a string or folded into a hash.
pub(crate) trait ContentSink {
    fn enter(&mut self, name: &str);
    fn leave(&mut self);
    fn text(&mut self, normalized: &str);
}

/// The reference sink: materializes context path strings.
struct StringSink {
    context: String,
    saved_lens: Vec<usize>,
    set: ContentSet,
}

impl ContentSink for StringSink {
    fn enter(&mut self, name: &str) {
        self.saved_lens.push(self.context.len());
        if !self.context.is_empty() {
            self.context.push(':');
        }
        self.context.push_str(name);
    }

    fn leave(&mut self) {
        let saved = self.saved_lens.pop().unwrap_or(0);
        self.context.truncate(saved);
    }

    fn text(&mut self, normalized: &str) {
        self.set.insert(self.context.clone(), normalized.to_string());
    }
}

/// The compiled sink: maintains a stack of running FNV-1a states so that
/// the hash at the top always equals `fnv1a64` of the context path string
/// the reference sink would have built.
pub(crate) struct HashSink {
    context_hashes: Vec<u64>,
    items: Vec<(u64, u64)>,
}

impl HashSink {
    /// An empty sink with no open context, pre-sized for a typical page so
    /// the vectors don't reallocate while the walk runs.
    pub(crate) fn new() -> Self {
        HashSink { context_hashes: Vec::with_capacity(16), items: Vec::with_capacity(64) }
    }

    /// Sorts the collected pairs into their comparable form.
    pub(crate) fn finish(mut self) -> CompiledContentSet {
        self.items.sort_unstable();
        CompiledContentSet { items: self.items }
    }
}

impl ContentSink for HashSink {
    fn enter(&mut self, name: &str) {
        let mut h = self.context_hashes.last().copied().unwrap_or(FNV_OFFSET);
        if !self.context_hashes.is_empty() {
            h = fnv_step(h, b':');
        }
        for b in name.bytes() {
            h = fnv_step(h, b);
        }
        self.context_hashes.push(h);
    }

    fn leave(&mut self) {
        self.context_hashes.pop();
    }

    fn text(&mut self, normalized: &str) {
        let ctx = self.context_hashes.last().copied().unwrap_or(FNV_OFFSET);
        self.items.push((ctx, fnv1a64(normalized.as_bytes())));
    }
}

/// The Text-node filter of Figure 4: normalize, then drop empty,
/// non-alphanumeric, and datetime-looking strings. Shared by the recursive
/// [`walk`] and the fused single-pass compile in [`crate::analysis`], so
/// every extractor applies the identical filter sequence.
pub(crate) fn sink_text<S: ContentSink>(raw: &str, sink: &mut S) {
    // Trimming first changes nothing (`split_whitespace` ignores the ends)
    // but short-circuits the whitespace-only nodes markup is full of, and
    // lets surrounding-whitespace-only text keep the borrowed fast path.
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return;
    }
    match classify_trimmed(trimmed.as_bytes()) {
        TextClass::Keep => sink.text(trimmed),
        TextClass::Drop => {}
        TextClass::Slow => {
            let text = normalize_text(trimmed);
            if has_alphanumeric(&text) && !looks_like_datetime(&text) {
                sink.text(&text);
            }
        }
    }
}

/// Verdict of the single-pass text classification.
enum TextClass {
    /// Normalized, alphanumeric, not datetime-looking: emit as-is.
    Keep,
    /// Fails the Figure-4 / §4.2 filters: discard.
    Drop,
    /// Non-ASCII or not whitespace-normalized: re-run the multi-scan
    /// reference path on the normalized copy.
    Slow,
}

/// One fused scan over an already-trimmed text doing the entire filter
/// chain of [`sink_text`] — the whitespace-normalized check, the
/// has-alphanumeric check, and [`looks_like_datetime`] — for the common
/// case of pure-ASCII, already-normalized text. Any non-ASCII byte or
/// whitespace irregularity defers to the slow path, which normalizes first
/// (the datetime needles are whitespace-sensitive, so they must be judged
/// on the normalized string).
fn classify_trimmed(bytes: &[u8]) -> TextClass {
    let mut prev_space = false;
    let mut run = 0usize;
    let mut has_year = false;
    let mut has_alnum = false;
    for (i, &b) in bytes.iter().enumerate() {
        if !b.is_ascii() {
            return TextClass::Slow;
        }
        if b == b' ' {
            if prev_space {
                return TextClass::Slow;
            }
            prev_space = true;
            has_year |= run == 4;
            run = 0;
            continue;
        }
        // Any other whitespace char would be rewritten by normalization
        // (VT 0x0b and FF 0x0c are whitespace to `char::is_whitespace` but
        // not to `u8::is_ascii_whitespace`, so they are spelled out).
        if matches!(b, b'\t' | b'\n' | b'\r' | 0x0b | 0x0c) {
            return TextClass::Slow;
        }
        prev_space = false;
        if b.is_ascii_digit() {
            run += 1;
            has_alnum = true;
            continue;
        }
        has_year |= run == 4;
        run = 0;
        has_alnum |= b.is_ascii_alphabetic();
        match b {
            b':' if i >= 1
                && i + 2 < bytes.len()
                && bytes[i - 1].is_ascii_digit()
                && bytes[i + 1].is_ascii_digit()
                && bytes[i + 2].is_ascii_digit() =>
            {
                return TextClass::Drop;
            }
            b'g' | b'G'
                if probe(&bytes[i..], "generated at")
                    || (i >= 1 && bytes[i - 1] == b' ' && probe(&bytes[i..], "gmt")) =>
            {
                return TextClass::Drop;
            }
            b'p' | b'P' if i >= 6 && probe(&bytes[i - 6..], "last updated") => {
                return TextClass::Drop;
            }
            _ => {}
        }
    }
    has_year |= run == 4;
    if !has_alnum || (has_year && contains_month_name(bytes)) {
        return TextClass::Drop;
    }
    TextClass::Keep
}

fn walk<S: ContentSink>(doc: &Document, node: NodeId, sink: &mut S) {
    match doc.data(node) {
        NodeData::Text(text) => sink_text(text, sink),
        NodeData::Element { name, .. } => {
            if noise_container(name)
                || ad_container(doc, node)
                || !cp_html::is_node_visible(doc, node)
            {
                return;
            }
            sink.enter(name);
            for &c in doc.children(node) {
                walk(doc, c, sink);
            }
            sink.leave();
        }
        NodeData::Document => {
            for &c in doc.children(node) {
                walk(doc, c, sink);
            }
        }
        NodeData::Comment(_) | NodeData::Doctype { .. } => {}
    }
}

/// Collapses runs of whitespace to single spaces. Returns the input
/// borrowed when it is already normalized — the common case for rendered
/// markup — so the hot path usually allocates nothing.
fn normalize_text(text: &str) -> Cow<'_, str> {
    if is_whitespace_normalized(text) {
        Cow::Borrowed(text)
    } else {
        Cow::Owned(text.split_whitespace().collect::<Vec<_>>().join(" "))
    }
}

/// True iff `text == text.split_whitespace().join(" ")`: every whitespace
/// char is a single ASCII space with non-whitespace on both sides.
fn is_whitespace_normalized(text: &str) -> bool {
    if text.is_empty() {
        return true;
    }
    let mut prev_was_space = true; // rejects a leading space
    for c in text.chars() {
        if c.is_whitespace() {
            if c != ' ' || prev_was_space {
                return false;
            }
            prev_was_space = true;
        } else {
            prev_was_space = false;
        }
    }
    !prev_was_space // rejects a trailing space
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_step(hash: u64, byte: u8) -> u64 {
    (hash ^ byte as u64).wrapping_mul(FNV_PRIME)
}

/// FNV-1a 64-bit hash — the workhorse of the compiled detection path
/// (context/text hashing here, page-body cache keys in `cp-serve`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| fnv_step(h, b))
}

/// A [`ContentSet`] compiled for comparison: each context-content string is
/// reduced to a `(context_hash, text_hash)` pair and the pairs are sorted,
/// so [`n_text_sim_compiled`] is a single merge-join with no per-call
/// allocation — versus a `HashMap` build per shared context in the
/// reference [`n_text_sim`].
///
/// Equality of hashes stands in for equality of strings, so the compiled
/// similarity equals the reference bit-for-bit unless two *distinct*
/// contexts or texts on the same page pair collide in 64 bits — vanishingly
/// unlikely, and checked continuously by the seeded equivalence tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledContentSet {
    items: Vec<(u64, u64)>,
}

impl CompiledContentSet {
    /// Total number of context-content pairs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no content was extracted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Extracts the compiled content set of the subtree rooted at `root` — the
/// hash-level image of [`content_extract`] over the same traversal.
pub fn content_compile(doc: &Document, root: NodeId) -> CompiledContentSet {
    let mut sink = HashSink::new();
    walk(doc, root, &mut sink);
    sink.finish()
}

/// Merge-join over two sorted compiled sets, returning the multiset
/// intersection size and the forgiven (same-context replacement) count —
/// the same integers the reference `HashMap` walk produces.
fn compiled_overlap(s1: &[(u64, u64)], s2: &[(u64, u64)]) -> (usize, usize) {
    let (mut i, mut j) = (0usize, 0usize);
    let (mut intersection, mut forgiven) = (0usize, 0usize);
    while i < s1.len() && j < s2.len() {
        let (c1, c2) = (s1[i].0, s2[j].0);
        if c1 < c2 {
            while i < s1.len() && s1[i].0 == c1 {
                i += 1;
            }
        } else if c2 < c1 {
            while j < s2.len() && s2[j].0 == c2 {
                j += 1;
            }
        } else {
            // Shared context: both groups are sorted by text hash, so the
            // multiset intersection is an in-group merge.
            let (start1, start2) = (i, j);
            let mut end1 = i;
            while end1 < s1.len() && s1[end1].0 == c1 {
                end1 += 1;
            }
            let mut end2 = j;
            while end2 < s2.len() && s2[end2].0 == c2 {
                end2 += 1;
            }
            let mut shared = 0usize;
            while i < end1 && j < end2 {
                match s1[i].1.cmp(&s2[j].1) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        shared += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            intersection += shared;
            let u1 = (end1 - start1) - shared;
            let u2 = (end2 - start2) - shared;
            forgiven += u1.min(u2) * 2;
            i = end1;
            j = end2;
        }
    }
    (intersection, forgiven)
}

/// [`n_text_sim`] over compiled sets — identical result (modulo 64-bit hash
/// collisions), allocation-free.
pub fn n_text_sim_compiled(s1: &CompiledContentSet, s2: &CompiledContentSet) -> f64 {
    if s1.is_empty() && s2.is_empty() {
        return 1.0;
    }
    let (intersection, forgiven) = compiled_overlap(&s1.items, &s2.items);
    let union = s1.len() + s2.len() - intersection;
    if union == 0 {
        return 1.0;
    }
    (((intersection + forgiven) as f64) / union as f64).clamp(0.0, 1.0)
}

/// [`n_text_sim_strict`] over compiled sets — plain multiset Jaccard with
/// no same-context forgiveness.
pub fn n_text_sim_strict_compiled(s1: &CompiledContentSet, s2: &CompiledContentSet) -> f64 {
    if s1.is_empty() && s2.is_empty() {
        return 1.0;
    }
    let (intersection, _) = compiled_overlap(&s1.items, &s2.items);
    let union = s1.len() + s2.len() - intersection;
    if union == 0 {
        return 1.0;
    }
    (intersection as f64 / union as f64).clamp(0.0, 1.0)
}

/// `NTextSim(S1, S2)` — Formula 3: `(|S1 ∩ S2| + s) / |S1 ∪ S2|`.
///
/// The sets are multisets of context-content strings; the intersection is
/// multiset intersection. The `s` term counts the strings (on both sides)
/// that differ in content but live under a context present in **both**
/// versions — i.e. text *replacement* in the same context, which is
/// disregarded. Only text under a context unique to one version reduces the
/// similarity.
///
/// Two empty sets are fully similar (`1.0`).
///
/// ```
/// use cp_html::parse_document;
/// use cookiepicker_core::{content_extract, n_text_sim};
///
/// let a = parse_document("<body><div class=x><p>today sunny</p></div></body>");
/// let b = parse_document("<body><div class=x><p>today rainy</p></div></body>");
/// let (sa, sb) = (content_extract(&a, cp_html::NodeId::DOCUMENT), content_extract(&b, cp_html::NodeId::DOCUMENT));
/// // Pure replacement in the same context: fully forgiven.
/// assert_eq!(n_text_sim(&sa, &sb), 1.0);
/// ```
pub fn n_text_sim(s1: &ContentSet, s2: &ContentSet) -> f64 {
    if s1.is_empty() && s2.is_empty() {
        return 1.0;
    }
    let mut intersection = 0usize;
    let mut forgiven = 0usize;

    for (ctx, texts1) in &s1.by_context {
        if let Some(texts2) = s2.by_context.get(ctx) {
            // Multiset intersection of the texts under this context.
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for t in texts2 {
                *counts.entry(t.as_str()).or_default() += 1;
            }
            let mut shared = 0usize;
            for t in texts1 {
                if let Some(c) = counts.get_mut(t.as_str()) {
                    if *c > 0 {
                        *c -= 1;
                        shared += 1;
                    }
                }
            }
            intersection += shared;
            // Replacements: unmatched strings under a context both
            // versions share. Both sides' replaced strings are forgiven.
            let u1 = texts1.len() - shared;
            let u2 = texts2.len() - shared;
            forgiven += u1.min(u2) * 2;
        }
    }

    let union = s1.len() + s2.len() - intersection;
    if union == 0 {
        return 1.0;
    }
    (((intersection + forgiven) as f64) / union as f64).clamp(0.0, 1.0)
}

/// The plain Jaccard variant of [`n_text_sim`] **without** the `s` term —
/// the ablation the paper's Formula 3 discussion motivates: without the
/// same-context forgiveness, rotating ads and tickers register as real
/// content differences.
pub fn n_text_sim_strict(s1: &ContentSet, s2: &ContentSet) -> f64 {
    if s1.is_empty() && s2.is_empty() {
        return 1.0;
    }
    let mut intersection = 0usize;
    for (ctx, texts1) in &s1.by_context {
        if let Some(texts2) = s2.by_context.get(ctx) {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for t in texts2 {
                *counts.entry(t.as_str()).or_default() += 1;
            }
            for t in texts1 {
                if let Some(c) = counts.get_mut(t.as_str()) {
                    if *c > 0 {
                        *c -= 1;
                        intersection += 1;
                    }
                }
            }
        }
    }
    let union = s1.len() + s2.len() - intersection;
    if union == 0 {
        return 1.0;
    }
    (intersection as f64 / union as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_html::parse_document;

    fn set(html: &str) -> ContentSet {
        let doc = parse_document(html);
        content_extract(&doc, NodeId::DOCUMENT)
    }

    #[test]
    fn extraction_contexts() {
        let s = set("<body><div><p>alpha</p></div><p>beta</p></body>");
        let mut strings = s.strings();
        strings.sort();
        assert_eq!(strings, vec!["html:body:div:p||alpha", "html:body:p||beta"]);
    }

    #[test]
    fn whitespace_normalized() {
        let s = set("<body><p>  a   b\n c </p></body>");
        assert_eq!(s.strings(), vec!["html:body:p||a b c"]);
    }

    #[test]
    fn scripts_styles_options_dropped() {
        let s = set(
            "<body><script>x()</script><style>.a{}</style><select><option>USA</option></select><p>keep</p></body>",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ad_containers_dropped() {
        let s = set(
            r#"<body><div class="ad-slot"><p>BUY NOW</p></div><div id="ads"><p>x</p></div><p>keep</p></body>"#,
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn datetime_dropped() {
        assert!(looks_like_datetime("12:34:56 GMT"));
        assert!(looks_like_datetime("January 5, 2007"));
        assert!(looks_like_datetime("Page generated at t plus 88 ms"));
        assert!(!looks_like_datetime("regular prose about markets"));
        let s = set("<body><p>Updated 10:30</p><p>news text</p></body>");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn non_alphanumeric_dropped() {
        let s = set("<body><p>***</p><p>— · —</p><p>ok1</p></body>");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fused_classification_matches_reference_filters() {
        // The fused single-pass classifier must agree with the multi-scan
        // reference composition (normalize, then the Figure-4 filters) on
        // every input, including the whitespace and non-ASCII shapes that
        // force its slow path.
        let cases = [
            "plain prose about markets",
            "12:34",
            "1:23",
            "ends with 12:",
            ":345 starts",
            "May 2021",
            "may2021",
            "2021 in december",
            "2021 but no month",
            "20213 five digits",
            "meeting january 99",
            "Generated at build time",
            "regenerated atlas",
            "page Last Updated today",
            "blast updated",
            "10 Jan GMT offset",
            "elegantly",
            " gmt",
            "x\tgmt",
            "x \u{0b} gmt",
            "double  space 2021 may",
            "café opened 2021 in june",
            "***",
            "— · —",
            "100%",
            "a",
            "7",
        ];
        for raw in cases {
            let trimmed = raw.trim();
            let reference = {
                let text = normalize_text(trimmed);
                if text.is_empty() || !has_alphanumeric(&text) || looks_like_datetime(&text) {
                    None
                } else {
                    Some(text.into_owned())
                }
            };
            let mut sink = StringSink {
                context: String::new(),
                saved_lens: Vec::new(),
                set: ContentSet::default(),
            };
            sink_text(raw, &mut sink);
            let fused = sink.set.strings().pop().map(|s| s.split_once("||").unwrap().1.to_string());
            assert_eq!(fused, reference, "filter divergence on {raw:?}");
        }
    }

    #[test]
    fn hidden_subtrees_dropped() {
        let s = set(r#"<body><div style="display:none"><p>secret</p></div><p>seen</p></body>"#);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn identical_sets_sim_one() {
        let a = set("<body><p>one</p><div><p>two</p></div></body>");
        let b = set("<body><p>one</p><div><p>two</p></div></body>");
        assert_eq!(n_text_sim(&a, &b), 1.0);
    }

    #[test]
    fn replacement_same_context_forgiven() {
        let a = set("<body><div class=t><p>story about markets</p></div><p>base</p></body>");
        let b = set("<body><div class=t><p>story about gardens</p></div><p>base</p></body>");
        assert_eq!(n_text_sim(&a, &b), 1.0, "same-context replacement is noise");
    }

    #[test]
    fn unique_context_counts() {
        let a = set("<body><p>base</p><div id=x class=pane><h3>panel</h3><ul><li>i1</li><li>i2</li></ul></div></body>");
        let b = set("<body><p>base</p></body>");
        let sim = n_text_sim(&a, &b);
        assert!(sim < 0.5, "a whole new panel is a real difference: {sim}");
    }

    #[test]
    fn asymmetric_extras_partially_penalized() {
        // Context shared, but one side has MORE strings under it.
        let a = set("<body><ul><li>a</li><li>b</li><li>c</li></ul></body>");
        let b = set("<body><ul><li>a</li></ul></body>");
        let sim = n_text_sim(&a, &b);
        assert!(sim < 1.0 && sim > 0.0, "{sim}");
    }

    #[test]
    fn empty_sets() {
        let e = ContentSet::default();
        assert_eq!(n_text_sim(&e, &e), 1.0);
        let a = set("<body><p>text</p></body>");
        assert!(n_text_sim(&a, &e) < 1.0);
    }

    #[test]
    fn sim_symmetric_and_bounded() {
        let a = set("<body><p>x</p><div><p>y</p></div></body>");
        let b = set("<body><p>x</p><span>z</span></body>");
        let ab = n_text_sim(&a, &b);
        let ba = n_text_sim(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn normalize_borrows_when_already_clean() {
        assert!(matches!(normalize_text("alpha beta"), Cow::Borrowed(_)));
        assert!(matches!(normalize_text(""), Cow::Borrowed(_)));
        assert!(matches!(normalize_text("one"), Cow::Borrowed(_)));
        for dirty in [" a", "a ", "a  b", "a\tb", "a\nb", "a\u{a0}b", " "] {
            let out = normalize_text(dirty);
            assert!(matches!(out, Cow::Owned(_)), "{dirty:?}");
            assert_eq!(*out, dirty.split_whitespace().collect::<Vec<_>>().join(" "));
        }
    }

    const PAGES: [&str; 6] = [
        "<body><div><p>alpha</p></div><p>beta</p></body>",
        "<body><div><p>alpha</p></div><p>gamma</p><p>beta</p></body>",
        "<body><ul><li>a</li><li>b</li><li>b</li><li>c</li></ul></body>",
        "<body><ul><li>a</li><li>b</li></ul><div class=x><span>deep</span></div></body>",
        "<body></body>",
        "<body><div><div><div><p>nested deep text</p></div></div></div></body>",
    ];

    fn compiled(html: &str) -> CompiledContentSet {
        content_compile(&parse_document(html), NodeId::DOCUMENT)
    }

    #[test]
    fn compiled_sims_bit_identical_to_reference() {
        for pa in PAGES {
            for pb in PAGES {
                let (ra, rb) = (set(pa), set(pb));
                let (ca, cb) = (compiled(pa), compiled(pb));
                assert_eq!(ca.len(), ra.len(), "{pa}");
                let sim = n_text_sim_compiled(&ca, &cb);
                assert_eq!(sim.to_bits(), n_text_sim(&ra, &rb).to_bits(), "{pa} vs {pb}");
                let strict = n_text_sim_strict_compiled(&ca, &cb);
                assert_eq!(
                    strict.to_bits(),
                    n_text_sim_strict(&ra, &rb).to_bits(),
                    "strict {pa} vs {pb}"
                );
            }
        }
    }

    #[test]
    fn incremental_context_hash_equals_whole_string_hash() {
        // The hash stack must produce exactly fnv1a64(context string) at
        // every depth, or compiled and reference comparisons would diverge.
        let doc = parse_document("<body><div><p>alpha</p></div><p>beta</p></body>");
        let reference = content_extract(&doc, NodeId::DOCUMENT);
        let compiled = content_compile(&doc, NodeId::DOCUMENT);
        for (ctx, texts) in &reference.by_context {
            for text in texts {
                let pair = (fnv1a64(ctx.as_bytes()), fnv1a64(text.as_bytes()));
                assert!(compiled.items.contains(&pair), "missing {ctx}||{text}");
            }
        }
        assert_eq!(compiled.len(), reference.len());
    }

    #[test]
    fn compiled_handles_multiset_counts() {
        // Duplicate texts under one context: multiset semantics must hold.
        let a = compiled("<body><ul><li>x</li><li>x</li><li>x</li></ul></body>");
        let b = compiled("<body><ul><li>x</li></ul></body>");
        let ra = set("<body><ul><li>x</li><li>x</li><li>x</li></ul></body>");
        let rb = set("<body><ul><li>x</li></ul></body>");
        assert_eq!(n_text_sim_compiled(&a, &b).to_bits(), n_text_sim(&ra, &rb).to_bits());
    }
}
