//! Context-aware Visual Content Extraction (§4.2, Figure 4) and the
//! normalized context-content similarity metric (Formula 3).
//!
//! Every *non-noise* text node is paired with its **context** — the path of
//! element names from the root to the node — producing a set of
//! context-content strings. Two such sets are compared with a modified
//! Jaccard coefficient whose `s` term forgives *replacement* of text within
//! an identical context (rotating ads, tickers, timestamps), so only text
//! that appears under a context unique to one version counts as difference.

use std::collections::HashMap;

use cp_html::{Document, NodeData, NodeId};

/// The separator between context and content in a context-content string
/// (the `SEPARATOR` of Figure 4).
pub const SEPARATOR: &str = "||";

/// A multiset of context-content strings extracted from one DOM tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContentSet {
    /// `context → texts` under that context (a multiset per context).
    by_context: HashMap<String, Vec<String>>,
    len: usize,
}

impl ContentSet {
    /// Total number of context-content strings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no content was extracted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The distinct contexts present.
    pub fn contexts(&self) -> impl Iterator<Item = &str> {
        self.by_context.keys().map(String::as_str)
    }

    /// All context-content strings, `context||text`, unordered.
    pub fn strings(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len);
        for (ctx, texts) in &self.by_context {
            for t in texts {
                out.push(format!("{ctx}{SEPARATOR}{t}"));
            }
        }
        out
    }

    fn insert(&mut self, context: String, text: String) {
        self.by_context.entry(context).or_default().push(text);
        self.len += 1;
    }
}

/// Element names whose text content is noise per the paper (scripts,
/// styles, dropdown options) — §4.2: "scripts, styles, obvious
/// advertisement text, date and time string, and option text in dropdown
/// list … are regarded as noises".
fn noise_container(name: &str) -> bool {
    matches!(name, "script" | "style" | "option" | "select" | "noscript" | "template")
}

/// Heuristic for "obvious advertisement" containers: an `ad`-ish class
/// token or id.
fn ad_container(doc: &Document, id: NodeId) -> bool {
    let has_ad_token = |v: &str| {
        v.split([' ', '-', '_']).any(|tok| {
            matches!(
                tok.to_ascii_lowercase().as_str(),
                "ad" | "ads" | "advert" | "advertisement" | "sponsor" | "sponsored"
            )
        })
    };
    doc.attr(id, "class").is_some_and(has_ad_token) || doc.attr(id, "id").is_some_and(has_ad_token)
}

/// Heuristic for date/time strings: wall-clock patterns, month-year pairs,
/// or generation timestamps.
pub fn looks_like_datetime(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    // hh:mm pattern: a colon flanked by a digit and two digits.
    let bytes = lower.as_bytes();
    for i in 1..bytes.len().saturating_sub(2) {
        if bytes[i] == b':'
            && bytes[i - 1].is_ascii_digit()
            && bytes[i + 1].is_ascii_digit()
            && bytes[i + 2].is_ascii_digit()
        {
            return true;
        }
    }
    const MONTHS: [&str; 12] = [
        "january",
        "february",
        "march",
        "april",
        "may",
        "june",
        "july",
        "august",
        "september",
        "october",
        "november",
        "december",
    ];
    let has_month = MONTHS.iter().any(|m| lower.contains(m));
    let has_year = lower.split(|c: char| !c.is_ascii_digit()).any(|d| d.len() == 4);
    if has_month && has_year {
        return true;
    }
    lower.contains("generated at") || lower.contains("last updated") || lower.contains(" gmt")
}

fn has_alphanumeric(text: &str) -> bool {
    text.chars().any(|c| c.is_alphanumeric())
}

/// Extracts the context-content string set of the subtree rooted at `root`
/// (Figure 4's `contentExtract`, plus the noise rules of §4.2).
///
/// ```
/// use cp_html::parse_document;
/// use cookiepicker_core::content_extract;
///
/// let doc = parse_document("<body><p>keep me</p><script>drop()</script><p>. .</p></body>");
/// let set = content_extract(&doc, doc.body().unwrap());
/// assert_eq!(set.len(), 1); // script text and non-alphanumeric text dropped
/// ```
pub fn content_extract(doc: &Document, root: NodeId) -> ContentSet {
    let mut set = ContentSet::default();
    extract_rec(doc, root, &mut String::new(), &mut set);
    set
}

fn extract_rec(doc: &Document, node: NodeId, context: &mut String, set: &mut ContentSet) {
    match doc.data(node) {
        NodeData::Text(text) => {
            let text = normalize_text(text);
            if text.is_empty() || !has_alphanumeric(&text) || looks_like_datetime(&text) {
                return;
            }
            set.insert(context.clone(), text);
        }
        NodeData::Element { name, .. } => {
            if noise_container(name)
                || ad_container(doc, node)
                || !cp_html::is_node_visible(doc, node)
            {
                return;
            }
            let saved = context.len();
            if !context.is_empty() {
                context.push(':');
            }
            context.push_str(name);
            for &c in doc.children(node) {
                extract_rec(doc, c, context, set);
            }
            context.truncate(saved);
        }
        NodeData::Document => {
            for &c in doc.children(node) {
                extract_rec(doc, c, context, set);
            }
        }
        NodeData::Comment(_) | NodeData::Doctype { .. } => {}
    }
}

fn normalize_text(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// `NTextSim(S1, S2)` — Formula 3: `(|S1 ∩ S2| + s) / |S1 ∪ S2|`.
///
/// The sets are multisets of context-content strings; the intersection is
/// multiset intersection. The `s` term counts the strings (on both sides)
/// that differ in content but live under a context present in **both**
/// versions — i.e. text *replacement* in the same context, which is
/// disregarded. Only text under a context unique to one version reduces the
/// similarity.
///
/// Two empty sets are fully similar (`1.0`).
///
/// ```
/// use cp_html::parse_document;
/// use cookiepicker_core::{content_extract, n_text_sim};
///
/// let a = parse_document("<body><div class=x><p>today sunny</p></div></body>");
/// let b = parse_document("<body><div class=x><p>today rainy</p></div></body>");
/// let (sa, sb) = (content_extract(&a, cp_html::NodeId::DOCUMENT), content_extract(&b, cp_html::NodeId::DOCUMENT));
/// // Pure replacement in the same context: fully forgiven.
/// assert_eq!(n_text_sim(&sa, &sb), 1.0);
/// ```
pub fn n_text_sim(s1: &ContentSet, s2: &ContentSet) -> f64 {
    if s1.is_empty() && s2.is_empty() {
        return 1.0;
    }
    let mut intersection = 0usize;
    let mut forgiven = 0usize;

    for (ctx, texts1) in &s1.by_context {
        if let Some(texts2) = s2.by_context.get(ctx) {
            // Multiset intersection of the texts under this context.
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for t in texts2 {
                *counts.entry(t.as_str()).or_default() += 1;
            }
            let mut shared = 0usize;
            for t in texts1 {
                if let Some(c) = counts.get_mut(t.as_str()) {
                    if *c > 0 {
                        *c -= 1;
                        shared += 1;
                    }
                }
            }
            intersection += shared;
            // Replacements: unmatched strings under a context both
            // versions share. Both sides' replaced strings are forgiven.
            let u1 = texts1.len() - shared;
            let u2 = texts2.len() - shared;
            forgiven += u1.min(u2) * 2;
        }
    }

    let union = s1.len() + s2.len() - intersection;
    if union == 0 {
        return 1.0;
    }
    (((intersection + forgiven) as f64) / union as f64).clamp(0.0, 1.0)
}

/// The plain Jaccard variant of [`n_text_sim`] **without** the `s` term —
/// the ablation the paper's Formula 3 discussion motivates: without the
/// same-context forgiveness, rotating ads and tickers register as real
/// content differences.
pub fn n_text_sim_strict(s1: &ContentSet, s2: &ContentSet) -> f64 {
    if s1.is_empty() && s2.is_empty() {
        return 1.0;
    }
    let mut intersection = 0usize;
    for (ctx, texts1) in &s1.by_context {
        if let Some(texts2) = s2.by_context.get(ctx) {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for t in texts2 {
                *counts.entry(t.as_str()).or_default() += 1;
            }
            for t in texts1 {
                if let Some(c) = counts.get_mut(t.as_str()) {
                    if *c > 0 {
                        *c -= 1;
                        intersection += 1;
                    }
                }
            }
        }
    }
    let union = s1.len() + s2.len() - intersection;
    if union == 0 {
        return 1.0;
    }
    (intersection as f64 / union as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_html::parse_document;

    fn set(html: &str) -> ContentSet {
        let doc = parse_document(html);
        content_extract(&doc, NodeId::DOCUMENT)
    }

    #[test]
    fn extraction_contexts() {
        let s = set("<body><div><p>alpha</p></div><p>beta</p></body>");
        let mut strings = s.strings();
        strings.sort();
        assert_eq!(strings, vec!["html:body:div:p||alpha", "html:body:p||beta"]);
    }

    #[test]
    fn whitespace_normalized() {
        let s = set("<body><p>  a   b\n c </p></body>");
        assert_eq!(s.strings(), vec!["html:body:p||a b c"]);
    }

    #[test]
    fn scripts_styles_options_dropped() {
        let s = set(
            "<body><script>x()</script><style>.a{}</style><select><option>USA</option></select><p>keep</p></body>",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ad_containers_dropped() {
        let s = set(
            r#"<body><div class="ad-slot"><p>BUY NOW</p></div><div id="ads"><p>x</p></div><p>keep</p></body>"#,
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn datetime_dropped() {
        assert!(looks_like_datetime("12:34:56 GMT"));
        assert!(looks_like_datetime("January 5, 2007"));
        assert!(looks_like_datetime("Page generated at t plus 88 ms"));
        assert!(!looks_like_datetime("regular prose about markets"));
        let s = set("<body><p>Updated 10:30</p><p>news text</p></body>");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn non_alphanumeric_dropped() {
        let s = set("<body><p>***</p><p>— · —</p><p>ok1</p></body>");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hidden_subtrees_dropped() {
        let s = set(r#"<body><div style="display:none"><p>secret</p></div><p>seen</p></body>"#);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn identical_sets_sim_one() {
        let a = set("<body><p>one</p><div><p>two</p></div></body>");
        let b = set("<body><p>one</p><div><p>two</p></div></body>");
        assert_eq!(n_text_sim(&a, &b), 1.0);
    }

    #[test]
    fn replacement_same_context_forgiven() {
        let a = set("<body><div class=t><p>story about markets</p></div><p>base</p></body>");
        let b = set("<body><div class=t><p>story about gardens</p></div><p>base</p></body>");
        assert_eq!(n_text_sim(&a, &b), 1.0, "same-context replacement is noise");
    }

    #[test]
    fn unique_context_counts() {
        let a = set("<body><p>base</p><div id=x class=pane><h3>panel</h3><ul><li>i1</li><li>i2</li></ul></div></body>");
        let b = set("<body><p>base</p></body>");
        let sim = n_text_sim(&a, &b);
        assert!(sim < 0.5, "a whole new panel is a real difference: {sim}");
    }

    #[test]
    fn asymmetric_extras_partially_penalized() {
        // Context shared, but one side has MORE strings under it.
        let a = set("<body><ul><li>a</li><li>b</li><li>c</li></ul></body>");
        let b = set("<body><ul><li>a</li></ul></body>");
        let sim = n_text_sim(&a, &b);
        assert!(sim < 1.0 && sim > 0.0, "{sim}");
    }

    #[test]
    fn empty_sets() {
        let e = ContentSet::default();
        assert_eq!(n_text_sim(&e, &e), 1.0);
        let a = set("<body><p>text</p></body>");
        assert!(n_text_sim(&a, &e) < 1.0);
    }

    #[test]
    fn sim_symmetric_and_bounded() {
        let a = set("<body><p>x</p><div><p>y</p></div></body>");
        let b = set("<body><p>x</p><span>z</span></body>");
        let ab = n_text_sim(&a, &b);
        let ba = n_text_sim(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }
}
