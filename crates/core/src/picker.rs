//! The CookiePicker extension: the five FORCUM steps wired into the
//! browser's page-load hook.

use std::collections::{HashMap, HashSet};

use cp_runtime::json::{FromJson, Json, JsonError, ToJson};
use cp_runtime::rng::{Rng, SeedableRng, StdRng};

use cp_browser::{BrowserExtension, PageContext};
use cp_cookies::{parse_cookie_header, SimDuration};
use cp_html::parse_document;
use cp_net::{NetError, Request};

use crate::config::{CookiePickerConfig, TestGroupStrategy};
use crate::decision::{decide, Decision};
use crate::forcum::ForcumState;
use crate::probe::{InconclusiveReason, ProbeOutcome, ProbeReport, RetryPolicy};
use crate::recovery::RecoveryLog;

/// One detection event: a hidden request issued and judged.
#[derive(Debug, Clone)]
pub struct DetectionRecord {
    /// Site host.
    pub host: String,
    /// Container-page path.
    pub path: String,
    /// The cookie names disabled in the hidden request.
    pub group: Vec<String>,
    /// The similarity scores and verdict.
    pub decision: Decision,
    /// Simulated network latency of the hidden request, in milliseconds.
    pub hidden_latency_ms: u64,
    /// The paper's "CookiePicker Duration": hidden-request latency plus
    /// detection time, in milliseconds.
    pub duration_ms: f64,
}

/// One probe that produced no verdict: the hidden fetch failed or came
/// back suspect, and FORCUM deferred judgement for that page view.
#[derive(Debug, Clone, PartialEq)]
pub struct InconclusiveProbe {
    /// Site host.
    pub host: String,
    /// Container-page path.
    pub path: String,
    /// The cookie names that would have been disabled.
    pub group: Vec<String>,
    /// Why no trustworthy hidden page was obtained.
    pub reason: InconclusiveReason,
    /// Fetch attempts made before giving up.
    pub attempts: u32,
}

/// A per-site training summary (see [`CookiePicker::summary_for`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSummary {
    /// The site host.
    pub host: String,
    /// Hidden-request probes issued for this site (decided + deferred).
    pub probes: usize,
    /// Probes whose decision attributed the difference to cookies.
    pub marking_probes: usize,
    /// Probes that produced no verdict (failed/suspect hidden fetch).
    pub deferred_probes: usize,
    /// Mean detection time in milliseconds.
    pub avg_detection_ms: f64,
    /// Mean CookiePicker duration (hidden latency + detection) in ms.
    pub avg_duration_ms: f64,
    /// Whether FORCUM is still active for the site.
    pub training_active: bool,
}

impl ToJson for DetectionRecord {
    fn to_json(&self) -> Json {
        Json::object()
            .set("host", &self.host)
            .set("path", &self.path)
            .set("group", self.group.clone())
            .set("decision", self.decision.to_json())
            .set("hidden_latency_ms", self.hidden_latency_ms)
            .set("duration_ms", self.duration_ms)
    }
}

impl ToJson for TrainingSummary {
    fn to_json(&self) -> Json {
        Json::object()
            .set("host", &self.host)
            .set("probes", self.probes)
            .set("marking_probes", self.marking_probes)
            .set("deferred_probes", self.deferred_probes)
            .set("avg_detection_ms", self.avg_detection_ms)
            .set("avg_duration_ms", self.avg_duration_ms)
            .set("training_active", self.training_active)
    }
}

impl FromJson for DetectionRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(DetectionRecord {
            host: String::from_json(value.require("host")?)?,
            path: String::from_json(value.require("path")?)?,
            group: Vec::<String>::from_json(value.require("group")?)?,
            decision: Decision::from_json(value.require("decision")?)?,
            hidden_latency_ms: u64::from_json(value.require("hidden_latency_ms")?)?,
            duration_ms: f64::from_json(value.require("duration_ms")?)?,
        })
    }
}

impl FromJson for TrainingSummary {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(TrainingSummary {
            host: String::from_json(value.require("host")?)?,
            probes: usize::from_json(value.require("probes")?)?,
            marking_probes: usize::from_json(value.require("marking_probes")?)?,
            // Optional for wire compatibility with summaries minted before
            // the fault-injection work.
            deferred_probes: value
                .get("deferred_probes")
                .map(usize::from_json)
                .transpose()?
                .unwrap_or(0),
            avg_detection_ms: f64::from_json(value.require("avg_detection_ms")?)?,
            avg_duration_ms: f64::from_json(value.require("avg_duration_ms")?)?,
            training_active: bool::from_json(value.require("training_active")?)?,
        })
    }
}

/// The CookiePicker browser extension.
///
/// Install it on a [`cp_browser::Browser`] via
/// [`visit_with`](cp_browser::Browser::visit_with); it executes the five
/// FORCUM steps (§3.2) on every page view:
///
/// 1. records the regular container request,
/// 2. issues the hidden request with the test group's cookies removed,
/// 3. builds the hidden DOM with the same parser,
/// 4. identifies usefulness with RSTM + CVCE (Figure 5),
/// 5. marks useful cookies in the jar.
#[derive(Debug)]
pub struct CookiePicker {
    config: CookiePickerConfig,
    forcum: ForcumState,
    records: Vec<DetectionRecord>,
    rotation: HashMap<String, usize>,
    /// Pending subgroups per site for [`TestGroupStrategy::GroupBisect`].
    bisect_queue: HashMap<String, Vec<Vec<String>>>,
    last_disabled: HashMap<String, Vec<String>>,
    recovery: RecoveryLog,
    retry: RetryPolicy,
    /// Seeded source for backoff jitter. Only consulted when a hidden fetch
    /// fails, so fault-free runs never draw from it.
    retry_rng: StdRng,
    inconclusive: Vec<InconclusiveProbe>,
    retries_total: u64,
}

/// Fixed seed for the backoff-jitter stream: drawn only on failures, so
/// it does not need to vary per experiment to keep runs reproducible.
const RETRY_JITTER_SEED: u64 = 0x5245_5452_594a_4954;

impl CookiePicker {
    /// Creates a picker with the given configuration.
    pub fn new(config: CookiePickerConfig) -> Self {
        let stability_window = config.stability_window;
        CookiePicker {
            config,
            forcum: ForcumState::new(stability_window),
            records: Vec::new(),
            rotation: HashMap::new(),
            bisect_queue: HashMap::new(),
            last_disabled: HashMap::new(),
            recovery: RecoveryLog::default(),
            retry: RetryPolicy::default(),
            retry_rng: StdRng::seed_from_u64(RETRY_JITTER_SEED),
            inconclusive: Vec::new(),
            retries_total: 0,
        }
    }

    /// Replaces the hidden-request retry/deadline policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The active retry/deadline policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// All probes that produced no verdict, in order.
    pub fn inconclusive(&self) -> &[InconclusiveProbe] {
        &self.inconclusive
    }

    /// Inconclusive probes for one site.
    pub fn inconclusive_for(&self, host: &str) -> Vec<&InconclusiveProbe> {
        self.inconclusive.iter().filter(|p| p.host == host).collect()
    }

    /// Total hidden-fetch retries performed across all probes.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// The active configuration.
    pub fn config(&self) -> &CookiePickerConfig {
        &self.config
    }

    /// All detection records, in order.
    pub fn records(&self) -> &[DetectionRecord] {
        &self.records
    }

    /// Detection records for one site.
    pub fn records_for(&self, host: &str) -> Vec<&DetectionRecord> {
        self.records.iter().filter(|r| r.host == host).collect()
    }

    /// The FORCUM training state.
    pub fn forcum(&self) -> &ForcumState {
        &self.forcum
    }

    /// The backward-error-recovery log.
    pub fn recovery_log(&self) -> &RecoveryLog {
        &self.recovery
    }

    /// Summarizes one site's training run.
    ///
    /// `probes` counts every hidden request issued (decided + deferred);
    /// the averages divide by *decided* probes only, since a deferred
    /// probe records no detection time or duration.
    pub fn summary_for(&self, host: &str) -> TrainingSummary {
        let records: Vec<&DetectionRecord> =
            self.records.iter().filter(|r| r.host == host).collect();
        let decided = records.len();
        let deferred = self.inconclusive.iter().filter(|p| p.host == host).count();
        let marking_probes =
            records.iter().filter(|r| r.decision.cookies_caused_difference).count();
        let (det_sum, dur_sum) = records.iter().fold((0.0f64, 0.0f64), |(d, t), r| {
            (d + r.decision.detection_micros as f64 / 1_000.0, t + r.duration_ms)
        });
        let denom = decided.max(1) as f64;
        TrainingSummary {
            host: host.to_string(),
            probes: decided + deferred,
            marking_probes,
            deferred_probes: deferred,
            avg_detection_ms: det_sum / denom,
            avg_duration_ms: dur_sum / denom,
            training_active: self.forcum.is_active(host),
        }
    }

    /// The **backward error recovery button** (§3.3): the user noticed a
    /// malfunction on the current page of `host`; re-mark the cookies most
    /// recently disabled there as useful. Returns the re-marked names.
    pub fn recovery_click(&mut self, host: &str, jar: &mut cp_cookies::CookieJar) -> Vec<String> {
        let group = self.last_disabled.get(host).cloned().unwrap_or_default();
        if !group.is_empty() {
            let names: Vec<&str> = group.iter().map(String::as_str).collect();
            jar.mark_useful(host, &names);
            self.recovery.record(host, &group);
            // Re-marking is a training signal: keep FORCUM running.
            self.forcum.restart(host);
        }
        group
    }

    /// Finalizes training for a site whose cookie set is stable: removes
    /// its still-unmarked persistent cookies from the jar (§3.3). Returns
    /// the removed cookie names.
    pub fn finalize_site(&self, host: &str, jar: &mut cp_cookies::CookieJar) -> Vec<String> {
        jar.remove_useless_persistent(host).into_iter().map(|c| c.name).collect()
    }

    fn select_group(&mut self, ctx: &PageContext<'_>, sent_names: &[String]) -> Vec<String> {
        let host = ctx.view.top_host();
        // Hash-set dedup: sent_names can repeat, and a linear
        // `candidates.contains` per name is quadratic in cookie count.
        let mut seen: HashSet<&str> = HashSet::with_capacity(sent_names.len());
        let mut candidates: Vec<String> = Vec::new();
        for name in sent_names {
            if !seen.insert(name.as_str()) {
                continue;
            }
            let is_candidate = ctx.jar.iter().any(|c| {
                c.name == *name && c.domain_matches(host) && c.is_persistent() && !c.useful()
            });
            if is_candidate {
                candidates.push(name.clone());
            }
        }
        match self.config.strategy {
            TestGroupStrategy::SentCookies => candidates,
            TestGroupStrategy::PerCookie => {
                if candidates.is_empty() {
                    return candidates;
                }
                let counter = self.rotation.entry(host.to_string()).or_insert(0);
                let pick = candidates[*counter % candidates.len()].clone();
                *counter += 1;
                vec![pick]
            }
            TestGroupStrategy::GroupBisect => {
                // Prefer a queued subgroup whose cookies are present in this
                // request; fall back to the full candidate set.
                let candidate_set: HashSet<&str> = candidates.iter().map(String::as_str).collect();
                if let Some(queue) = self.bisect_queue.get_mut(host) {
                    while let Some(sub) = queue.pop() {
                        let usable: Vec<String> = sub
                            .into_iter()
                            .filter(|n| candidate_set.contains(n.as_str()))
                            .collect();
                        if !usable.is_empty() {
                            return usable;
                        }
                    }
                }
                candidates
            }
        }
    }

    fn build_hidden_request(&self, regular: &Request, group: &[String]) -> Request {
        let mut hidden = regular.clone();
        let disabled: HashSet<&str> = group.iter().map(String::as_str).collect();
        let remaining: Vec<(String, String)> = regular
            .cookie_header()
            .map(parse_cookie_header)
            .unwrap_or_default()
            .into_iter()
            .filter(|(n, _)| !disabled.contains(n.as_str()))
            .collect();
        if remaining.is_empty() {
            hidden.headers.remove("cookie");
        } else {
            let header =
                remaining.iter().map(|(n, v)| format!("{n}={v}")).collect::<Vec<_>>().join("; ");
            hidden.headers.set("Cookie", header);
        }
        if self.config.xhr_header {
            hidden.headers.set("X-Requested-With", "XMLHttpRequest");
        }
        hidden
    }

    /// The jittered backoff before retry number `retry` (1-based): the base
    /// doubles per retry, scaled by a seeded jitter factor.
    fn backoff_before(&mut self, retry: u32) -> SimDuration {
        let base = self.retry.backoff.as_millis() << (retry - 1).min(16);
        let factor = 1.0 + self.retry.jitter * (self.retry_rng.gen::<f64>() * 2.0 - 1.0);
        SimDuration::from_millis(((base as f64) * factor.max(0.0)) as u64)
    }

    /// Issues the hidden request with deadline and bounded retry, and runs
    /// Figure 5 on success. The whole probe is budgeted against the user's
    /// think pause (`ctx.think_budget`, floored by the retry policy): each
    /// attempt gets the remaining budget as its fetch deadline, failed
    /// attempts and backoff pauses consume it, and when it runs out the
    /// probe resolves to [`ProbeOutcome::Inconclusive`].
    fn probe_hidden(&mut self, ctx: &PageContext<'_>, hidden_req: &Request) -> ProbeReport {
        let budget = ctx.think_budget.max(self.retry.deadline_floor).as_millis();
        let mut left = budget;
        let mut attempts = 0u32;
        let mut reason = InconclusiveReason::Deadline;
        while attempts <= self.retry.max_retries {
            if attempts > 0 {
                let backoff = self.backoff_before(attempts).as_millis();
                if backoff >= left {
                    break;
                }
                left -= backoff;
            }
            attempts += 1;
            let deadline = SimDuration::from_millis(left);
            match ctx.network.fetch_with_deadline(hidden_req, ctx.now, Some(deadline)) {
                Ok(outcome) => {
                    let cost = outcome.latency.as_millis().min(left);
                    left -= cost;
                    if outcome.response.status.is_success() {
                        // Step 3: build the hidden DOM with the same parser.
                        let hidden_dom = parse_document(&outcome.response.body_string());
                        // Step 4: identify usefulness.
                        let decision = decide(&ctx.view.dom, &hidden_dom, &self.config);
                        return ProbeReport {
                            outcome: ProbeOutcome::Decided(decision),
                            attempts,
                            spent: SimDuration::from_millis(budget - left),
                            hidden_latency: outcome.latency,
                        };
                    }
                    // An error page is not the cookie-disabled rendering:
                    // comparing it would mis-attribute the difference to
                    // the cookies. Treat as transient and retry.
                    reason = InconclusiveReason::ServerError;
                }
                Err(err) => {
                    if !err.is_transient() {
                        reason = InconclusiveReason::Transport;
                        break;
                    }
                    let cost = err.elapsed().as_millis().min(left);
                    left -= cost;
                    reason = match err {
                        NetError::DeadlineExceeded { .. } => InconclusiveReason::Deadline,
                        NetError::TruncatedBody { .. } => InconclusiveReason::Truncated,
                        _ => InconclusiveReason::Transport,
                    };
                }
            }
            if left == 0 {
                break;
            }
        }
        ProbeReport {
            outcome: ProbeOutcome::Inconclusive(reason),
            attempts,
            spent: SimDuration::from_millis(budget - left),
            hidden_latency: SimDuration::ZERO,
        }
    }
}

impl BrowserExtension for CookiePicker {
    fn on_page_loaded(&mut self, ctx: &mut PageContext<'_>) {
        let host = ctx.view.top_host().to_string();
        let path = ctx.view.url.path().to_string();

        // Names observed this view: cookies sent plus cookies set by the
        // response (drives FORCUM's new-cookie reactivation).
        let sent_names: Vec<String> = ctx
            .view
            .container_request
            .cookie_header()
            .map(|h| parse_cookie_header(h).into_iter().map(|(n, _)| n).collect())
            .unwrap_or_default();
        let mut observed = sent_names.clone();
        for sc in ctx.view.container_response.set_cookies() {
            if let Some((name, _)) = sc.split_once('=') {
                observed.push(name.trim().to_string());
            }
        }

        if !self.forcum.is_active(&host) {
            // Dormant: just feed the observation (new cookies reactivate).
            self.forcum.observe(&host, observed, 0, false);
            return;
        }

        // Step 2: pick the cookies under test.
        let group = self.select_group(ctx, &sent_names);
        if group.is_empty() {
            self.forcum.observe(&host, observed, 0, false);
            return;
        }

        // Step 2 (cont.): the single hidden request for the container page,
        // with deadline + bounded retry budgeted against the think pause.
        let hidden_req = self.build_hidden_request(&ctx.view.container_request, &group);
        let report = self.probe_hidden(ctx, &hidden_req);
        ctx.advance(report.spent);
        self.retries_total += u64::from(report.attempts.saturating_sub(1));

        let decision = match report.outcome {
            ProbeOutcome::Decided(decision) => decision,
            ProbeOutcome::Inconclusive(reason) => {
                // Degradation ladder: no trustworthy hidden page means the
                // view proves nothing. Defer — never judge — so `useful`
                // stays monotone (false → true only on real evidence).
                self.inconclusive.push(InconclusiveProbe {
                    host: host.clone(),
                    path,
                    group,
                    reason,
                    attempts: report.attempts,
                });
                self.forcum.defer(&host, observed);
                return;
            }
        };

        // Step 5: mark (or, under GroupBisect, refine the group first).
        let mut marked = 0;
        let mut refined = false;
        if decision.cookies_caused_difference {
            if self.config.strategy == TestGroupStrategy::GroupBisect && group.len() > 1 {
                // The group as a whole matters; isolate the culprits by
                // retesting its halves on later page views.
                let mid = group.len() / 2;
                let queue = self.bisect_queue.entry(host.clone()).or_default();
                queue.push(group[..mid].to_vec());
                queue.push(group[mid..].to_vec());
                refined = true;
            } else {
                let names: Vec<&str> = group.iter().map(String::as_str).collect();
                marked = ctx.jar.mark_useful(&host, &names);
            }
        } else {
            // These cookies were disabled and judged useless in this view:
            // remember them for the recovery button.
            self.last_disabled.insert(host.clone(), group.clone());
        }

        let duration_ms =
            report.spent.as_millis() as f64 + decision.detection_micros as f64 / 1_000.0;
        self.records.push(DetectionRecord {
            host: host.clone(),
            path,
            group,
            decision,
            hidden_latency_ms: report.hidden_latency.as_millis(),
            duration_ms,
        });
        // An in-progress bisection counts as training progress: the streak
        // must not expire while subgroups are still queued.
        self.forcum.observe(&host, observed, marked.max(usize::from(refined)), true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use cp_browser::Browser;
    use cp_cookies::CookiePolicy;
    use cp_net::{SimNetwork, Url};
    use cp_webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};

    fn world(spec: SiteSpec) -> (Browser, Url) {
        let domain = spec.domain.clone();
        let mut net = SimNetwork::new(11);
        net.register(domain.clone(), SiteServer::new(spec));
        let browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 3);
        (browser, Url::parse(&format!("http://{domain}/")).unwrap())
    }

    fn tracked_site() -> SiteSpec {
        SiteSpec::new("t.example", Category::News, 21)
            .with_cookie(CookieSpec::tracker("trk_a"))
            .with_cookie(CookieSpec::tracker("trk_b"))
    }

    fn pref_site() -> SiteSpec {
        SiteSpec::new("p.example", Category::Shopping, 22)
            .with_cookie(CookieSpec::tracker("trk"))
            .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium))
    }

    #[test]
    fn trackers_never_marked() {
        let (mut browser, url) = world(tracked_site());
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        for i in 0..6 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        assert!(browser.jar.iter().all(|c| !c.useful()));
        assert!(!picker.records().is_empty());
        for r in picker.records() {
            assert!(!r.decision.cookies_caused_difference, "{r:?}");
        }
    }

    #[test]
    fn preference_cookie_marked_tracker_piggybacks() {
        // With the paper's SentCookies grouping, the tracker rides along in
        // the same group and gets marked too (the P5/P6 phenomenon).
        let (mut browser, url) = world(pref_site());
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        for i in 0..4 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        let marked: Vec<String> =
            browser.jar.iter().filter(|c| c.useful()).map(|c| c.name.clone()).collect();
        assert!(marked.contains(&"pref".to_string()));
        assert!(marked.contains(&"trk".to_string()), "piggyback mark expected");
    }

    #[test]
    fn group_bisect_isolates_useful_cookie() {
        // Site with 1 useful preference cookie among 5 trackers: bisection
        // must mark exactly the useful one, unlike SentCookies.
        let mut spec = SiteSpec::new("b.example", Category::Reference, 23)
            .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
        for k in 0..5 {
            spec = spec.with_cookie(CookieSpec::tracker(format!("trk{k}")));
        }
        let (mut browser, url) = world(spec);
        let mut picker = CookiePicker::new(
            CookiePickerConfig::default().with_strategy(TestGroupStrategy::GroupBisect),
        );
        for i in 0..14 {
            let page = url.join(&format!("/page/{}", i % 6));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        let marked: Vec<String> =
            browser.jar.iter().filter(|c| c.useful()).map(|c| c.name.clone()).collect();
        assert_eq!(marked, vec!["pref".to_string()], "bisection isolates the useful cookie");
    }

    #[test]
    fn group_bisect_converges_faster_than_per_cookie() {
        // With n cookies and one useful, bisection needs O(log n) probes
        // after the first whole-group hit; PerCookie needs O(n) just to
        // reach the useful one.
        let build = || {
            // The useful cookie sits last in rotation order, so PerCookie
            // pays the full linear scan.
            let mut spec = SiteSpec::new("c.example", Category::Games, 29);
            for k in 0..7 {
                spec = spec.with_cookie(CookieSpec::tracker(format!("t{k}")));
            }
            spec.with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium))
        };
        let probes_until_marked = |strategy: TestGroupStrategy| -> usize {
            let (mut browser, url) = world(build());
            let mut picker =
                CookiePicker::new(CookiePickerConfig::default().with_strategy(strategy));
            for i in 0..30 {
                let page = url.join(&format!("/page/{}", i % 6));
                browser.visit_with(&page, &mut picker).unwrap();
                browser.think();
                if browser.jar.iter().any(|c| c.name == "pref" && c.useful()) {
                    return picker.records().len();
                }
            }
            usize::MAX
        };
        let bisect = probes_until_marked(TestGroupStrategy::GroupBisect);
        let per_cookie = probes_until_marked(TestGroupStrategy::PerCookie);
        assert!(bisect < usize::MAX && per_cookie < usize::MAX);
        assert!(bisect <= per_cookie, "bisect {bisect} vs per-cookie {per_cookie}");
    }

    #[test]
    fn per_cookie_strategy_avoids_piggyback() {
        let (mut browser, url) = world(pref_site());
        let mut picker = CookiePicker::new(
            CookiePickerConfig::default().with_strategy(TestGroupStrategy::PerCookie),
        );
        for i in 0..10 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        let marked: Vec<String> =
            browser.jar.iter().filter(|c| c.useful()).map(|c| c.name.clone()).collect();
        assert_eq!(marked, vec!["pref".to_string()], "only the truly useful cookie");
    }

    #[test]
    fn first_visit_sends_no_hidden_request() {
        let (mut browser, url) = world(tracked_site());
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        browser.visit_with(&url, &mut picker).unwrap();
        // No cookies were attached to the first regular request → no group.
        assert!(picker.records().is_empty());
    }

    #[test]
    fn marked_cookies_not_retested() {
        let (mut browser, url) = world(pref_site());
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        for i in 0..8 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        // After everything is marked, groups are empty → record count stops
        // growing.
        let count = picker.records().len();
        for i in 8..12 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        assert_eq!(picker.records().len(), count);
    }

    #[test]
    fn summary_reflects_training() {
        let (mut browser, url) = world(pref_site());
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        for i in 0..5 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        let s = picker.summary_for("p.example");
        assert!(s.probes >= 1);
        assert!(s.marking_probes >= 1);
        assert!(s.avg_duration_ms > 0.0);
        assert!(s.training_active);
        let empty = picker.summary_for("never-visited.example");
        assert_eq!(empty.probes, 0);
        assert_eq!(empty.avg_detection_ms, 0.0);
    }

    #[test]
    fn recovery_click_remarks_last_disabled() {
        let (mut browser, url) = world(tracked_site());
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        for i in 0..3 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        assert!(browser.jar.iter().all(|c| !c.useful()));
        let remarked = picker.recovery_click("t.example", &mut browser.jar);
        assert!(!remarked.is_empty());
        for name in &remarked {
            assert!(browser.jar.iter().any(|c| &c.name == name && c.useful()));
        }
        assert_eq!(picker.recovery_log().total(), remarked.len());
    }

    #[test]
    fn finalize_removes_useless_persistent() {
        let (mut browser, url) = world(pref_site());
        let mut picker = CookiePicker::new(
            CookiePickerConfig::default().with_strategy(TestGroupStrategy::PerCookie),
        );
        for i in 0..10 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        let removed = picker.finalize_site("p.example", &mut browser.jar);
        assert_eq!(removed, vec!["trk".to_string()]);
        assert!(browser.jar.iter().any(|c| c.name == "pref"), "useful cookie kept");
    }

    #[test]
    fn duration_includes_network_latency() {
        let (mut browser, url) = world(pref_site());
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        for i in 0..3 {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, &mut picker).unwrap();
            browser.think();
        }
        for r in picker.records() {
            assert!(r.hidden_latency_ms > 0);
            assert!(r.duration_ms >= r.hidden_latency_ms as f64);
        }
    }

    #[test]
    fn hidden_request_carries_xhr_header_only_when_configured() {
        let (_b, _u) = world(tracked_site());
        let picker = CookiePicker::new(CookiePickerConfig::default());
        let mut req = Request::get(Url::parse("http://t.example/").unwrap());
        req.headers.set("Cookie", "trk_a=1; trk_b=2; keep=3");
        let hidden = picker.build_hidden_request(&req, &["trk_a".into(), "trk_b".into()]);
        assert_eq!(hidden.cookie_header(), Some("keep=3"));
        assert!(hidden.headers.contains("x-requested-with"));

        let cfg = CookiePickerConfig { xhr_header: false, ..CookiePickerConfig::default() };
        let stealth = CookiePicker::new(cfg);
        let hidden = stealth.build_hidden_request(&req, &["keep".into()]);
        assert!(!hidden.headers.contains("x-requested-with"));
        assert_eq!(hidden.cookie_header(), Some("trk_a=1; trk_b=2"));
    }

    #[test]
    fn record_and_summary_json_round_trip() {
        let record = DetectionRecord {
            host: "a.example".into(),
            path: "/p".into(),
            group: vec!["trk".into(), "pref".into()],
            decision: Decision {
                tree_sim: 0.1,
                text_sim: 0.2,
                cookies_caused_difference: true,
                detection_micros: 77,
            },
            hidden_latency_ms: 9,
            duration_ms: 9.077,
        };
        let back =
            DetectionRecord::from_json(&Json::parse(&record.to_json().to_compact()).unwrap())
                .unwrap();
        assert_eq!(back.host, record.host);
        assert_eq!(back.group, record.group);
        assert_eq!(back.decision, record.decision);
        assert_eq!(back.duration_ms, record.duration_ms);

        let summary = TrainingSummary {
            host: "a.example".into(),
            probes: 4,
            marking_probes: 1,
            deferred_probes: 2,
            avg_detection_ms: 0.5,
            avg_duration_ms: 10.25,
            training_active: false,
        };
        let back =
            TrainingSummary::from_json(&Json::parse(&summary.to_json().to_compact()).unwrap())
                .unwrap();
        assert_eq!(back.probes, summary.probes);
        assert_eq!(back.marking_probes, summary.marking_probes);
        assert_eq!(back.deferred_probes, summary.deferred_probes);
        assert_eq!(back.avg_duration_ms, summary.avg_duration_ms);
        assert!(!back.training_active);
        assert!(TrainingSummary::from_json(&Json::parse("{\"host\":\"x\"}").unwrap()).is_err());
        // Summaries minted before fault injection lack the deferral count.
        let legacy = Json::object()
            .set("host", "a.example")
            .set("probes", 4usize)
            .set("marking_probes", 1usize)
            .set("avg_detection_ms", 0.5)
            .set("avg_duration_ms", 10.25)
            .set("training_active", false);
        assert_eq!(TrainingSummary::from_json(&legacy).unwrap().deferred_probes, 0);
    }

    fn faulted_world(spec: SiteSpec, rates: cp_net::FaultRates) -> (Browser, Url) {
        let domain = spec.domain.clone();
        let mut net = SimNetwork::new(11);
        net.register(domain.clone(), SiteServer::new(spec));
        // Fault only the hidden (XHR-marked) class: container pages render,
        // probes fail.
        net.set_fault_plan(cp_net::FaultPlan::new(77).with_hidden(rates));
        let browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 3);
        (browser, Url::parse(&format!("http://{domain}/")).unwrap())
    }

    fn train(browser: &mut Browser, url: &Url, picker: &mut CookiePicker, pages: usize) {
        for i in 0..pages {
            let page = url.join(&format!("/page/{i}"));
            browser.visit_with(&page, picker).unwrap();
            browser.think();
        }
    }

    #[test]
    fn suspect_hidden_page_never_compared() {
        // 100% 5xx on the hidden class: every probe must resolve to
        // Inconclusive(ServerError) — the error page is never run through
        // Figure 5, so nothing gets marked, rightly or wrongly.
        let rates = cp_net::FaultRates { http_5xx: 1.0, ..cp_net::FaultRates::NONE };
        let (mut browser, url) = faulted_world(pref_site(), rates);
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        train(&mut browser, &url, &mut picker, 6);
        assert!(picker.records().is_empty(), "no verdicts from suspect pages");
        assert!(!picker.inconclusive().is_empty());
        for probe in picker.inconclusive() {
            assert_eq!(probe.reason, InconclusiveReason::ServerError);
            assert!(probe.attempts > 1, "5xx is retried before deferring");
        }
        assert!(browser.jar.iter().all(|c| !c.useful()), "deferral marks nothing");
        assert!(picker.forcum().is_active("p.example"), "training does not stabilize blind");
        assert!(picker.retries_total() > 0);
    }

    #[test]
    fn truncated_hidden_body_defers_with_reason() {
        let rates = cp_net::FaultRates { truncate: 1.0, ..cp_net::FaultRates::NONE };
        let (mut browser, url) = faulted_world(pref_site(), rates);
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        train(&mut browser, &url, &mut picker, 4);
        assert!(picker.records().is_empty());
        assert!(picker.inconclusive().iter().all(|p| p.reason == InconclusiveReason::Truncated));
        assert!(browser.jar.iter().all(|c| !c.useful()));
    }

    #[test]
    fn dropped_hidden_fetch_defers_as_transport() {
        let rates = cp_net::FaultRates { drop: 0.5, reset: 0.5, ..cp_net::FaultRates::NONE };
        let (mut browser, url) = faulted_world(pref_site(), rates);
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        train(&mut browser, &url, &mut picker, 6);
        assert!(picker.records().is_empty());
        for probe in picker.inconclusive() {
            assert_eq!(probe.reason, InconclusiveReason::Transport);
        }
        let summary = picker.summary_for("p.example");
        assert!(summary.deferred_probes > 0);
        assert_eq!(summary.probes, summary.deferred_probes, "all issued probes deferred");
        assert_eq!(summary.avg_detection_ms, 0.0, "no decided probe, no detection time");
        assert_eq!(
            picker.forcum().site("p.example").unwrap().deferrals,
            picker.inconclusive().len()
        );
    }

    #[test]
    fn injected_latency_exceeds_think_budget_and_defers() {
        // 45 s of injected latency on every hidden attempt: the probe's
        // deadline (think budget, floored at 60 s) splits across retries and
        // eventually exhausts.
        let rates = cp_net::FaultRates {
            extra_latency: 1.0,
            extra_latency_ms: 120_000,
            ..cp_net::FaultRates::NONE
        };
        let (mut browser, url) = faulted_world(pref_site(), rates);
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        train(&mut browser, &url, &mut picker, 4);
        assert!(picker.records().is_empty());
        assert!(picker.inconclusive().iter().all(|p| p.reason == InconclusiveReason::Deadline));
    }

    #[test]
    fn partial_faults_delay_but_never_flip_decisions() {
        // A 30% hidden-class fault rate: some probes defer, the rest decide.
        // The decided set must match the fault-free oracle's verdicts, and
        // marks must be a subset of the oracle's marks.
        let oracle_marks = {
            let (mut browser, url) = world(pref_site());
            let mut picker = CookiePicker::new(CookiePickerConfig::default());
            train(&mut browser, &url, &mut picker, 10);
            let mut marks: Vec<String> =
                browser.jar.iter().filter(|c| c.useful()).map(|c| c.name.clone()).collect();
            marks.sort();
            marks
        };
        let (mut browser, url) = faulted_world(pref_site(), cp_net::FaultRates::uniform(0.3));
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        train(&mut browser, &url, &mut picker, 10);
        let mut chaos_marks: Vec<String> =
            browser.jar.iter().filter(|c| c.useful()).map(|c| c.name.clone()).collect();
        chaos_marks.sort();
        assert!(
            chaos_marks.iter().all(|m| oracle_marks.contains(m)),
            "chaos marks {chaos_marks:?} ⊄ oracle marks {oracle_marks:?}"
        );
    }

    #[test]
    fn probe_time_stays_within_budget() {
        // Even with every attempt timing out, the probe consumes at most
        // its deadline budget of simulated time.
        let rates = cp_net::FaultRates { drop: 1.0, ..cp_net::FaultRates::NONE };
        let (mut browser, url) = faulted_world(pref_site(), rates);
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        let before = browser.now();
        train(&mut browser, &url, &mut picker, 3);
        // 3 visits, each ≤ budget(≈ think time, floor 60 s) of probe work
        // plus page loads and think pauses; just sanity-bound the total.
        let elapsed = browser.now() - before;
        assert!(elapsed < cp_cookies::SimDuration::from_secs(3 * (120 + 120 + 60)), "{elapsed}");
    }

    #[test]
    fn removing_all_cookies_drops_header() {
        let picker = CookiePicker::new(CookiePickerConfig::default());
        let mut req = Request::get(Url::parse("http://t.example/").unwrap());
        req.headers.set("Cookie", "a=1");
        let hidden = picker.build_hidden_request(&req, &["a".into()]);
        assert_eq!(hidden.cookie_header(), None);
    }
}
