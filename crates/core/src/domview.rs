//! Adapter exposing a [`cp_html::Document`] as a
//! [`cp_treediff::TreeView`], with the paper's visibility restriction.

use cp_html::{Document, NodeId};
use cp_treediff::TreeView;

/// A view of (a subtree of) an HTML document as a rooted labeled ordered
/// tree for the matching algorithms.
///
/// * Labels are W3C node names (`div`, `#text`, `#comment`, …).
/// * [`countable`](TreeView::countable) implements Figure 2 line 5: only
///   *visible* nodes count — comments, scripts, styles, head metadata and
///   `display:none`/`hidden` elements do not. Text nodes are labelled but
///   never countable (they are leaves; CVCE analyses them instead).
///
/// ```
/// use cp_html::parse_document;
/// use cookiepicker_core::DomTreeView;
/// use cp_treediff::n_tree_sim;
///
/// let a = parse_document("<body><div><p>x</p></div></body>");
/// let b = parse_document("<body><div><p>y</p></div></body>");
/// // Leaf text differs; upper structure is identical.
/// assert_eq!(n_tree_sim(&DomTreeView::from_body(&a), &DomTreeView::from_body(&b), 5), 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DomTreeView<'a> {
    doc: &'a Document,
    root: Option<NodeId>,
}

impl<'a> DomTreeView<'a> {
    /// Views the subtree rooted at the document's `<body>` element — the
    /// comparison root the paper uses ("the top five level of DOM tree
    /// starting from the body HTML node", §5.2). Falls back to `<html>` or
    /// the document node when no body exists.
    pub fn from_body(doc: &'a Document) -> Self {
        let root = doc.body().or_else(|| doc.html()).or(Some(NodeId::DOCUMENT));
        DomTreeView { doc, root }
    }

    /// Views the whole document from its root.
    pub fn from_document(doc: &'a Document) -> Self {
        DomTreeView { doc, root: Some(NodeId::DOCUMENT) }
    }

    /// Views an arbitrary subtree.
    pub fn from_node(doc: &'a Document, root: NodeId) -> Self {
        DomTreeView { doc, root: Some(root) }
    }

    /// The underlying document.
    pub fn document(&self) -> &'a Document {
        self.doc
    }
}

impl TreeView for DomTreeView<'_> {
    type Node = NodeId;

    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn children(&self, n: NodeId) -> Vec<NodeId> {
        self.doc.children(n).to_vec()
    }

    fn label(&self, n: NodeId) -> &str {
        self.doc.node_name(n)
    }

    fn countable(&self, n: NodeId) -> bool {
        self.doc.is_element(n) && cp_html::is_node_visible(self.doc, n)
    }
}

/// A DOM view whose labels include the element's `id` attribute
/// (`div#main` instead of `div`) — an implementation refinement in the
/// spirit of the paper's closing note that the two algorithms' tuning is
/// future work.
///
/// With id-aware labels, RSTM distinguishes a page whose *identities*
/// changed even when the tag skeleton is isomorphic (e.g. `#ads` replaced
/// by `#recs`). The trade-off: sites that randomize ids per render would
/// look noisy, so the default picker uses plain tag labels like the paper.
///
/// ```
/// use cp_html::parse_document;
/// use cookiepicker_core::domview::IdAwareDomView;
/// use cp_treediff::n_tree_sim;
///
/// let a = parse_document("<body><div id=ads><p>x</p></div></body>");
/// let b = parse_document("<body><div id=recs><p>x</p></div></body>");
/// let (va, vb) = (IdAwareDomView::from_body(&a), IdAwareDomView::from_body(&b));
/// // Plain labels would match these perfectly; id-aware labels do not.
/// assert!(n_tree_sim(&va, &vb, 5) < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct IdAwareDomView<'a> {
    doc: &'a Document,
    root: Option<NodeId>,
    labels: Vec<String>,
}

impl<'a> IdAwareDomView<'a> {
    /// Views the subtree from `<body>` with id-aware labels.
    pub fn from_body(doc: &'a Document) -> Self {
        let root = doc.body().or_else(|| doc.html()).or(Some(NodeId::DOCUMENT));
        let mut labels = vec![String::new(); doc.len()];
        for n in doc.preorder_all() {
            let mut label = doc.node_name(n).to_string();
            if let Some(id) = doc.attr(n, "id") {
                label.push('#');
                label.push_str(id);
            }
            labels[n.index()] = label;
        }
        IdAwareDomView { doc, root, labels }
    }
}

impl TreeView for IdAwareDomView<'_> {
    type Node = NodeId;

    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn children(&self, n: NodeId) -> Vec<NodeId> {
        self.doc.children(n).to_vec()
    }

    fn label(&self, n: NodeId) -> &str {
        &self.labels[n.index()]
    }

    fn countable(&self, n: NodeId) -> bool {
        self.doc.is_element(n) && cp_html::is_node_visible(self.doc, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_html::parse_document;
    use cp_treediff::{countable_nodes, n_tree_sim, rstm};

    #[test]
    fn body_root_selected() {
        let doc = parse_document("<body><div>x</div></body>");
        let v = DomTreeView::from_body(&doc);
        assert_eq!(v.root(), doc.body());
        assert_eq!(v.label(v.root().unwrap()), "body");
    }

    #[test]
    fn scripts_and_comments_not_countable() {
        let doc = parse_document("<body><script>s()</script><!--c--><div><p>t</p></div></body>");
        let v = DomTreeView::from_body(&doc);
        // countable at l=5: body, div, p (script excluded, comment excluded,
        // text is a leaf).
        assert_eq!(countable_nodes(&v, 5), 3);
    }

    #[test]
    fn identical_pages_sim_one() {
        let html = "<body><div id=a><p>x</p></div><div id=b><ul><li>1</li></ul></div></body>";
        let d1 = parse_document(html);
        let d2 = parse_document(html);
        assert_eq!(n_tree_sim(&DomTreeView::from_body(&d1), &DomTreeView::from_body(&d2), 5), 1.0);
    }

    #[test]
    fn removed_panel_lowers_sim() {
        let d1 = parse_document(
            "<body><div><ul><li>a</li><li>b</li></ul></div><div><table><tr><td>x</td></tr></table></div></body>",
        );
        let d2 = parse_document("<body><div><ul><li>a</li><li>b</li></ul></div></body>");
        let sim = n_tree_sim(&DomTreeView::from_body(&d1), &DomTreeView::from_body(&d2), 5);
        assert!(sim < 1.0);
    }

    #[test]
    fn change_inside_script_invisible() {
        let d1 = parse_document("<body><script>var a=1;</script><div><p>t</p></div></body>");
        let d2 = parse_document("<body><script>var a=999;</script><div><p>t</p></div></body>");
        let (v1, v2) = (DomTreeView::from_body(&d1), DomTreeView::from_body(&d2));
        assert_eq!(rstm(&v1, &v2, 5), rstm(&v1, &v1, 5));
    }

    #[test]
    fn id_aware_view_distinguishes_renamed_panels() {
        let a =
            parse_document("<body><div id=ads><p>t</p></div><div><ul><li>x</li></ul></div></body>");
        let b = parse_document(
            "<body><div id=recs><p>t</p></div><div><ul><li>x</li></ul></div></body>",
        );
        // Plain labels: identical structure.
        assert_eq!(n_tree_sim(&DomTreeView::from_body(&a), &DomTreeView::from_body(&b), 5), 1.0);
        // Id-aware labels: the renamed panel's subtree no longer matches.
        let sim = n_tree_sim(&IdAwareDomView::from_body(&a), &IdAwareDomView::from_body(&b), 5);
        assert!(sim < 1.0);
    }

    #[test]
    fn id_aware_view_self_similarity_still_one() {
        let a = parse_document("<body><div id=x><p>t</p></div></body>");
        let v = IdAwareDomView::from_body(&a);
        assert_eq!(n_tree_sim(&v, &v, 5), 1.0);
        assert_eq!(v.label(a.element_by_id("x").unwrap()), "div#x");
    }

    #[test]
    fn display_none_subtree_not_counted() {
        let d1 = parse_document(
            r#"<body><div style="display:none"><p>a</p><p>b</p></div><div><p>x</p></div></body>"#,
        );
        let v = DomTreeView::from_body(&d1);
        // body + visible div + its p = 3.
        assert_eq!(countable_nodes(&v, 5), 3);
    }
}
