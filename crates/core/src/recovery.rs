//! Backward error recovery (§3.3).
//!
//! CookiePicker's second error kind — a useful cookie never identified and
//! therefore blocked — causes user-visible malfunction and must be fixable.
//! The paper provides "a simple recovery button": one click re-marks the
//! cookies disabled in the current page view as useful. The
//! [`RecoveryLog`] records every such click so experiments can report how
//! much recovery a configuration required (the paper's headline: **zero**
//! for all 8 sites with useful cookies).

use std::collections::HashMap;

use cp_runtime::json::{Json, ToJson};

/// A log of backward-error-recovery events.
#[derive(Debug, Clone, Default)]
pub struct RecoveryLog {
    events: Vec<RecoveryEvent>,
}

/// One recovery-button click.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// The site recovered on.
    pub host: String,
    /// The cookie names re-marked useful.
    pub cookies: Vec<String>,
}

impl ToJson for RecoveryEvent {
    fn to_json(&self) -> Json {
        Json::object().set("host", &self.host).set("cookies", self.cookies.clone())
    }
}

impl ToJson for RecoveryLog {
    fn to_json(&self) -> Json {
        Json::object().set("events", Json::Array(self.events.iter().map(ToJson::to_json).collect()))
    }
}

impl RecoveryLog {
    /// Records a recovery click.
    pub fn record(&mut self, host: &str, cookies: &[String]) {
        self.events.push(RecoveryEvent { host: host.to_string(), cookies: cookies.to_vec() });
    }

    /// All events, in order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Total number of cookies recovered across all events.
    pub fn total(&self) -> usize {
        self.events.iter().map(|e| e.cookies.len()).sum()
    }

    /// Number of clicks per site.
    pub fn clicks_by_site(&self) -> HashMap<&str, usize> {
        let mut out = HashMap::new();
        for e in &self.events {
            *out.entry(e.host.as_str()).or_insert(0) += 1;
        }
        out
    }

    /// Whether no recovery was ever needed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log() {
        let log = RecoveryLog::default();
        assert!(log.is_empty());
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn records_accumulate() {
        let mut log = RecoveryLog::default();
        log.record("a.example", &["x".into(), "y".into()]);
        log.record("a.example", &["z".into()]);
        log.record("b.example", &["q".into()]);
        assert_eq!(log.total(), 4);
        assert_eq!(log.events().len(), 3);
        let clicks = log.clicks_by_site();
        assert_eq!(clicks["a.example"], 2);
        assert_eq!(clicks["b.example"], 1);
    }
}
