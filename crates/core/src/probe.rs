//! Hidden-request probe outcomes and the retry/deadline policy.
//!
//! A probe — the hidden request plus the Figure-5 comparison — can fail on
//! a real network: the fetch may drop, reset, stall past its deadline, or
//! come back as an error page or a truncated body. A broken hidden version
//! must never be compared as if it were the cookie-disabled rendering, so
//! every probe resolves to an explicit [`ProbeOutcome`]: either a
//! [`Decision`](crate::Decision) or an [`InconclusiveReason`] that makes
//! FORCUM *defer* judgement for that page view.

use std::fmt;

use cp_cookies::SimDuration;

use crate::decision::Decision;

/// Why a probe produced no comparable hidden page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InconclusiveReason {
    /// The hidden fetch failed in transit (dropped, reset, or unroutable).
    Transport,
    /// The probe exhausted its think-time deadline budget.
    Deadline,
    /// The hidden fetch returned a non-success status (e.g. HTTP 5xx); the
    /// error page is not the cookie-disabled rendering.
    ServerError,
    /// The hidden body arrived cut short; a partial DOM would compare as a
    /// structural difference and mis-mark the cookies.
    Truncated,
}

impl InconclusiveReason {
    /// Every reason, in metric-label order.
    pub const ALL: [InconclusiveReason; 4] = [
        InconclusiveReason::Transport,
        InconclusiveReason::Deadline,
        InconclusiveReason::ServerError,
        InconclusiveReason::Truncated,
    ];

    /// The stable label used in metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            InconclusiveReason::Transport => "transport",
            InconclusiveReason::Deadline => "deadline",
            InconclusiveReason::ServerError => "server_error",
            InconclusiveReason::Truncated => "truncated",
        }
    }
}

impl fmt::Display for InconclusiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one hidden-request probe.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// Both page versions were compared; Figure 5 produced a verdict.
    Decided(Decision),
    /// No trustworthy hidden page was obtained; judgement is deferred.
    Inconclusive(InconclusiveReason),
}

/// How a probe reacts to transient failures: bounded retries with seeded,
/// jittered exponential backoff, all budgeted against the user's think
/// time (with a floor so slow-but-healthy sites never trip the deadline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff: SimDuration,
    /// Jitter half-width: each backoff is scaled by a factor drawn
    /// uniformly from `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Minimum deadline budget for a probe, regardless of how short the
    /// user's think pause is. The default (60 s) exceeds the worst natural
    /// latency of the slowest site profile, so only injected faults can
    /// exhaust it.
    pub deadline_floor: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: SimDuration::from_millis(250),
            jitter: 0.5,
            deadline_floor: SimDuration::from_secs(60),
        }
    }
}

/// Accounting for one probe: the outcome plus what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// The verdict, or why there is none.
    pub outcome: ProbeOutcome,
    /// Fetch attempts made (1 when the first attempt settled it).
    pub attempts: u32,
    /// Total simulated time the probe consumed: failed attempts, backoff
    /// pauses, and the successful fetch's latency.
    pub spent: SimDuration,
    /// Latency of the successful hidden fetch (zero when inconclusive).
    pub hidden_latency: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = InconclusiveReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, ["transport", "deadline", "server_error", "truncated"]);
        assert_eq!(InconclusiveReason::Deadline.to_string(), "deadline");
    }

    #[test]
    fn default_policy_floor_covers_slow_sites() {
        let policy = RetryPolicy::default();
        // Worst-case natural latency (slow_site profile, large body, max
        // jitter + slow tail) stays under ~40 s; the floor must exceed it
        // so fault-free runs never trip the deadline.
        assert!(policy.deadline_floor >= SimDuration::from_secs(60));
        assert!(policy.max_retries >= 1);
    }
}
