//! Per-site experiment reporting structures (the rows of Tables 1 and 2).

use cp_runtime::json::{Json, ToJson};

use crate::picker::DetectionRecord;

/// One row of a Table-1-style report.
#[derive(Debug, Clone)]
pub struct SiteOutcome {
    /// Site label (e.g. `S1`) and host.
    pub label: String,
    /// Host name.
    pub host: String,
    /// Persistent cookies the site set in the jar during training.
    pub persistent: usize,
    /// Cookies CookiePicker marked useful.
    pub marked_useful: usize,
    /// Ground-truth useful cookies (the paper's manual verification).
    pub real_useful: usize,
    /// Mean detection time across this site's hidden-request probes, in
    /// milliseconds.
    pub avg_detection_ms: f64,
    /// Mean CookiePicker duration (hidden latency + detection), in
    /// milliseconds.
    pub avg_duration_ms: f64,
    /// Number of hidden-request probes.
    pub probes: usize,
}

impl ToJson for SiteOutcome {
    fn to_json(&self) -> Json {
        Json::object()
            .set("label", &self.label)
            .set("host", &self.host)
            .set("persistent", self.persistent)
            .set("marked_useful", self.marked_useful)
            .set("real_useful", self.real_useful)
            .set("avg_detection_ms", self.avg_detection_ms)
            .set("avg_duration_ms", self.avg_duration_ms)
            .set("probes", self.probes)
    }
}

impl SiteOutcome {
    /// Builds an outcome row from a site's detection records.
    pub fn from_records(
        label: impl Into<String>,
        host: impl Into<String>,
        persistent: usize,
        marked_useful: usize,
        real_useful: usize,
        records: &[&DetectionRecord],
    ) -> Self {
        let probes = records.len();
        let (det_sum, dur_sum) = records.iter().fold((0.0f64, 0.0f64), |(d, t), r| {
            (d + r.decision.detection_micros as f64 / 1_000.0, t + r.duration_ms)
        });
        let denom = probes.max(1) as f64;
        SiteOutcome {
            label: label.into(),
            host: host.into(),
            persistent,
            marked_useful,
            real_useful,
            avg_detection_ms: det_sum / denom,
            avg_duration_ms: dur_sum / denom,
            probes,
        }
    }

    /// Whether CookiePicker disabled every persistent cookie here (the
    /// "safe to disable" sites — 25 of 30 in the paper).
    pub fn fully_disabled(&self) -> bool {
        self.marked_useful == 0
    }

    /// Whether this row is a false-useful site: cookies marked useful with
    /// no really-useful cookie behind them.
    pub fn is_false_useful(&self) -> bool {
        self.marked_useful > 0 && self.real_useful == 0
    }

    /// Whether any really-useful cookie was missed (the error kind the
    /// paper requires to be zero).
    pub fn missed_useful(&self) -> bool {
        self.marked_useful < self.real_useful
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Decision;

    fn record(detection_micros: u64, duration_ms: f64) -> DetectionRecord {
        DetectionRecord {
            host: "h".into(),
            path: "/".into(),
            group: vec!["a".into()],
            decision: Decision {
                tree_sim: 1.0,
                text_sim: 1.0,
                cookies_caused_difference: false,
                detection_micros,
            },
            hidden_latency_ms: duration_ms as u64,
            duration_ms,
        }
    }

    #[test]
    fn averages_computed() {
        let r1 = record(2_000, 100.0);
        let r2 = record(4_000, 300.0);
        let rows = vec![&r1, &r2];
        let o = SiteOutcome::from_records("S1", "h", 3, 0, 0, &rows);
        assert_eq!(o.avg_detection_ms, 3.0);
        assert_eq!(o.avg_duration_ms, 200.0);
        assert_eq!(o.probes, 2);
        assert!(o.fully_disabled());
        assert!(!o.is_false_useful());
    }

    #[test]
    fn classification_flags() {
        let o = SiteOutcome::from_records("S1", "h", 2, 2, 0, &[]);
        assert!(o.is_false_useful());
        assert!(!o.missed_useful());
        let o = SiteOutcome::from_records("S2", "h", 2, 1, 2, &[]);
        assert!(o.missed_useful());
        assert!(!o.is_false_useful());
    }

    #[test]
    fn empty_records_no_nan() {
        let o = SiteOutcome::from_records("S1", "h", 1, 0, 0, &[]);
        assert_eq!(o.avg_detection_ms, 0.0);
        assert_eq!(o.avg_duration_ms, 0.0);
    }
}
