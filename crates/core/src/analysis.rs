//! The compiled per-page analysis: everything `decide` needs from a page,
//! derived once and reusable across comparisons.
//!
//! [`decide`](crate::decision::decide) consumes a page twice — as a tree
//! (RSTM over the DOM structure) and as a content set (CVCE over its
//! visible text). Both derivations depend only on the page and the
//! `compare_from_body` flag, never on the *other* page of a comparison, so
//! they can be compiled ahead of time into a [`PageAnalysis`]: a
//! [`DetectTree`] arena plus a [`CompiledContentSet`]. `cp-serve` keys
//! these by the FNV-1a hash of the body bytes and caches them, so repeated
//! bodies skip parsing and extraction entirely.

use cp_html::{Document, NodeData, NodeId};
use cp_treediff::{DetectTree, DetectTreeBuilder, TreeView as _};

use crate::cvce::{
    ad_attrs, noise_container, sink_text, CompiledContentSet, ContentSink, HashSink,
};
use crate::domview::DomTreeView;

/// The compiled form of one page version: ready for any number of
/// [`decide_analyzed`](crate::decision::decide_analyzed) comparisons
/// without touching the source `Document` again.
#[derive(Debug, Clone, Default)]
pub struct PageAnalysis {
    tree: DetectTree,
    content: CompiledContentSet,
}

impl PageAnalysis {
    /// Compiles a parsed document. `compare_from_body` selects the same
    /// comparison root `decide` uses: the `<body>` subtree (falling back to
    /// `<html>`, then the document) or the whole document.
    pub fn from_document(doc: &Document, compare_from_body: bool) -> Self {
        let view = if compare_from_body {
            DomTreeView::from_body(doc)
        } else {
            DomTreeView::from_document(doc)
        };
        let root = view.root().unwrap_or(NodeId::DOCUMENT);
        // One fused traversal builds both derivations: the tree arena sees
        // every node, the content sink sees the Figure-4 filtered subset,
        // and each element's visibility is judged exactly once for both.
        let mut builder = DetectTreeBuilder::with_capacity(doc.len());
        let mut sink = HashSink::new();
        let mut syms = Symbols { text: builder.intern("#text"), elements: [None; 16] };
        compile_rec(doc, root, &mut builder, &mut sink, &mut syms, true);
        PageAnalysis { tree: builder.finish(), content: sink.finish() }
    }

    /// Parses and compiles raw markup in one step.
    pub fn from_html(html: &str, compare_from_body: bool) -> Self {
        PageAnalysis::from_document(&cp_html::parse_document(html), compare_from_body)
    }

    /// The compiled tree (RSTM input).
    pub fn tree(&self) -> &DetectTree {
        &self.tree
    }

    /// The compiled content set (CVCE input).
    pub fn content(&self) -> &CompiledContentSet {
        &self.content
    }
}

/// Symbol shortcuts threaded through the fused walk: the `#text` symbol is
/// interned once up front (text nodes are the most common node kind by
/// far), and a small direct-mapped cache keyed on name length and first
/// byte resolves repeated element names without an intern-table probe —
/// real pages use a handful of distinct tags, so this hits almost always.
struct Symbols<'a> {
    text: u32,
    elements: [Option<(&'a str, u32)>; 16],
}

impl<'a> Symbols<'a> {
    fn element(&mut self, name: &'a str, builder: &mut DetectTreeBuilder) -> u32 {
        let slot = (name.len() ^ (name.as_bytes().first().copied().unwrap_or(0) as usize)) & 15;
        match self.elements[slot] {
            Some((n, s)) if n == name => s,
            _ => {
                let s = builder.intern(name);
                self.elements[slot] = Some((name, s));
                s
            }
        }
    }
}

/// The fused walk: every node becomes a tree-arena entry (mirroring
/// `DetectTree::from_view` over a `DomTreeView` — same labels, same
/// `countable` judgement), while text flows into the content sink exactly
/// as `content_compile`'s recursive walk would emit it. `content` is false
/// once any ancestor failed the Figure-4 element filter, which is where the
/// reference walk stops recursing for content purposes.
fn compile_rec<'a>(
    doc: &'a Document,
    node: NodeId,
    builder: &mut DetectTreeBuilder,
    sink: &mut HashSink,
    syms: &mut Symbols<'a>,
    content: bool,
) {
    match doc.data(node) {
        NodeData::Text(text) => {
            builder.leaf_sym(syms.text, false);
            if content {
                sink_text(text, sink);
            }
        }
        NodeData::Element { name, attrs } => {
            let visible = cp_html::element_visible(name, attrs);
            let sym = syms.element(name, builder);
            builder.enter_sym(sym, visible);
            let content = content && visible && !noise_container(name) && !ad_attrs(attrs);
            if content {
                sink.enter(name);
            }
            for &c in doc.children(node) {
                compile_rec(doc, c, builder, sink, syms, content);
            }
            if content {
                sink.leave();
            }
            builder.leave();
        }
        NodeData::Document => {
            builder.enter("#document", false);
            for &c in doc.children(node) {
                compile_rec(doc, c, builder, sink, syms, content);
            }
            builder.leave();
        }
        NodeData::Comment(_) | NodeData::Doctype { .. } => {
            let sym = builder.intern(doc.node_name(node));
            builder.leaf_sym(sym, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_html::parse_document;
    use cp_treediff::{countable_nodes, countable_nodes_detect};

    #[test]
    fn body_root_matches_domview_choice() {
        let doc = parse_document("<body><div><p>text here</p></div></body>");
        let a = PageAnalysis::from_document(&doc, true);
        let view = DomTreeView::from_body(&doc);
        for level in 1..6 {
            assert_eq!(countable_nodes_detect(a.tree(), level), countable_nodes(&view, level));
        }
        assert_eq!(a.content().len(), 1);
    }

    #[test]
    fn document_root_sees_the_whole_tree() {
        let doc = parse_document("<body><p>x1</p></body>");
        let from_body = PageAnalysis::from_document(&doc, true);
        let from_doc = PageAnalysis::from_document(&doc, false);
        // The document-rooted tree is strictly taller (document + html
        // wrappers above body).
        assert!(from_doc.tree().len() > from_body.tree().len());
        assert_eq!(from_doc.content().len(), from_body.content().len());
    }

    #[test]
    fn from_html_equals_from_document() {
        let html = "<body><div><p>same page</p></div></body>";
        let a = PageAnalysis::from_html(html, true);
        let b = PageAnalysis::from_document(&parse_document(html), true);
        assert_eq!(a.content(), b.content());
        assert_eq!(a.tree().len(), b.tree().len());
    }
}
