//! CookiePicker configuration.

use cp_runtime::json::{FromJson, Json, JsonError, ToJson};

/// How the cookies under test are grouped per page view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TestGroupStrategy {
    /// Test **all not-yet-useful persistent cookies that were attached to
    /// the regular request** as one group (§3.2, step 2: the hidden request
    /// removes "a group of cookies"). This is what produces the paper's
    /// piggyback marks on P5/P6 — useless cookies travelling with a useful
    /// one get marked together.
    #[default]
    SentCookies,
    /// Test one cookie at a time, rotating per page view. Slower to train
    /// but avoids piggyback false positives (a natural extension the paper
    /// hints at via threshold fine-tuning future work).
    PerCookie,
    /// Binary-search refinement: test the whole sent group first; when a
    /// group tests useful, split it and retest the halves on subsequent
    /// page views until single cookies are isolated. Converges in
    /// `O(u · log n)` probes for `u` useful among `n` cookies — the best of
    /// both strategies, at the cost of a little per-site state.
    ///
    /// Caveat: a difference only caused by removing *several* cookies
    /// together is attributed to neither half and dropped; such cookie
    /// interactions do not occur in practice (and not in the paper's
    /// model, where each cookie's effect is independent).
    GroupBisect,
}

/// Tunable parameters of CookiePicker.
///
/// The defaults are the paper's evaluation settings:
/// `Thresh1 = Thresh2 = 0.85`, `l = 5` levels compared starting from the
/// `<body>` node (§5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CookiePickerConfig {
    /// `Thresh1`: NTreeSim at or below this ⇒ structural difference.
    pub thresh1: f64,
    /// `Thresh2`: NTextSim at or below this ⇒ visual content difference.
    pub thresh2: f64,
    /// `l`: number of upper DOM levels compared by RSTM.
    pub max_level: usize,
    /// Compare from the `<body>` element (paper) rather than the document
    /// root.
    pub compare_from_body: bool,
    /// Grouping strategy for cookies under test.
    pub strategy: TestGroupStrategy,
    /// Number of consecutive page views without any new cookie or new mark
    /// after which a site's FORCUM process turns off (§3.2, step 5: "the
    /// FORCUM process can be turned off for a while").
    pub stability_window: usize,
    /// Send the `X-Requested-With: XMLHttpRequest` header on hidden
    /// requests, as a Firefox-extension XHR would. Colluding site operators
    /// can key evasion on it (§5.3); disable for a stealthier prototype.
    pub xhr_header: bool,
}

impl Default for CookiePickerConfig {
    fn default() -> Self {
        CookiePickerConfig {
            thresh1: 0.85,
            thresh2: 0.85,
            max_level: 5,
            compare_from_body: true,
            strategy: TestGroupStrategy::SentCookies,
            stability_window: 40,
            xhr_header: true,
        }
    }
}

impl ToJson for TestGroupStrategy {
    fn to_json(&self) -> Json {
        Json::from(match self {
            TestGroupStrategy::SentCookies => "SentCookies",
            TestGroupStrategy::PerCookie => "PerCookie",
            TestGroupStrategy::GroupBisect => "GroupBisect",
        })
    }
}

impl FromJson for TestGroupStrategy {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("SentCookies") => Ok(TestGroupStrategy::SentCookies),
            Some("PerCookie") => Ok(TestGroupStrategy::PerCookie),
            Some("GroupBisect") => Ok(TestGroupStrategy::GroupBisect),
            _ => Err(JsonError::msg("unknown test-group strategy")),
        }
    }
}

impl ToJson for CookiePickerConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .set("thresh1", self.thresh1)
            .set("thresh2", self.thresh2)
            .set("max_level", self.max_level)
            .set("compare_from_body", self.compare_from_body)
            .set("strategy", self.strategy.to_json())
            .set("stability_window", self.stability_window)
            .set("xhr_header", self.xhr_header)
    }
}

impl FromJson for CookiePickerConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(CookiePickerConfig {
            thresh1: f64::from_json(value.require("thresh1")?)?,
            thresh2: f64::from_json(value.require("thresh2")?)?,
            max_level: usize::from_json(value.require("max_level")?)?,
            compare_from_body: bool::from_json(value.require("compare_from_body")?)?,
            strategy: TestGroupStrategy::from_json(value.require("strategy")?)?,
            stability_window: usize::from_json(value.require("stability_window")?)?,
            xhr_header: bool::from_json(value.require("xhr_header")?)?,
        })
    }
}

impl CookiePickerConfig {
    /// Builder-style: sets both thresholds.
    pub fn with_thresholds(mut self, t1: f64, t2: f64) -> Self {
        self.thresh1 = t1;
        self.thresh2 = t2;
        self
    }

    /// Builder-style: sets the RSTM level bound.
    pub fn with_max_level(mut self, l: usize) -> Self {
        self.max_level = l;
        self
    }

    /// Builder-style: sets the grouping strategy.
    pub fn with_strategy(mut self, strategy: TestGroupStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CookiePickerConfig::default();
        assert_eq!(c.thresh1, 0.85);
        assert_eq!(c.thresh2, 0.85);
        assert_eq!(c.max_level, 5);
        assert!(c.compare_from_body);
        assert_eq!(c.strategy, TestGroupStrategy::SentCookies);
    }

    #[test]
    fn builders() {
        let c = CookiePickerConfig::default()
            .with_thresholds(0.7, 0.6)
            .with_max_level(3)
            .with_strategy(TestGroupStrategy::PerCookie);
        assert_eq!((c.thresh1, c.thresh2, c.max_level), (0.7, 0.6, 3));
        assert_eq!(c.strategy, TestGroupStrategy::PerCookie);
    }
}
