//! The FORCUM training lifecycle (§3.2, Definitions 1 & 2).
//!
//! FORCUM — FORward Cookie Usefulness Marking — is a per-site training
//! process. It runs while the site's cookie set is still in flux, marks
//! cookies useful as evidence arrives, and turns itself off once the
//! `useful` values are stable; the appearance of new cookies (or a manual
//! request) turns it back on.

use std::collections::{HashMap, HashSet};

use cp_runtime::json::{Json, ToJson};

/// Training state for one site.
#[derive(Debug, Clone, Default)]
pub struct SiteTraining {
    /// Page views observed while training was active.
    pub pages_seen: usize,
    /// Consecutive page views without a new cookie or a new useful mark.
    pub stable_streak: usize,
    /// Whether the FORCUM process is currently on for this site.
    pub active: bool,
    /// Cookie names seen so far on this site.
    known_cookies: HashSet<String>,
    /// Hidden requests issued for this site.
    pub hidden_requests: usize,
    /// Usefulness marks applied on this site.
    pub marks: usize,
    /// Page views whose probe was inconclusive and judgement deferred.
    pub deferrals: usize,
}

impl SiteTraining {
    // Not `Default`: a freshly-contacted site starts with training active.
    fn fresh() -> Self {
        SiteTraining { active: true, ..SiteTraining::default() }
    }

    /// Rebuilds a training record from persisted parts (snapshot restore).
    pub fn from_parts(
        pages_seen: usize,
        stable_streak: usize,
        active: bool,
        known_cookies: impl IntoIterator<Item = String>,
        hidden_requests: usize,
        marks: usize,
        deferrals: usize,
    ) -> Self {
        SiteTraining {
            pages_seen,
            stable_streak,
            active,
            known_cookies: known_cookies.into_iter().collect(),
            hidden_requests,
            marks,
            deferrals,
        }
    }

    /// The cookie names seen so far, sorted (deterministic encoding order).
    pub fn known_cookies_sorted(&self) -> Vec<&str> {
        let mut known: Vec<&str> = self.known_cookies.iter().map(String::as_str).collect();
        known.sort_unstable();
        known
    }
}

/// Training state across all sites.
#[derive(Debug, Clone, Default)]
pub struct ForcumState {
    sites: HashMap<String, SiteTraining>,
    /// Stability window: page views without change before training stops.
    pub stability_window: usize,
}

impl ToJson for SiteTraining {
    fn to_json(&self) -> Json {
        // Sets serialize sorted so the encoding is deterministic.
        let known = self.known_cookies_sorted();
        Json::object()
            .set("pages_seen", self.pages_seen)
            .set("stable_streak", self.stable_streak)
            .set("active", self.active)
            .set("known_cookies", known.into_iter().map(Json::from).collect::<Vec<_>>())
            .set("hidden_requests", self.hidden_requests)
            .set("marks", self.marks)
            .set("deferrals", self.deferrals)
    }
}

impl ToJson for ForcumState {
    fn to_json(&self) -> Json {
        let sites = self
            .sites
            .iter()
            .fold(Json::object(), |acc, (host, site)| acc.set(host.clone(), site.to_json()));
        Json::object().set("sites", sites).set("stability_window", self.stability_window)
    }
}

impl ForcumState {
    /// Creates a state with the given stability window.
    pub fn new(stability_window: usize) -> Self {
        ForcumState { sites: HashMap::new(), stability_window }
    }

    /// The training record for `host`, if the site has been seen.
    pub fn site(&self, host: &str) -> Option<&SiteTraining> {
        self.sites.get(host)
    }

    /// Installs a persisted training record for `host` (snapshot restore).
    pub fn insert_site(&mut self, host: &str, site: SiteTraining) {
        self.sites.insert(host.to_string(), site);
    }

    /// Whether FORCUM is currently active for `host` (a never-seen host is
    /// active by definition — training starts on first contact).
    pub fn is_active(&self, host: &str) -> bool {
        self.sites.get(host).is_none_or(|s| s.active)
    }

    /// Manually (re)starts training for a site — the paper's "turned on …
    /// manually by a user if she wants to continue the training process".
    pub fn restart(&mut self, host: &str) {
        let site = self.sites.entry(host.to_string()).or_insert_with(SiteTraining::fresh);
        site.active = true;
        site.stable_streak = 0;
    }

    /// Records a page view on `host`. `cookie_names` are the cookies
    /// observed in this view (request + response); `marked` is whether this
    /// view produced new useful marks; `hidden_issued` whether a hidden
    /// request was sent.
    ///
    /// Returns whether training is active *after* the update.
    pub fn observe(
        &mut self,
        host: &str,
        cookie_names: impl IntoIterator<Item = String>,
        marked: usize,
        hidden_issued: bool,
    ) -> bool {
        let window = self.stability_window;
        let site = self.sites.entry(host.to_string()).or_insert_with(SiteTraining::fresh);

        let mut new_cookie = false;
        for name in cookie_names {
            new_cookie |= site.known_cookies.insert(name);
        }
        // New cookies re-activate a dormant site (§3.2, step 5).
        if new_cookie && !site.active {
            site.active = true;
            site.stable_streak = 0;
        }
        if !site.active {
            return false;
        }

        site.pages_seen += 1;
        site.hidden_requests += usize::from(hidden_issued);
        site.marks += marked;
        if new_cookie || marked > 0 {
            site.stable_streak = 0;
        } else {
            site.stable_streak += 1;
            if site.stable_streak >= window {
                site.active = false;
            }
        }
        site.active
    }

    /// Records a page view on `host` whose hidden probe was *inconclusive*
    /// (failed or suspect fetch). The view is evidence of nothing, so the
    /// stability streak neither advances nor resets — training simply runs
    /// longer under faults instead of stabilizing on missing data — and no
    /// marks are applied. New cookies still register (and reactivate a
    /// dormant site), exactly as in [`observe`](Self::observe).
    ///
    /// Returns whether training is active after the update.
    pub fn defer(&mut self, host: &str, cookie_names: impl IntoIterator<Item = String>) -> bool {
        let site = self.sites.entry(host.to_string()).or_insert_with(SiteTraining::fresh);
        let mut new_cookie = false;
        for name in cookie_names {
            new_cookie |= site.known_cookies.insert(name);
        }
        if new_cookie && !site.active {
            site.active = true;
        }
        if !site.active {
            return false;
        }
        site.pages_seen += 1;
        site.hidden_requests += 1;
        site.deferrals += 1;
        if new_cookie {
            site.stable_streak = 0;
        }
        site.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unseen_site_is_active() {
        let state = ForcumState::new(5);
        assert!(state.is_active("new.example"));
    }

    #[test]
    fn stabilizes_after_window() {
        let mut state = ForcumState::new(3);
        state.observe("a.example", names(&["x"]), 0, true);
        assert!(state.is_active("a.example"));
        // Three quiet views → off. (First view after the cookie is quiet #1.)
        state.observe("a.example", names(&["x"]), 0, true);
        state.observe("a.example", names(&["x"]), 0, true);
        state.observe("a.example", names(&["x"]), 0, true);
        assert!(!state.is_active("a.example"));
    }

    #[test]
    fn marks_reset_streak() {
        let mut state = ForcumState::new(2);
        state.observe("a.example", names(&["x"]), 0, true);
        state.observe("a.example", names(&["x"]), 1, true); // mark → reset
        state.observe("a.example", names(&["x"]), 0, true);
        assert!(state.is_active("a.example"), "only one quiet view since mark");
        state.observe("a.example", names(&["x"]), 0, true);
        assert!(!state.is_active("a.example"));
    }

    #[test]
    fn new_cookie_reactivates() {
        let mut state = ForcumState::new(1);
        state.observe("a.example", names(&["x"]), 0, true);
        state.observe("a.example", names(&["x"]), 0, true);
        assert!(!state.is_active("a.example"));
        // A brand-new cookie shows up in a response → training resumes.
        state.observe("a.example", names(&["x", "brand_new"]), 0, false);
        assert!(state.is_active("a.example"));
    }

    #[test]
    fn manual_restart() {
        let mut state = ForcumState::new(1);
        state.observe("a.example", names(&["x"]), 0, true);
        state.observe("a.example", names(&["x"]), 0, true);
        assert!(!state.is_active("a.example"));
        state.restart("a.example");
        assert!(state.is_active("a.example"));
    }

    #[test]
    fn sites_independent() {
        let mut state = ForcumState::new(1);
        state.observe("a.example", names(&["x"]), 0, true);
        state.observe("a.example", names(&["x"]), 0, true);
        assert!(!state.is_active("a.example"));
        assert!(state.is_active("b.example"));
    }

    #[test]
    fn defer_freezes_the_streak() {
        let mut state = ForcumState::new(2);
        state.observe("a.example", names(&["x"]), 0, true);
        let streak_before = state.site("a.example").unwrap().stable_streak;
        // Any number of deferrals: the streak must not move either way.
        for _ in 0..5 {
            assert!(state.defer("a.example", names(&["x"])));
        }
        let site = state.site("a.example").unwrap();
        assert_eq!(site.stable_streak, streak_before, "deferral is evidence of nothing");
        assert_eq!(site.deferrals, 5);
        assert_eq!(site.hidden_requests, 6);
        assert!(site.active, "training never stabilizes on missing data");
    }

    #[test]
    fn defer_still_registers_new_cookies() {
        let mut state = ForcumState::new(1);
        state.observe("a.example", names(&["x"]), 0, true);
        state.observe("a.example", names(&["x"]), 0, true);
        assert!(!state.is_active("a.example"));
        // A new cookie in a deferred view reactivates the dormant site.
        assert!(state.defer("a.example", names(&["x", "fresh"])));
        assert!(state.is_active("a.example"));
        // And the next deferral on the known set does not advance the streak.
        let streak = state.site("a.example").unwrap().stable_streak;
        state.defer("a.example", names(&["x", "fresh"]));
        assert_eq!(state.site("a.example").unwrap().stable_streak, streak);
    }

    #[test]
    fn counters_accumulate() {
        let mut state = ForcumState::new(10);
        state.observe("a.example", names(&["x", "y"]), 2, true);
        state.observe("a.example", names(&[]), 0, false);
        let site = state.site("a.example").unwrap();
        assert_eq!(site.pages_seen, 2);
        assert_eq!(site.hidden_requests, 1);
        assert_eq!(site.marks, 2);
    }
}
