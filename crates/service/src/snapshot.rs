//! Per-shard snapshots: a checkpoint of one shard's entries.
//!
//! A snapshot folds the shard's whole state into a single file so the
//! WAL can be truncated — the durability ladder's compaction rung.
//! Writes are crash-safe by construction: encode to a buffer, write to
//! `snapshot-NN.tmp` (through the same fault-aware [`StorageFile`] layer
//! as the WAL, with the same truncate-and-retry discipline), sync,
//! atomically rename over `snapshot-NN.snap`, then sync the directory.
//! A crash at any point leaves either the old snapshot or the new one —
//! never a half-written hybrid — and the trailing checksum catches any
//! damage that slips through.
//!
//! Format: `CPSNAP01` magic, `u64` WAL generation + `u64` covered record
//! count (this snapshot already contains the first `covered` records of
//! that log generation — recovery skips them), `u32` entry count, entries
//! sorted by host, trailing `u64` FNV-1a checksum over everything before
//! it.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cookiepicker_core::{ForcumState, SiteTraining};

use crate::metrics::ServiceMetrics;
use crate::storage::{open_storage, StorageFaults};
use crate::store::SiteEntry;
use crate::wal::codec::{fnv1a, put_str, put_strs, put_u32, put_u64, Cursor};

const MAGIC: &[u8; 8] = b"CPSNAP01";
const MAX_ATTEMPTS: usize = 8;

/// The snapshot file for shard `shard` under `dir`.
pub fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("snapshot-{shard:02}.snap"))
}

fn tmp_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("snapshot-{shard:02}.tmp"))
}

/// What a snapshot file holds: the entries plus which WAL prefix they
/// already contain.
#[derive(Debug)]
pub struct SnapshotContents {
    /// The restored shard entries.
    pub entries: HashMap<String, SiteEntry>,
    /// The WAL generation the snapshot was cut against.
    pub wal_generation: u64,
    /// How many records of that generation are folded in.
    pub wal_covered: u64,
}

/// Encodes entries as a snapshot blob — also the wire format of
/// `GET /v1/repl/snapshot` (the bootstrap transfer reuses the exact
/// on-disk image: magic, generation, covered count, sorted entries,
/// trailing checksum).
pub(crate) fn encode_snapshot_bytes(
    entries: &HashMap<String, SiteEntry>,
    wal_generation: u64,
    wal_covered: u64,
) -> Vec<u8> {
    encode(entries, wal_generation, wal_covered)
}

/// Decodes a snapshot blob (file bytes or a bootstrap transfer body).
pub(crate) fn decode_snapshot_bytes(
    bytes: &[u8],
    stability_window: usize,
) -> Option<SnapshotContents> {
    decode(bytes, stability_window)
}

fn encode(entries: &HashMap<String, SiteEntry>, wal_generation: u64, wal_covered: u64) -> Vec<u8> {
    let mut hosts: Vec<&String> = entries.keys().collect();
    hosts.sort_unstable();
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, wal_generation);
    put_u64(&mut out, wal_covered);
    put_u32(&mut out, hosts.len() as u32);
    for host in hosts {
        let entry = &entries[host];
        put_str(&mut out, host);
        let marked: Vec<&str> = entry.marked.iter().map(String::as_str).collect();
        put_strs(&mut out, &marked);
        put_u64(&mut out, entry.probes as u64);
        put_u64(&mut out, entry.marking_probes as u64);
        put_u64(&mut out, entry.deferred_probes as u64);
        put_u64(&mut out, entry.detection_micros_total);
        put_u64(&mut out, entry.duration_ms_total.to_bits());
        match entry.forcum.site(host) {
            None => out.push(0),
            Some(site) => {
                out.push(1);
                put_u64(&mut out, site.pages_seen as u64);
                put_u64(&mut out, site.stable_streak as u64);
                out.push(u8::from(site.active));
                put_strs(&mut out, &site.known_cookies_sorted());
                put_u64(&mut out, site.hidden_requests as u64);
                put_u64(&mut out, site.marks as u64);
                put_u64(&mut out, site.deferrals as u64);
            }
        }
    }
    let sum = fnv1a(&out);
    put_u64(&mut out, sum);
    out
}

fn decode(bytes: &[u8], stability_window: usize) -> Option<SnapshotContents> {
    let body = bytes.get(..bytes.len().checked_sub(8)?)?;
    let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte slice"));
    if fnv1a(body) != sum || body.get(..8)? != MAGIC {
        return None;
    }
    let mut cur = Cursor::new(&body[8..]);
    let wal_generation = cur.u64()?;
    let wal_covered = cur.u64()?;
    let count = cur.u32()?;
    let mut entries = HashMap::with_capacity(count as usize);
    for _ in 0..count {
        let host = cur.str()?;
        let marked = cur.strs()?;
        let probes = cur.u64()? as usize;
        let marking_probes = cur.u64()? as usize;
        let deferred_probes = cur.u64()? as usize;
        let detection_micros_total = cur.u64()?;
        let duration_ms_total = f64::from_bits(cur.u64()?);
        let mut forcum = ForcumState::new(stability_window);
        match cur.u8()? {
            0 => {}
            1 => {
                let pages_seen = cur.u64()? as usize;
                let stable_streak = cur.u64()? as usize;
                let active = match cur.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let known = cur.strs()?;
                let hidden_requests = cur.u64()? as usize;
                let marks = cur.u64()? as usize;
                let deferrals = cur.u64()? as usize;
                forcum.insert_site(
                    &host,
                    SiteTraining::from_parts(
                        pages_seen,
                        stable_streak,
                        active,
                        known,
                        hidden_requests,
                        marks,
                        deferrals,
                    ),
                );
            }
            _ => return None,
        }
        let entry = SiteEntry {
            forcum,
            marked: marked.into_iter().collect(),
            probes,
            marking_probes,
            deferred_probes,
            detection_micros_total,
            duration_ms_total,
        };
        entries.insert(host, entry);
    }
    cur.done().then_some(SnapshotContents { entries, wal_generation, wal_covered })
}

/// Writes shard `shard`'s entries as an atomic snapshot covering the
/// first `wal_covered` records of WAL generation `wal_generation`.
#[allow(clippy::too_many_arguments)] // one checkpoint's worth of context
pub fn write_snapshot(
    dir: &Path,
    shard: usize,
    entries: &HashMap<String, SiteEntry>,
    wal_generation: u64,
    wal_covered: u64,
    faults: Option<StorageFaults>,
    tag: u64,
    metrics: &Arc<ServiceMetrics>,
) -> std::io::Result<()> {
    let encoded = encode(entries, wal_generation, wal_covered);
    let tmp = tmp_path(dir, shard);
    let mut last_err = None;
    let mut written = false;
    {
        let mut file = open_storage(&tmp, 0, faults, tag, metrics)?;
        for _ in 0..MAX_ATTEMPTS {
            // Any failure rewinds to an empty tmp file and rewrites the
            // whole image — same discipline as a WAL append.
            let attempt = (|| -> std::io::Result<()> {
                file.truncate_to(0)?;
                let mut off = 0;
                while off < encoded.len() {
                    match file.write(&encoded[off..])? {
                        0 => return Err(std::io::Error::other("snapshot write returned 0")),
                        n => off += n,
                    }
                }
                file.sync()
            })();
            match attempt {
                Ok(()) => {
                    written = true;
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
    }
    if !written {
        std::fs::remove_file(&tmp).ok();
        return Err(last_err.expect("loop ran at least once"));
    }
    std::fs::rename(&tmp, snapshot_path(dir, shard))?;
    // The rename itself must reach the disk before the WAL is truncated.
    std::fs::File::open(dir)?.sync_all()
}

/// Loads shard `shard`'s snapshot, if one exists.
///
/// A malformed or checksum-failing snapshot is an error — unlike a torn
/// WAL tail it cannot be the product of a clean kill (writes are atomic
/// via rename), so recovery fails loudly instead of silently dropping
/// trained state.
pub fn load_snapshot(
    dir: &Path,
    shard: usize,
    stability_window: usize,
) -> std::io::Result<Option<SnapshotContents>> {
    let path = snapshot_path(dir, shard);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    decode(&bytes, stability_window).map(Some).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("corrupt snapshot {}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StorageFaults;
    use std::collections::BTreeSet;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cp-snap-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_entries(window: usize) -> HashMap<String, SiteEntry> {
        let mut entries = HashMap::new();
        let mut forcum = ForcumState::new(window);
        forcum.observe("a.example", ["sid".to_string(), "theme".to_string()], 1, true);
        forcum.observe("a.example", ["sid".to_string()], 0, true);
        entries.insert(
            "a.example".to_string(),
            SiteEntry {
                forcum,
                marked: BTreeSet::from(["theme".to_string()]),
                probes: 3,
                marking_probes: 1,
                deferred_probes: 1,
                detection_micros_total: 4200,
                duration_ms_total: 4.2,
            },
        );
        let mut dormant = ForcumState::new(window);
        dormant.observe("b.example", ["tr".to_string()], 0, true);
        dormant.observe("b.example", ["tr".to_string()], 0, true);
        entries.insert(
            "b.example".to_string(),
            SiteEntry {
                forcum: dormant,
                marked: BTreeSet::new(),
                probes: 2,
                marking_probes: 0,
                deferred_probes: 0,
                detection_micros_total: 100,
                duration_ms_total: 0.1,
            },
        );
        entries
    }

    fn assert_same(a: &HashMap<String, SiteEntry>, b: &HashMap<String, SiteEntry>) {
        assert_eq!(a.len(), b.len());
        for (host, ea) in a {
            let eb = &b[host];
            assert_eq!(ea.marked, eb.marked, "{host}");
            assert_eq!(ea.probes, eb.probes);
            assert_eq!(ea.marking_probes, eb.marking_probes);
            assert_eq!(ea.deferred_probes, eb.deferred_probes);
            assert_eq!(ea.detection_micros_total, eb.detection_micros_total);
            assert_eq!(ea.duration_ms_total, eb.duration_ms_total);
            assert_eq!(ea.forcum.is_active(host), eb.forcum.is_active(host));
            match (ea.forcum.site(host), eb.forcum.site(host)) {
                (None, None) => {}
                (Some(sa), Some(sb)) => {
                    assert_eq!(sa.pages_seen, sb.pages_seen);
                    assert_eq!(sa.stable_streak, sb.stable_streak);
                    assert_eq!(sa.active, sb.active);
                    assert_eq!(sa.known_cookies_sorted(), sb.known_cookies_sorted());
                    assert_eq!(sa.hidden_requests, sb.hidden_requests);
                    assert_eq!(sa.marks, sb.marks);
                    assert_eq!(sa.deferrals, sb.deferrals);
                }
                (sa, sb) => panic!("{host}: site presence mismatch {sa:?} vs {sb:?}"),
            }
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmp_dir("round");
        let metrics = Arc::new(ServiceMetrics::new());
        let entries = sample_entries(5);
        write_snapshot(&dir, 0, &entries, 3, 17, None, 0, &metrics).unwrap();
        let loaded = load_snapshot(&dir, 0, 5).unwrap().expect("snapshot exists");
        assert_same(&entries, &loaded.entries);
        assert_eq!(loaded.wal_generation, 3);
        assert_eq!(loaded.wal_covered, 17);
        // Absent shard → None; empty shard round-trips too.
        assert!(load_snapshot(&dir, 7, 5).unwrap().is_none());
        write_snapshot(&dir, 1, &HashMap::new(), 1, 0, None, 0, &metrics).unwrap();
        assert_eq!(load_snapshot(&dir, 1, 5).unwrap().unwrap().entries.len(), 0);
    }

    #[test]
    fn snapshot_encoding_is_deterministic() {
        let entries = sample_entries(5);
        assert_eq!(encode(&entries, 1, 2), encode(&sample_entries(5), 1, 2));
    }

    #[test]
    fn corrupt_snapshot_fails_loudly() {
        let dir = tmp_dir("corrupt");
        let metrics = Arc::new(ServiceMetrics::new());
        write_snapshot(&dir, 0, &sample_entries(5), 1, 2, None, 0, &metrics).unwrap();
        let path = snapshot_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&dir, 0, 5).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A truncated snapshot (torn before the rename barrier could have
        // prevented it) is equally rejected.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(load_snapshot(&dir, 0, 5).is_err());
    }

    #[test]
    fn faulted_writes_still_produce_a_valid_snapshot() {
        let dir = tmp_dir("faulted");
        let metrics = Arc::new(ServiceMetrics::new());
        let entries = sample_entries(5);
        let faults = StorageFaults::uniform(0x5A17, 0.4);
        write_snapshot(&dir, 0, &entries, 1, 2, Some(faults), 9, &metrics).unwrap();
        let loaded = load_snapshot(&dir, 0, 5).unwrap().expect("snapshot exists");
        assert_same(&entries, &loaded.entries);
    }

    #[test]
    fn rename_replaces_the_old_snapshot_atomically() {
        let dir = tmp_dir("replace");
        let metrics = Arc::new(ServiceMetrics::new());
        let mut entries = sample_entries(5);
        write_snapshot(&dir, 0, &entries, 1, 4, None, 0, &metrics).unwrap();
        entries.get_mut("a.example").unwrap().probes = 99;
        write_snapshot(&dir, 0, &entries, 1, 9, None, 0, &metrics).unwrap();
        let loaded = load_snapshot(&dir, 0, 5).unwrap().unwrap();
        assert_eq!(loaded.entries["a.example"].probes, 99);
        assert_eq!(loaded.wal_covered, 9);
        assert!(!tmp_path(&dir, 0).exists(), "tmp file consumed by rename");
    }
}
