//! A deterministic closed-loop load generator for cp-serve.
//!
//! `threads` client threads drive real TCP connections with keep-alive.
//! The visit mix is seeded and *partitioned*: thread `t` owns the sites
//! whose index satisfies `idx % threads == t`, so every site sees its
//! visits in one thread's deterministic order. Combined with the embedded
//! world's per-request noise derivation, two runs with the same seed
//! against same-seed servers produce identical decision counters — the
//! property `tests/serve_determinism.rs` pins.
//!
//! Latency is measured per request on the client (request written →
//! response parsed); the report carries exact p50/p95/p99 over all
//! samples, plus the client-side verdict tally to cross-check against the
//! server's `/metrics` counters.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cp_runtime::json::{Json, ToJson};
use cp_runtime::rng::{Rng, SeedableRng, StdRng, Zipf};
use cp_webworld::{table1_population, uniform_host};

use crate::http::{append_request, write_request, HttpConn, HttpError, HttpResponse, Limits};
use crate::metrics::{quantile_from_buckets, scrape_counter, scrape_histogram};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server host.
    pub host: String,
    /// Server port.
    pub port: u16,
    /// Client threads (each with its own RNG stream).
    pub threads: usize,
    /// Keep-alive connections per thread. `1` (the default) is the
    /// classic closed loop: one request in flight per thread. Larger
    /// values drive each thread's connections in batched rounds — write
    /// one request on every connection, then read every response — so a
    /// single client thread keeps many server connections busy with at
    /// most one outstanding request per connection. The per-thread draw
    /// sequence is unchanged, but requests in the same round cannot see
    /// each other's cookies, so cross-run counter identity is only
    /// guaranteed at `connections: 1`.
    pub connections: usize,
    /// Total requests across all threads.
    pub requests: u64,
    /// Seed: must match the server's `--seed` for the visit mix to make
    /// sense (hosts come from the same Table-1 population).
    pub seed: u64,
    /// When `Some(n)`, visit hosts are drawn from a `uniform:n` world
    /// (`{slug}-u{i}.example`) with a Zipf-ranked index instead of the
    /// Table-1 partition — for driving `serve --world uniform:N`. The
    /// per-thread draw sequence is still seeded, but with sampled hosts
    /// shared across threads the server-side mark state interleaves, so
    /// cross-run counter identity is only guaranteed in the default
    /// (partitioned Table-1) mode.
    pub hosts: Option<u64>,
    /// Zipf exponent for [`LoadgenConfig::hosts`] sampling (rank 1 — index
    /// 0 — is the hottest host). Ignored when `hosts` is `None`.
    pub zipf: f64,
    /// Transport retries per request (see [`Client`] for the phase rules).
    pub retries: u32,
    /// Base backoff before the first retry; doubles on each further retry.
    pub backoff: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            threads: 4,
            connections: 1,
            requests: 10_000,
            seed: 7,
            hosts: None,
            zipf: 1.0,
            retries: DEFAULT_RETRIES,
            backoff: DEFAULT_RETRY_BACKOFF,
        }
    }
}

/// Aggregated run report.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests completed (responses parsed).
    pub requests: u64,
    /// Responses by status class.
    pub status_2xx: u64,
    /// 4xx responses (should be 0 under the standard mix).
    pub status_4xx: u64,
    /// 5xx responses (must be 0).
    pub status_5xx: u64,
    /// Transport failures (connect/read/write errors).
    pub transport_errors: u64,
    /// Wall-clock duration of the run, milliseconds.
    pub elapsed_ms: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Client-measured latency percentiles, microseconds.
    pub p50_micros: u64,
    /// 95th percentile.
    pub p95_micros: u64,
    /// 99th percentile.
    pub p99_micros: u64,
    /// Worst observed latency.
    pub max_micros: u64,
    /// Client-side tally of `useful` verdicts (visits that probed + classify calls).
    pub client_useful: u64,
    /// Client-side tally of `noise` verdicts.
    pub client_noise: u64,
    /// Server-side `cp_decisions_total{verdict="useful"}` scraped after the run.
    pub server_useful: u64,
    /// Server-side `cp_decisions_total{verdict="noise"}`.
    pub server_noise: u64,
    /// Whether the client tally matches the server counters exactly.
    pub counters_match: bool,
    /// Detection timings recorded by the server (`cp_detection_micros` count).
    pub detection_count: u64,
    /// Server-side detection latency median, from the histogram buckets.
    pub detection_p50_micros: f64,
    /// Server-side detection latency 99th percentile.
    pub detection_p99_micros: f64,
    /// Analysis-cache hits scraped after the run.
    pub cache_hits: u64,
    /// Analysis-cache misses scraped after the run.
    pub cache_misses: u64,
    /// Visits answered `inconclusive` (chaos-faulted hidden fetches).
    pub deferred_probes: u64,
    /// Client-side request retries (stale keep-alive recoveries).
    pub client_retries: u64,
    /// Client-side connections abandoned after a transport failure.
    pub client_reconnects: u64,
    /// Server-side `cp_retry_total` (hidden-fetch retries) after the run.
    pub server_retry_total: u64,
    /// Server-side successful hidden fetches after the run.
    pub hidden_fetch_ok: u64,
    /// Whether the final `/metrics` scrape succeeded. `false` when the
    /// server died mid-run (the crash harness kills it on purpose): the
    /// client-side tallies and marks are still valid, every `server_*`
    /// field is zero.
    pub metrics_scraped: bool,
    /// Server-side `cp_wal_records_total` after the run (0 for in-memory
    /// servers).
    pub server_wal_records: u64,
    /// Injected storage faults the server survived during the run
    /// (`cp_wal_faults_total` summed over kinds).
    pub server_wal_faults: u64,
    /// Sorted, deduplicated `"host cookie"` lines for every mark observed —
    /// the chaos gate diffs these against a fault-free oracle run.
    pub marks: Vec<String>,
    /// Keep-alive connections per thread the run was configured with.
    pub connections: usize,
    /// Requests completed per connection, thread-major (thread 0's
    /// connections first). Single-connection runs report one entry per
    /// thread.
    pub per_connection_requests: Vec<u64>,
    /// Server-side `cp_event_loop_wakeups_total` after the run (0 on the
    /// worker-pool path, which has no loop to count).
    pub server_event_loop_wakeups: u64,
    /// Requests re-sent after a 503 response — the cluster's "not acked"
    /// signal while a failover is in flight.
    pub retried_requests: u64,
    /// Client-acked marks missing from the server's final `/v1/marks`
    /// dump. An acked mark may never be lost by a failover, so the
    /// cluster gate pins this at zero.
    pub lost_acks: u64,
    /// Client-acked marks confirmed present in the final `/v1/marks` dump.
    pub marks_verified: u64,
    /// Follower resyncs completed during the run, scraped from the
    /// target's final metrics (`cp_repl_resync_total` on a node,
    /// `cp_route_resyncs_observed` when the target is a router — summed,
    /// since a node exposes only one of the pair as nonzero).
    pub resyncs_observed: u64,
    /// Worst single-ship write stall a slow follower caused, in
    /// microseconds (max of `cp_repl_ack_stall_max_micros` and
    /// `cp_route_max_ack_stall_micros`).
    pub max_ack_stall_micros: u64,
}

impl ToJson for LoadgenReport {
    fn to_json(&self) -> Json {
        Json::object()
            .set("requests", self.requests)
            .set("status_2xx", self.status_2xx)
            .set("status_4xx", self.status_4xx)
            .set("status_5xx", self.status_5xx)
            .set("transport_errors", self.transport_errors)
            .set("elapsed_ms", self.elapsed_ms)
            .set("throughput_rps", self.throughput_rps)
            .set(
                "latency_micros",
                Json::object()
                    .set("p50", self.p50_micros)
                    .set("p95", self.p95_micros)
                    .set("p99", self.p99_micros)
                    .set("max", self.max_micros),
            )
            .set(
                "decisions",
                Json::object()
                    .set("client_useful", self.client_useful)
                    .set("client_noise", self.client_noise)
                    .set("server_useful", self.server_useful)
                    .set("server_noise", self.server_noise)
                    .set("counters_match", self.counters_match),
            )
            .set(
                "detection",
                Json::object()
                    .set("count", self.detection_count)
                    .set("p50_micros", self.detection_p50_micros)
                    .set("p99_micros", self.detection_p99_micros)
                    .set("cache_hits", self.cache_hits)
                    .set("cache_misses", self.cache_misses),
            )
            .set(
                "robustness",
                Json::object()
                    .set("deferred_probes", self.deferred_probes)
                    .set("client_retries", self.client_retries)
                    .set("client_reconnects", self.client_reconnects)
                    .set("server_retry_total", self.server_retry_total)
                    .set("hidden_fetch_ok", self.hidden_fetch_ok)
                    .set("wal_records", self.server_wal_records)
                    .set("wal_faults", self.server_wal_faults),
            )
            .set(
                "serving",
                Json::object()
                    .set("connections", self.connections as u64)
                    .set("per_connection_requests", self.per_connection_requests.clone())
                    .set("event_loop_wakeups", self.server_event_loop_wakeups),
            )
            .set(
                "failover",
                Json::object()
                    .set("reconnects", self.client_reconnects)
                    .set("retried_requests", self.retried_requests)
                    .set("lost_acks", self.lost_acks)
                    .set("marks_verified", self.marks_verified)
                    .set("resyncs_observed", self.resyncs_observed)
                    .set("max_ack_stall_micros", self.max_ack_stall_micros),
            )
            .set("metrics_scraped", self.metrics_scraped)
            .set("marks", self.marks.clone())
    }
}

/// Default pause before re-sending a request on a fresh connection — long
/// enough for the server's close to finish propagating, short enough to be
/// noise in any latency sample.
const DEFAULT_RETRY_BACKOFF: Duration = Duration::from_millis(5);

/// Default transport retries (the pre-policy behavior: exactly one).
const DEFAULT_RETRIES: u32 = 1;

/// A keep-alive HTTP client over one TCP connection.
///
/// Failure handling is phase-aware. A connect- or write-phase failure on a
/// *reused* connection means the server timed the keep-alive out between
/// requests and nothing reached its handler, so any method is safe to
/// re-send on a fresh connection. A read-phase failure arrives after
/// the request went out — the server may already have processed it — so
/// only idempotent GETs retry; re-sending a POST could double-apply a
/// training step. A failure on a *fresh* first connection means the server
/// is down, and no retry budget changes that — it fails immediately.
pub struct Client {
    host: String,
    port: u16,
    conn: Option<HttpConn<TcpStream>>,
    /// Transport retries allowed per request (beyond the first attempt).
    max_retries: u32,
    /// Backoff before the first retry; doubles on each further retry.
    backoff: Duration,
    /// Requests re-sent after a transport failure.
    pub retries: u64,
    /// Broken connections abandoned (each retry implies one, but a
    /// non-retried failure also counts).
    pub reconnects: u64,
    /// Requests re-sent after a 503 response. The cluster only answers
    /// 503 when the write is *unacked* (replication quorum lost, a
    /// follower fencing a direct write, or the router mid-failover), so
    /// re-sending any method is contract-safe — the unacked attempt is
    /// invisible, exactly like a torn WAL tail.
    pub status_retries: u64,
}

impl Client {
    /// Creates a client for `host:port` (connects lazily) with the default
    /// policy: one retry after a 5 ms pause.
    pub fn new(host: &str, port: u16) -> Self {
        Client::with_policy(host, port, DEFAULT_RETRIES, DEFAULT_RETRY_BACKOFF)
    }

    /// Creates a client with an explicit transport-retry budget and base
    /// backoff (doubled on each further retry). `retries: 0` disables
    /// re-sending entirely.
    pub fn with_policy(host: &str, port: u16, retries: u32, backoff: Duration) -> Self {
        Client {
            host: host.to_string(),
            port,
            conn: None,
            max_retries: retries,
            backoff,
            retries: 0,
            reconnects: 0,
            status_retries: 0,
        }
    }

    /// Pauses before retry number `attempt` (1-based): exponential
    /// doubling, capped so a large budget cannot sleep for minutes.
    fn backoff_pause(&self, attempt: u32) -> Duration {
        self.backoff.saturating_mul(1u32 << attempt.saturating_sub(1).min(10))
    }

    fn connect(&mut self) -> std::io::Result<&mut HttpConn<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect((self.host.as_str(), self.port))?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            stream.set_write_timeout(Some(Duration::from_secs(10)))?;
            stream.set_nodelay(true)?;
            self.conn = Some(HttpConn::new(stream, Limits::default()));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the response, retrying up to the
    /// configured budget where that is safe (see the type docs for the
    /// phase rules).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<HttpResponse, HttpError> {
        let host = format!("{}:{}", self.host, self.port);
        let mut attempts: u32 = 0;
        loop {
            let reused = self.conn.is_some();
            // A first attempt failing on a fresh connection means the
            // server is unreachable; retries only cover reused connections
            // (stale keep-alives) and the fresh retries that follow one.
            let may_retry = (reused || attempts > 0) && attempts < self.max_retries;
            let write_result = (|| {
                let conn = self.connect().map_err(HttpError::Io)?;
                write_request(conn.stream_mut(), method, target, &host, body).map_err(HttpError::Io)
            })();
            let read_result = match write_result {
                Ok(()) => self.conn.as_mut().expect("connected above").read_response(),
                Err(err) => {
                    self.conn = None;
                    self.reconnects += 1;
                    // Nothing reached the handler: any method may re-send.
                    if may_retry {
                        attempts += 1;
                        self.retries += 1;
                        std::thread::sleep(self.backoff_pause(attempts));
                        continue;
                    }
                    return Err(err);
                }
            };
            match read_result {
                Ok(response) => {
                    let close = response
                        .headers
                        .get("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    if close {
                        self.conn = None;
                    }
                    // A 503 means the request was *not* acked (see
                    // `status_retries`), so any method may re-send — this
                    // is what rides out a failover's promotion window.
                    if response.status == 503 && attempts < self.max_retries {
                        attempts += 1;
                        self.retries += 1;
                        self.status_retries += 1;
                        std::thread::sleep(self.backoff_pause(attempts));
                        continue;
                    }
                    return Ok(response);
                }
                Err(err) => {
                    self.conn = None;
                    self.reconnects += 1;
                    // The request went out; only idempotent GETs re-send.
                    if may_retry && method == "GET" {
                        attempts += 1;
                        self.retries += 1;
                        std::thread::sleep(self.backoff_pause(attempts));
                        continue;
                    }
                    return Err(err);
                }
            }
        }
    }
}

/// Deterministic (regular, hidden) page pairs for the classify slice of
/// the mix: index 0 differs structurally (useful), 1 and 2 do not.
const CLASSIFY_PAIRS: [(&str, &str); 3] = [
    (
        "<html><body><h1>Home</h1><ul><li>saved item</li><li>saved item</li></ul>\
         <div><p>personalized shelf</p><p>another row</p></div></body></html>",
        "<html><body><h1>Home</h1><p>log in to see your items</p></body></html>",
    ),
    (
        "<html><body><h1>News</h1><p>story one</p><p>story two</p></body></html>",
        "<html><body><h1>News</h1><p>story one</p><p>story two</p></body></html>",
    ),
    (
        "<html><body><div><p>banner A</p><p>content</p></div></body></html>",
        "<html><body><div><p>banner B</p><p>content</p></div></body></html>",
    ),
];

struct ThreadTally {
    samples: Vec<u64>,
    status_2xx: u64,
    status_4xx: u64,
    status_5xx: u64,
    transport_errors: u64,
    useful: u64,
    noise: u64,
    deferred: u64,
    retries: u64,
    reconnects: u64,
    status_retries: u64,
    /// `"host cookie"` lines for every cookie marked useful during the run.
    marks: Vec<String>,
    /// Requests completed on each of this thread's connections.
    conn_requests: Vec<u64>,
}

/// Runs the load and returns the aggregated report. The final `/metrics`
/// scrape (for the counter cross-check) happens after every client thread
/// has finished.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, HttpError> {
    let threads = config.threads.max(1);
    // Zipf mode samples hosts per request; the Table-1 partition is only
    // built (and only meaningful) in the default mode.
    let hosts: Vec<String> = if config.hosts.is_some() {
        Vec::new()
    } else {
        table1_population(config.seed).into_iter().map(|s| s.domain).collect()
    };
    let started = Instant::now();

    let tallies: Vec<ThreadTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let quota = config.requests / threads as u64
                    + u64::from((t as u64) < config.requests % threads as u64);
                // Thread t owns every (threads)-th site: per-site visit
                // order is single-threaded, hence deterministic.
                let owned: Vec<&str> = hosts
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| idx % threads == t)
                    .map(|(_, h)| h.as_str())
                    .collect();
                let config = &*config;
                scope.spawn(move || client_thread(config, t as u64, quota, &owned))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });

    let elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;
    let mut samples = Vec::new();
    let mut report = LoadgenReport {
        requests: 0,
        status_2xx: 0,
        status_4xx: 0,
        status_5xx: 0,
        transport_errors: 0,
        elapsed_ms,
        throughput_rps: 0.0,
        p50_micros: 0,
        p95_micros: 0,
        p99_micros: 0,
        max_micros: 0,
        client_useful: 0,
        client_noise: 0,
        server_useful: 0,
        server_noise: 0,
        counters_match: false,
        detection_count: 0,
        detection_p50_micros: 0.0,
        detection_p99_micros: 0.0,
        cache_hits: 0,
        cache_misses: 0,
        deferred_probes: 0,
        client_retries: 0,
        client_reconnects: 0,
        server_retry_total: 0,
        hidden_fetch_ok: 0,
        metrics_scraped: false,
        server_wal_records: 0,
        server_wal_faults: 0,
        marks: Vec::new(),
        connections: config.connections.max(1),
        per_connection_requests: Vec::new(),
        server_event_loop_wakeups: 0,
        retried_requests: 0,
        lost_acks: 0,
        marks_verified: 0,
        resyncs_observed: 0,
        max_ack_stall_micros: 0,
    };
    for tally in tallies {
        report.requests += tally.samples.len() as u64;
        report.status_2xx += tally.status_2xx;
        report.status_4xx += tally.status_4xx;
        report.status_5xx += tally.status_5xx;
        report.transport_errors += tally.transport_errors;
        report.client_useful += tally.useful;
        report.client_noise += tally.noise;
        report.deferred_probes += tally.deferred;
        report.client_retries += tally.retries;
        report.client_reconnects += tally.reconnects;
        report.retried_requests += tally.status_retries;
        report.marks.extend(tally.marks);
        report.per_connection_requests.extend(tally.conn_requests);
        samples.extend(tally.samples);
    }
    report.marks.sort_unstable();
    report.marks.dedup();
    samples.sort_unstable();
    report.p50_micros = percentile(&samples, 0.50);
    report.p95_micros = percentile(&samples, 0.95);
    report.p99_micros = percentile(&samples, 0.99);
    report.max_micros = samples.last().copied().unwrap_or(0);
    report.throughput_rps =
        if elapsed_ms > 0.0 { report.requests as f64 / (elapsed_ms / 1_000.0) } else { 0.0 };

    // Cross-check the server's counters against the client tally. The
    // scrape is best-effort: a server that died mid-run (the crash
    // harness kills one on purpose) still yields a report — the client
    // tallies and marks above are exactly what that harness consumes.
    let mut client = Client::with_policy(&config.host, config.port, config.retries, config.backoff);
    if let Ok(response) = client.request("GET", "/metrics", b"") {
        let exposition = response.body_string();
        report.metrics_scraped = true;
        report.server_useful =
            scrape_counter(&exposition, "cp_decisions_total{verdict=\"useful\"}").unwrap_or(0);
        report.server_noise =
            scrape_counter(&exposition, "cp_decisions_total{verdict=\"noise\"}").unwrap_or(0);
        report.counters_match = report.server_useful == report.client_useful
            && report.server_noise == report.client_noise;
        // Server-side detection timings: the histogram covers every
        // decide() the server ran, including the cached path's analysis
        // lookups.
        let buckets = scrape_histogram(&exposition, "cp_detection_micros");
        report.detection_count = buckets.last().map(|(_, total)| *total).unwrap_or(0);
        if report.detection_count > 0 {
            report.detection_p50_micros = quantile_from_buckets(&buckets, 0.50);
            report.detection_p99_micros = quantile_from_buckets(&buckets, 0.99);
        }
        report.cache_hits =
            scrape_counter(&exposition, "cp_analysis_cache_total{result=\"hit\"}").unwrap_or(0);
        report.cache_misses =
            scrape_counter(&exposition, "cp_analysis_cache_total{result=\"miss\"}").unwrap_or(0);
        report.server_retry_total = scrape_counter(&exposition, "cp_retry_total").unwrap_or(0);
        report.hidden_fetch_ok =
            scrape_counter(&exposition, "cp_hidden_fetch_total{result=\"ok\"}").unwrap_or(0);
        report.server_event_loop_wakeups =
            scrape_counter(&exposition, "cp_event_loop_wakeups_total").unwrap_or(0);
        report.server_wal_records =
            scrape_counter(&exposition, "cp_wal_records_total").unwrap_or(0);
        report.server_wal_faults = crate::metrics::WAL_FAULT_KINDS
            .iter()
            .map(|kind| {
                let series = format!("cp_wal_faults_total{{kind=\"{kind}\"}}");
                scrape_counter(&exposition, &series).unwrap_or(0)
            })
            .sum();
        report.resyncs_observed = scrape_counter(&exposition, "cp_repl_resync_total").unwrap_or(0)
            + scrape_counter(&exposition, "cp_route_resyncs_observed").unwrap_or(0);
        report.max_ack_stall_micros = scrape_counter(&exposition, "cp_repl_ack_stall_max_micros")
            .unwrap_or(0)
            .max(scrape_counter(&exposition, "cp_route_max_ack_stall_micros").unwrap_or(0));
    }
    // Verify every client-acked mark against the server's final dump: an
    // acked mark missing server-side is a lost write, which a failover is
    // never allowed to cause (the cluster gate pins `lost_acks` at 0).
    // Best-effort like the scrape above — a server the crash harness
    // killed verifies nothing, it does not invent losses.
    if !report.marks.is_empty() {
        if let Ok(response) = client.request("GET", "/v1/marks", b"") {
            if response.status == 200 {
                let body = response.body_string();
                let server_marks: std::collections::HashSet<&str> = body.lines().collect();
                for mark in &report.marks {
                    if server_marks.contains(mark.as_str()) {
                        report.marks_verified += 1;
                    } else {
                        report.lost_acks += 1;
                    }
                }
            }
        }
    }
    Ok(report)
}

/// One host draw: Zipf-ranked uniform-world host, or a uniform pick from
/// the thread's Table-1 partition. The partition path draws exactly one
/// `gen_range`, byte-identical to the pre-Zipf sequence.
fn pick_host(sampler: &Option<Zipf>, owned: &[&str], rng: &mut StdRng) -> String {
    match sampler {
        Some(zipf) => uniform_host(zipf.sample(rng) - 1),
        None => owned[rng.gen_range(0..owned.len())].to_string(),
    }
}

/// Draws the next request of the seeded mix. The draw order is a pure
/// function of the thread RNG, independent of which connection ends up
/// carrying the request.
fn draw_request(
    sampler: &Option<Zipf>,
    owned: &[&str],
    rng: &mut StdRng,
    jars: &HashMap<String, Vec<String>>,
) -> (&'static str, String, String) {
    let has_sites = sampler.is_some() || !owned.is_empty();
    let roll = rng.gen_range(0..100u64);
    if roll < 86 && has_sites {
        let host = pick_host(sampler, owned, rng);
        let path = match rng.gen_range(0..5u64) {
            0 => "/".to_string(),
            n => format!("/page/{n}"),
        };
        // Formatted directly (keys in sorted order, byte-identical to the
        // Json-tree rendering): hosts, paths, and issued cookies are all
        // escape-free, and this runs for 86% of the mix.
        let payload = match jars.get(&host).filter(|jar| !jar.is_empty()) {
            Some(jar) => {
                format!(
                    "{{\"cookie\":\"{}\",\"host\":\"{host}\",\"path\":\"{path}\"}}",
                    jar.join("; ")
                )
            }
            None => format!("{{\"host\":\"{host}\",\"path\":\"{path}\"}}"),
        };
        ("POST", "/v1/visit".to_string(), payload)
    } else if roll < 90 {
        ("GET", "/healthz".to_string(), String::new())
    } else if roll < 94 && has_sites {
        let host = pick_host(sampler, owned, rng);
        ("GET", format!("/v1/sites/{host}"), String::new())
    } else {
        let (regular, hidden) = CLASSIFY_PAIRS[rng.gen_range(0..CLASSIFY_PAIRS.len())];
        let payload = Json::object().set("regular", regular).set("hidden", hidden);
        ("POST", "/v1/classify".to_string(), payload.to_compact())
    }
}

fn client_thread(config: &LoadgenConfig, t: u64, quota: u64, owned: &[&str]) -> ThreadTally {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let sampler = config.hosts.map(|n| Zipf::new(n, config.zipf));
    let mut jars: HashMap<String, Vec<String>> = HashMap::new();
    let connections = config.connections.max(1);
    let mut tally = ThreadTally {
        samples: Vec::with_capacity(quota as usize),
        status_2xx: 0,
        status_4xx: 0,
        status_5xx: 0,
        transport_errors: 0,
        useful: 0,
        noise: 0,
        deferred: 0,
        retries: 0,
        reconnects: 0,
        status_retries: 0,
        marks: Vec::new(),
        conn_requests: vec![0; connections],
    };

    if connections > 1 {
        drive_connections(config, quota, &sampler, owned, &mut rng, &mut jars, &mut tally);
        return tally;
    }

    let mut client = Client::with_policy(&config.host, config.port, config.retries, config.backoff);
    for _ in 0..quota {
        let (method, target, body) = draw_request(&sampler, owned, &mut rng, &jars);
        let sent = Instant::now();
        match client.request(method, &target, body.as_bytes()) {
            Ok(response) => {
                tally.samples.push(sent.elapsed().as_micros() as u64);
                tally.conn_requests[0] += 1;
                match response.status {
                    200..=299 => tally.status_2xx += 1,
                    500..=599 => tally.status_5xx += 1,
                    _ => tally.status_4xx += 1,
                }
                if response.status == 200 {
                    observe_verdicts(&response, target.as_str(), &mut tally, &mut jars);
                }
            }
            Err(_) => tally.transport_errors += 1,
        }
    }
    tally.retries = client.retries;
    tally.reconnects = client.reconnects;
    tally.status_retries = client.status_retries;
    tally
}

/// Multi-connection closed loop: each round writes one request on every
/// connection, then reads every response — at most one outstanding
/// request per connection, `connections` in flight per thread. Transport
/// failures abandon the connection (a fresh one connects next round)
/// without re-sending: the batched loop never risks double-applying a
/// training step.
fn drive_connections(
    config: &LoadgenConfig,
    quota: u64,
    sampler: &Option<Zipf>,
    owned: &[&str],
    rng: &mut StdRng,
    jars: &mut HashMap<String, Vec<String>>,
    tally: &mut ThreadTally,
) {
    let connections = config.connections.max(1);
    let mut conns: Vec<Option<HttpConn<TcpStream>>> = (0..connections).map(|_| None).collect();
    let host_header = format!("{}:{}", config.host, config.port);
    let mut wire: Vec<u8> = Vec::with_capacity(1024);
    let mut remaining = quota;
    while remaining > 0 {
        let batch = remaining.min(connections as u64) as usize;
        let requests: Vec<(&str, String, String)> =
            (0..batch).map(|_| draw_request(sampler, owned, rng, jars)).collect();
        let mut sent_at: Vec<Option<Instant>> = vec![None; batch];
        for (c, (method, target, body)) in requests.iter().enumerate() {
            if conns[c].is_none() {
                match connect_conn(&config.host, config.port) {
                    Ok(conn) => conns[c] = Some(conn),
                    Err(_) => {
                        tally.transport_errors += 1;
                        tally.reconnects += 1;
                        continue;
                    }
                }
            }
            let conn = conns[c].as_mut().expect("connected above");
            wire.clear();
            append_request(&mut wire, method, target, &host_header, body.as_bytes());
            match conn.stream_mut().write_all(&wire) {
                Ok(()) => sent_at[c] = Some(Instant::now()),
                Err(_) => {
                    conns[c] = None;
                    tally.transport_errors += 1;
                    tally.reconnects += 1;
                }
            }
        }
        for c in 0..batch {
            let Some(sent) = sent_at[c] else { continue };
            let Some(conn) = conns[c].as_mut() else { continue };
            match conn.read_response() {
                Ok(response) => {
                    tally.samples.push(sent.elapsed().as_micros() as u64);
                    tally.conn_requests[c] += 1;
                    match response.status {
                        200..=299 => tally.status_2xx += 1,
                        500..=599 => tally.status_5xx += 1,
                        _ => tally.status_4xx += 1,
                    }
                    let close = response
                        .headers
                        .get("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    if response.status == 200 {
                        observe_verdicts(&response, requests[c].1.as_str(), tally, jars);
                    }
                    if close {
                        conns[c] = None;
                    }
                }
                Err(_) => {
                    conns[c] = None;
                    tally.transport_errors += 1;
                    tally.reconnects += 1;
                }
            }
        }
        remaining -= batch as u64;
    }
}

fn connect_conn(host: &str, port: u16) -> std::io::Result<HttpConn<TcpStream>> {
    let stream = TcpStream::connect((host, port))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    Ok(HttpConn::new(stream, Limits::default()))
}

/// Updates the client-side verdict tally and cookie jars from a response.
fn observe_verdicts(
    response: &HttpResponse,
    target: &str,
    tally: &mut ThreadTally,
    jars: &mut HashMap<String, Vec<String>>,
) {
    // Borrow the body: the tally runs once per response, so a lossy
    // copy here would be the client's single biggest allocation.
    let Ok(body) = std::str::from_utf8(&response.body) else { return };
    let Ok(json) = Json::parse(body) else { return };
    if target == "/v1/visit" {
        if let Some(record) = json.get("record").filter(|r| **r != Json::Null) {
            match record
                .get("decision")
                .and_then(|d| d.get("cookies_caused_difference"))
                .and_then(Json::as_bool)
            {
                Some(true) => tally.useful += 1,
                Some(false) => tally.noise += 1,
                None => {}
            }
        }
        tally.deferred += u64::from(json.get("inconclusive").and_then(Json::as_str).is_some());
        if let (Some(host), Some(marked_now)) = (
            json.get("host").and_then(Json::as_str),
            json.get("marked_now").and_then(Json::as_array),
        ) {
            tally
                .marks
                .extend(marked_now.iter().filter_map(Json::as_str).map(|n| format!("{host} {n}")));
        }
        if let (Some(host), Some(set_cookies)) = (
            json.get("host").and_then(Json::as_str),
            json.get("set_cookies").and_then(Json::as_array),
        ) {
            let jar = jars.entry(host.to_string()).or_default();
            for cookie in set_cookies.iter().filter_map(Json::as_str) {
                if !jar.iter().any(|c| c == cookie) {
                    jar.push(cookie.to_string());
                }
            }
        }
    } else if target == "/v1/classify" {
        match json.get("cookies_caused_difference").and_then(Json::as_bool) {
            Some(true) => tally.useful += 1,
            Some(false) => tally.noise += 1,
            None => {}
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank: the smallest value with at least q of the mass below it.
    let rank = (sorted.len() as f64 * q).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, ServeConfig};

    #[test]
    fn percentiles_are_exact() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 0.50), 50);
        assert_eq!(percentile(&samples, 0.95), 95);
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[42], 0.99), 42);
    }

    #[test]
    fn zipf_host_sampling_is_pinned_for_a_fixed_seed() {
        // Mirrors client_thread's per-thread rng derivation for thread 0 so
        // the sampled host sequence is exactly what a run would visit.
        let config = LoadgenConfig {
            seed: 7,
            hosts: Some(1_000_000),
            zipf: 1.1,
            ..LoadgenConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(config.seed ^ 1u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let sampler = config.hosts.map(|n| Zipf::new(n, config.zipf));
        let drawn: Vec<String> = (0..8).map(|_| pick_host(&sampler, &[], &mut rng)).collect();
        assert_eq!(
            drawn,
            [
                "health-u79.example",
                "arts-u0.example",
                "computers-u212.example",
                "sports-u119.example",
                "kids-u6.example",
                "regional-u100.example",
                "kids-u111.example",
                "science-u11.example",
            ]
        );
        // The sampled distribution must stay head-heavy: rank 1 gets ~12.6%
        // of the mass at s=1.1 over a million hosts, and ranks beyond 1000
        // still collect a meaningful tail share.
        let zipf = sampler.unwrap();
        let mut rank1 = 0u64;
        let mut over1000 = 0u64;
        for _ in 0..10_000 {
            let rank = zipf.sample(&mut rng);
            assert!((1..=1_000_000).contains(&rank));
            if rank == 1 {
                rank1 += 1;
            }
            if rank > 1000 {
                over1000 += 1;
            }
        }
        assert_eq!((rank1, over1000), (1259, 3084), "distribution pinned for seed 7");
    }

    #[test]
    fn small_run_against_live_server() {
        let server = start(ServeConfig { seed: 7, workers: 2, ..ServeConfig::default() }).unwrap();
        let report = run(&LoadgenConfig {
            port: server.port(),
            threads: 2,
            requests: 200,
            seed: 7,
            ..LoadgenConfig::default()
        })
        .unwrap();
        assert_eq!(report.requests, 200);
        assert_eq!(report.status_5xx, 0);
        assert_eq!(report.transport_errors, 0);
        assert_eq!(report.status_4xx, 0, "standard mix never 4xxes");
        assert!(
            report.counters_match,
            "client tally {}/{} vs server {}/{}",
            report.client_useful, report.client_noise, report.server_useful, report.server_noise
        );
        assert!(report.p50_micros <= report.p95_micros);
        assert!(report.p95_micros <= report.p99_micros);
        assert_eq!(
            report.detection_count,
            report.client_useful + report.client_noise,
            "one detection timing per decision"
        );
        assert!(report.detection_p50_micros <= report.detection_p99_micros);
        assert!(report.cache_misses > 0, "first sight of each body is a miss");
        assert!(report.cache_hits > 0, "the mix replays bodies, so some must hit");
        // Fault-free run: no deferrals, no server-side hidden-fetch
        // retries, and every probe's hidden fetch succeeded.
        assert_eq!(report.deferred_probes, 0);
        assert_eq!(report.server_retry_total, 0);
        // Every decided visit probe had an ok hidden fetch; the verdict
        // tally is strictly larger because classify calls also count.
        assert!(report.hidden_fetch_ok > 0);
        assert!(report.hidden_fetch_ok <= report.client_useful + report.client_noise);
        assert!(report.marks.windows(2).all(|w| w[0] < w[1]), "marks sorted and deduplicated");
        assert!(report.metrics_scraped);
        assert_eq!(report.server_wal_records, 0, "in-memory server journals nothing");
        assert_eq!(report.server_wal_faults, 0);
        // Steady single-node run: nothing 503ed, and every acked mark is
        // present in the server's final dump.
        assert_eq!(report.retried_requests, 0);
        assert_eq!(report.lost_acks, 0, "an acked mark may never go missing");
        assert_eq!(report.marks_verified, report.marks.len() as u64);
        let json = report.to_json().to_compact();
        assert!(json.contains("\"counters_match\":true"));
        assert!(json.contains("\"deferred_probes\":0"));
        assert!(json.contains("\"metrics_scraped\":true"));
        assert!(json.contains("\"lost_acks\":0"));
    }

    #[test]
    fn client_retries_503_responses_within_budget() {
        use crate::http::write_response;
        // A hand-rolled backend that 503s twice, then answers 200 — the
        // shape of a router riding out a promotion window.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut served = 0u32;
            loop {
                let mut conn = HttpConn::new(stream.try_clone().unwrap(), Limits::default());
                let Ok(request) = conn.read_request() else { break };
                served += 1;
                let (status, reason, body): (u16, &str, &[u8]) = if served <= 2 {
                    (503, "Service Unavailable", b"{\"error\":\"not primary\"}")
                } else {
                    (200, "OK", b"{\"ok\":true}")
                };
                write_response(&mut stream, status, reason, "application/json", body, true)
                    .unwrap();
                if !request.keep_alive() || served >= 3 {
                    break;
                }
            }
        });
        let mut client = Client::with_policy("127.0.0.1", port, 3, Duration::from_millis(1));
        let response = client.request("POST", "/v1/visit", b"{}").unwrap();
        assert_eq!(response.status, 200, "the budget outlasts the blackout");
        assert_eq!(client.status_retries, 2);
        assert_eq!(client.retries, 2);
        server.join().unwrap();

        // Budget exhausted: the last 503 surfaces instead of an error.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for _ in 0..2 {
                let mut conn = HttpConn::new(stream.try_clone().unwrap(), Limits::default());
                if conn.read_request().is_err() {
                    break;
                }
                write_response(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "application/json",
                    b"{}",
                    true,
                )
                .unwrap();
            }
        });
        let mut client = Client::with_policy("127.0.0.1", port, 1, Duration::from_millis(1));
        let response = client.request("POST", "/v1/visit", b"{}").unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(client.status_retries, 1);
        server.join().unwrap();
    }

    #[test]
    fn multi_connection_run_reports_per_connection_counts() {
        let server = start(ServeConfig { seed: 7, workers: 2, ..ServeConfig::default() }).unwrap();
        let report = run(&LoadgenConfig {
            port: server.port(),
            threads: 2,
            connections: 4,
            requests: 200,
            seed: 7,
            ..LoadgenConfig::default()
        })
        .unwrap();
        assert_eq!(report.requests, 200);
        assert_eq!(report.status_5xx, 0);
        assert_eq!(report.transport_errors, 0);
        assert!(report.counters_match, "batched rounds still tally every verdict");
        assert_eq!(report.connections, 4);
        assert_eq!(report.per_connection_requests.len(), 8, "2 threads x 4 connections");
        assert_eq!(report.per_connection_requests.iter().sum::<u64>(), 200);
        assert!(
            report.per_connection_requests.iter().all(|&n| n > 0),
            "round-robin batches touch every connection: {:?}",
            report.per_connection_requests
        );
        if cp_runtime::net::Poller::new().is_ok() {
            assert!(report.server_event_loop_wakeups > 0, "native poller counts wakeups");
        }
        let json = report.to_json().to_compact();
        assert!(json.contains("\"connections\":4"));
        assert!(json.contains("\"per_connection_requests\":"));
    }

    #[test]
    fn zipf_run_against_a_uniform_world() {
        let server = start(ServeConfig {
            seed: 7,
            workers: 2,
            world: cp_webworld::WorldKind::Uniform(10_000),
            ..ServeConfig::default()
        })
        .unwrap();
        let report = run(&LoadgenConfig {
            port: server.port(),
            threads: 2,
            requests: 300,
            seed: 7,
            hosts: Some(10_000),
            zipf: 1.1,
            ..LoadgenConfig::default()
        })
        .unwrap();
        assert_eq!(report.requests, 300);
        assert_eq!(report.status_5xx, 0, "derived sites must never error");
        assert_eq!(report.transport_errors, 0);
        assert!(report.status_2xx > 0);
    }

    #[test]
    fn run_survives_a_dead_server() {
        // Bind-then-drop to get a port nothing listens on: every request
        // fails at the transport, and the final scrape fails too — the
        // report must still come back (the crash harness depends on it).
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let report = run(&LoadgenConfig {
            port,
            threads: 2,
            requests: 8,
            seed: 7,
            ..LoadgenConfig::default()
        })
        .unwrap();
        assert_eq!(report.requests, 0);
        assert_eq!(report.transport_errors, 8);
        assert!(!report.metrics_scraped, "no server, no scrape");
        assert!(!report.counters_match);
    }

    #[test]
    fn chaos_run_defers_and_marks_subset_of_oracle() {
        let oracle_server =
            start(ServeConfig { seed: 7, workers: 2, ..ServeConfig::default() }).unwrap();
        let chaos_server = start(ServeConfig {
            seed: 7,
            workers: 2,
            chaos_fault_rate: 0.25,
            ..ServeConfig::default()
        })
        .unwrap();
        let run_against = |port: u16| {
            run(&LoadgenConfig {
                port,
                threads: 2,
                requests: 600,
                seed: 7,
                ..LoadgenConfig::default()
            })
            .unwrap()
        };
        let oracle = run_against(oracle_server.port());
        let chaos = run_against(chaos_server.port());
        assert_eq!(chaos.status_5xx, 0, "faults degrade to deferrals, never 5xx");
        assert_eq!(chaos.transport_errors, 0);
        assert!(chaos.deferred_probes > 0, "25% fault rate must defer some probes");
        assert!(chaos.counters_match, "verdicts only counted for decided probes");
        for mark in &chaos.marks {
            assert!(oracle.marks.contains(mark), "chaos run invented mark {mark}");
        }
    }
}
