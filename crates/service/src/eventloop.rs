//! The readiness-loop serving path: sharded nonblocking event loops.
//!
//! `workers` shard threads each own a [`cp_runtime::net::Poller`], a slice
//! of connections, and a clone of the shared listener, registered
//! `EPOLLEXCLUSIVE` in every shard so the kernel load-balances accepts
//! without a dedicated acceptor thread. Each connection carries a read
//! buffer feeding the incremental request parser and a write buffer
//! holding fully assembled responses (head + body contiguous), flushed
//! with single `write` calls. There are no per-connection threads and no
//! locks on the hot path: a request is read, parsed, routed, recorded,
//! and serialized entirely on its shard.
//!
//! Where no native poller exists ([`Poller::new`] reports `Unsupported`),
//! [`spawn`] fails *before* any thread starts and the caller falls back
//! to the portable acceptor + bounded-queue worker pool in
//! [`server`](crate::server).

use std::io;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::server::{ServeConfig, Shared};

/// Spawns the shard threads, or fails with [`io::ErrorKind::Unsupported`]
/// where no native poller exists so the caller can fall back.
pub(crate) fn spawn(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    config: &ServeConfig,
) -> io::Result<Vec<JoinHandle<()>>> {
    imp::spawn(shared, listener, config)
}

#[cfg(unix)]
mod imp {
    use std::collections::HashMap;
    use std::io::{self, Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    use cp_runtime::net::{PollEvent, Poller};

    use crate::http::{
        append_response, parse_request_buffer, write_response, HttpError, HttpRequest, Limits,
    };
    use crate::metrics::Endpoint;
    use crate::server::{error_json, route, ServeConfig, Shared};

    /// The listener's registration token; connections start at 1.
    const LISTENER_TOKEN: u64 = 0;

    /// Upper bound between housekeeping passes (timeout sweeps, drain
    /// checks): the loop wakes at least this often even when idle.
    const TICK: Duration = Duration::from_millis(100);

    /// Per-`read` chunk size; larger requests just take extra reads.
    const READ_CHUNK: usize = 16 * 1024;

    pub(crate) fn spawn(
        shared: &Arc<Shared>,
        listener: &TcpListener,
        config: &ServeConfig,
    ) -> io::Result<Vec<JoinHandle<()>>> {
        let shards = config.workers.max(1);
        // Probe poller support up front so an unsupported platform falls
        // back before any thread spawns or the listener changes mode.
        let mut pollers = Vec::with_capacity(shards);
        for _ in 0..shards {
            pollers.push(Poller::new()?);
        }
        // Nonblocking applies to the shared file description: every
        // shard's clone inherits it.
        listener.set_nonblocking(true)?;
        // Same admission bound as the worker-pool path: `workers`
        // in-flight connections plus a `queue_capacity` backlog. The
        // count is global so the cap holds regardless of which shard the
        // kernel wakes.
        let max_conns = shards + config.queue_capacity.max(1);
        let conn_count = Arc::new(AtomicUsize::new(0));
        pollers
            .into_iter()
            .map(|poller| {
                let shard = Shard {
                    shared: Arc::clone(shared),
                    listener: listener.try_clone()?,
                    poller,
                    conn_count: Arc::clone(&conn_count),
                    max_conns,
                    read_timeout: config.read_timeout,
                    write_timeout: config.write_timeout,
                    limits: config.limits,
                    conns: HashMap::new(),
                    next_token: LISTENER_TOKEN + 1,
                };
                Ok(std::thread::spawn(move || shard.run()))
            })
            .collect()
    }

    /// One connection owned by a shard.
    struct Conn {
        stream: TcpStream,
        /// Bytes received but not yet parsed into a request.
        inbuf: Vec<u8>,
        /// Assembled responses (head + body) not yet on the wire.
        outbuf: Vec<u8>,
        /// How much of `outbuf` has been written.
        out_pos: usize,
        /// Last byte of progress in either direction; timeout sweeps key
        /// off this.
        last_activity: Instant,
        /// Close (recording `close_cause`) once `outbuf` drains.
        close_after_flush: bool,
        close_cause: &'static str,
        /// Currently registered for write readiness.
        want_write: bool,
    }

    enum Flushed {
        Done,
        Pending,
        Failed,
    }

    struct Shard {
        shared: Arc<Shared>,
        listener: TcpListener,
        poller: Poller,
        conn_count: Arc<AtomicUsize>,
        max_conns: usize,
        read_timeout: Duration,
        write_timeout: Duration,
        limits: Limits,
        conns: HashMap<u64, Conn>,
        next_token: u64,
    }

    impl Shard {
        fn run(mut self) {
            if self.poller.add_exclusive(self.listener.as_raw_fd(), LISTENER_TOKEN).is_err() {
                return; // dead epoll: bail rather than spin
            }
            let mut events: Vec<PollEvent> = Vec::new();
            loop {
                events.clear();
                let timeout = TICK.min(self.read_timeout);
                let _ = self.poller.wait(&mut events, Some(timeout));
                self.shared.metrics.event_loop_wakeups.inc();
                self.shared.metrics.ready_conns.set(events.len() as i64);
                for ev in events.iter().copied() {
                    if ev.token == LISTENER_TOKEN {
                        self.accept_burst();
                    } else {
                        self.drive(ev);
                    }
                }
                self.sweep_timeouts();
                if self.shared.shutting_down.load(Ordering::SeqCst) {
                    self.drain();
                    if self.conns.is_empty() {
                        break;
                    }
                }
            }
        }

        /// Accepts until the backlog is empty (the listener is
        /// level-triggered, so anything left re-fires the next wait).
        fn accept_burst(&mut self) {
            loop {
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                };
                if self.shared.shutting_down.load(Ordering::SeqCst) {
                    continue; // the shutdown wake-up self-connect, or a late arrival
                }
                self.shared.metrics.connections_total.inc();
                if self.conn_count.fetch_add(1, Ordering::AcqRel) >= self.max_conns {
                    self.conn_count.fetch_sub(1, Ordering::AcqRel);
                    self.shed(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    self.conn_count.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                let token = self.next_token;
                self.next_token += 1;
                if self.poller.add(stream.as_raw_fd(), token, false).is_err() {
                    self.conn_count.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                self.conns.insert(
                    token,
                    Conn {
                        stream,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        out_pos: 0,
                        last_activity: Instant::now(),
                        close_after_flush: false,
                        close_cause: "client",
                        want_write: false,
                    },
                );
            }
        }

        /// Over-capacity admission: answer `503` inline and drop. The
        /// just-accepted socket is still blocking, so the write needs no
        /// registration — it either lands in the socket buffer or the
        /// write timeout gives up.
        fn shed(&self, mut stream: TcpStream) {
            self.shared.metrics.rejected_total.inc();
            self.shared.metrics.record_conn_closed("shed");
            let _ = stream.set_write_timeout(Some(self.write_timeout));
            let body = error_json("server overloaded");
            let _ = write_response(
                &mut stream,
                503,
                "Service Unavailable",
                "application/json",
                &body,
                false,
            );
        }

        /// One readiness event on a connection: read + serve, then flush.
        fn drive(&mut self, ev: PollEvent) {
            let Some(conn) = self.conns.get_mut(&ev.token) else { return };
            if ev.readable && !conn.close_after_flush {
                if let Some(cause) = fill_and_serve(&self.shared, &self.limits, conn) {
                    self.close(ev.token, cause);
                    return;
                }
            }
            self.flush(ev.token);
        }

        /// Writes as much of `outbuf` as the socket takes, adjusting the
        /// write-interest registration around partial flushes.
        fn flush(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let result = flush_conn(conn);
            let fd = conn.stream.as_raw_fd();
            let close_after = conn.close_after_flush;
            let cause = conn.close_cause;
            let want_write = conn.want_write;
            match result {
                Flushed::Failed => self.close(token, "write_failed"),
                Flushed::Done if close_after => self.close(token, cause),
                Flushed::Done => {
                    if want_write {
                        let _ = self.poller.modify(fd, token, false);
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.want_write = false;
                        }
                    }
                }
                Flushed::Pending => {
                    if !want_write {
                        let _ = self.poller.modify(fd, token, true);
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.want_write = true;
                        }
                    }
                }
            }
        }

        fn close(&mut self, token: u64, cause: &str) {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.remove(conn.stream.as_raw_fd());
                self.conn_count.fetch_sub(1, Ordering::AcqRel);
                self.shared.metrics.record_conn_closed(cause);
            }
        }

        /// Closes connections that stalled: readers idle past the read
        /// timeout get nothing (the slowloris contract — no response
        /// bytes, just a close), writers stuck past the write timeout are
        /// abandoned.
        fn sweep_timeouts(&mut self) {
            let now = Instant::now();
            let mut expired: Vec<(u64, &'static str)> = Vec::new();
            for (token, conn) in &self.conns {
                let idle = now.duration_since(conn.last_activity);
                if conn.out_pos < conn.outbuf.len() {
                    if idle > self.write_timeout {
                        expired.push((*token, "write_failed"));
                    }
                } else if idle > self.read_timeout {
                    expired.push((*token, "timeout"));
                }
            }
            for (token, cause) in expired {
                self.close(token, cause);
            }
        }

        /// Drain pass once shutdown begins: idle connections close now;
        /// anything mid-flush finishes first (its close is already
        /// scheduled by the `Connection: close` the response carried).
        fn drain(&mut self) {
            let idle: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, conn)| conn.outbuf.is_empty())
                .map(|(token, _)| *token)
                .collect();
            for token in idle {
                self.close(token, "drain");
            }
        }
    }

    /// Reads whatever the socket has, serves every complete request in
    /// the buffer (pipelining included), and returns a close cause when
    /// the connection is already finished (EOF or transport error) —
    /// `None` means keep it registered.
    fn fill_and_serve(shared: &Shared, limits: &Limits, conn: &mut Conn) -> Option<&'static str> {
        let mut chunk = [0u8; READ_CHUNK];
        let mut eof = false;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if n < chunk.len() {
                        break; // short read: the socket is drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Some("error"),
            }
        }
        while !conn.close_after_flush {
            match parse_request_buffer(&conn.inbuf, limits) {
                Ok(Some((request, consumed))) => {
                    conn.inbuf.drain(..consumed);
                    serve_request(shared, conn, &request);
                }
                Ok(None) => break,
                Err(HttpError::BodyTooLarge) => {
                    error_response(shared, conn, 413, "Payload Too Large", "body too large");
                }
                Err(err) => {
                    // Malformed / HeadTooLarge / BadVersion → 400, then
                    // close: framing may be lost.
                    let msg = err.to_string();
                    error_response(shared, conn, 400, "Bad Request", &msg);
                }
            }
        }
        if eof {
            if !conn.close_after_flush {
                conn.close_after_flush = true;
                // EOF mid-request is a transport fault; a clean hangup
                // between requests is just the client moving on.
                conn.close_cause = if conn.inbuf.is_empty() { "client" } else { "error" };
            }
            if conn.outbuf[conn.out_pos..].is_empty() {
                return Some(conn.close_cause); // nothing to flush: close now
            }
        }
        None
    }

    /// Routes one parsed request and appends the response — head and body
    /// assembled contiguously so the flush is a single `write`.
    fn serve_request(shared: &Shared, conn: &mut Conn, request: &HttpRequest) {
        let started = Instant::now();
        let (endpoint, status, reason, content_type, body) = route(shared, request);
        // Re-read after routing: `/v1/shutdown` flips the flag and its own
        // response must already carry `Connection: close`.
        let draining = shared.shutting_down.load(Ordering::SeqCst);
        let keep_alive = request.keep_alive() && !draining && status < 500;
        // Record BEFORE the bytes leave: anyone who has seen the response
        // (e.g. a load generator cross-checking /metrics after its last
        // request) must also see its counters.
        shared.metrics.record(endpoint, status, started.elapsed().as_micros() as u64);
        append_response(&mut conn.outbuf, status, reason, content_type, &body, keep_alive);
        if !keep_alive {
            conn.close_after_flush = true;
            conn.close_cause = if !request.keep_alive() {
                "client" // HTTP/1.0 or an explicit `Connection: close`
            } else if draining {
                "drain"
            } else {
                "error" // 5xx: close so the peer re-syncs on a fresh conn
            };
        }
    }

    fn error_response(shared: &Shared, conn: &mut Conn, status: u16, reason: &str, msg: &str) {
        shared.metrics.record(Endpoint::Other, status, 0);
        append_response(
            &mut conn.outbuf,
            status,
            reason,
            "application/json",
            &error_json(msg),
            false,
        );
        conn.close_after_flush = true;
        conn.close_cause = "error";
    }

    fn flush_conn(conn: &mut Conn) -> Flushed {
        while conn.out_pos < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
                Ok(0) => return Flushed::Failed,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Flushed::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Flushed::Failed,
            }
        }
        conn.outbuf.clear();
        conn.out_pos = 0;
        Flushed::Done
    }
}

#[cfg(not(unix))]
mod imp {
    use std::io;
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::thread::JoinHandle;

    use crate::server::{ServeConfig, Shared};

    pub(crate) fn spawn(
        _shared: &Arc<Shared>,
        _listener: &TcpListener,
        _config: &ServeConfig,
    ) -> io::Result<Vec<JoinHandle<()>>> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "no native poller on this platform"))
    }
}
