//! A small, strict HTTP/1.1 wire layer over `std::io` streams.
//!
//! One buffered [`HttpConn`] wraps a connection and yields parsed
//! [`HttpRequest`]s (server side) or [`HttpResponse`]s (client side). The
//! parser is incremental — it tolerates arbitrary read fragmentation and
//! pipelined messages — and bounded: head and body sizes are capped by
//! [`Limits`], and every malformed input maps to a typed [`HttpError`]
//! rather than a panic.
//!
//! Supported surface, deliberately 2007-sized like the rest of the repo:
//! `Content-Length` bodies only (no chunked transfer coding), obsolete
//! header line folding accepted on input, `Connection: keep-alive/close`
//! semantics for HTTP/1.1 and 1.0.

use std::io::{Read, Write};

use cp_net::HeaderMap;

/// Size caps enforced while reading a message.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum body bytes (`Content-Length` beyond this → [`HttpError::BodyTooLarge`]).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_head_bytes: 16 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (origin form, e.g. `/v1/classify`).
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Request headers (names lower-cased by [`HeaderMap`]).
    pub headers: HeaderMap,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Whether the connection should stay open after this request.
    pub fn keep_alive(&self) -> bool {
        match self.headers.get("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// A parsed response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response headers.
    pub headers: HeaderMap,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 text (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why reading a message failed.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before the first byte of a message — the peer closed an
    /// idle keep-alive connection. Not an error in any meaningful sense.
    Closed,
    /// The message violated the grammar (→ `400 Bad Request`).
    Malformed(&'static str),
    /// Head exceeded [`Limits::max_head_bytes`] (→ `431`-ish; served as 400).
    HeadTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`]
    /// (→ `413 Payload Too Large`).
    BodyTooLarge,
    /// An HTTP version other than 1.0/1.1 (→ `505`; served as 400).
    BadVersion,
    /// Transport error (timeout, reset). The connection is unusable.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(why) => write!(f, "malformed message: {why}"),
            HttpError::HeadTooLarge => write!(f, "message head too large"),
            HttpError::BodyTooLarge => write!(f, "message body too large"),
            HttpError::BadVersion => write!(f, "unsupported HTTP version"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A buffered HTTP connection (either direction).
///
/// Bytes left over after one message (pipelining) are retained for the
/// next call.
#[derive(Debug)]
pub struct HttpConn<S> {
    stream: S,
    buf: Vec<u8>,
    /// Bytes `buf[..filled]` are valid; `buf[consumed..filled]` unread.
    consumed: usize,
    filled: usize,
    limits: Limits,
}

const CRLF2: &[u8] = b"\r\n\r\n";

impl<S> HttpConn<S> {
    /// Wraps a stream with the given limits.
    pub fn new(stream: S, limits: Limits) -> Self {
        HttpConn { stream, buf: vec![0; 8 * 1024], consumed: 0, filled: 0, limits }
    }

    /// The wrapped stream (for writing responses/requests).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Whether unread bytes are already buffered (a pipelined message).
    pub fn has_buffered(&self) -> bool {
        self.consumed < self.filled
    }
}

impl<S: Read> HttpConn<S> {
    /// Pulls more bytes from the stream; `Ok(0)` means EOF.
    fn fill(&mut self) -> std::io::Result<usize> {
        // Compact or grow so there is always read headroom.
        if self.consumed > 0 && (self.filled == self.buf.len() || self.consumed == self.filled) {
            self.buf.copy_within(self.consumed..self.filled, 0);
            self.filled -= self.consumed;
            self.consumed = 0;
        }
        if self.filled == self.buf.len() {
            self.buf.resize(self.buf.len() * 2, 0);
        }
        let n = self.stream.read(&mut self.buf[self.filled..])?;
        self.filled += n;
        Ok(n)
    }

    /// Reads until the head terminator (`\r\n\r\n`) is buffered; returns
    /// the head's byte length including the terminator.
    fn read_head(&mut self) -> Result<usize, HttpError> {
        let mut scanned = 0usize;
        loop {
            let window = &self.buf[self.consumed..self.filled];
            if let Some(pos) = find(&window[scanned.saturating_sub(3)..], CRLF2) {
                let head_len = scanned.saturating_sub(3) + pos + CRLF2.len();
                if head_len > self.limits.max_head_bytes {
                    return Err(HttpError::HeadTooLarge);
                }
                return Ok(head_len);
            }
            scanned = window.len();
            if scanned > self.limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            match self.fill() {
                Ok(0) if scanned == 0 => return Err(HttpError::Closed),
                Ok(0) => return Err(HttpError::Malformed("eof inside message head")),
                Ok(_) => {}
                Err(e) => {
                    return if scanned == 0 && is_clean_close(&e) {
                        Err(HttpError::Closed)
                    } else {
                        Err(HttpError::Io(e))
                    }
                }
            }
        }
    }

    /// Reads exactly `len` body bytes (already partially buffered or not).
    fn read_body(&mut self, len: usize) -> Result<Vec<u8>, HttpError> {
        while self.filled - self.consumed < len {
            match self.fill() {
                Ok(0) => return Err(HttpError::Malformed("eof inside message body")),
                Ok(_) => {}
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        let body = self.buf[self.consumed..self.consumed + len].to_vec();
        self.consumed += len;
        Ok(body)
    }

    /// Reads one request (server side).
    pub fn read_request(&mut self) -> Result<HttpRequest, HttpError> {
        let head_len = self.read_head()?;
        let head = &self.buf[self.consumed..self.consumed + head_len - CRLF2.len()];
        let head = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
        let (method, target, http11, headers) = parse_request_head(head)?;
        self.consumed += head_len;

        let body = match content_length(&headers)? {
            Some(len) if len > self.limits.max_body_bytes => return Err(HttpError::BodyTooLarge),
            Some(len) => self.read_body(len)?,
            None if headers.contains("transfer-encoding") => {
                return Err(HttpError::Malformed("transfer codings not supported"))
            }
            None => Vec::new(),
        };
        Ok(HttpRequest { method, target, http11, headers, body })
    }

    /// Reads one response (client side).
    pub fn read_response(&mut self) -> Result<HttpResponse, HttpError> {
        let head_len = self.read_head()?;
        let head = &self.buf[self.consumed..self.consumed + head_len - CRLF2.len()];
        let head = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
        let mut lines = unfold_lines(head)?;
        let status_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
        let mut parts = status_line.splitn(3, ' ');
        match parts.next() {
            Some("HTTP/1.1" | "HTTP/1.0") => {}
            _ => return Err(HttpError::BadVersion),
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(HttpError::Malformed("bad status code"))?;
        let headers = parse_headers(lines)?;
        self.consumed += head_len;
        let body = match content_length(&headers)? {
            Some(len) if len > self.limits.max_body_bytes => return Err(HttpError::BodyTooLarge),
            Some(len) => self.read_body(len)?,
            None => Vec::new(),
        };
        Ok(HttpResponse { status, headers, body })
    }
}

/// Parses a request head (request line + headers, no trailing CRLFCRLF)
/// into `(method, target, http11, headers)`.
fn parse_request_head(head: &str) -> Result<(String, String, bool, HeaderMap), HttpError> {
    let mut lines = unfold_lines(head)?;
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(HttpError::Malformed("invalid method token"));
    }
    if target.is_empty() || target.contains(char::is_whitespace) {
        return Err(HttpError::Malformed("invalid request target"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadVersion),
    };
    let method = method.to_string();
    let target = target.to_string();
    let headers = parse_headers(lines)?;
    Ok((method, target, http11, headers))
}

/// Tries to parse one complete request from the front of `buf` without
/// doing any I/O — the entry point for nonblocking event loops that own
/// their read buffers.
///
/// Returns `Ok(None)` when more bytes are needed, and
/// `Ok(Some((request, consumed)))` when a full message (head + declared
/// body) is buffered; the caller drains `consumed` bytes. Limit
/// violations are detected as early as possible: an unterminated head
/// longer than `max_head_bytes` and a declared `Content-Length` over
/// `max_body_bytes` both fail before the rest of the message arrives.
pub fn parse_request_buffer(
    buf: &[u8],
    limits: &Limits,
) -> Result<Option<(HttpRequest, usize)>, HttpError> {
    let head_len = match find(buf, CRLF2) {
        Some(pos) => pos + CRLF2.len(),
        None if buf.len() > limits.max_head_bytes => return Err(HttpError::HeadTooLarge),
        None => return Ok(None),
    };
    if head_len > limits.max_head_bytes {
        return Err(HttpError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len - CRLF2.len()])
        .map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let (method, target, http11, headers) = parse_request_head(head)?;
    let body_len = match content_length(&headers)? {
        Some(len) if len > limits.max_body_bytes => return Err(HttpError::BodyTooLarge),
        Some(len) => len,
        None if headers.contains("transfer-encoding") => {
            return Err(HttpError::Malformed("transfer codings not supported"))
        }
        None => 0,
    };
    if buf.len() < head_len + body_len {
        return Ok(None);
    }
    let body = buf[head_len..head_len + body_len].to_vec();
    Ok(Some((HttpRequest { method, target, http11, headers, body }, head_len + body_len)))
}

/// Serializes a response message onto `out` — head and body in one
/// contiguous buffer, so the caller can flush it in a single write.
/// `Content-Length` and `Connection` are always emitted.
pub fn append_response(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.reserve(head.len() + content_type.len() + 18 + body.len());
    out.extend_from_slice(head.as_bytes());
    if !body.is_empty() || !content_type.is_empty() {
        out.extend_from_slice(b"Content-Type: ");
        out.extend_from_slice(content_type.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

/// Writes a response message as one pre-assembled buffer — status line,
/// headers, and body land in a single `write_all` (one syscall on an
/// unwrapped socket).
pub fn write_response(
    out: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut wire = Vec::with_capacity(128 + body.len());
    append_response(&mut wire, status, reason, content_type, body, keep_alive);
    out.write_all(&wire)?;
    out.flush()
}

/// Writes a request message (client side) as one pre-assembled buffer. A
/// `Content-Length` is emitted whenever a body is present.
pub fn write_request(
    out: &mut impl Write,
    method: &str,
    target: &str,
    host: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut wire = Vec::new();
    append_request(&mut wire, method, target, host, body);
    out.write_all(&wire)?;
    out.flush()
}

/// Appends a request message — request line, headers, body — to `out`.
/// The multi-connection loadgen clears and reuses one buffer across
/// requests, so the steady-state send path allocates nothing.
pub fn append_request(out: &mut Vec<u8>, method: &str, target: &str, host: &str, body: &[u8]) {
    out.reserve(method.len() + target.len() + host.len() + body.len() + 96);
    out.extend_from_slice(method.as_bytes());
    out.push(b' ');
    out.extend_from_slice(target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\nHost: ");
    out.extend_from_slice(host.as_bytes());
    out.extend_from_slice(b"\r\n");
    if !body.is_empty() {
        out.extend_from_slice(b"Content-Length: ");
        let _ = write!(out, "{}", body.len());
        out.extend_from_slice(b"\r\nContent-Type: application/json\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

/// Splits a message head into logical lines, unfolding obsolete line
/// folding (continuation lines starting with SP/HTAB join their
/// predecessor).
fn unfold_lines(head: &str) -> Result<impl Iterator<Item = String>, HttpError> {
    let mut logical: Vec<String> = Vec::new();
    for raw in head.split("\r\n") {
        if raw.starts_with(' ') || raw.starts_with('\t') {
            match logical.last_mut() {
                // obs-fold: the CRLF + leading whitespace collapses to one SP.
                Some(prev) if !prev.is_empty() => {
                    prev.push(' ');
                    prev.push_str(raw.trim_start_matches([' ', '\t']));
                }
                _ => return Err(HttpError::Malformed("continuation before first header")),
            }
        } else {
            logical.push(raw.to_string());
        }
    }
    Ok(logical.into_iter())
}

fn parse_headers(lines: impl Iterator<Item = String>) -> Result<HeaderMap, HttpError> {
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::Malformed("invalid header name"));
        }
        headers.append(name, value.trim().to_string());
    }
    Ok(headers)
}

fn content_length(headers: &HeaderMap) -> Result<Option<usize>, HttpError> {
    let all = headers.get_all("content-length");
    match all.as_slice() {
        [] => Ok(None),
        [one] => one
            .parse::<usize>()
            .map(Some)
            .map_err(|_| HttpError::Malformed("invalid content-length")),
        _ => Err(HttpError::Malformed("duplicate content-length")),
    }
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

fn is_clean_close(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
    )
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn conn(bytes: &[u8]) -> HttpConn<Cursor<Vec<u8>>> {
        HttpConn::new(Cursor::new(bytes.to_vec()), Limits::default())
    }

    #[test]
    fn parses_simple_get() {
        let mut c = conn(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = c.read_request().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.http11);
        assert!(req.keep_alive());
        assert_eq!(req.headers.get("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(matches!(c.read_request(), Err(HttpError::Closed)));
    }

    #[test]
    fn parses_post_with_body() {
        let mut c = conn(b"POST /v1/visit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        let req = c.read_request().unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn pipelined_requests() {
        let mut c = conn(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nxyGET /c HTTP/1.1\r\n\r\n",
        );
        assert_eq!(c.read_request().unwrap().target, "/a");
        let b = c.read_request().unwrap();
        assert_eq!((b.target.as_str(), b.body.as_slice()), ("/b", b"xy".as_slice()));
        assert_eq!(c.read_request().unwrap().target, "/c");
        assert!(matches!(c.read_request(), Err(HttpError::Closed)));
    }

    #[test]
    fn header_folding_unfolds() {
        let mut c =
            conn(b"GET / HTTP/1.1\r\nX-Long: part one\r\n\tpart two\r\n  part three\r\n\r\n");
        let req = c.read_request().unwrap();
        assert_eq!(req.headers.get("x-long"), Some("part one part two part three"));
    }

    #[test]
    fn keep_alive_semantics() {
        let mut c = conn(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!c.read_request().unwrap().keep_alive(), "1.0 defaults to close");
        let mut c = conn(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(c.read_request().unwrap().keep_alive());
        let mut c = conn(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!c.read_request().unwrap().keep_alive());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for (bytes, why) in [
            (b"GARBAGE\r\n\r\n".as_slice(), "one-token request line"),
            (b"GET /\r\n\r\n".as_slice(), "missing version"),
            (b"GET / HTTP/2.0\r\n\r\n".as_slice(), "bad version"),
            (b"GET / HTTP/1.1 extra\r\n\r\n".as_slice(), "extra token"),
            (b"G@T / HTTP/1.1\r\n\r\n".as_slice(), "bad method"),
            (b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n".as_slice(), "colonless header"),
            (b"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n".as_slice(), "space in name"),
            (b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n".as_slice(), "bad CL"),
            (
                b"GET / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nab".as_slice(),
                "dup CL",
            ),
            (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".as_slice(), "chunked"),
            (b" GET / HTTP/1.1\r\n\r\n".as_slice(), "leading fold"),
            (b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".as_slice(), "truncated body"),
        ] {
            let got = conn(bytes).read_request();
            assert!(
                matches!(got, Err(HttpError::Malformed(_) | HttpError::BadVersion)),
                "{why}: {got:?}"
            );
        }
    }

    #[test]
    fn oversize_body_and_head() {
        let limits = Limits { max_head_bytes: 64, max_body_bytes: 10 };
        let mut c = HttpConn::new(
            Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n0123456789X".to_vec()),
            limits,
        );
        assert!(matches!(c.read_request(), Err(HttpError::BodyTooLarge)));
        let big = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(200));
        let mut c = HttpConn::new(Cursor::new(big.into_bytes()), limits);
        assert!(matches!(c.read_request(), Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "OK", "application/json", b"{\"ok\":true}", true).unwrap();
        let mut c = conn(&wire);
        let resp = c.read_response().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_string(), "{\"ok\":true}");
        assert_eq!(resp.headers.get("connection"), Some("keep-alive"));
    }

    #[test]
    fn request_writer_round_trip() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/v1/visit", "127.0.0.1", b"{}").unwrap();
        let req = conn(&wire).read_request().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/visit");
        assert_eq!(req.headers.get("host"), Some("127.0.0.1"));
        assert_eq!(req.body, b"{}");
    }

    /// A sink that counts how many `write` calls reach the transport —
    /// the stand-in for a socket when pinning syscall counts.
    #[derive(Default)]
    struct CountingStream {
        data: Vec<u8>,
        writes: usize,
        flushes: usize,
    }

    impl Write for CountingStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.writes += 1;
            self.data.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn response_head_and_body_land_in_one_write() {
        let mut sink = CountingStream::default();
        write_response(&mut sink, 200, "OK", "application/json", b"{\"n\":42}", true).unwrap();
        assert_eq!(sink.writes, 1, "head+body must be pre-assembled into a single write");
        let resp = conn(&sink.data).read_response().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_string(), "{\"n\":42}");

        let mut sink = CountingStream::default();
        write_request(&mut sink, "POST", "/v1/classify", "h", b"{}").unwrap();
        assert_eq!(sink.writes, 1, "request writer gets the same single-write treatment");
    }

    #[test]
    fn append_response_matches_write_response_bytes() {
        let mut wire = Vec::new();
        write_response(&mut wire, 404, "Not Found", "text/plain", b"nope", false).unwrap();
        let mut appended = Vec::new();
        append_response(&mut appended, 404, "Not Found", "text/plain", b"nope", false);
        assert_eq!(wire, appended);
    }

    #[test]
    fn buffer_parser_handles_incremental_arrival() {
        let wire = b"POST /v1/visit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..wire.len() {
            let got = parse_request_buffer(&wire[..cut], &Limits::default()).unwrap();
            assert!(got.is_none(), "prefix of {cut} bytes must ask for more");
        }
        let (req, consumed) = parse_request_buffer(wire, &Limits::default()).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn buffer_parser_leaves_pipelined_tail_unconsumed() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, consumed) = parse_request_buffer(wire, &Limits::default()).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        let (second, rest) =
            parse_request_buffer(&wire[consumed..], &Limits::default()).unwrap().unwrap();
        assert_eq!(second.target, "/b");
        assert_eq!(consumed + rest, wire.len());
    }

    #[test]
    fn buffer_parser_rejects_limits_early() {
        let limits = Limits { max_head_bytes: 64, max_body_bytes: 8 };
        // Unterminated head growing past the cap fails before CRLFCRLF.
        let garbage = vec![b'a'; 65];
        assert!(matches!(parse_request_buffer(&garbage, &limits), Err(HttpError::HeadTooLarge)));
        // Declared oversize body fails without waiting for the payload.
        let head = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert!(matches!(parse_request_buffer(head, &limits), Err(HttpError::BodyTooLarge)));
        // Malformed heads fail as soon as the head is complete.
        let bad = b"NOT-HTTP\r\n\r\n";
        assert!(matches!(
            parse_request_buffer(bad, &Limits::default()),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn buffer_parser_agrees_with_streaming_parser() {
        let mut rng = StdRng::seed_from_u64(0x1DEA);
        for _ in 0..200 {
            let (expected, wire) = random_request(&mut rng);
            let (got, consumed) = parse_request_buffer(&wire, &Limits::default()).unwrap().unwrap();
            assert_eq!(got, expected);
            assert_eq!(consumed, wire.len());
        }
    }

    /// A reader that hands out the wire bytes in caller-chosen fragments,
    /// exercising every partial-read path in the parser.
    struct Fragmented {
        data: Vec<u8>,
        cuts: Vec<usize>,
        pos: usize,
        next_cut: usize,
    }

    impl Read for Fragmented {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let chunk_end = self
                .cuts
                .get(self.next_cut)
                .copied()
                .unwrap_or(self.data.len())
                .clamp(self.pos + 1, self.data.len());
            self.next_cut += 1;
            let n = (chunk_end - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    // ---- randomized property tests (seeded cp-runtime RNG) ----

    use cp_runtime::rng::{Rng, SeedableRng, StdRng};

    fn random_token(rng: &mut StdRng, len: usize) -> String {
        const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
        (0..len).map(|_| ALPHA[rng.gen_range(0..ALPHA.len())] as char).collect()
    }

    /// Builds a random (but valid) request and its wire form, with random
    /// header folding.
    fn random_request(rng: &mut StdRng) -> (HttpRequest, Vec<u8>) {
        let method = ["GET", "POST", "HEAD", "PUT"][rng.gen_range(0..4)].to_string();
        let target_len = rng.gen_range(1..12);
        let target = format!("/{}", random_token(rng, target_len));
        let mut wire = format!("{method} {target} HTTP/1.1\r\n");
        let mut headers = HeaderMap::new();
        for _ in 0..rng.gen_range(0..6usize) {
            let name_len = rng.gen_range(1..8);
            let name = format!("x-{}", random_token(rng, name_len));
            if rng.gen_range(0..4usize) == 0 {
                // Folded header: two fragments joined by obs-fold.
                let (a_len, b_len) = (rng.gen_range(1..10), rng.gen_range(1..10));
                let a = random_token(rng, a_len);
                let b = random_token(rng, b_len);
                let pad = if rng.gen_range(0..2usize) == 0 { " " } else { "\t" };
                wire.push_str(&format!("{name}: {a}\r\n{pad}{b}\r\n"));
                headers.append(&name, format!("{a} {b}"));
            } else {
                let v_len = rng.gen_range(0..16);
                let v = random_token(rng, v_len);
                wire.push_str(&format!("{name}: {v}\r\n"));
                headers.append(&name, v);
            }
        }
        let body: Vec<u8> = if rng.gen_range(0..2usize) == 0 {
            (0..rng.gen_range(0..400usize)).map(|_| rng.gen_range(0..=255u64) as u8).collect()
        } else {
            Vec::new()
        };
        if !body.is_empty() {
            wire.push_str(&format!("Content-Length: {}\r\n", body.len()));
            headers.append("content-length", body.len().to_string());
        }
        wire.push_str("\r\n");
        let mut wire = wire.into_bytes();
        wire.extend_from_slice(&body);
        (HttpRequest { method, target, http11: true, headers, body }, wire)
    }

    #[test]
    fn prop_random_requests_survive_any_fragmentation() {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        for _ in 0..200 {
            let (expected, wire) = random_request(&mut rng);
            let mut cuts: Vec<usize> = (0..rng.gen_range(0..8usize))
                .map(|_| rng.gen_range(1..wire.len().max(2)))
                .collect();
            cuts.sort_unstable();
            let reader = Fragmented { data: wire, cuts, pos: 0, next_cut: 0 };
            let mut c = HttpConn::new(reader, Limits::default());
            let got = c.read_request().expect("valid request must parse");
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn prop_pipelined_keepalive_sequences_parse_in_order() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..50 {
            let n = rng.gen_range(2..6usize);
            let mut expected = Vec::with_capacity(n);
            let mut wire = Vec::new();
            for _ in 0..n {
                let (req, bytes) = random_request(&mut rng);
                expected.push(req);
                wire.extend_from_slice(&bytes);
            }
            let mut cuts: Vec<usize> =
                (0..rng.gen_range(0..12usize)).map(|_| rng.gen_range(1..wire.len())).collect();
            cuts.sort_unstable();
            let reader = Fragmented { data: wire, cuts, pos: 0, next_cut: 0 };
            let mut c = HttpConn::new(reader, Limits::default());
            for want in &expected {
                let got = c.read_request().expect("pipelined request must parse");
                assert_eq!(&got, want);
            }
            assert!(matches!(c.read_request(), Err(HttpError::Closed)));
        }
    }

    #[test]
    fn prop_truncated_heads_never_panic() {
        let mut rng = StdRng::seed_from_u64(0x7A57E);
        for _ in 0..200 {
            let (_, wire) = random_request(&mut rng);
            let cut = rng.gen_range(0..wire.len());
            let mut c = conn(&wire[..cut]);
            // Any outcome is fine as long as it is an Err or a prefix-valid
            // request — the parser must never panic on truncation.
            let _ = c.read_request();
        }
    }
}
