//! The per-shard append-only write-ahead log.
//!
//! Every store mutation is one [`VisitEvent`], encoded as a checksummed,
//! length-prefixed record and appended to the shard's log *before* the
//! mutation is applied in memory (and so before any response is written
//! — the ack barrier). Recovery replays the log over the last snapshot;
//! a torn or checksum-failing suffix is discarded, so the recovered
//! state is always a prefix of the acked event stream.
//!
//! Log layout:
//!
//! ```text
//! [magic "CPWAL001"] [generation: u64 LE]      — 16-byte log header
//! [len: u32 LE] [checksum: u64 LE] [payload]   — records, back to back
//! ```
//!
//! with `checksum = FNV-1a64(len_le ++ payload)` — the length is covered
//! so a record whose length field was torn cannot masquerade as valid.
//!
//! The **generation** makes checkpointing unambiguous. A snapshot records
//! `(generation, covered)`: "I already contain the first `covered`
//! records of log generation `generation`". Truncating the log after a
//! snapshot starts a fresh generation, so recovery can always tell a
//! pre-truncation log (same generation → skip the covered prefix, it is
//! in the snapshot) from a post-truncation one (new generation → replay
//! everything) — even when both happen to hold the same record count.
//!
//! Write errors follow a truncate-and-retry discipline: any failed or
//! torn append rewinds the file to the last committed offset and retries
//! the whole record, so the log on disk is always a clean concatenation
//! of complete records (plus at most one torn tail from the final crash).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::ServiceMetrics;
use crate::storage::{open_storage, StorageFaults, StorageFile};

/// Largest record the reader will accept; a length beyond this is treated
/// as a torn/corrupt tail, not an allocation request.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

/// Frame header size: `u32` length + `u64` checksum.
pub(crate) const HEADER_BYTES: usize = 12;

/// Log-file magic, followed by the `u64` generation.
const LOG_MAGIC: &[u8; 8] = b"CPWAL001";

/// Log header size: magic + generation.
const LOG_HEADER_BYTES: usize = 16;

/// Appends between syncs under [`FsyncPolicy::Batch`] — the starting
/// point the [`GroupCommitTuner`] adapts from.
pub const BATCH_INTERVAL: u64 = 64;

/// Smallest batch the tuner will shrink to.
pub const TUNE_MIN_BATCH: u64 = 8;

/// Largest batch the tuner will grow to.
pub const TUNE_MAX_BATCH: u64 = 1024;

/// Fsync overhead budget, in percent of wall time: above this the batch
/// grows (amortize harder), an order of magnitude below it the batch
/// shrinks (durability latency is nearly free at low load). 7% overhead
/// keeps durable-mode throughput above the 0.93× ratio the crash bench
/// gates on.
const TUNE_OVERHEAD_BUDGET_PCT: u64 = 7;

/// Attempts before a write or sync error is given up on.
const MAX_ATTEMPTS: usize = 8;

/// Adapts the group-commit batch size to offered load.
///
/// Pure arithmetic over observed timings — no clocks of its own, so it is
/// unit-testable with synthetic inputs. After each batch-triggered sync
/// the caller reports how long the batch took to fill (`elapsed_micros`)
/// and how long the sync itself took (`fsync_micros`):
///
/// - fsync overhead above [`TUNE_OVERHEAD_BUDGET_PCT`] of wall time means
///   the load is outrunning the amortization — the batch doubles (capped
///   at [`TUNE_MAX_BATCH`]);
/// - overhead below 1% means batches fill slowly relative to the sync
///   cost — the batch halves (floored at [`TUNE_MIN_BATCH`]) so records
///   reach stable storage sooner when the extra syncs are nearly free.
///
/// The tuner is only installed when no storage faults are injected: the
/// seeded fault stream advances per file operation, so adapting the sync
/// cadence under faults would perturb chaos/crash determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitTuner {
    batch: u64,
}

impl Default for GroupCommitTuner {
    fn default() -> Self {
        GroupCommitTuner { batch: BATCH_INTERVAL }
    }
}

impl GroupCommitTuner {
    /// The current appends-between-syncs target.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Feeds one completed batch's timings; returns the next batch size.
    /// `pending` is how many records the sync committed (a flush below
    /// the target — e.g. a checkpoint — reports fewer and never grows).
    pub fn on_sync(&mut self, pending: u64, elapsed_micros: u64, fsync_micros: u64) -> u64 {
        let overhead = fsync_micros.saturating_mul(100);
        if overhead > elapsed_micros.saturating_mul(TUNE_OVERHEAD_BUDGET_PCT)
            && pending >= self.batch
        {
            self.batch = (self.batch * 2).min(TUNE_MAX_BATCH);
        } else if overhead < elapsed_micros {
            self.batch = (self.batch / 2).max(TUNE_MIN_BATCH);
        }
        self.batch
    }
}

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every record — maximum durability, minimum throughput.
    Always,
    /// Group commit: sync every [`BATCH_INTERVAL`] records.
    #[default]
    Batch,
    /// Never sync; rely on the kernel's writeback (still survives
    /// `kill -9` — the page cache belongs to the kernel, not the process).
    Never,
}

impl FsyncPolicy {
    /// Parses a CLI value (`always` / `batch` / `never`).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// The CLI / log label.
    pub fn label(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }
}

/// What a probe decided, inside a [`VisitEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A visit that issued no hidden request (nothing to test, or
    /// training dormant): only the FORCUM observation applies.
    Observe,
    /// A visit whose hidden probe was inconclusive and deferred.
    Defer,
    /// A decided probe over `group`.
    Probe {
        /// The cookie group under test (marked useful when `marking`).
        group: Vec<String>,
        /// Whether the decision attributed the difference to cookies.
        marking: bool,
        /// Detection time, in microseconds.
        detection_micros: u64,
        /// Full visit-step duration, in milliseconds.
        duration_ms: f64,
    },
    /// A usefulness-TTL decay: the marks named in `observed` are dropped
    /// and FORCUM training restarts, so the next visits re-probe them.
    /// Issued by the crawler's re-verification queue, never by a page view.
    Expire,
}

/// One durable store mutation: everything `SiteEntry::apply` needs to
/// replay the visit's state change without re-rendering the world.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitEvent {
    /// The visited host (keys the shard and the store entry).
    pub host: String,
    /// Cookie names observed in the visit (request + response) — the
    /// FORCUM observation input.
    pub observed: Vec<String>,
    /// What the visit's probe concluded.
    pub kind: EventKind,
}

const TAG_OBSERVE: u8 = 1;
const TAG_DEFER: u8 = 2;
const TAG_PROBE: u8 = 3;
const TAG_EXPIRE: u8 = 4;

/// Shared binary-codec primitives (also used by the snapshot format).
pub(crate) mod codec {
    /// FNV-1a64 over `bytes`.
    pub fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_u32(out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }

    pub fn put_strs<S: AsRef<str>>(out: &mut Vec<u8>, strs: &[S]) {
        put_u32(out, strs.len() as u32);
        for s in strs {
            put_str(out, s.as_ref());
        }
    }

    /// A bounds-checked reader over an encoded buffer. Every accessor
    /// returns `None` on overrun or malformed data — decoding is total.
    pub struct Cursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Cursor { buf, pos: 0 }
        }

        pub fn done(&self) -> bool {
            self.pos == self.buf.len()
        }

        pub fn u8(&mut self) -> Option<u8> {
            let b = *self.buf.get(self.pos)?;
            self.pos += 1;
            Some(b)
        }

        pub fn u32(&mut self) -> Option<u32> {
            let bytes = self.buf.get(self.pos..self.pos + 4)?;
            self.pos += 4;
            Some(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
        }

        pub fn u64(&mut self) -> Option<u64> {
            let bytes = self.buf.get(self.pos..self.pos + 8)?;
            self.pos += 8;
            Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
        }

        pub fn str(&mut self) -> Option<String> {
            let len = self.u32()? as usize;
            let bytes = self.buf.get(self.pos..self.pos.checked_add(len)?)?;
            self.pos += len;
            String::from_utf8(bytes.to_vec()).ok()
        }

        pub fn strs(&mut self) -> Option<Vec<String>> {
            let count = self.u32()? as usize;
            // An honest count can't exceed the bytes left (each string
            // costs ≥ 4 bytes); reject before allocating.
            if count > (self.buf.len() - self.pos) / 4 {
                return None;
            }
            (0..count).map(|_| self.str()).collect()
        }
    }
}

impl VisitEvent {
    /// Encodes the event payload (no frame).
    fn encode_payload(&self) -> Vec<u8> {
        use codec::{put_str, put_strs, put_u64};
        let mut out = Vec::with_capacity(64);
        match &self.kind {
            EventKind::Observe => out.push(TAG_OBSERVE),
            EventKind::Defer => out.push(TAG_DEFER),
            EventKind::Probe { .. } => out.push(TAG_PROBE),
            EventKind::Expire => out.push(TAG_EXPIRE),
        }
        put_str(&mut out, &self.host);
        put_strs(&mut out, &self.observed);
        if let EventKind::Probe { group, marking, detection_micros, duration_ms } = &self.kind {
            put_strs(&mut out, group);
            out.push(u8::from(*marking));
            put_u64(&mut out, *detection_micros);
            put_u64(&mut out, duration_ms.to_bits());
        }
        out
    }

    /// Decodes a payload produced by [`encode_payload`](Self::encode_payload).
    /// `None` on any malformation (including trailing bytes). Shared with
    /// the replication follower, which decodes the same frames off a socket.
    pub(crate) fn decode_payload(payload: &[u8]) -> Option<VisitEvent> {
        let mut cur = codec::Cursor::new(payload);
        let tag = cur.u8()?;
        let host = cur.str()?;
        let observed = cur.strs()?;
        let kind = match tag {
            TAG_OBSERVE => EventKind::Observe,
            TAG_DEFER => EventKind::Defer,
            TAG_PROBE => {
                let group = cur.strs()?;
                let marking = match cur.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let detection_micros = cur.u64()?;
                let duration_ms = f64::from_bits(cur.u64()?);
                EventKind::Probe { group, marking, detection_micros, duration_ms }
            }
            TAG_EXPIRE => EventKind::Expire,
            _ => return None,
        };
        cur.done().then_some(VisitEvent { host, observed, kind })
    }

    /// Encodes the full framed record: header + payload.
    pub fn encode_record(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let len = payload.len() as u32;
        debug_assert!(len <= MAX_RECORD_BYTES, "oversized WAL record");
        let mut framed = Vec::with_capacity(HEADER_BYTES + payload.len());
        framed.extend_from_slice(&len.to_le_bytes());
        let mut sum = codec::fnv1a(&len.to_le_bytes());
        sum ^= codec::fnv1a(&payload).rotate_left(1);
        framed.extend_from_slice(&sum.to_le_bytes());
        framed.extend_from_slice(&payload);
        framed
    }
}

/// Frame checksum over the length prefix and payload.
pub(crate) fn frame_checksum(len_le: &[u8; 4], payload: &[u8]) -> u64 {
    codec::fnv1a(len_le) ^ codec::fnv1a(payload).rotate_left(1)
}

/// The log file for shard `shard` under `dir`.
pub fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard:02}.log"))
}

/// What [`read_log`] found in a log file.
#[derive(Debug, Default, PartialEq)]
pub struct LogContents {
    /// The log's generation (0 when the header itself was missing/torn —
    /// the log then also reports no events).
    pub generation: u64,
    /// The decoded records of the valid prefix, in append order.
    pub events: Vec<VisitEvent>,
    /// Byte length of the valid prefix (header + whole records).
    pub good: u64,
    /// Trailing bytes discarded as torn or corrupt.
    pub torn: u64,
}

/// Reads and validates a log file front to back.
///
/// Validation stops at the first torn or checksum-failing byte; whatever
/// precedes it is the valid prefix, whatever follows is reported as torn.
/// A missing file is an empty log, as is one whose 16-byte header never
/// made it to disk.
pub fn read_log(path: &Path) -> std::io::Result<LogContents> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut contents = LogContents { torn: bytes.len() as u64, ..LogContents::default() };
    let Some(header) = bytes.get(..LOG_HEADER_BYTES) else { return Ok(contents) };
    if &header[..8] != LOG_MAGIC {
        return Ok(contents);
    }
    contents.generation = u64::from_le_bytes(header[8..].try_into().expect("8-byte slice"));
    let mut good = LOG_HEADER_BYTES;
    while let Some(header) = bytes.get(good..good + HEADER_BYTES) {
        let len_le: [u8; 4] = header[..4].try_into().expect("4-byte slice");
        let len = u32::from_le_bytes(len_le);
        if len == 0 || len > MAX_RECORD_BYTES {
            break;
        }
        let sum = u64::from_le_bytes(header[4..].try_into().expect("8-byte slice"));
        let Some(payload) = bytes.get(good + HEADER_BYTES..good + HEADER_BYTES + len as usize)
        else {
            break; // short payload: the torn tail of the final record
        };
        if frame_checksum(&len_le, payload) != sum {
            break;
        }
        let Some(event) = VisitEvent::decode_payload(payload) else { break };
        contents.events.push(event);
        good += HEADER_BYTES + len as usize;
    }
    contents.good = good as u64;
    contents.torn = bytes.len() as u64 - contents.good;
    Ok(contents)
}

/// One shard's open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn StorageFile>,
    /// Byte offset of the end of the last fully committed record.
    committed: u64,
    /// Complete records in the file (committed prefix).
    records: u64,
    /// This log's generation (bumped by [`reset`](Self::reset)).
    generation: u64,
    /// Records appended since the last successful sync.
    pending: u64,
    /// Whether the file may hold garbage past `committed` (a failed
    /// append whose rewind also failed) — re-truncated before reuse.
    dirty: bool,
    /// Set when a reset failed mid-way: the on-disk layout is no longer
    /// trustworthy, so appends refuse rather than ack into a broken log.
    poisoned: bool,
    fsync: FsyncPolicy,
    /// Present under [`FsyncPolicy::Batch`] with no injected faults.
    tuner: Option<GroupCommitTuner>,
    /// When the current group-commit batch started filling.
    batch_started: Instant,
    metrics: Arc<ServiceMetrics>,
}

impl Wal {
    /// Opens the log at `path` from what [`read_log`] reported: truncating
    /// to `contents.good` discards a previous crash's torn tail before new
    /// records follow it. A log with no valid header (fresh, or torn
    /// before the header landed) is rewritten from scratch at `generation`
    /// — pass one past the snapshot's generation so the fresh log can
    /// never be mistaken for the one the snapshot covered.
    pub fn open(
        path: &Path,
        contents: &LogContents,
        generation: u64,
        fsync: FsyncPolicy,
        faults: Option<StorageFaults>,
        tag: u64,
        metrics: &Arc<ServiceMetrics>,
    ) -> std::io::Result<Wal> {
        let fresh = contents.good < LOG_HEADER_BYTES as u64;
        let committed = if fresh { 0 } else { contents.good };
        let file = open_storage(path, committed, faults, tag, metrics)?;
        let mut wal = Wal {
            file,
            committed,
            records: if fresh { 0 } else { contents.events.len() as u64 },
            generation: if fresh { generation } else { contents.generation },
            pending: 0,
            dirty: false,
            poisoned: false,
            fsync,
            // Tuning changes the file-operation sequence, which would
            // shift the seeded fault stream — so only tune fault-free.
            tuner: (fsync == FsyncPolicy::Batch && faults.is_none())
                .then(GroupCommitTuner::default),
            batch_started: Instant::now(),
            metrics: Arc::clone(metrics),
        };
        wal.file.truncate_to(committed)?;
        if fresh {
            wal.write_header()?;
        }
        Ok(wal)
    }

    /// Writes the 16-byte log header at the current (zero) offset, with
    /// the append retry discipline.
    fn write_header(&mut self) -> std::io::Result<()> {
        debug_assert_eq!(self.committed, 0);
        let mut header = Vec::with_capacity(LOG_HEADER_BYTES);
        header.extend_from_slice(LOG_MAGIC);
        header.extend_from_slice(&self.generation.to_le_bytes());
        let mut last_err = None;
        for _ in 0..MAX_ATTEMPTS {
            if self.dirty {
                self.file.truncate_to(0)?;
                self.dirty = false;
            }
            match self.write_frame(&header) {
                Ok(()) => {
                    self.committed = LOG_HEADER_BYTES as u64;
                    return Ok(());
                }
                Err(e) => {
                    self.dirty = true;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("loop ran at least once"))
    }

    /// End of the committed prefix, in bytes.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Complete records in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's current generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends one record, retrying (with rewind to the committed offset)
    /// on write errors, then syncs per the fsync policy. On `Ok`, the
    /// record is fully in the file — the caller may ack.
    pub fn append(&mut self, event: &VisitEvent) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other("wal poisoned by a failed truncation"));
        }
        let frame = event.encode_record();
        let mut last_err: Option<std::io::Error> = None;
        let mut attempts = 0;
        while attempts < MAX_ATTEMPTS {
            attempts += 1;
            if self.dirty {
                self.file.truncate_to(self.committed)?;
                self.dirty = false;
            }
            match self.write_frame(&frame) {
                Ok(()) => {
                    self.committed += frame.len() as u64;
                    self.records += 1;
                    self.pending += 1;
                    self.metrics.wal_records_total.inc();
                    return self.policy_sync();
                }
                Err(e) => {
                    // The file may hold a partial frame; rewind before the
                    // next attempt (or the next append) writes anything.
                    self.dirty = true;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("loop ran at least once"))
    }

    fn write_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let mut off = 0;
        while off < frame.len() {
            match self.file.write(&frame[off..])? {
                0 => return Err(std::io::Error::other("wal write returned 0")),
                n => off += n,
            }
        }
        Ok(())
    }

    /// The current appends-between-syncs target (tuned or static).
    pub fn batch_target(&self) -> u64 {
        self.tuner.map_or(BATCH_INTERVAL, |t| t.batch())
    }

    fn policy_sync(&mut self) -> std::io::Result<()> {
        match self.fsync {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::Batch if self.pending >= self.batch_target() => {
                let pending = self.pending;
                let elapsed = self.batch_started.elapsed().as_micros() as u64;
                let sync_started = Instant::now();
                self.sync()?;
                if let Some(tuner) = &mut self.tuner {
                    tuner.on_sync(pending, elapsed, sync_started.elapsed().as_micros() as u64);
                }
                self.batch_started = Instant::now();
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Forces the committed prefix to stable storage, retrying transient
    /// sync failures. Timing lands in `cp_wal_fsync_micros`.
    pub fn sync(&mut self) -> std::io::Result<()> {
        let started = Instant::now();
        let mut last_err = None;
        for _ in 0..MAX_ATTEMPTS {
            match self.file.sync() {
                Ok(()) => {
                    self.pending = 0;
                    self.metrics.wal_fsync.observe(started.elapsed().as_micros() as u64);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("loop ran at least once"))
    }

    /// Empties the log and starts the next generation (after its contents
    /// were folded into a snapshot). A failed reset poisons the log —
    /// its on-disk layout can no longer be trusted, so further appends
    /// error instead of acking records recovery might not find.
    pub fn reset(&mut self) -> std::io::Result<()> {
        let result = (|| {
            self.file.truncate_to(0)?;
            self.committed = 0;
            self.records = 0;
            self.pending = 0;
            self.dirty = false;
            self.generation += 1;
            self.write_header()
        })();
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StorageFaults;

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cp-wal-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<VisitEvent> {
        vec![
            VisitEvent {
                host: "a.example".into(),
                observed: vec!["sid".into(), "theme".into()],
                kind: EventKind::Observe,
            },
            VisitEvent {
                host: "a.example".into(),
                observed: vec!["sid".into()],
                kind: EventKind::Defer,
            },
            VisitEvent {
                host: "b.example".into(),
                observed: vec![],
                kind: EventKind::Probe {
                    group: vec!["sid".into(), "tr".into()],
                    marking: true,
                    detection_micros: 1234,
                    duration_ms: 1.234,
                },
            },
            VisitEvent {
                host: "b.example".into(),
                observed: vec!["sid".into(), "theme".into()],
                kind: EventKind::Expire,
            },
        ]
    }

    #[test]
    fn payload_codec_round_trips() {
        for event in sample_events() {
            let payload = event.encode_payload();
            assert_eq!(VisitEvent::decode_payload(&payload), Some(event));
        }
        // Trailing garbage, truncation, and bad tags are all rejected.
        let mut payload = sample_events()[0].encode_payload();
        payload.push(0);
        assert_eq!(VisitEvent::decode_payload(&payload), None, "trailing byte");
        let payload = sample_events()[2].encode_payload();
        assert_eq!(VisitEvent::decode_payload(&payload[..payload.len() - 1]), None, "truncated");
        assert_eq!(VisitEvent::decode_payload(&[99]), None, "unknown tag");
        assert_eq!(VisitEvent::decode_payload(&[]), None, "empty");
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = tmp_dir().join("round.log");
        std::fs::remove_file(&path).ok();
        let metrics = Arc::new(ServiceMetrics::new());
        let mut wal =
            Wal::open(&path, &LogContents::default(), 1, FsyncPolicy::Always, None, 0, &metrics)
                .unwrap();
        for event in sample_events() {
            wal.append(&event).unwrap();
        }
        assert_eq!(wal.records(), 4);
        let contents = read_log(&path).unwrap();
        assert_eq!(contents.events, sample_events());
        assert_eq!(contents.generation, 1);
        assert_eq!(contents.good, wal.committed());
        assert_eq!(contents.torn, 0);
        assert_eq!(metrics.wal_records_total.get(), 4);
        assert!(metrics.wal_fsync.count() >= 4, "fsync=always syncs every append");
    }

    #[test]
    fn torn_tail_is_discarded_at_every_truncation_point() {
        let path = tmp_dir().join("torn.log");
        std::fs::remove_file(&path).ok();
        let metrics = Arc::new(ServiceMetrics::new());
        let mut wal =
            Wal::open(&path, &LogContents::default(), 1, FsyncPolicy::Never, None, 0, &metrics)
                .unwrap();
        for event in sample_events() {
            wal.append(&event).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let all = read_log(&path).unwrap();
        assert_eq!(all.events.len(), 4);
        // Every possible kill point: the log cut at any byte must yield a
        // prefix of the event stream, never a panic or an invented event.
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let contents = read_log(&path).unwrap();
            assert!(contents.events.len() <= 4);
            assert_eq!(
                &all.events[..contents.events.len()],
                &contents.events[..],
                "prefix at cut {cut}"
            );
            assert_eq!(contents.good + contents.torn, cut as u64);
            assert!(contents.good <= all.good);
        }
    }

    #[test]
    fn corrupted_byte_stops_replay_at_the_damage() {
        let path = tmp_dir().join("corrupt.log");
        std::fs::remove_file(&path).ok();
        let metrics = Arc::new(ServiceMetrics::new());
        let mut wal =
            Wal::open(&path, &LogContents::default(), 1, FsyncPolicy::Never, None, 0, &metrics)
                .unwrap();
        for event in sample_events() {
            wal.append(&event).unwrap();
        }
        drop(wal);
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte in the records region: records up to the damage
        // survive, everything after is discarded.
        let mut bytes = clean.clone();
        let mid = LOG_HEADER_BYTES + (bytes.len() - LOG_HEADER_BYTES) / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_log(&path).unwrap();
        assert!(contents.events.len() < 4, "damage discards at least one record");
        assert_eq!(contents.events[..], sample_events()[..contents.events.len()]);
        assert_eq!(contents.good + contents.torn, clean.len() as u64);
        // Damage inside the log header empties the whole log.
        let mut bytes = clean.clone();
        bytes[3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_log(&path).unwrap();
        assert_eq!(contents.events, Vec::new());
        assert_eq!(contents.good, 0);
    }

    #[test]
    fn write_faults_leave_identical_bytes_for_the_acked_subsequence() {
        // The strong retry-correctness property: a fault-handled log holds
        // exactly the records whose append returned Ok, byte-identical to
        // a clean log of that subsequence.
        let dir = tmp_dir();
        let faulted_path = dir.join("fault.log");
        let clean_path = dir.join("clean.log");
        std::fs::remove_file(&faulted_path).ok();
        std::fs::remove_file(&clean_path).ok();
        let metrics = Arc::new(ServiceMetrics::new());
        let faults = StorageFaults::uniform(0xFA17, 0.4);
        let fresh = LogContents::default();
        let mut faulted =
            Wal::open(&faulted_path, &fresh, 1, FsyncPolicy::Batch, Some(faults), 1, &metrics)
                .unwrap();
        let mut clean =
            Wal::open(&clean_path, &fresh, 1, FsyncPolicy::Batch, None, 0, &metrics).unwrap();
        let mut acked = 0usize;
        for i in 0..200u64 {
            let event = VisitEvent {
                host: format!("s{}.example", i % 7),
                observed: vec![format!("c{i}")],
                kind: if i % 3 == 0 {
                    EventKind::Probe {
                        group: vec![format!("c{i}")],
                        marking: i % 6 == 0,
                        detection_micros: i,
                        duration_ms: i as f64 / 1000.0,
                    }
                } else {
                    EventKind::Observe
                },
            };
            if faulted.append(&event).is_ok() {
                acked += 1;
                clean.append(&event).unwrap();
            }
        }
        assert!(metrics.wal_fault_total() > 0, "40% fault rate over 200 appends must fire");
        assert!(acked > 0, "8 retries at 40% rate ack almost everything");
        let faulted = read_log(&faulted_path).unwrap();
        let clean = read_log(&clean_path).unwrap();
        assert_eq!(faulted.events, clean.events);
        assert_eq!(faulted.events.len(), acked);
        assert_eq!(faulted.torn, 0, "every failed append was rewound");
    }

    #[test]
    fn unwritable_wal_errors_without_corrupting_the_prefix() {
        let path = tmp_dir().join("enospc.log");
        std::fs::remove_file(&path).ok();
        let metrics = Arc::new(ServiceMetrics::new());
        let mut wal =
            Wal::open(&path, &LogContents::default(), 1, FsyncPolicy::Never, None, 0, &metrics)
                .unwrap();
        let event = sample_events().remove(0);
        wal.append(&event).unwrap();
        let committed = wal.committed();
        drop(wal);
        // Reopen with a certain-ENOSPC fault plan: appends must fail after
        // the retry budget, leaving the committed prefix intact.
        let all_enospc = StorageFaults {
            seed: 1,
            short_write: 0.0,
            torn_write: 0.0,
            enospc: 1.0,
            fail_fsync: 0.0,
        };
        let contents = read_log(&path).unwrap();
        assert_eq!(contents.good, committed);
        let mut wal =
            Wal::open(&path, &contents, 1, FsyncPolicy::Never, Some(all_enospc), 0, &metrics)
                .unwrap();
        assert!(wal.append(&event).is_err());
        assert_eq!(wal.committed(), committed);
        drop(wal);
        let contents = read_log(&path).unwrap();
        assert_eq!(contents.events, vec![event]);
        assert_eq!(contents.good, committed);
        assert_eq!(contents.torn, 0);
    }

    #[test]
    fn reset_empties_the_log_and_bumps_the_generation() {
        let path = tmp_dir().join("reset.log");
        std::fs::remove_file(&path).ok();
        let metrics = Arc::new(ServiceMetrics::new());
        let mut wal =
            Wal::open(&path, &LogContents::default(), 1, FsyncPolicy::Batch, None, 0, &metrics)
                .unwrap();
        for event in sample_events() {
            wal.append(&event).unwrap();
        }
        wal.reset().unwrap();
        assert_eq!(wal.committed(), LOG_HEADER_BYTES as u64);
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.generation(), 2);
        let contents = read_log(&path).unwrap();
        assert!(contents.events.is_empty());
        assert_eq!(contents.generation, 2);
        assert_eq!((contents.good, contents.torn), (LOG_HEADER_BYTES as u64, 0));
        // The log keeps working after a reset.
        wal.append(&sample_events()[0]).unwrap();
        assert_eq!(read_log(&path).unwrap().events.len(), 1);
    }

    #[test]
    fn tuner_grows_under_fsync_pressure_and_shrinks_when_idle() {
        let mut tuner = GroupCommitTuner::default();
        assert_eq!(tuner.batch(), BATCH_INTERVAL);
        // Heavy load: each 1ms interval spends half its time in fsync
        // (50% overhead ≫ 7% budget) → the batch doubles each sync until
        // the cap.
        let mut grown = Vec::new();
        for _ in 0..8 {
            grown.push(tuner.on_sync(tuner.batch(), 1_000, 500));
        }
        assert_eq!(grown, vec![128, 256, 512, 1024, 1024, 1024, 1024, 1024]);
        // Idle load: the batch takes 100ms to fill against a 50µs fsync
        // (0.05% overhead < 1%) → halve down to the floor.
        let mut shrunk = Vec::new();
        for _ in 0..10 {
            shrunk.push(tuner.on_sync(tuner.batch(), 100_000, 50));
        }
        assert_eq!(shrunk, vec![512, 256, 128, 64, 32, 16, 8, 8, 8, 8]);
        // In-budget overhead (3% — between 1% and 7%) holds steady.
        assert_eq!(tuner.on_sync(tuner.batch(), 10_000, 300), 8);
        // A short flush (checkpoint sync below the target) never grows,
        // even when its fsync looked expensive.
        let mut tuner = GroupCommitTuner::default();
        assert_eq!(tuner.on_sync(3, 100, 90), BATCH_INTERVAL);
    }

    #[test]
    fn batch_wal_tunes_only_without_faults() {
        let dir = tmp_dir();
        let metrics = Arc::new(ServiceMetrics::new());
        let fresh = LogContents::default();
        let path = dir.join("tuned.log");
        std::fs::remove_file(&path).ok();
        let wal = Wal::open(&path, &fresh, 1, FsyncPolicy::Batch, None, 0, &metrics).unwrap();
        assert_eq!(wal.batch_target(), BATCH_INTERVAL);
        drop(wal);
        // Injected faults pin the cadence: the seeded fault stream
        // advances per file op, so the op sequence must stay fixed.
        let faulted_path = dir.join("tuned-faulted.log");
        std::fs::remove_file(&faulted_path).ok();
        let faults = StorageFaults::uniform(7, 0.0);
        let mut wal =
            Wal::open(&faulted_path, &fresh, 1, FsyncPolicy::Batch, Some(faults), 0, &metrics)
                .unwrap();
        for event in sample_events().iter().cycle().take(200) {
            wal.append(event).unwrap();
        }
        assert_eq!(wal.batch_target(), BATCH_INTERVAL, "faulted logs never adapt");
        // Always/Never policies have no batch to tune either.
        let always_path = dir.join("tuned-always.log");
        std::fs::remove_file(&always_path).ok();
        let wal =
            Wal::open(&always_path, &fresh, 1, FsyncPolicy::Always, None, 0, &metrics).unwrap();
        assert_eq!(wal.batch_target(), BATCH_INTERVAL);
    }

    #[test]
    fn fsync_policy_parses_cli_values() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::Batch));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for p in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            assert_eq!(FsyncPolicy::parse(p.label()), Some(p));
        }
    }
}
