//! cp-route — the thin tier in front of a replicated cp-serve cluster.
//!
//! The router owns cluster membership so the nodes do not have to: it
//! leads backend 0 at generation 1 on startup, heartbeats every backend's
//! `/healthz`, and when the primary misses [`RouterConfig::miss_threshold`]
//! consecutive heartbeats it promotes the **most caught-up** alive
//! follower (highest `replication_applied_seq`) at `generation + 1` via
//! `POST /v1/repl/lead`. Because the primary only acked writes a quorum
//! of followers had applied, the most caught-up follower holds every
//! acked record — promotion loses nothing (DESIGN.md §15).
//!
//! Request routing is deliberately simple:
//!
//! * writes (`/v1/visit`, `/v1/expire`), `/v1/marks`, `/v1/sites`, and
//!   anything unrecognized proxy to the current primary;
//! * `GET /v1/sites/{host}` rides a 64-points-per-backend consistent-hash
//!   ring over the host, falling forward to the next alive backend;
//! * `POST /v1/classify` rides the same ring keyed on the body bytes
//!   (classify is stateless, so any backend may serve it);
//! * `/healthz`, `/metrics`, and `/v1/shutdown` are the router's own.
//!
//! A proxy failure is answered `503 backend unavailable` — the client
//! retries through its normal budget and lands on the promoted primary
//! once the heartbeat loop has fenced the dead one.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cp_runtime::json::Json;
use cp_runtime::sync::Mutex;

use crate::http::{write_response, HttpConn, HttpError, HttpRequest, Limits};
use crate::loadgen::Client;
use crate::metrics::{Endpoint, ServiceMetrics};
use crate::replication::ReplAckPolicy;

/// Virtual points each backend contributes to the consistent-hash ring —
/// enough to keep the load split within a few percent of even across a
/// handful of backends.
const RING_POINTS: usize = 64;

/// Attempts (100 ms apart) to lead backend 0 on startup before giving up —
/// covers backends that are still binding their replication listeners.
const LEAD_ATTEMPTS: u32 = 50;

/// One backend's two addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendAddr {
    /// HTTP serving address, `host:port`.
    pub http: String,
    /// Replication listener address, `host:port` — what a new primary
    /// tells its peers to stream to.
    pub repl: String,
}

impl BackendAddr {
    /// Parses a `HTTP_ADDR,REPL_ADDR` spec (the CLI's `--backend` value).
    pub fn parse(spec: &str) -> Result<BackendAddr, String> {
        let (http, repl) = spec
            .split_once(',')
            .ok_or_else(|| format!("backend spec {spec:?} must be HTTP_ADDR,REPL_ADDR"))?;
        let backend = BackendAddr { http: http.to_string(), repl: repl.to_string() };
        if backend.http_parts().is_none() || split_host_port(repl).is_none() {
            return Err(format!("backend spec {spec:?} needs host:port addresses"));
        }
        Ok(backend)
    }

    /// The HTTP address split for a client connect; `None` when malformed.
    fn http_parts(&self) -> Option<(&str, u16)> {
        split_host_port(&self.http)
    }
}

fn split_host_port(addr: &str) -> Option<(&str, u16)> {
    let (host, port) = addr.rsplit_once(':')?;
    let port: u16 = port.parse().ok()?;
    if host.is_empty() {
        return None;
    }
    Some((host, port))
}

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind; `0` picks a free port.
    pub port: u16,
    /// Worker threads proxying connections.
    pub workers: usize,
    /// The cluster, in lead-preference order: backend 0 is the initial
    /// primary, the rest its followers.
    pub backends: Vec<BackendAddr>,
    /// Heartbeat interval.
    pub heartbeat: Duration,
    /// Consecutive missed heartbeats before a backend is declared dead.
    pub miss_threshold: u32,
    /// Ack policy the promoted primary applies (informational — the nodes
    /// enforce it; the router reports it in `/healthz`).
    pub ack: ReplAckPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 4,
            backends: Vec::new(),
            heartbeat: Duration::from_millis(250),
            miss_threshold: 3,
            ack: ReplAckPolicy::default(),
        }
    }
}

/// What the heartbeat loop knows about one backend.
#[derive(Debug, Default)]
struct BackendState {
    alive: AtomicBool,
    /// Consecutive failed heartbeats.
    misses: AtomicU64,
    /// `replication_applied_seq` from the last good heartbeat — the
    /// promotion tiebreaker.
    applied_seq: AtomicU64,
    /// `replication_resyncs` from the last good heartbeat — completed
    /// follower resyncs this backend has performed as primary.
    resyncs: AtomicU64,
    /// `replication_ack_stall_max_micros` from the last good heartbeat —
    /// the worst single-ship stall this backend has seen.
    ack_stall_micros: AtomicU64,
}

struct RouterShared {
    backends: Vec<BackendAddr>,
    states: Vec<BackendState>,
    /// Sorted `(point_hash, backend_index)` pairs.
    ring: Vec<(u64, usize)>,
    primary: AtomicUsize,
    generation: AtomicU64,
    ack: ReplAckPolicy,
    metrics: Arc<ServiceMetrics>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    /// Wall time from promotion to the first proxied 2xx write — how long
    /// writers were dark. `Some` between those two events.
    promoted_at: Mutex<Option<Instant>>,
    last_blackout_ms: AtomicU64,
    /// `replication_applied_seq` of the follower the last promotion chose
    /// — the records replay never had to re-send.
    last_promotion_seq: AtomicU64,
}

impl RouterShared {
    fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }

    fn alive(&self, idx: usize) -> bool {
        self.states[idx].alive.load(Ordering::Acquire)
    }
}

/// A running router. Dropping the handle shuts it down.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.shared.addr.port()
    }

    /// The router's metric registry.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.shared.metrics
    }

    /// Requests a graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the acceptor, workers, and heartbeat loop have exited.
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

/// Binds the router, leads backend 0 at generation 1, and starts the
/// heartbeat and serving threads. Fails when no backend accepts the
/// initial lead within [`LEAD_ATTEMPTS`] tries.
pub fn start_router(config: RouterConfig) -> std::io::Result<RouterHandle> {
    if config.backends.is_empty() {
        return Err(std::io::Error::other("router needs at least one backend"));
    }
    for backend in &config.backends {
        if backend.http_parts().is_none() || split_host_port(&backend.repl).is_none() {
            return Err(std::io::Error::other(format!(
                "backend {:?} needs host:port addresses",
                backend.http
            )));
        }
    }
    let listener = TcpListener::bind((config.host.as_str(), config.port))?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(RouterShared {
        states: config.backends.iter().map(|_| BackendState::default()).collect(),
        ring: build_ring(&config.backends),
        backends: config.backends,
        primary: AtomicUsize::new(0),
        generation: AtomicU64::new(0),
        ack: config.ack,
        metrics: Arc::new(ServiceMetrics::new()),
        shutting_down: AtomicBool::new(false),
        addr,
        promoted_at: Mutex::new(None),
        last_blackout_ms: AtomicU64::new(0),
        last_promotion_seq: AtomicU64::new(0),
    });
    // Optimistic until the first heartbeat pass says otherwise.
    for state in &shared.states {
        state.alive.store(true, Ordering::Release);
    }
    lead_initial(&shared)?;

    let heartbeat = {
        let shared = Arc::clone(&shared);
        let interval = config.heartbeat.max(Duration::from_millis(10));
        let threshold = config.miss_threshold.max(1) as u64;
        std::thread::spawn(move || heartbeat_loop(&shared, interval, threshold))
    };
    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(128);
    let rx = Arc::new(Mutex::new(rx));
    let mut workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || worker_loop(&shared, &rx))
        })
        .collect();
    workers.push(heartbeat);
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, &listener, &tx))
    };
    Ok(RouterHandle { shared, acceptor: Some(acceptor), workers })
}

/// Leads backend 0 at generation 1 with every other backend as a
/// follower, retrying while the cluster is still coming up.
fn lead_initial(shared: &Arc<RouterShared>) -> std::io::Result<()> {
    let followers: Vec<String> = shared.backends.iter().skip(1).map(|b| b.repl.clone()).collect();
    let body = Json::object().set("generation", 1u64).set("followers", followers).to_compact();
    let (host, port) = shared.backends[0].http_parts().expect("validated in start_router");
    let mut last = String::from("no attempt made");
    for _ in 0..LEAD_ATTEMPTS {
        let mut client = Client::with_policy(host, port, 0, Duration::from_millis(5));
        match client.request("POST", "/v1/repl/lead", body.as_bytes()) {
            Ok(resp) if resp.status == 200 => {
                shared.generation.store(1, Ordering::Release);
                shared.primary.store(0, Ordering::Release);
                return Ok(());
            }
            Ok(resp) => last = format!("status {}: {}", resp.status, resp.body_string()),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(std::io::Error::other(format!(
        "backend {} refused the initial lead: {last}",
        shared.backends[0].http
    )))
}

/// 64-bit FNV-1a with an avalanche finalizer. Bare FNV clusters the high
/// bits for short, similar inputs (`addr#0`, `addr#1`, …), and the ring's
/// ordering is dominated by high bits — the finalizer spreads the points.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    hash ^ (hash >> 33)
}

fn build_ring(backends: &[BackendAddr]) -> Vec<(u64, usize)> {
    let mut ring: Vec<(u64, usize)> = Vec::with_capacity(backends.len() * RING_POINTS);
    for (idx, backend) in backends.iter().enumerate() {
        for point in 0..RING_POINTS {
            ring.push((ring_hash(format!("{}#{point}", backend.http).as_bytes()), idx));
        }
    }
    ring.sort_unstable();
    ring
}

/// Walks the ring clockwise from the key's hash to the first alive
/// backend; `fallback` (the primary) when everything is down.
fn ring_route(
    ring: &[(u64, usize)],
    states: &[BackendState],
    key: &[u8],
    fallback: usize,
) -> usize {
    if ring.is_empty() {
        return fallback;
    }
    let hash = ring_hash(key);
    let start = ring.partition_point(|(point, _)| *point < hash) % ring.len();
    for step in 0..ring.len() {
        let (_, idx) = ring[(start + step) % ring.len()];
        if states[idx].alive.load(Ordering::Acquire) {
            return idx;
        }
    }
    fallback
}

/// The first alive backend clockwise from the key's hash that is NOT
/// `skip` — the one-hop read-failover target when `skip` just failed a
/// proxied read. `None` when no other backend is alive.
fn ring_next(
    ring: &[(u64, usize)],
    states: &[BackendState],
    key: &[u8],
    skip: usize,
) -> Option<usize> {
    if ring.is_empty() {
        return None;
    }
    let hash = ring_hash(key);
    let start = ring.partition_point(|(point, _)| *point < hash) % ring.len();
    for step in 0..ring.len() {
        let (_, idx) = ring[(start + step) % ring.len()];
        if idx != skip && states[idx].alive.load(Ordering::Acquire) {
            return Some(idx);
        }
    }
    None
}

/// Polls every backend's `/healthz`, tallies misses, and promotes when the
/// primary goes dark.
fn heartbeat_loop(shared: &Arc<RouterShared>, interval: Duration, threshold: u64) {
    let mut clients: HashMap<usize, Client> = HashMap::new();
    while !shared.shutting_down.load(Ordering::SeqCst) {
        for idx in 0..shared.backends.len() {
            let ok = probe_backend(shared, &mut clients, idx);
            let state = &shared.states[idx];
            if ok {
                state.misses.store(0, Ordering::Release);
                state.alive.store(true, Ordering::Release);
            } else {
                clients.remove(&idx);
                let misses = state.misses.fetch_add(1, Ordering::AcqRel) + 1;
                if misses >= threshold {
                    state.alive.store(false, Ordering::Release);
                }
            }
        }
        // Roll the per-backend resync observations up into the router's
        // own exposition: total resyncs across the cluster, worst stall.
        let resyncs: u64 = shared.states.iter().map(|s| s.resyncs.load(Ordering::Acquire)).sum();
        let stall = shared.states.iter().map(|s| s.ack_stall_micros.load(Ordering::Acquire)).max();
        shared.metrics.route_resyncs_observed.set(resyncs.min(i64::MAX as u64) as i64);
        shared
            .metrics
            .route_max_ack_stall_micros
            .set_max(stall.unwrap_or(0).min(i64::MAX as u64) as i64);
        let primary = shared.primary.load(Ordering::Acquire);
        if !shared.alive(primary) {
            try_promote(shared, &mut clients);
        }
        std::thread::sleep(interval);
    }
}

/// One heartbeat: fetches a backend's `/healthz` and records its applied
/// sequence and witnessed generation. `false` on any failure.
fn probe_backend(
    shared: &Arc<RouterShared>,
    clients: &mut HashMap<usize, Client>,
    idx: usize,
) -> bool {
    let Some((host, port)) = shared.backends[idx].http_parts() else { return false };
    let client = clients
        .entry(idx)
        .or_insert_with(|| Client::with_policy(host, port, 1, Duration::from_millis(2)));
    let Ok(resp) = client.request("GET", "/healthz", b"") else { return false };
    if resp.status != 200 {
        return false;
    }
    let Ok(health) = Json::parse(&resp.body_string()) else { return false };
    if let Some(seq) = health.get("replication_applied_seq").and_then(Json::as_f64) {
        shared.states[idx].applied_seq.store(seq as u64, Ordering::Release);
    }
    if let Some(resyncs) = health.get("replication_resyncs").and_then(Json::as_f64) {
        shared.states[idx].resyncs.store(resyncs as u64, Ordering::Release);
    }
    if let Some(stall) = health.get("replication_ack_stall_max_micros").and_then(Json::as_f64) {
        shared.states[idx].ack_stall_micros.store(stall.max(0.0) as u64, Ordering::Release);
    }
    if let Some(generation) = health.get("generation").and_then(Json::as_f64) {
        shared.generation.fetch_max(generation as u64, Ordering::AcqRel);
    }
    true
}

/// Promotes the alive backend with the highest applied sequence at
/// `generation + 1`. A failed lead leaves everything unchanged — the next
/// heartbeat tick retries.
fn try_promote(shared: &Arc<RouterShared>, clients: &mut HashMap<usize, Client>) {
    let candidate = (0..shared.backends.len())
        .filter(|&idx| shared.alive(idx))
        .max_by_key(|&idx| shared.states[idx].applied_seq.load(Ordering::Acquire));
    let Some(new_primary) = candidate else { return };
    let generation = shared.generation.load(Ordering::Acquire) + 1;
    let followers: Vec<String> = (0..shared.backends.len())
        .filter(|&idx| idx != new_primary && shared.alive(idx))
        .map(|idx| shared.backends[idx].repl.clone())
        .collect();
    let body =
        Json::object().set("generation", generation).set("followers", followers).to_compact();
    let Some((host, port)) = shared.backends[new_primary].http_parts() else { return };
    let client = clients
        .entry(new_primary)
        .or_insert_with(|| Client::with_policy(host, port, 1, Duration::from_millis(2)));
    match client.request("POST", "/v1/repl/lead", body.as_bytes()) {
        Ok(resp) if resp.status == 200 => {
            shared.last_promotion_seq.store(
                shared.states[new_primary].applied_seq.load(Ordering::Acquire),
                Ordering::Release,
            );
            shared.primary.store(new_primary, Ordering::Release);
            shared.generation.store(generation, Ordering::Release);
            shared.metrics.failover_total.inc();
            *shared.promoted_at.lock() = Some(Instant::now());
        }
        _ => {
            clients.remove(&new_primary);
        }
    }
}

fn accept_loop(shared: &RouterShared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) if shared.shutting_down.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        shared.metrics.connections_total.inc();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_nodelay(true);
        match tx.try_send(stream) {
            Ok(()) => shared.metrics.queue_depth.inc(),
            Err(TrySendError::Full(mut stream)) => {
                shared.metrics.rejected_total.inc();
                shared.metrics.record_conn_closed("shed");
                let body = br#"{"error":"router overloaded"}"#;
                let _ = write_response(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "application/json",
                    body,
                    false,
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(shared: &RouterShared, rx: &Mutex<Receiver<TcpStream>>) {
    // Backend clients are cached per worker: the proxy path reuses
    // keep-alive connections, and a failed backend's client is dropped so
    // the next request dials fresh.
    let mut clients: HashMap<usize, Client> = HashMap::new();
    loop {
        let stream = rx.lock().recv();
        match stream {
            Ok(stream) => {
                shared.metrics.queue_depth.dec();
                handle_connection(shared, &mut clients, stream);
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(
    shared: &RouterShared,
    clients: &mut HashMap<usize, Client>,
    stream: TcpStream,
) {
    let mut conn = HttpConn::new(stream, Limits::default());
    loop {
        let request = match conn.read_request() {
            Ok(request) => request,
            Err(HttpError::Closed) => {
                shared.metrics.record_conn_closed("client");
                return;
            }
            Err(HttpError::Io(_)) => {
                shared.metrics.record_conn_closed("error");
                return;
            }
            Err(err) => {
                shared.metrics.record(Endpoint::Other, 400, 0);
                let body = Json::object().set("error", err.to_string()).to_compact();
                let _ = write_response(
                    conn.stream_mut(),
                    400,
                    "Bad Request",
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                shared.metrics.record_conn_closed("error");
                return;
            }
        };
        let started = Instant::now();
        let (endpoint, status, content_type, body) = route(shared, clients, &request);
        let draining = shared.shutting_down.load(Ordering::SeqCst);
        let keep_alive = request.keep_alive() && !draining && status < 500;
        shared.metrics.record(endpoint, status, started.elapsed().as_micros() as u64);
        let write_ok = write_response(
            conn.stream_mut(),
            status,
            reason_for(status),
            &content_type,
            &body,
            keep_alive,
        )
        .is_ok();
        if !write_ok {
            shared.metrics.record_conn_closed("write_failed");
            return;
        }
        if !keep_alive {
            shared.metrics.record_conn_closed(if draining { "drain" } else { "client" });
            return;
        }
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Routes one request: router-local endpoints answer directly, everything
/// else proxies to the backend the routing table picks.
fn route(
    shared: &RouterShared,
    clients: &mut HashMap<usize, Client>,
    request: &HttpRequest,
) -> (Endpoint, u16, String, Vec<u8>) {
    let method = request.method.as_str();
    let target = request.target.as_str();
    let primary = shared.primary.load(Ordering::Acquire);
    match (method, target) {
        ("GET", "/healthz") => {
            let alive = (0..shared.backends.len()).filter(|&idx| shared.alive(idx)).count();
            let body = Json::object()
                .set("status", "ok")
                .set("role", "router")
                .set("generation", shared.generation.load(Ordering::Acquire))
                .set("primary", shared.backends[primary].http.as_str())
                .set("ack", shared.ack.label())
                .set("backends_total", shared.backends.len() as u64)
                .set("backends_alive", alive as u64)
                .set("failovers", shared.metrics.failover_total.get())
                .set("last_failover_blackout_ms", shared.last_blackout_ms.load(Ordering::Acquire))
                .set("last_promotion_seq", shared.last_promotion_seq.load(Ordering::Acquire))
                .set("replication_lag_records", follower_lag(shared, primary))
                .set("resyncs_observed", shared.metrics.route_resyncs_observed.get())
                .set("max_ack_stall_micros", shared.metrics.route_max_ack_stall_micros.get())
                .set("read_failovers", shared.metrics.route_read_failover_total.get())
                .to_compact();
            (Endpoint::Healthz, 200, "application/json".to_string(), body.into_bytes())
        }
        ("GET", "/metrics") => {
            let body = shared.metrics.render_prometheus().into_bytes();
            (Endpoint::Metrics, 200, "text/plain; version=0.0.4".to_string(), body)
        }
        ("POST", "/v1/shutdown") => {
            shared.begin_shutdown();
            let body = Json::object().set("status", "shutting down").to_compact().into_bytes();
            (Endpoint::Shutdown, 200, "application/json".to_string(), body)
        }
        ("GET", t) if t.starts_with("/v1/sites/") => {
            let host = &t["/v1/sites/".len()..];
            ring_read(shared, clients, host.as_bytes(), Endpoint::Sites, request, primary)
        }
        ("POST", "/v1/classify") => {
            ring_read(shared, clients, &request.body, Endpoint::Classify, request, primary)
        }
        _ => {
            let endpoint = match (method, target) {
                ("POST", "/v1/visit") => Endpoint::Visit,
                ("POST", "/v1/expire") => Endpoint::Expire,
                ("GET", "/v1/marks") => Endpoint::Marks,
                ("GET", t) if t.starts_with("/v1/sites") => Endpoint::Sites,
                _ => Endpoint::Other,
            };
            let routed = proxy(shared, clients, primary, endpoint, request);
            // First successful proxied write after a promotion closes the
            // write blackout — record how long writers were dark.
            if matches!(endpoint, Endpoint::Visit | Endpoint::Expire)
                && (200..300).contains(&routed.1)
            {
                if let Some(promoted) = shared.promoted_at.lock().take() {
                    shared
                        .last_blackout_ms
                        .store(promoted.elapsed().as_millis() as u64, Ordering::Release);
                }
            }
            routed
        }
    }
}

/// The primary's applied sequence minus the slowest alive follower's —
/// `0` when there is nothing alive to lag.
fn follower_lag(shared: &RouterShared, primary: usize) -> u64 {
    let primary_seq = shared.states[primary].applied_seq.load(Ordering::Acquire);
    (0..shared.backends.len())
        .filter(|&idx| idx != primary && shared.alive(idx))
        .map(|idx| {
            primary_seq.saturating_sub(shared.states[idx].applied_seq.load(Ordering::Acquire))
        })
        .max()
        .unwrap_or(0)
}

/// A ring-routed read with one-hop failover: the first pick can die
/// between heartbeats (the loop needs `miss_threshold` ticks to notice),
/// so a transport failure retries ONCE on the next alive distinct backend
/// instead of bouncing a 503 to the client. Reads only — replicated state
/// and stateless classify are safe to serve from any backend — and one
/// hop only, so a sick cluster degrades to errors, not a retry storm.
fn ring_read(
    shared: &RouterShared,
    clients: &mut HashMap<usize, Client>,
    key: &[u8],
    endpoint: Endpoint,
    request: &HttpRequest,
    primary: usize,
) -> (Endpoint, u16, String, Vec<u8>) {
    let idx = ring_route(&shared.ring, &shared.states, key, primary);
    match try_proxy(shared, clients, idx, endpoint, request) {
        Ok(routed) => routed,
        Err(()) => match ring_next(&shared.ring, &shared.states, key, idx) {
            Some(next) => {
                shared.metrics.route_read_failover_total.inc();
                proxy(shared, clients, next, endpoint, request)
            }
            None => unavailable(endpoint),
        },
    }
}

/// Forwards the request to backend `idx` and relays the response. Any
/// transport failure drops the cached client and answers `503` — the
/// heartbeat loop, not the proxy path, decides who is dead.
fn proxy(
    shared: &RouterShared,
    clients: &mut HashMap<usize, Client>,
    idx: usize,
    endpoint: Endpoint,
    request: &HttpRequest,
) -> (Endpoint, u16, String, Vec<u8>) {
    try_proxy(shared, clients, idx, endpoint, request).unwrap_or_else(|()| unavailable(endpoint))
}

/// `Err(())` is a transport failure (connect/read/write) — the backend
/// never produced an HTTP response. Backend-sent errors come back as
/// `Ok` with their real status.
fn try_proxy(
    shared: &RouterShared,
    clients: &mut HashMap<usize, Client>,
    idx: usize,
    endpoint: Endpoint,
    request: &HttpRequest,
) -> Result<(Endpoint, u16, String, Vec<u8>), ()> {
    let Some((host, port)) = shared.backends[idx].http_parts() else {
        return Err(());
    };
    let client = clients
        .entry(idx)
        .or_insert_with(|| Client::with_policy(host, port, 1, Duration::from_millis(2)));
    match client.request(&request.method, &request.target, &request.body) {
        Ok(resp) => {
            let content_type =
                resp.headers.get("content-type").unwrap_or("application/json").to_string();
            Ok((endpoint, resp.status, content_type, resp.body))
        }
        Err(_) => {
            clients.remove(&idx);
            Err(())
        }
    }
}

fn unavailable(endpoint: Endpoint) -> (Endpoint, u16, String, Vec<u8>) {
    (endpoint, 503, "application/json".to_string(), br#"{"error":"backend unavailable"}"#.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, ServeConfig};

    #[test]
    fn backend_spec_parsing() {
        let backend = BackendAddr::parse("127.0.0.1:8080,127.0.0.1:9080").unwrap();
        assert_eq!(backend.http, "127.0.0.1:8080");
        assert_eq!(backend.repl, "127.0.0.1:9080");
        assert_eq!(backend.http_parts(), Some(("127.0.0.1", 8080)));
        for bad in ["127.0.0.1:8080", "a,b", "127.0.0.1:8080,host:notaport", ":1,:2"] {
            assert!(BackendAddr::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn ring_skips_dead_backends_and_spreads_load() {
        let backends: Vec<BackendAddr> = (0..3)
            .map(|i| BackendAddr {
                http: format!("127.0.0.1:{}", 8000 + i),
                repl: format!("127.0.0.1:{}", 9000 + i),
            })
            .collect();
        let ring = build_ring(&backends);
        assert_eq!(ring.len(), 3 * RING_POINTS);
        let states: Vec<BackendState> = (0..3).map(|_| BackendState::default()).collect();
        for state in &states {
            state.alive.store(true, Ordering::Release);
        }
        let mut hits = [0u64; 3];
        for i in 0..3000 {
            let key = format!("host-{i}.example");
            hits[ring_route(&ring, &states, key.as_bytes(), 0)] += 1;
        }
        assert!(hits.iter().all(|&n| n > 500), "ring must spread load: {hits:?}");
        // Killing a backend reroutes its keys without moving the others.
        states[1].alive.store(false, Ordering::Release);
        for i in 0..3000 {
            let key = format!("host-{i}.example");
            let idx = ring_route(&ring, &states, key.as_bytes(), 0);
            assert_ne!(idx, 1, "dead backend must not be routed to");
        }
        // Same key, same backend — the hash is stable.
        let a = ring_route(&ring, &states, b"news1.example", 0);
        let b = ring_route(&ring, &states, b"news1.example", 0);
        assert_eq!(a, b);
        // All dead: fall back to the primary index.
        for state in &states {
            state.alive.store(false, Ordering::Release);
        }
        assert_eq!(ring_route(&ring, &states, b"news1.example", 2), 2);
    }

    fn request(
        addr: SocketAddr,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> crate::http::HttpResponse {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut conn = HttpConn::new(stream, Limits::default());
        crate::http::write_request(conn.stream_mut(), method, target, &addr.to_string(), body)
            .unwrap();
        conn.read_response().unwrap()
    }

    #[test]
    fn router_promotes_the_most_caught_up_follower_on_primary_death() {
        let node = |_| {
            start(ServeConfig {
                workers: 2,
                repl_port: Some(0),
                read_timeout: Duration::from_millis(2_000),
                write_timeout: Duration::from_millis(2_000),
                ..ServeConfig::default()
            })
            .unwrap()
        };
        let nodes: Vec<_> = (0..3).map(node).collect();
        let backends: Vec<BackendAddr> = nodes
            .iter()
            .map(|n| BackendAddr {
                http: n.addr().to_string(),
                repl: n.repl_addr().expect("repl listener").to_string(),
            })
            .collect();
        let router = start_router(RouterConfig {
            workers: 2,
            backends,
            heartbeat: Duration::from_millis(50),
            miss_threshold: 2,
            ack: ReplAckPolicy::Quorum,
            ..RouterConfig::default()
        })
        .unwrap();

        // Train S6 (useful preference cookies) through the router,
        // accumulating the jar across visits until a mark lands.
        let host = cp_webworld::table1_population(7)[5].domain.clone();
        let mut jar: Vec<String> = Vec::new();
        for i in 0..8 {
            let path = if i == 0 { "/".to_string() } else { format!("/page/{i}") };
            let mut body = Json::object().set("host", host.as_str()).set("path", path);
            if !jar.is_empty() {
                body = body.set("cookie", jar.join("; "));
            }
            let resp = request(router.addr(), "POST", "/v1/visit", body.to_compact().as_bytes());
            assert_eq!(resp.status, 200, "{}", resp.body_string());
            let json = Json::parse(&resp.body_string()).unwrap();
            for cookie in json.get("set_cookies").and_then(Json::as_array).into_iter().flatten() {
                let cookie = cookie.as_str().unwrap().to_string();
                if !jar.contains(&cookie) {
                    jar.push(cookie);
                }
            }
        }
        let marks_before = request(router.addr(), "GET", "/v1/marks", b"").body_string();
        assert!(!marks_before.is_empty(), "training must have marked something");
        // Ring reads and router health answer. The trained site's summary
        // is replicated, so whichever backend the ring picks has it.
        let resp = request(router.addr(), "GET", &format!("/v1/sites/{host}"), b"");
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let health =
            Json::parse(&request(router.addr(), "GET", "/healthz", b"").body_string()).unwrap();
        assert_eq!(health.get("role").and_then(Json::as_str), Some("router"));
        assert_eq!(health.get("generation").and_then(Json::as_f64), Some(1.0));
        assert_eq!(health.get("backends_alive").and_then(Json::as_f64), Some(3.0));

        // Kill the primary out from under the router.
        nodes[0].shutdown();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            assert!(Instant::now() < deadline, "router never promoted a follower");
            let health =
                Json::parse(&request(router.addr(), "GET", "/healthz", b"").body_string()).unwrap();
            if health.get("failovers").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0 {
                assert_eq!(health.get("generation").and_then(Json::as_f64), Some(2.0));
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        // Writes work again through the promoted primary, and no acked
        // mark was lost in the handoff.
        let deadline = Instant::now() + Duration::from_secs(10);
        let write_body =
            Json::object().set("host", host.as_str()).set("path", "/after-failover").to_compact();
        loop {
            let resp = request(router.addr(), "POST", "/v1/visit", write_body.as_bytes());
            if resp.status == 200 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "writes never recovered after failover: last {} {}",
                resp.status,
                resp.body_string()
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        let marks_after = request(router.addr(), "GET", "/v1/marks", b"").body_string();
        for line in marks_before.lines() {
            assert!(
                marks_after.lines().any(|l| l == line),
                "acked mark {line:?} lost across failover"
            );
        }
        let health =
            Json::parse(&request(router.addr(), "GET", "/healthz", b"").body_string()).unwrap();
        assert!(
            health.get("last_promotion_seq").and_then(Json::as_f64).unwrap() >= 1.0,
            "promotion must pick a caught-up follower"
        );
        router.shutdown();
    }
}
