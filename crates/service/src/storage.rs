//! The storage write layer: real files plus deterministic fault injection.
//!
//! Durability code never touches `std::fs::File` directly — it writes
//! through the [`StorageFile`] trait, so the same WAL/snapshot logic runs
//! over a [`RealFile`] in production and a [`FaultFile`] under test. The
//! fault layer mirrors `cp_net::FaultPlan`: every fault fate is a pure
//! function of `(seed, file tag, operation ordinal)` drawn from a
//! throwaway RNG, so a faulted run is exactly as reproducible as a clean
//! one and a zero-rate config is behaviorally identical to no faults.
//!
//! Injected kinds model the classic storage failure taxonomy:
//!
//! * **short write** — `write` persists a prefix and returns `Ok(n < len)`
//!   (legal POSIX behavior; callers must loop);
//! * **torn write** — a prefix reaches the file and the call errors, the
//!   on-disk state a power cut mid-`write` leaves behind;
//! * **ENOSPC** — the write errors with nothing persisted;
//! * **failed fsync** — `sync` errors without syncing.
//!
//! All injected faults are *error-visible* to the writer (or legal short
//! counts), so the WAL's truncate-and-retry discipline can always restore
//! the committed prefix; silent corruption is out of scope (the checksum
//! layer catches it at recovery instead).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use cp_runtime::rng::{Rng, SeedableRng, StdRng};

use crate::metrics::ServiceMetrics;

/// The write-side file operations durability code is allowed to use.
pub trait StorageFile: std::fmt::Debug + Send {
    /// Writes a prefix of `buf`, returning how many bytes were accepted
    /// (possibly fewer than `buf.len()`).
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize>;
    /// Forces written data to stable storage.
    fn sync(&mut self) -> std::io::Result<()>;
    /// Truncates the file to `len` bytes and repositions the cursor there.
    fn truncate_to(&mut self, len: u64) -> std::io::Result<()>;
}

/// A plain filesystem-backed [`StorageFile`].
#[derive(Debug)]
pub struct RealFile {
    file: File,
}

impl RealFile {
    /// Opens (or creates) `path` for writing, cursor at `pos`.
    pub fn open(path: &Path, pos: u64) -> std::io::Result<RealFile> {
        // Recovery reopens logs mid-file, so an existing file must keep
        // its bytes: never truncate here.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        file.seek(SeekFrom::Start(pos))?;
        Ok(RealFile { file })
    }
}

impl StorageFile for RealFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.file.write(buf)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    fn truncate_to(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        Ok(())
    }
}

/// Per-operation storage fault probabilities. Write operations draw among
/// the three write kinds (mutually exclusive per call); sync operations
/// fail with `fail_fsync`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaults {
    /// Seed for the per-operation fault rolls.
    pub seed: u64,
    /// Probability a write persists only a prefix and returns `Ok(n)`.
    pub short_write: f64,
    /// Probability a write persists a prefix and then errors.
    pub torn_write: f64,
    /// Probability a write errors with nothing persisted (disk full).
    pub enospc: f64,
    /// Probability a sync errors without syncing.
    pub fail_fsync: f64,
}

impl StorageFaults {
    /// Splits a total write-fault probability `rate` evenly across the
    /// three write kinds, and fails syncs at the full `rate`.
    pub fn uniform(seed: u64, rate: f64) -> StorageFaults {
        let p = rate.clamp(0.0, 1.0) / 3.0;
        StorageFaults {
            seed,
            short_write: p,
            torn_write: p,
            enospc: p,
            fail_fsync: rate.clamp(0.0, 1.0),
        }
    }

    /// Whether every rate is zero.
    pub fn is_none(&self) -> bool {
        self.short_write == 0.0
            && self.torn_write == 0.0
            && self.enospc == 0.0
            && self.fail_fsync == 0.0
    }
}

/// One injected storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StorageFaultKind {
    ShortWrite,
    TornWrite,
    Enospc,
    FailedFsync,
}

impl StorageFaultKind {
    fn label(self) -> &'static str {
        match self {
            StorageFaultKind::ShortWrite => "short_write",
            StorageFaultKind::TornWrite => "torn_write",
            StorageFaultKind::Enospc => "enospc",
            StorageFaultKind::FailedFsync => "fsync",
        }
    }
}

/// FNV-1a over the fault seed and an operation's identity — the same
/// keyed-throwaway-RNG construction as `cp_net::FaultInjector::fault_key`,
/// so fault fates never consume from (or perturb) any other stream.
fn fault_key(seed: u64, tag: u64, op: u8, ordinal: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17);
    for b in tag.to_le_bytes().into_iter().chain([op]).chain(ordinal.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A [`StorageFile`] wrapper injecting deterministic write-path faults.
///
/// `tag` identifies the file (e.g. the shard index), so two files under
/// the same fault seed see independent — but each reproducible — fault
/// streams. Injected faults are counted in `cp_wal_faults_total`.
#[derive(Debug)]
pub struct FaultFile<F> {
    inner: F,
    faults: StorageFaults,
    tag: u64,
    writes: u64,
    syncs: u64,
    metrics: Arc<ServiceMetrics>,
}

impl<F: StorageFile> FaultFile<F> {
    /// Wraps `inner` with the given fault config.
    pub fn new(inner: F, faults: StorageFaults, tag: u64, metrics: Arc<ServiceMetrics>) -> Self {
        FaultFile { inner, faults, tag, writes: 0, syncs: 0, metrics }
    }

    fn draw(&self, op: u8, ordinal: u64) -> Option<StorageFaultKind> {
        if self.faults.is_none() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(fault_key(self.faults.seed, self.tag, op, ordinal));
        let roll = rng.gen::<f64>();
        if op == b's' {
            return (roll < self.faults.fail_fsync).then_some(StorageFaultKind::FailedFsync);
        }
        let mut edge = self.faults.short_write;
        if roll < edge {
            return Some(StorageFaultKind::ShortWrite);
        }
        edge += self.faults.torn_write;
        if roll < edge {
            return Some(StorageFaultKind::TornWrite);
        }
        edge += self.faults.enospc;
        if roll < edge {
            return Some(StorageFaultKind::Enospc);
        }
        None
    }

    fn record(&self, kind: StorageFaultKind) {
        self.metrics.record_wal_fault(kind.label());
    }

    /// Best-effort write of all of `buf` to the inner file (used to
    /// persist the prefix of a torn write).
    fn write_prefix(&mut self, buf: &[u8]) {
        let mut off = 0;
        while off < buf.len() {
            match self.inner.write(&buf[off..]) {
                Ok(0) | Err(_) => return,
                Ok(n) => off += n,
            }
        }
    }
}

impl<F: StorageFile> StorageFile for FaultFile<F> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let ordinal = self.writes;
        self.writes += 1;
        match self.draw(b'w', ordinal) {
            None => self.inner.write(buf),
            Some(kind @ StorageFaultKind::ShortWrite) => {
                self.record(kind);
                // A legal partial count: at least one byte, at most half.
                let n = (buf.len() / 2).max(1).min(buf.len());
                self.write_prefix(&buf[..n]);
                Ok(n)
            }
            Some(kind @ StorageFaultKind::TornWrite) => {
                self.record(kind);
                let n = (buf.len() / 2).max(1).min(buf.len());
                self.write_prefix(&buf[..n]);
                Err(std::io::Error::other("injected torn write"))
            }
            Some(kind @ StorageFaultKind::Enospc) => {
                self.record(kind);
                Err(std::io::Error::other("injected ENOSPC"))
            }
            Some(StorageFaultKind::FailedFsync) => unreachable!("sync kind on write op"),
        }
    }

    fn sync(&mut self) -> std::io::Result<()> {
        let ordinal = self.syncs;
        self.syncs += 1;
        match self.draw(b's', ordinal) {
            None => self.inner.sync(),
            Some(kind) => {
                self.record(kind);
                Err(std::io::Error::other("injected fsync failure"))
            }
        }
    }

    fn truncate_to(&mut self, len: u64) -> std::io::Result<()> {
        // Truncation is the *recovery* arm of the retry discipline; faults
        // model the write path, so it passes through clean.
        self.inner.truncate_to(len)
    }
}

/// Opens `path` as a [`StorageFile`] at `pos`, fault-wrapped when a fault
/// config is present.
pub fn open_storage(
    path: &Path,
    pos: u64,
    faults: Option<StorageFaults>,
    tag: u64,
    metrics: &Arc<ServiceMetrics>,
) -> std::io::Result<Box<dyn StorageFile>> {
    let real = RealFile::open(path, pos)?;
    Ok(match faults {
        Some(f) if !f.is_none() => Box::new(FaultFile::new(real, f, tag, Arc::clone(metrics))),
        _ => Box::new(real),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cp-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_all(file: &mut dyn StorageFile, buf: &[u8]) -> std::io::Result<()> {
        let mut off = 0;
        while off < buf.len() {
            match file.write(&buf[off..])? {
                0 => return Err(std::io::Error::other("write zero")),
                n => off += n,
            }
        }
        Ok(())
    }

    #[test]
    fn real_file_round_trips_and_truncates() {
        let path = tmp("real.bin");
        let mut f = RealFile::open(&path, 0).unwrap();
        write_all(&mut f, b"hello world").unwrap();
        f.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        f.truncate_to(5).unwrap();
        write_all(&mut f, b"!").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello!");
    }

    #[test]
    fn zero_rate_faults_are_identity() {
        let path = tmp("zero.bin");
        let metrics = Arc::new(ServiceMetrics::new());
        let faults = StorageFaults::uniform(1, 0.0);
        assert!(faults.is_none());
        let mut f =
            FaultFile::new(RealFile::open(&path, 0).unwrap(), faults, 0, Arc::clone(&metrics));
        write_all(&mut f, b"clean").unwrap();
        f.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"clean");
        assert_eq!(metrics.wal_fault_total(), 0);
    }

    #[test]
    fn fault_stream_is_deterministic_and_counted() {
        let run = |seed: u64| {
            let path = tmp(&format!("det-{seed}.bin"));
            let metrics = Arc::new(ServiceMetrics::new());
            let faults = StorageFaults::uniform(seed, 0.9);
            let mut f =
                FaultFile::new(RealFile::open(&path, 0).unwrap(), faults, 3, Arc::clone(&metrics));
            let mut outcomes = Vec::new();
            for i in 0..64u64 {
                let buf = vec![i as u8; 16];
                outcomes.push(match f.write(&buf) {
                    Ok(n) => format!("ok{n}"),
                    Err(e) => format!("err:{e}"),
                });
                outcomes.push(match f.sync() {
                    Ok(()) => "sync".to_string(),
                    Err(e) => format!("syncerr:{e}"),
                });
            }
            std::fs::remove_file(&path).ok();
            (outcomes, metrics.wal_fault_total())
        };
        let (a, faults_a) = run(42);
        let (b, faults_b) = run(42);
        assert_eq!(a, b, "same seed, same fault stream");
        assert!(faults_a > 0, "90% rate over 128 ops must fault");
        assert_eq!(faults_a, faults_b);
        let (c, _) = run(43);
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn torn_write_persists_a_prefix_then_errors() {
        // Drive a torn-only config until one fires; the file must hold a
        // strict prefix of the attempted buffer afterwards.
        let path = tmp("torn.bin");
        let metrics = Arc::new(ServiceMetrics::new());
        let faults = StorageFaults {
            seed: 7,
            short_write: 0.0,
            torn_write: 1.0,
            enospc: 0.0,
            fail_fsync: 0.0,
        };
        let mut f =
            FaultFile::new(RealFile::open(&path, 0).unwrap(), faults, 0, Arc::clone(&metrics));
        let err = f.write(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn"));
        let on_disk = std::fs::read(&path).unwrap();
        assert!(!on_disk.is_empty() && on_disk.len() < 10, "prefix persisted: {on_disk:?}");
        assert!(b"0123456789".starts_with(&on_disk[..]));
    }
}
