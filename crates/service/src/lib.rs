//! # cp-serve — the CookiePicker decision service
//!
//! A std-only, multi-threaded HTTP/1.1 server that puts the detection
//! engine behind real TCP:
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /v1/classify` | Figure-5 decision on a caller-provided page pair |
//! | `POST /v1/visit` | One FORCUM training step against the embedded world |
//! | `POST /v1/expire` | Drop decayed usefulness marks and restart training |
//! | `GET /v1/sites` | Keyset-paginated host listing (`after`, `limit`, `more`) |
//! | `GET /v1/sites/{host}` | Training summary for a site |
//! | `GET /v1/marks` | Sorted `host cookie` dump of every useful mark |
//! | `GET /healthz` | Liveness + recovery status + cluster role/generation |
//! | `GET /metrics` | Prometheus text exposition |
//! | `POST /v1/repl/lead` | Become primary: handshake the listed followers |
//! | `POST /v1/shutdown` | Graceful shutdown (drains, flushes, snapshots) |
//!
//! Layering: [`http`] is the wire (strict incremental HTTP/1.1 parser,
//! typed errors, never a panic), [`store`] is the host-sharded training
//! state, [`storage`]/[`wal`]/[`snapshot`] make it crash-safe (per-shard
//! write-ahead logs + atomic snapshots over a fault-injectable write
//! layer), [`world`] is the embedded deterministic site population,
//! [`metrics`] is the atomic registry, [`server`] wires them behind the
//! sharded readiness loop (falling back to a bounded-queue worker pool
//! where no native poller exists), and [`loadgen`] is the seeded
//! closed-loop client that benchmarks the whole stack.
//!
//! Cluster mode layers on top: [`replication`] ships every applied WAL
//! record from a primary to its followers over the WAL's own frame format
//! (generation-fenced, ack-gated), and [`router`] is the thin tier that
//! consistent-hashes reads across backends, heartbeats them, and promotes
//! the most-caught-up follower when the primary dies. See `DESIGN.md` §15.

pub mod cache;
pub mod chaosproxy;
mod eventloop;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod replication;
pub mod router;
pub mod server;
pub mod snapshot;
pub mod storage;
pub mod store;
pub mod wal;
pub mod world;

pub use cache::AnalysisCache;
pub use chaosproxy::{parse_schedule, ChaosProxy, Phase};
pub use cp_webworld::{Universe, WorldKind};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use replication::{ClusterState, ReplAckPolicy, Replicator, Role};
pub use router::{start_router, BackendAddr, RouterConfig, RouterHandle};
pub use server::{start, ServeConfig, ServerHandle};
pub use storage::StorageFaults;
pub use store::{DurabilityConfig, RecoveryStats, ShardedStore};
pub use wal::FsyncPolicy;
pub use world::{ChaosConfig, DerivedSite, EmbeddedWorld, DEFAULT_SITE_CACHE};
