//! The page-analysis cache: compiled [`PageAnalysis`] values keyed by the
//! FNV-1a hash of the page body bytes.
//!
//! Both `/v1/classify` bodies and `EmbeddedWorld` renders repeat heavily —
//! the world is deterministic, so the same `(site, path, cookies)` triple
//! renders the same bytes forever, and classify clients tend to replay the
//! same page pairs. Caching the *compiled* analysis (not the decision) is
//! what makes reuse safe: a `PageAnalysis` depends only on the body and
//! the `compare_from_body` flag, never on the opposing page or the
//! thresholds, so any comparison may use a cached entry and still produce
//! a bit-identical decision.
//!
//! Keys are `fnv1a64(body) ^ root_salt` where the salt separates the
//! body-rooted from the document-rooted compilation of the same bytes —
//! the only configuration axis that changes what is compiled.
//!
//! Eviction is least-recently-used over a small fixed capacity. The scan
//! is `O(capacity)` on insert only; lookups are one hash probe under a
//! mutex held for nanoseconds (the expensive parse + extract runs
//! *outside* the lock, so concurrent misses on distinct bodies do not
//! serialize — two racing misses on the *same* body both build, and the
//! loser's identical value is dropped).

use std::collections::HashMap;
use std::sync::Arc;

use cookiepicker_core::{fnv1a64, PageAnalysis};
use cp_runtime::sync::Mutex;

/// Key salt for analyses rooted at `<body>` (`compare_from_body = true`).
const BODY_ROOT_SALT: u64 = 0x424f_4459_524f_4f54;
/// Key salt for analyses rooted at the document.
const DOC_ROOT_SALT: u64 = 0x444f_4352_4f4f_5421;

struct Entry {
    analysis: Arc<PageAnalysis>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// A bounded LRU cache of compiled page analyses. See the module docs.
pub struct AnalysisCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl AnalysisCache {
    /// Creates a cache holding at most `capacity` analyses (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
        }
    }

    /// Number of cached analyses.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the compiled analysis for `html`, building and inserting it
    /// on miss. The second element reports whether this was a hit.
    pub fn get_or_analyze(&self, html: &str, compare_from_body: bool) -> (Arc<PageAnalysis>, bool) {
        let salt = if compare_from_body { BODY_ROOT_SALT } else { DOC_ROOT_SALT };
        let key = fnv1a64(html.as_bytes()) ^ salt;
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                return (Arc::clone(&entry.analysis), true);
            }
        }
        // Miss: compile outside the lock so other threads proceed.
        let analysis = Arc::new(PageAnalysis::from_html(html, compare_from_body));
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner
            .map
            .entry(key)
            .or_insert_with(|| Entry { analysis: Arc::clone(&analysis), last_used: tick });
        entry.last_used = tick;
        let result = Arc::clone(&entry.analysis);
        if inner.map.len() > self.capacity {
            // The just-touched entry carries the newest tick, so the
            // minimum is always some other entry.
            let victim = inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k);
            if let Some(victim) = victim {
                inner.map.remove(&victim);
            }
        }
        (result, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE_A: &str = "<body><div><p>page alpha</p></div></body>";
    const PAGE_B: &str = "<body><div><p>page bravo</p></div></body>";
    const PAGE_C: &str = "<body><div><p>page charlie</p></div></body>";

    #[test]
    fn hit_returns_the_same_analysis() {
        let cache = AnalysisCache::new(8);
        let (first, hit1) = cache.get_or_analyze(PAGE_A, true);
        let (second, hit2) = cache.get_or_analyze(PAGE_A, true);
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&first, &second), "a hit must not rebuild");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn root_flag_is_part_of_the_key() {
        let cache = AnalysisCache::new(8);
        let (body_rooted, _) = cache.get_or_analyze(PAGE_A, true);
        let (doc_rooted, hit) = cache.get_or_analyze(PAGE_A, false);
        assert!(!hit, "same bytes, different root: distinct entries");
        assert!(!Arc::ptr_eq(&body_rooted, &doc_rooted));
        assert!(doc_rooted.tree().len() > body_rooted.tree().len());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = AnalysisCache::new(2);
        cache.get_or_analyze(PAGE_A, true);
        cache.get_or_analyze(PAGE_B, true);
        // Touch A so B becomes the LRU entry...
        let (_, hit_a) = cache.get_or_analyze(PAGE_A, true);
        assert!(hit_a);
        // ...then C's insert must evict B, not A.
        let (_, hit_c) = cache.get_or_analyze(PAGE_C, true);
        assert!(!hit_c);
        assert_eq!(cache.len(), 2);
        let (_, hit_a_again) = cache.get_or_analyze(PAGE_A, true);
        let (_, hit_b_again) = cache.get_or_analyze(PAGE_B, true);
        assert!(hit_a_again, "recently used entry survived");
        assert!(!hit_b_again, "LRU entry was evicted");
    }

    #[test]
    fn capacity_floor_is_one() {
        let cache = AnalysisCache::new(0);
        cache.get_or_analyze(PAGE_A, true);
        cache.get_or_analyze(PAGE_B, true);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = Arc::new(AnalysisCache::new(16));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for _ in 0..50 {
                        for page in [PAGE_A, PAGE_B, PAGE_C] {
                            let (analysis, _) = cache.get_or_analyze(page, true);
                            assert_eq!(analysis.content().len(), 1);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 3);
    }
}
