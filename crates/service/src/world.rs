//! The embedded synthetic Web the service trains against.
//!
//! `POST /v1/visit` runs one FORCUM step: render the regular page for the
//! visited host with the cookies the client presented, render the hidden
//! version with the not-yet-marked persistent cookies stripped, run the
//! Figure-5 decision, and update the site's training state in the sharded
//! store.
//!
//! Unlike `cp_webworld::SiteServer` (which draws page-dynamics noise from
//! one shared RNG, making renders depend on global request order), the
//! embedded world derives the noise RNG from `(site seed, path, variant)`
//! — every render is a pure function of the request, so a fixed visit mix
//! produces identical decision counters no matter how worker threads
//! interleave. That is both the scalability story (no global RNG lock on
//! the hot path) and what makes `loadgen` runs reproducible.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use cookiepicker_core::{decide_analyzed, CookiePickerConfig, DetectionRecord};
use cp_cookies::{parse_cookie_header, SimTime};
use cp_net::{FaultKind, FaultRates};
use cp_runtime::json::{escape_into, Json, ToJson};
use cp_runtime::rng::{SeedableRng, StdRng};
use cp_runtime::sync::Mutex;
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::universe::{Universe, WorldKind};
use cp_webworld::SiteSpec;

use crate::cache::AnalysisCache;
use crate::metrics::ServiceMetrics;
use crate::store::SiteEntry;
use crate::wal::{EventKind, VisitEvent};

/// Noise-stream salts for the two page variants of one visit. Distinct
/// salts mean the regular and hidden renders see *different* page-dynamics
/// noise — exactly the adversarial condition the detectors must reject.
const REGULAR_SALT: u64 = 0x5245_4755_4c41_5221;
const HIDDEN_SALT: u64 = 0x4849_4444_454e_5f21;

/// Chaos mode: deterministic fault injection for the embedded world's
/// hidden fetches. Each probe's fate is a pure function of
/// `(seed, host, path, probe sequence, attempt)`, so a chaos run is as
/// reproducible as a fault-free one — and a rate-zero config is
/// behaviorally identical to no chaos at all.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the per-fetch fault rolls (independent of the world seed).
    pub seed: u64,
    /// Fault rates applied to hidden fetches.
    pub rates: FaultRates,
    /// Retries after a faulted hidden fetch before the probe defers.
    pub retries: u32,
}

impl ChaosConfig {
    /// A config injecting faults at `rate` (split across fault kinds, as in
    /// [`FaultRates::uniform`]) with the default retry budget.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        ChaosConfig { seed, rates: FaultRates::uniform(rate), retries: 2 }
    }
}

/// The `cp_hidden_fetch_total` result label and the inconclusive reason a
/// fault kind maps to.
fn fault_labels(kind: &FaultKind) -> (&'static str, &'static str) {
    match kind {
        FaultKind::Drop => ("drop", "transport"),
        FaultKind::Reset(_) => ("reset", "transport"),
        FaultKind::Http5xx(_) => ("http_5xx", "server_error"),
        FaultKind::Truncate => ("truncated", "truncated"),
        FaultKind::ExtraLatency(_) => ("deadline", "deadline"),
    }
}

/// FNV-1a over the chaos seed and the probe's identity. `seq` is the
/// site's probe ordinal (decided + deferred), so a deferred probe re-rolls
/// its fate on the next visit instead of failing forever.
fn chaos_key(seed: u64, host: &str, path: &str, seq: u64, attempt: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in host.bytes().chain([0xFF]).chain(path.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for b in seq.to_le_bytes().into_iter().chain(attempt.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The outcome of one `/v1/visit` FORCUM step.
#[derive(Debug, Clone)]
pub struct VisitOutcome {
    /// Visited host.
    pub host: String,
    /// Visited path (after entry-redirect resolution).
    pub path: String,
    /// The probe record, when a hidden request was issued (a visit with no
    /// testable cookies performs no probe).
    pub record: Option<DetectionRecord>,
    /// Cookie names newly marked useful by this visit.
    pub marked_now: Vec<String>,
    /// Total cookies marked useful for this site so far.
    pub marked_total: usize,
    /// Whether FORCUM training is still active for the site.
    pub training_active: bool,
    /// `name=value` cookies the site (re-)issues for this path — the
    /// client's jar for its next visit.
    pub set_cookies: Vec<String>,
    /// When the hidden fetch was faulted (chaos mode) and the probe
    /// deferred, the inconclusive-reason label; `None` for decided visits
    /// and visits that probe nothing.
    pub inconclusive: Option<String>,
}

impl VisitOutcome {
    /// Compact JSON rendering, byte-identical to
    /// `self.to_json().to_compact()`. The visit response is the hottest
    /// body on the serving path, so the common no-probe case writes one
    /// string directly instead of building (and then walking) a
    /// [`Json`] tree; probe responses carry a nested record and take the
    /// tree path.
    pub fn to_compact_json(&self) -> String {
        if self.record.is_some() {
            return self.to_json().to_compact();
        }
        use std::fmt::Write as _;
        let mut out = String::with_capacity(160);
        out.push_str("{\"host\":");
        escape_into(&mut out, &self.host);
        out.push_str(",\"inconclusive\":");
        match &self.inconclusive {
            Some(reason) => escape_into(&mut out, reason),
            None => out.push_str("null"),
        }
        out.push_str(",\"marked_now\":");
        write_str_array(&mut out, &self.marked_now);
        let _ = write!(out, ",\"marked_total\":{}", self.marked_total);
        out.push_str(",\"path\":");
        escape_into(&mut out, &self.path);
        out.push_str(",\"probed\":false,\"record\":null,\"set_cookies\":");
        write_str_array(&mut out, &self.set_cookies);
        out.push_str(",\"training_active\":");
        out.push_str(if self.training_active { "true" } else { "false" });
        out.push('}');
        out
    }
}

/// Compact JSON array of string literals (matches the tree rendering).
fn write_str_array(out: &mut String, items: &[String]) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, item);
    }
    out.push(']');
}

impl ToJson for VisitOutcome {
    fn to_json(&self) -> Json {
        Json::object()
            .set("host", &self.host)
            .set("path", &self.path)
            .set("probed", self.record.is_some())
            .set("record", self.record.as_ref().map(ToJson::to_json))
            .set("marked_now", self.marked_now.clone())
            .set("marked_total", self.marked_total)
            .set("training_active", self.training_active)
            .set("set_cookies", self.set_cookies.clone())
            .set("inconclusive", self.inconclusive.as_ref().map(|r| Json::from(r.as_str())))
    }
}

/// Default capacity of the derived-site LRU: comfortably holds the paper
/// populations and a hot Zipf head, bounded regardless of world size.
pub const DEFAULT_SITE_CACHE: usize = 1024;

/// A site spec derived from the universe plus everything per-visit code
/// would otherwise recompute per request — today the canonical page paths,
/// which [`SiteSpec::page_paths`] allocates fresh on every call.
#[derive(Debug)]
pub struct DerivedSite {
    /// The derived (or pinned-overlay) spec.
    pub spec: Arc<SiteSpec>,
    /// `spec.page_paths()`, computed once when the site enters the cache.
    pub paths: Vec<String>,
    /// Per-path issued `name=value` cookies, parallel to [`paths`]
    /// (plus the entry-redirect target): the Observe hot path serves
    /// them by lookup instead of re-formatting on every visit.
    ///
    /// [`paths`]: DerivedSite::paths
    issued: Vec<(String, Vec<String>)>,
}

impl DerivedSite {
    /// The cookies this site issues on `path`, from the precomputed table
    /// when `path` is canonical, formatted on the fly otherwise.
    pub fn issued_for(&self, path: &str) -> Vec<String> {
        match self.issued.iter().find(|(p, _)| p == path) {
            Some((_, cookies)) => cookies.clone(),
            None => issued_cookies(&self.spec, path),
        }
    }
}

/// The `name=value` cookies `spec` (re-)issues on `path` — what the
/// client should present next time, and FORCUM's new-cookie signal.
fn issued_cookies(spec: &SiteSpec, path: &str) -> Vec<String> {
    spec.cookies
        .iter()
        .filter(|c| c.scope.matches(path))
        .map(|c| format!("{}={}", c.name, cookie_value(spec, &c.name)))
        .collect()
}

/// How a site lookup was satisfied — the `result` label on
/// `cp_site_derive_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeriveOutcome {
    /// Served from the derived-site cache.
    Hit,
    /// Derived from the universe and cached.
    Miss,
    /// The host does not exist in the universe.
    Unknown,
}

impl DeriveOutcome {
    /// The Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            DeriveOutcome::Hit => "hit",
            DeriveOutcome::Miss => "miss",
            DeriveOutcome::Unknown => "unknown",
        }
    }
}

struct SiteCacheEntry {
    site: Arc<DerivedSite>,
    last_used: u64,
}

struct SiteCacheInner {
    map: HashMap<String, SiteCacheEntry>,
    tick: u64,
}

/// Bounded LRU of derived sites, keyed by host — the same tick-stamped
/// eviction scheme as [`AnalysisCache`]. This is what makes a
/// `uniform:1000000` world O(cache) memory: only the hosts actually
/// visited recently are materialized.
struct SiteCache {
    inner: Mutex<SiteCacheInner>,
    capacity: usize,
}

impl SiteCache {
    fn new(capacity: usize) -> Self {
        SiteCache {
            inner: Mutex::new(SiteCacheInner { map: HashMap::new(), tick: 0 }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `host`, deriving from `universe` on a miss. Returns the
    /// site (if the host exists), how the lookup was satisfied, and the
    /// derivation time in microseconds (0 for hits).
    fn get_or_derive(
        &self,
        universe: &Universe,
        host: &str,
    ) -> (Option<Arc<DerivedSite>>, DeriveOutcome, u64) {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(host) {
                entry.last_used = tick;
                return (Some(Arc::clone(&entry.site)), DeriveOutcome::Hit, 0);
            }
        }
        // Derive outside the lock: misses on distinct hosts proceed in
        // parallel; a racing double-derive is benign (pure function).
        let started = Instant::now();
        let Some(spec) = universe.derive(host) else {
            return (None, DeriveOutcome::Unknown, 0);
        };
        let paths = spec.page_paths();
        let mut issued: Vec<(String, Vec<String>)> =
            paths.iter().map(|p| (p.clone(), issued_cookies(&spec, p))).collect();
        for extra in ["/", "/home"] {
            if !issued.iter().any(|(p, _)| p == extra) {
                issued.push((extra.to_string(), issued_cookies(&spec, extra)));
            }
        }
        let site = Arc::new(DerivedSite { spec, paths, issued });
        let micros = started.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner
            .map
            .entry(host.to_string())
            .or_insert_with(|| SiteCacheEntry { site: Arc::clone(&site), last_used: tick });
        if inner.map.len() > self.capacity {
            if let Some(oldest) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(host, _)| host.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        (Some(site), DeriveOutcome::Miss, micros)
    }
}

/// The seeded world the service trains against: a lazy [`Universe`] plus a
/// bounded cache of the sites actually being visited. No `SiteSpec` is
/// materialized at startup beyond the 36 pinned paper overlays, so startup
/// cost and resident memory are independent of the world size.
pub struct EmbeddedWorld {
    universe: Arc<Universe>,
    cache: SiteCache,
    seed: u64,
    chaos: Option<ChaosConfig>,
}

impl fmt::Debug for EmbeddedWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EmbeddedWorld")
            .field("seed", &self.seed)
            .field("world", &self.universe.kind())
            .field("chaos", &self.chaos)
            .finish()
    }
}

impl EmbeddedWorld {
    /// The Table-1 world for `seed` (the service default).
    pub fn new(seed: u64) -> Self {
        EmbeddedWorld::with_world(seed, WorldKind::Table1, DEFAULT_SITE_CACHE)
    }

    /// A world of the given kind with a derived-site cache of
    /// `cache_capacity` entries.
    pub fn with_world(seed: u64, kind: WorldKind, cache_capacity: usize) -> Self {
        EmbeddedWorld {
            universe: Arc::new(Universe::new(seed, kind)),
            cache: SiteCache::new(cache_capacity),
            seed,
            chaos: None,
        }
    }

    /// Builds the Table-1 world with chaos mode on.
    pub fn with_chaos(seed: u64, chaos: ChaosConfig) -> Self {
        let mut world = EmbeddedWorld::new(seed);
        world.chaos = Some(chaos);
        world
    }

    /// Turns chaos mode on (`Some`) or off (`None`).
    pub fn set_chaos(&mut self, chaos: Option<ChaosConfig>) {
        self.chaos = chaos;
    }

    /// The active chaos config, if any.
    pub fn chaos(&self) -> Option<&ChaosConfig> {
        self.chaos.as_ref()
    }

    /// The population seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The universe this world derives from.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Whether `host` exists in this world, without deriving its spec.
    pub fn contains(&self, host: &str) -> bool {
        self.universe.contains(host)
    }

    /// The derived site for `host`, if it exists in this world.
    pub fn site(&self, host: &str) -> Option<Arc<DerivedSite>> {
        self.cache.get_or_derive(&self.universe, host).0
    }

    /// [`EmbeddedWorld::site`], recording the lookup on `metrics`
    /// (`cp_site_derive_total{result}`; `cp_site_derive_micros` on actual
    /// derivations).
    pub fn site_recorded(&self, host: &str, metrics: &ServiceMetrics) -> Option<Arc<DerivedSite>> {
        let (site, outcome, micros) = self.cache.get_or_derive(&self.universe, host);
        metrics.record_site_derive(
            outcome.label(),
            (outcome == DeriveOutcome::Miss).then_some(micros),
        );
        site
    }

    /// Number of enumerable hosts (pinned Table-2 hosts excluded, exactly
    /// as in the materialized world).
    pub fn host_count(&self) -> u64 {
        self.universe.host_count()
    }

    /// Keyset pagination over the enumerable hosts: up to `limit` hosts
    /// strictly after `after`. `None` for an unknown cursor.
    pub fn hosts_after(&self, after: Option<&str>, limit: usize) -> Option<Vec<String>> {
        self.universe.hosts_after(after, limit)
    }

    /// All enumerable hosts in canonical order. O(world size) — for tests
    /// and small-world tooling; request paths must use
    /// [`EmbeddedWorld::hosts_after`].
    pub fn hosts(&self) -> Vec<String> {
        self.universe.hosts_after(None, usize::MAX).expect("no cursor")
    }

    /// Renders one page variant deterministically: noise comes from a
    /// stream derived from `(site seed, path, salt)`, never shared state.
    fn render(
        &self,
        spec: &SiteSpec,
        path: &str,
        cookies: &[(String, String)],
        salt: u64,
    ) -> String {
        let mut noise = StdRng::seed_from_u64(mix(spec.seed, path, salt));
        let input = RenderInput { spec, path, cookies, now: SimTime::EPOCH };
        render_page(&input, &mut noise)
    }

    /// Plans one FORCUM step against `entry` **without mutating it**: all
    /// rendering, comparison, and fault rolls happen here, and the result
    /// is the single [`VisitEvent`] to apply. The durable visit path
    /// journals that event between plan and apply — the WAL append is the
    /// ack barrier, so planning must be free of store side effects.
    ///
    /// Every visit to a known host yields exactly one event: `Observe`
    /// when nothing is probed, `Defer` when the (simulated) hidden fetch
    /// faulted, `Probe` when a decision was reached. Cache traffic,
    /// detection time, and fault labels are recorded on `metrics`.
    ///
    /// Returns `None` when `host` is not part of this world.
    #[allow(clippy::too_many_arguments)] // one handler's worth of context
    pub fn plan_visit(
        &self,
        entry: &SiteEntry,
        host: &str,
        path: &str,
        cookie_header: Option<&str>,
        config: &CookiePickerConfig,
        analyses: &AnalysisCache,
        metrics: &ServiceMetrics,
    ) -> Option<(VisitEvent, VisitPlan)> {
        let site = self.site_recorded(host, metrics)?;
        let spec: &SiteSpec = &site.spec;
        // FORCUM step 1: resolve the entry redirect to the real container.
        let path = if spec.entry_redirect && path == "/" { "/home" } else { path };

        let sent: Vec<(String, String)> =
            cookie_header.map(parse_cookie_header).unwrap_or_default();

        // Step 2: the test group — persistent cookies that were attached to
        // the request and are not yet marked useful (SentCookies strategy).
        let group: Vec<String> = sent
            .iter()
            .filter(|(name, _)| {
                !entry.marked.contains(name)
                    && spec.cookies.iter().any(|c| &c.name == name && c.is_persistent())
            })
            .map(|(name, _)| name.clone())
            .collect();

        // Cookies the site (re-)issues on this path: precomputed per
        // canonical path when the site entered the derive cache.
        let set_cookies: Vec<String> = site.issued_for(path);
        let mut observed: Vec<String> = sent.iter().map(|(name, _)| name.clone()).collect();
        observed.extend(
            set_cookies.iter().filter_map(|sc| sc.split_once('=')).map(|(n, _)| n.to_string()),
        );

        if entry.forcum.is_active(host) && !group.is_empty() {
            // Chaos gate: the hidden fetch's fate is decided before any
            // rendering. A faulted fetch is retried (fresh roll per
            // attempt); if every attempt faults, the probe is
            // inconclusive and judgement defers — the suspect hidden page
            // is never compared, so a fault can delay a mark but never
            // flip one.
            if let Some(chaos) = &self.chaos {
                let seq = entry.probes as u64;
                let mut fate = None;
                for attempt in 0..=chaos.retries {
                    if attempt > 0 {
                        metrics.retry_total.inc();
                    }
                    let key = chaos_key(chaos.seed, host, path, seq, attempt);
                    fate = chaos.rates.sample(&mut StdRng::seed_from_u64(key));
                    if fate.is_none() {
                        break;
                    }
                }
                if let Some(kind) = fate {
                    let (result, reason) = fault_labels(&kind);
                    metrics.record_hidden_fetch(result);
                    metrics.record_inconclusive(reason);
                    return Some((
                        VisitEvent { host: host.to_string(), observed, kind: EventKind::Defer },
                        VisitPlan {
                            host: host.to_string(),
                            record: None,
                            path: path.to_string(),
                            set_cookies,
                            inconclusive: Some(reason.to_string()),
                        },
                    ));
                }
            }
            metrics.record_hidden_fetch("ok");
            let regular = self.render(spec, path, &sent, REGULAR_SALT);
            // Steps 2–3: the hidden request strips the group's cookies and
            // builds the hidden DOM with the same parser.
            let disabled: HashSet<&str> = group.iter().map(String::as_str).collect();
            let hidden_cookies: Vec<(String, String)> =
                sent.iter().filter(|(n, _)| !disabled.contains(n.as_str())).cloned().collect();
            let hidden = self.render(spec, path, &hidden_cookies, HIDDEN_SALT);

            // Step 4: identify usefulness, through the page-analysis cache.
            let detection_started = Instant::now();
            let (analysis_regular, hit) =
                analyses.get_or_analyze(&regular, config.compare_from_body);
            metrics.record_cache(hit);
            let (analysis_hidden, hit) = analyses.get_or_analyze(&hidden, config.compare_from_body);
            metrics.record_cache(hit);
            let mut decision = decide_analyzed(&analysis_regular, &analysis_hidden, config);
            decision.detection_micros = detection_started.elapsed().as_micros() as u64;
            metrics.record_detection(decision.detection_micros);

            let marking = decision.cookies_caused_difference;
            let detection_micros = decision.detection_micros;
            let duration_ms = detection_micros as f64 / 1_000.0;
            // Step 5 (marking useful cookies) happens in `SiteEntry::apply`.
            let record = DetectionRecord {
                host: host.to_string(),
                path: path.to_string(),
                group: group.clone(),
                decision,
                hidden_latency_ms: 0,
                duration_ms,
            };
            return Some((
                VisitEvent {
                    host: host.to_string(),
                    observed,
                    kind: EventKind::Probe { group, marking, detection_micros, duration_ms },
                },
                VisitPlan {
                    host: host.to_string(),
                    record: Some(record),
                    path: path.to_string(),
                    set_cookies,
                    inconclusive: None,
                },
            ));
        }

        Some((
            VisitEvent { host: host.to_string(), observed, kind: EventKind::Observe },
            VisitPlan {
                host: host.to_string(),
                record: None,
                path: path.to_string(),
                set_cookies,
                inconclusive: None,
            },
        ))
    }

    /// Runs one FORCUM step against `entry`: plan, apply, finish. The
    /// in-memory convenience path (and what the durable path decomposes
    /// into around its WAL append).
    ///
    /// Returns `None` when `host` is not part of this world.
    #[allow(clippy::too_many_arguments)] // one handler's worth of context
    pub fn visit(
        &self,
        entry: &mut SiteEntry,
        host: &str,
        path: &str,
        cookie_header: Option<&str>,
        config: &CookiePickerConfig,
        analyses: &AnalysisCache,
        metrics: &ServiceMetrics,
    ) -> Option<VisitOutcome> {
        let (event, plan) =
            self.plan_visit(entry, host, path, cookie_header, config, analyses, metrics)?;
        let marked_now = entry.apply(&event);
        Some(plan.finish(entry, marked_now))
    }
}

/// A planned visit: everything the response needs that is not derivable
/// from the updated entry. The [`VisitEvent`] to apply travels alongside
/// (see [`EmbeddedWorld::plan_visit`]) so the durable path can journal it
/// by move instead of cloning it out of the plan.
#[derive(Debug, Clone)]
pub struct VisitPlan {
    /// Visited host.
    pub host: String,
    /// The probe record, when a hidden request was issued and decided.
    pub record: Option<DetectionRecord>,
    /// Visited path (after entry-redirect resolution).
    pub path: String,
    /// `name=value` cookies the site (re-)issues for this path.
    pub set_cookies: Vec<String>,
    /// Inconclusive-reason label when the probe deferred.
    pub inconclusive: Option<String>,
}

impl VisitPlan {
    /// Builds the [`VisitOutcome`] from the entry *after*
    /// [`SiteEntry::apply`] consumed this plan's companion event;
    /// `marked_now` is what `apply` returned.
    pub fn finish(self, entry: &SiteEntry, marked_now: Vec<String>) -> VisitOutcome {
        let training_active = entry.forcum.is_active(&self.host);
        VisitOutcome {
            host: self.host,
            path: self.path,
            record: self.record,
            marked_now,
            marked_total: entry.marked.len(),
            training_active,
            set_cookies: self.set_cookies,
            inconclusive: self.inconclusive,
        }
    }
}

/// Stable per-site cookie value (mirrors the jar-friendly values
/// `SiteServer` issues: deterministic in the site seed and cookie name).
pub fn cookie_value(spec: &SiteSpec, name: &str) -> String {
    format!("{}{:08x}", &name[..1.min(name.len())], spec.seed ^ name.len() as u64)
}

fn mix(seed: u64, path: &str, salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(23) ^ salt;
    for b in path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ShardedStore;
    use cp_webworld::table1_population;

    fn world_and_store() -> (EmbeddedWorld, ShardedStore) {
        (EmbeddedWorld::new(7), ShardedStore::new(8, 40))
    }

    fn visit(
        world: &EmbeddedWorld,
        store: &ShardedStore,
        host: &str,
        path: &str,
        cookies: Option<&str>,
    ) -> Option<VisitOutcome> {
        let config = CookiePickerConfig::default();
        let analyses = AnalysisCache::new(64);
        let metrics = ServiceMetrics::new();
        store
            .with_entry(host, |e| world.visit(e, host, path, cookies, &config, &analyses, &metrics))
    }

    #[test]
    fn fast_visit_json_matches_tree_rendering() {
        // Real outcomes from the world (with and without issued cookies)…
        let (world, store) = world_and_store();
        let host = world.hosts()[0].clone();
        for cookies in [None, Some("a=1; b=2")] {
            let outcome = visit(&world, &store, &host, "/", cookies).unwrap();
            assert_eq!(outcome.to_compact_json(), outcome.to_json().to_compact());
        }
        // …plus a synthetic one exercising every escape-needing field.
        let quirky = VisitOutcome {
            host: "we\"ird\\.example".to_string(),
            path: "/p\na\tth".to_string(),
            record: None,
            marked_now: vec!["se\u{7}ss".to_string()],
            marked_total: 3,
            training_active: true,
            set_cookies: vec!["a=\"1\"".to_string(), "b=2".to_string()],
            inconclusive: Some("time\rout".to_string()),
        };
        assert_eq!(quirky.to_compact_json(), quirky.to_json().to_compact());
    }

    #[test]
    fn population_has_thirty_sites() {
        let world = EmbeddedWorld::new(7);
        assert_eq!(world.hosts().len(), 30);
        assert!(world.site("nonexistent.example").is_none());
    }

    #[test]
    fn unknown_host_is_none() {
        let (world, store) = world_and_store();
        assert!(visit(&world, &store, "nope.example", "/", None).is_none());
    }

    #[test]
    fn first_visit_sets_cookies_but_probes_nothing() {
        let (world, store) = world_and_store();
        let host = world.hosts()[0].to_string();
        let out = visit(&world, &store, &host, "/", None).unwrap();
        assert!(out.record.is_none(), "no cookies presented → no probe");
        assert!(!out.set_cookies.is_empty(), "site issues its cookies");
        assert!(out.training_active);
    }

    #[test]
    fn presented_cookies_trigger_a_probe() {
        let (world, store) = world_and_store();
        let host = world.hosts()[0].to_string();
        let first = visit(&world, &store, &host, "/", None).unwrap();
        let jar = first.set_cookies.join("; ");
        let second = visit(&world, &store, &host, "/page/1", Some(&jar)).unwrap();
        let record = second.record.expect("persistent cookies under test");
        assert!(!record.group.is_empty());
        assert_eq!(record.host, host);
    }

    #[test]
    fn useful_cookies_get_marked_trackers_do_not() {
        let (world, store) = world_and_store();
        // S6 (index 5) carries two really-useful preference cookies.
        let specs = table1_population(7);
        let useful_site = specs[5].domain.clone();
        let tracker_site = specs[2].domain.clone();
        for host in [&useful_site, &tracker_site] {
            let mut jar: Vec<String> = Vec::new();
            for i in 0..8 {
                let path = if i == 0 { "/".to_string() } else { format!("/page/{i}") };
                let header = jar.join("; ");
                let out = visit(
                    &world,
                    &store,
                    host,
                    &path,
                    if header.is_empty() { None } else { Some(&header) },
                )
                .unwrap();
                for sc in &out.set_cookies {
                    if !jar.contains(sc) {
                        jar.push(sc.clone());
                    }
                }
            }
        }
        let marked_useful = store.read_entry(&useful_site, |e| e.marked.len()).unwrap();
        let marked_tracker = store.read_entry(&tracker_site, |e| e.marked.len()).unwrap();
        assert!(marked_useful > 0, "S6's preference cookies must be marked");
        assert_eq!(marked_tracker, 0, "pure trackers must not be marked");
    }

    #[test]
    fn visits_are_deterministic() {
        let run = || {
            let (world, store) = world_and_store();
            let mut verdicts = (0u32, 0u32);
            for host in &world.hosts() {
                let mut jar: Vec<String> = Vec::new();
                for i in 0..4 {
                    let path = if i == 0 { "/".to_string() } else { format!("/page/{i}") };
                    let header = jar.join("; ");
                    let out = visit(
                        &world,
                        &store,
                        host,
                        &path,
                        if header.is_empty() { None } else { Some(&header) },
                    )
                    .unwrap();
                    if let Some(r) = &out.record {
                        if r.decision.cookies_caused_difference {
                            verdicts.0 += 1;
                        } else {
                            verdicts.1 += 1;
                        }
                    }
                    for sc in &out.set_cookies {
                        if !jar.contains(sc) {
                            jar.push(sc.clone());
                        }
                    }
                }
            }
            verdicts
        };
        let a = run();
        assert_eq!(a, run(), "same seed + same visit mix → same verdict counts");
        assert!(a.0 + a.1 > 0);
    }

    #[test]
    fn entry_redirect_resolves_to_container() {
        let (world, store) = world_and_store();
        let specs = table1_population(7);
        if let Some(spec) = specs.iter().find(|s| s.entry_redirect) {
            let out = visit(&world, &store, &spec.domain, "/", None).unwrap();
            assert_eq!(out.path, "/home");
        }
    }

    #[test]
    fn outcome_json_shape() {
        let (world, store) = world_and_store();
        let host = world.hosts()[0].to_string();
        let out = visit(&world, &store, &host, "/", None).unwrap();
        let json = out.to_json();
        assert_eq!(json.get("host").and_then(Json::as_str), Some(host.as_str()));
        assert_eq!(json.get("probed").and_then(Json::as_bool), Some(false));
        assert_eq!(json.get("record"), Some(&Json::Null));
        assert_eq!(json.get("inconclusive"), Some(&Json::Null));
        assert!(json.get("set_cookies").and_then(Json::as_array).is_some());
    }

    /// Drives every site through `rounds` passes over the same paths and
    /// returns (sorted "host cookie" marks, deferred visits, metrics).
    fn drive(world: &EmbeddedWorld, rounds: usize) -> (Vec<String>, usize, ServiceMetrics) {
        let store = ShardedStore::new(8, 40);
        let config = CookiePickerConfig::default();
        let analyses = AnalysisCache::new(256);
        let metrics = ServiceMetrics::new();
        let mut marks = Vec::new();
        let mut deferred = 0;
        for host in &world.hosts() {
            let mut jar: Vec<String> = Vec::new();
            for round in 0..rounds {
                for i in 0..6 {
                    let path = if i == 0 { "/".to_string() } else { format!("/page/{i}") };
                    let header = jar.join("; ");
                    let out = store
                        .with_entry(host, |e| {
                            world.visit(
                                e,
                                host,
                                &path,
                                if header.is_empty() { None } else { Some(&header) },
                                &config,
                                &analyses,
                                &metrics,
                            )
                        })
                        .unwrap();
                    deferred += usize::from(out.inconclusive.is_some());
                    marks.extend(out.marked_now.iter().map(|n| format!("{host} {n}")));
                    for sc in &out.set_cookies {
                        if !jar.contains(sc) {
                            jar.push(sc.clone());
                        }
                    }
                    let _ = round;
                }
            }
        }
        marks.sort_unstable();
        (marks, deferred, metrics)
    }

    #[test]
    fn zero_rate_chaos_is_identical_to_no_chaos() {
        let plain = drive(&EmbeddedWorld::new(7), 2);
        let zero = drive(&EmbeddedWorld::with_chaos(7, ChaosConfig::uniform(99, 0.0)), 2);
        assert_eq!(plain.0, zero.0, "rate 0.0 must not perturb a single decision");
        assert_eq!(zero.1, 0);
        assert_eq!(zero.2.hidden_fetch_count("ok"), plain.2.hidden_fetch_count("ok"));
    }

    #[test]
    fn chaos_defers_probes_but_never_invents_marks() {
        let (oracle, oracle_deferred, _) = drive(&EmbeddedWorld::new(7), 3);
        assert_eq!(oracle_deferred, 0, "fault-free run defers nothing");
        let chaos = ChaosConfig::uniform(0xC4A05, 0.3);
        let (marks, deferred, metrics) = drive(&EmbeddedWorld::with_chaos(7, chaos.clone()), 3);
        assert!(deferred > 0, "30% fault rate over ~540 probes must defer some");
        for mark in &marks {
            assert!(oracle.contains(mark), "chaos run invented mark {mark}");
        }
        let inconclusive: u64 = crate::metrics::INCONCLUSIVE_REASONS
            .iter()
            .map(|r| {
                let text = metrics.render_prometheus();
                let series = format!("cp_probe_inconclusive_total{{reason=\"{r}\"}}");
                crate::metrics::scrape_counter(&text, &series).unwrap()
            })
            .sum();
        assert_eq!(inconclusive, deferred as u64, "every deferral is accounted by reason");

        // Same seed, same visit mix → bit-identical chaos run.
        let again = drive(&EmbeddedWorld::with_chaos(7, chaos), 3);
        assert_eq!((marks, deferred), (again.0, again.1));
    }

    #[test]
    fn chaos_retry_rerolls_fate_across_visits() {
        // A deferred probe must not be doomed to fail forever: the fault
        // roll keys on the site's probe ordinal, so the same (host, path)
        // can succeed on a later round.
        let world = EmbeddedWorld::with_chaos(7, ChaosConfig::uniform(1, 0.5));
        let (marks, deferred, metrics) = drive(&world, 4);
        assert!(deferred > 0);
        assert!(!marks.is_empty(), "even at 50% faults, retries + rerolls land marks");
        assert!(metrics.retry_total.get() > 0, "faulted attempts trigger retries");
    }
}
