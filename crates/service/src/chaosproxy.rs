//! cp-chaos-proxy — a deterministic in-process TCP fault proxy.
//!
//! Sits between a replication (or HTTP) client and its server and applies
//! a scheduled sequence of network faults to everything that flows
//! through it:
//!
//! * `open` — pass-through, both directions;
//! * `cut` — full partition: existing connections are torn down and new
//!   ones are reset on arrival, exactly what a yanked cable looks like;
//! * `stall` / `stall_up` / `stall_down` — bytes stop flowing (in one or
//!   both directions) but connections stay up: the silent-peer case that
//!   must trip ack deadlines, not error paths;
//! * `drop_up` / `drop_down` — one-way byte loss: data is read off the
//!   socket and discarded, so the sender sees progress while the receiver
//!   sees silence (the asymmetric-partition case);
//! * `throttle=N` — both directions trickle at N bytes/second in small
//!   seeded chunks, the slow-link case that must demote a follower to
//!   catching-up without killing its stream.
//!
//! Faults come from a *schedule* — `open:500,cut:1000,open:0` holds each
//! phase for its duration in ms, `0` meaning forever — so a chaos run is
//! reproducible from its spec alone: same schedule, same seed, same
//! connection pattern → same observable fault sequence. Tests drive
//! phases directly via [`ChaosProxy::set_phase`] for exact control; the
//! `cp-serve chaos-proxy` subcommand and `scripts/cluster.sh` drive them
//! from the wall-clock schedule.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a pump thread re-checks the phase while idle or stalled.
const PUMP_TICK: Duration = Duration::from_millis(5);

/// Pump read timeout: bounds how stale a pump's view of the phase can be.
const PUMP_READ_TIMEOUT: Duration = Duration::from_millis(10);

/// One network condition the proxy imposes on its streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Pass-through.
    Open,
    /// Full partition: connections die, new ones are reset.
    Cut,
    /// No bytes move in either direction; connections stay up.
    Stall,
    /// Client→server bytes stop; server→client still flows.
    StallUp,
    /// Server→client bytes stop; client→server still flows.
    StallDown,
    /// Client→server bytes are read and discarded.
    DropUp,
    /// Server→client bytes are read and discarded.
    DropDown,
    /// Both directions limited to this many bytes per second.
    Throttle(u32),
}

impl Phase {
    /// The schedule-spec name (inverse of [`parse_schedule`]'s entries).
    pub fn label(&self) -> String {
        match self {
            Phase::Open => "open".to_string(),
            Phase::Cut => "cut".to_string(),
            Phase::Stall => "stall".to_string(),
            Phase::StallUp => "stall_up".to_string(),
            Phase::StallDown => "stall_down".to_string(),
            Phase::DropUp => "drop_up".to_string(),
            Phase::DropDown => "drop_down".to_string(),
            Phase::Throttle(rate) => format!("throttle={rate}"),
        }
    }

    /// Packs the phase into one atomic word: tag in the high bits, the
    /// throttle rate in the low 32. Pumps decode this every tick without
    /// taking a lock.
    fn encode(self) -> u64 {
        match self {
            Phase::Open => 0 << 32,
            Phase::Cut => 1 << 32,
            Phase::Stall => 2 << 32,
            Phase::StallUp => 3 << 32,
            Phase::StallDown => 4 << 32,
            Phase::DropUp => 5 << 32,
            Phase::DropDown => 6 << 32,
            Phase::Throttle(rate) => (7 << 32) | u64::from(rate),
        }
    }

    fn decode(word: u64) -> Phase {
        match word >> 32 {
            0 => Phase::Open,
            1 => Phase::Cut,
            2 => Phase::Stall,
            3 => Phase::StallUp,
            4 => Phase::StallDown,
            5 => Phase::DropUp,
            6 => Phase::DropDown,
            _ => Phase::Throttle(word as u32),
        }
    }
}

/// Parses a `phase:duration_ms[,phase:duration_ms...]` schedule spec.
/// Duration `0` means "hold forever" (only meaningful on the last entry;
/// later entries would never run). `throttle=RATE:ms` sets the rate.
pub fn parse_schedule(spec: &str) -> Result<Vec<(Phase, Duration)>, String> {
    let mut schedule = Vec::new();
    for entry in spec.split(',').filter(|e| !e.is_empty()) {
        let (name, duration) = entry
            .rsplit_once(':')
            .ok_or_else(|| format!("schedule entry {entry:?} must be PHASE:DURATION_MS"))?;
        let millis: u64 = duration
            .parse()
            .map_err(|_| format!("schedule entry {entry:?} has a non-numeric duration"))?;
        let phase = match name {
            "open" => Phase::Open,
            "cut" => Phase::Cut,
            "stall" => Phase::Stall,
            "stall_up" => Phase::StallUp,
            "stall_down" => Phase::StallDown,
            "drop_up" => Phase::DropUp,
            "drop_down" => Phase::DropDown,
            other => match other.strip_prefix("throttle=") {
                Some(rate) => {
                    Phase::Throttle(rate.parse::<u32>().ok().filter(|&r| r >= 1).ok_or_else(
                        || format!("throttle rate {rate:?} must be a positive integer"),
                    )?)
                }
                None => return Err(format!("unknown phase {name:?}")),
            },
        };
        schedule.push((phase, Duration::from_millis(millis)));
    }
    if schedule.is_empty() {
        return Err("schedule must have at least one phase".to_string());
    }
    Ok(schedule)
}

struct ProxyInner {
    target: String,
    phase: AtomicU64,
    /// Bumped on every transition *into* `cut`: pumps born before the
    /// bump tear down even if the phase has already moved on by the time
    /// they notice — a partition kills connections exactly once.
    cut_epoch: AtomicU64,
    seed: u64,
    shutting_down: AtomicBool,
    addr: SocketAddr,
}

/// A running fault proxy. Dropping the handle shuts it down.
pub struct ChaosProxy {
    inner: Arc<ProxyInner>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (`host:port`, port 0 picks free) and forwards every
    /// connection to `target` under the current phase (initially `open`).
    pub fn start(listen: &str, target: &str, seed: u64) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ProxyInner {
            target: target.to_string(),
            phase: AtomicU64::new(Phase::Open.encode()),
            cut_epoch: AtomicU64::new(0),
            seed,
            shutting_down: AtomicBool::new(false),
            addr,
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&inner, &listener))
        };
        Ok(ChaosProxy { inner, acceptor: Some(acceptor) })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        Phase::decode(self.inner.phase.load(Ordering::Acquire))
    }

    /// Switches the imposed fault. Entering `cut` tears every live
    /// proxied connection down within a pump tick.
    pub fn set_phase(&self, phase: Phase) {
        if phase == Phase::Cut {
            self.inner.cut_epoch.fetch_add(1, Ordering::AcqRel);
        }
        self.inner.phase.store(phase.encode(), Ordering::Release);
    }

    /// Runs a parsed schedule to completion (the last phase holds until
    /// shutdown when its duration is zero — otherwise the proxy ends
    /// `open`). Logs each transition to stderr with its offset from
    /// start, so a captured transcript documents the fault sequence.
    pub fn run_schedule(&self, schedule: &[(Phase, Duration)]) {
        let started = Instant::now();
        for (i, (phase, hold)) in schedule.iter().enumerate() {
            if self.inner.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            self.set_phase(*phase);
            eprintln!(
                "cp-chaos-proxy: t={}ms phase -> {}",
                started.elapsed().as_millis(),
                phase.label()
            );
            let forever = hold.is_zero() && i == schedule.len() - 1;
            let deadline = Instant::now() + *hold;
            while forever || Instant::now() < deadline {
                if self.inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(PUMP_TICK);
            }
        }
    }

    /// Stops accepting and unblocks the acceptor (idempotent).
    pub fn shutdown(&self) {
        if !self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.inner.addr, Duration::from_secs(1));
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn accept_loop(inner: &Arc<ProxyInner>, listener: &TcpListener) {
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) if inner.shutting_down.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        // During a partition a new connection dies on arrival — the
        // dialer sees a reset on its first read, like a dead route.
        if Phase::decode(inner.phase.load(Ordering::Acquire)) == Phase::Cut {
            drop(client);
            continue;
        }
        let server = match TcpStream::connect(&inner.target) {
            Ok(server) => server,
            Err(_) => continue, // target down: the client sees the reset
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        spawn_pump(inner, &client, &server, true);
        spawn_pump(inner, &server, &client, false);
    }
}

/// Starts one direction's pump thread. `up` is client→server.
fn spawn_pump(inner: &Arc<ProxyInner>, from: &TcpStream, to: &TcpStream, up: bool) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else { return };
    let inner = Arc::clone(inner);
    std::thread::spawn(move || pump(&inner, from, to, up));
}

/// Forwards bytes `from` → `to` under the current phase until either side
/// dies, a cut fires, or the proxy shuts down.
fn pump(inner: &Arc<ProxyInner>, mut from: TcpStream, mut to: TcpStream, up: bool) {
    let born_epoch = inner.cut_epoch.load(Ordering::Acquire);
    let _ = from.set_read_timeout(Some(PUMP_READ_TIMEOUT));
    let mut buf = [0u8; 16 * 1024];
    // Throttle bookkeeping: bytes already forwarded in the current
    // one-second window.
    let mut window_start = Instant::now();
    let mut window_bytes: u64 = 0;
    let mut chunk_counter: u64 = 0;
    loop {
        if inner.shutting_down.load(Ordering::SeqCst)
            || inner.cut_epoch.load(Ordering::Acquire) != born_epoch
        {
            break;
        }
        let phase = Phase::decode(inner.phase.load(Ordering::Acquire));
        let stalled = matches!(phase, Phase::Stall)
            || (up && phase == Phase::StallUp)
            || (!up && phase == Phase::StallDown);
        if phase == Phase::Cut {
            break;
        }
        if stalled {
            // Leave the bytes in the kernel buffer: on heal they flow
            // again, intact — a stall delays, it does not corrupt.
            std::thread::sleep(PUMP_TICK);
            continue;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break, // clean EOF: propagate by closing both
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let dropping = (up && phase == Phase::DropUp) || (!up && phase == Phase::DropDown);
        if dropping {
            continue; // read and discarded: one-way loss
        }
        let mut sent = 0usize;
        while sent < n {
            let slice = if let Phase::Throttle(rate) = phase {
                // Refill the byte budget once per second; trickle it out
                // in small seeded chunks so frame boundaries land at
                // deterministic—but unaligned—offsets.
                if window_start.elapsed() >= Duration::from_secs(1) {
                    window_start = Instant::now();
                    window_bytes = 0;
                }
                if window_bytes >= u64::from(rate) {
                    std::thread::sleep(PUMP_TICK);
                    continue;
                }
                chunk_counter += 1;
                let max_chunk = (u64::from(rate) - window_bytes).clamp(1, 256);
                1 + (mix(inner.seed, chunk_counter) % max_chunk) as usize
            } else {
                n - sent
            };
            let end = (sent + slice).min(n);
            match to.write_all(&buf[sent..end]) {
                Ok(()) => {
                    window_bytes += (end - sent) as u64;
                    sent = end;
                }
                Err(_) => {
                    teardown(&from, &to);
                    return;
                }
            }
        }
    }
    teardown(&from, &to);
}

/// Closes both halves so the counterpart pump and the endpoints all see
/// the connection die promptly.
fn teardown(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// SplitMix64-style avalanche over (seed, counter) — the deterministic
/// chunk-size stream for throttled forwarding.
fn mix(seed: u64, counter: u64) -> u64 {
    let mut z = seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_parsing_round_trips() {
        let schedule = parse_schedule("open:500,cut:1000,throttle=1024:250,open:0").unwrap();
        assert_eq!(
            schedule,
            vec![
                (Phase::Open, Duration::from_millis(500)),
                (Phase::Cut, Duration::from_millis(1000)),
                (Phase::Throttle(1024), Duration::from_millis(250)),
                (Phase::Open, Duration::ZERO),
            ]
        );
        for bad in ["", "nope:10", "open", "open:abc", "throttle=0:10", "throttle=x:10"] {
            assert!(parse_schedule(bad).is_err(), "{bad:?} must be rejected");
        }
        // Labels invert the parse.
        for (phase, _) in &schedule {
            let spec = format!("{}:1", phase.label());
            assert_eq!(parse_schedule(&spec).unwrap()[0].0, *phase);
        }
    }

    #[test]
    fn phase_word_round_trips() {
        for phase in [
            Phase::Open,
            Phase::Cut,
            Phase::Stall,
            Phase::StallUp,
            Phase::StallDown,
            Phase::DropUp,
            Phase::DropDown,
            Phase::Throttle(1),
            Phase::Throttle(u32::MAX),
        ] {
            assert_eq!(Phase::decode(phase.encode()), phase);
        }
    }

    /// An echo server for pump tests: reads lines, writes them back.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if stream.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    fn read_some(stream: &mut TcpStream, want: usize) -> std::io::Result<Vec<u8>> {
        let mut out = vec![0u8; want];
        let mut filled = 0;
        while filled < want {
            match stream.read(&mut out[filled..]) {
                Ok(0) => return Err(std::io::Error::other("eof")),
                Ok(n) => filled += n,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    #[test]
    fn open_passes_cut_kills_heal_reconnects() {
        let (addr, _server) = echo_server();
        let proxy = ChaosProxy::start("127.0.0.1:0", &addr.to_string(), 7).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        conn.write_all(b"hello").unwrap();
        assert_eq!(read_some(&mut conn, 5).unwrap(), b"hello");

        // Cut: the live connection dies and new ones are reset.
        proxy.set_phase(Phase::Cut);
        std::thread::sleep(Duration::from_millis(50));
        conn.write_all(b"into the void").ok();
        let mut buf = [0u8; 1];
        assert!(
            matches!(conn.read(&mut buf), Ok(0) | Err(_)),
            "partitioned connection must be dead"
        );
        let mut fresh = TcpStream::connect(proxy.addr()).unwrap();
        fresh.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        fresh.write_all(b"x").ok();
        assert!(
            matches!(fresh.read(&mut buf), Ok(0) | Err(_)),
            "connections during a partition must be reset"
        );

        // Heal: a fresh connection works again.
        proxy.set_phase(Phase::Open);
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        conn.write_all(b"back").unwrap();
        assert_eq!(read_some(&mut conn, 4).unwrap(), b"back");
    }

    #[test]
    fn stall_delays_without_losing_bytes() {
        let (addr, _server) = echo_server();
        let proxy = ChaosProxy::start("127.0.0.1:0", &addr.to_string(), 7).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        proxy.set_phase(Phase::Stall);
        std::thread::sleep(Duration::from_millis(30));
        conn.write_all(b"delayed").unwrap();
        let mut buf = [0u8; 7];
        assert!(conn.read(&mut buf).is_err(), "stalled bytes must not arrive");
        proxy.set_phase(Phase::Open);
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(read_some(&mut conn, 7).unwrap(), b"delayed", "healed stall loses nothing");
    }

    #[test]
    fn drop_up_loses_bytes_but_keeps_the_connection() {
        let (addr, _server) = echo_server();
        let proxy = ChaosProxy::start("127.0.0.1:0", &addr.to_string(), 7).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        proxy.set_phase(Phase::DropUp);
        std::thread::sleep(Duration::from_millis(30));
        conn.write_all(b"lost").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut buf = [0u8; 4];
        assert!(conn.read(&mut buf).is_err(), "dropped bytes never echo back");
        proxy.set_phase(Phase::Open);
        // A pump mid-read may still hold the stale DropUp phase for one
        // read-timeout tick; write after it has certainly re-sampled.
        std::thread::sleep(Duration::from_millis(50));
        conn.write_all(b"kept").unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(read_some(&mut conn, 4).unwrap(), b"kept", "the connection survived the drop");
    }

    #[test]
    fn throttle_paces_and_preserves_bytes() {
        let (addr, _server) = echo_server();
        let proxy = ChaosProxy::start("127.0.0.1:0", &addr.to_string(), 7).unwrap();
        proxy.set_phase(Phase::Throttle(100_000));
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let payload: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        conn.write_all(&payload).unwrap();
        let echoed = read_some(&mut conn, payload.len()).unwrap();
        assert_eq!(echoed, payload, "throttled bytes arrive complete and in order");
    }
}
