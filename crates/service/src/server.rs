//! The cp-serve server: serving paths, routing, shutdown.
//!
//! Two serving paths share the routing layer below:
//!
//! * **Readiness loop** (the default, [`crate::eventloop`]): `workers`
//!   shard threads each run a nonblocking poller over their slice of
//!   connections — no thread per connection, no queue, responses flushed
//!   with single writes. Admission is still bounded (`workers` +
//!   `queue_capacity` concurrent connections; beyond that, inline `503`).
//! * **Worker pool** (`use_poller: false`, or platforms without a native
//!   poller): one acceptor thread feeds a *bounded* queue
//!   (`std::sync::mpsc::sync_channel`); `workers` threads pull
//!   connections and speak blocking HTTP/1.1 with keep-alive. When the
//!   queue is full the acceptor answers `503` inline instead of queueing.
//!
//! Shutdown is graceful on both paths: the flag flips, a self-connect
//! wakes the blocked `accept` (or one of the pollers), and each serving
//! thread finishes what it holds before exiting.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cookiepicker_core::{decide_analyzed, CookiePickerConfig};
use cp_runtime::json::{FromJson, Json, ToJson};
use cp_runtime::sync::Mutex;

use crate::cache::AnalysisCache;
use crate::http::{write_response, HttpConn, HttpError, HttpRequest, Limits};
use crate::metrics::{Endpoint, ServiceMetrics};
use crate::replication::{
    self, ClusterState, ReplAckPolicy, Replicator, Role, DEFAULT_BACKLOG_CAP,
};
use crate::storage::StorageFaults;
use crate::store::{DurabilityConfig, RecoveryStats, ShardedStore, DEFAULT_SNAPSHOT_EVERY};
use crate::wal::FsyncPolicy;
use crate::world::{ChaosConfig, EmbeddedWorld, VisitPlan, DEFAULT_SITE_CACHE};
use cp_webworld::WorldKind;

/// Salt mixed into the population seed to derive the chaos seed, so the
/// fault stream is decorrelated from (but still determined by) `--seed`.
const CHAOS_SEED_SALT: u64 = 0xC4A0_5EED_FA17_5EED;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind (the service is loopback-only by default).
    pub host: String,
    /// Port to bind; `0` picks a free port.
    pub port: u16,
    /// Seed for the embedded site population.
    pub seed: u64,
    /// Which world the universe enumerates: the paper's Table-1 sites
    /// (default) or `uniform:N` procedural hosts derived on demand.
    pub world: WorldKind,
    /// Derived-site cache capacity — the only per-world memory that scales
    /// with traffic rather than world size.
    pub site_cache_capacity: usize,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Shards in the training store.
    pub shards: usize,
    /// Bounded accept-queue capacity; overflow is answered `503`.
    pub queue_capacity: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Message size caps.
    pub limits: Limits,
    /// Detection configuration used by `/v1/classify` and `/v1/visit`.
    pub picker: CookiePickerConfig,
    /// Page-analysis cache capacity (compiled pages kept for reuse).
    pub cache_capacity: usize,
    /// Chaos mode: hidden-fetch fault rate in `[0, 1]`. `0.0` (the
    /// default) disables fault injection entirely — the fault-free path
    /// is byte-identical to a build without chaos.
    pub chaos_fault_rate: f64,
    /// When set, detections slower than this bump
    /// `cp_deadline_exceeded_total` (observability only — the result is
    /// still served).
    pub detection_deadline: Option<Duration>,
    /// When set, the training store is durable: per-shard WALs and
    /// snapshots live under this directory and are recovered on start.
    pub data_dir: Option<PathBuf>,
    /// When WAL appends are forced to stable storage (durable mode only).
    pub fsync: FsyncPolicy,
    /// Events between automatic per-shard checkpoints (durable mode only).
    pub snapshot_every: u64,
    /// Injected storage-fault rate in `[0, 1]` for the durable write
    /// layer. `0.0` (the default) means the real filesystem, untouched.
    pub storage_fault_rate: f64,
    /// Seed for the storage-fault stream (independent of `--seed`).
    pub storage_fault_seed: u64,
    /// Serve with the sharded readiness loop (the default). When `false` —
    /// or on platforms without a native poller — connections go through
    /// the portable acceptor + bounded-queue worker pool instead.
    pub use_poller: bool,
    /// When set, a replication listener binds this port (0 picks a free
    /// one) and the node can follow a primary's WAL stream.
    pub repl_port: Option<u16>,
    /// Follower acks required before a write is acknowledged, when this
    /// node leads.
    pub repl_ack: ReplAckPolicy,
    /// Follower replication addresses (`host:port`) to lead at startup.
    /// Empty (the default) starts the node standalone.
    pub repl_followers: Vec<String>,
    /// Cluster generation to lead at when `repl_followers` is non-empty.
    /// A follower that has witnessed a newer generation fences the
    /// handshake and startup fails — the stale-primary rejoin gate.
    pub repl_generation: u64,
    /// Records the resync backlog ring retains. A reconnecting follower
    /// within this window replays from memory; one beyond it bootstraps
    /// from a snapshot.
    pub repl_backlog: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            seed: 7,
            world: WorldKind::Table1,
            site_cache_capacity: DEFAULT_SITE_CACHE,
            workers: 4,
            shards: 16,
            queue_capacity: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            picker: CookiePickerConfig::default(),
            cache_capacity: 512,
            chaos_fault_rate: 0.0,
            detection_deadline: None,
            data_dir: None,
            fsync: FsyncPolicy::default(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            storage_fault_rate: 0.0,
            storage_fault_seed: 0,
            use_poller: true,
            repl_port: None,
            repl_ack: ReplAckPolicy::default(),
            repl_followers: Vec::new(),
            repl_generation: 1,
            repl_backlog: DEFAULT_BACKLOG_CAP,
        }
    }
}

/// State shared by the serving threads (event-loop shards or the
/// acceptor + workers) and the handle.
pub(crate) struct Shared {
    world: EmbeddedWorld,
    store: ShardedStore,
    pub(crate) metrics: Arc<ServiceMetrics>,
    picker: CookiePickerConfig,
    cache: AnalysisCache,
    pub(crate) shutting_down: AtomicBool,
    /// Set by whichever exit path runs the final checkpoint first, so a
    /// `wait()` + `Drop` pair checkpoints exactly once.
    checkpointed: AtomicBool,
    recovery: RecoveryStats,
    addr: SocketAddr,
    /// Cluster role + witnessed generation (standalone/gen 0 when the
    /// node never participates in replication).
    cluster: ClusterState,
    /// Ack policy applied whenever this node leads.
    repl_ack: ReplAckPolicy,
    /// Bound replication-listener address, when `repl_port` was set.
    repl_addr: Option<SocketAddr>,
}

impl Shared {
    /// Flips the shutdown flag; the first caller also wakes the acceptor
    /// out of its blocking `accept` (and the replication listener, if
    /// any) with throwaway self-connects.
    fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            if let Some(repl_addr) = self.repl_addr {
                let _ = TcpStream::connect_timeout(&repl_addr, Duration::from_secs(1));
            }
        }
    }

    /// Becomes primary of `generation`, streaming to `followers`: opens
    /// and handshakes every stream first, so a fenced or unreachable
    /// follower fails the attempt without a role change.
    fn lead(&self, generation: u64, followers: &[String]) -> std::io::Result<()> {
        let current = self.cluster.generation();
        if generation < current || (generation == current && self.cluster.role() == Role::Primary) {
            return Err(std::io::Error::other(format!(
                "generation {generation} is fenced: this node has already witnessed \
                 generation {current}"
            )));
        }
        let replicator = Arc::new(Replicator::connect(
            followers,
            generation,
            self.repl_ack,
            self.addr.to_string(),
            self.store.backlog_handle(),
            Arc::clone(&self.metrics),
        )?);
        // The maintenance thread redials down peers and drains the backlog
        // to catching-up ones, off the write path. It exits when the
        // replicator is retired (role change or shutdown).
        let maintained = Arc::clone(&replicator);
        std::thread::spawn(move || replication::run_maintenance(maintained));
        self.store.set_replicator(Some(replicator));
        self.cluster.witness_generation(generation);
        self.cluster.set_role(Role::Primary);
        Ok(())
    }
}

/// Accepts replication streams and serves each on its own thread. The
/// per-stream threads are detached: they exit on EOF, checksum failure,
/// fencing, or the shutdown flag (stream reads poll it between timeouts).
fn repl_accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) if shared.shutting_down.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            replication::serve_follower_stream(
                stream,
                &shared.store,
                &shared.cluster,
                &shared.shutting_down,
                &shared.metrics,
            );
        });
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.shared.addr.port()
    }

    /// The bound replication-listener address, when `repl_port` was set.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.shared.repl_addr
    }

    /// The server's metric registry.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.shared.metrics
    }

    /// Requests a graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// What recovery replayed when the server opened its store (all
    /// zeros for in-memory servers).
    pub fn recovery(&self) -> RecoveryStats {
        self.shared.recovery
    }

    /// Blocks until the acceptor and every worker have exited, then (for
    /// durable stores) flushes the WALs and writes a final snapshot so a
    /// clean restart replays zero records. Call
    /// [`shutdown`](Self::shutdown) first (or `POST /v1/shutdown`).
    pub fn wait(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // All workers are gone: no more mutations. Retire the replicator
        // first (its maintenance thread exits) so nothing redials peers
        // while the process winds down, then checkpoint.
        self.shared.store.set_replicator(None);
        if !self.shared.checkpointed.swap(true, Ordering::SeqCst) {
            if let Err(e) = self.shared.store.checkpoint() {
                eprintln!("cp-serve: final checkpoint failed: {e}");
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

/// Binds and starts the service.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.host.as_str(), config.port))?;
    let addr = listener.local_addr()?;
    let mut world =
        EmbeddedWorld::with_world(config.seed, config.world, config.site_cache_capacity);
    if config.chaos_fault_rate > 0.0 {
        let chaos =
            ChaosConfig::uniform(config.seed ^ CHAOS_SEED_SALT, config.chaos_fault_rate.min(1.0));
        world.set_chaos(Some(chaos));
    }
    let metrics = Arc::new(ServiceMetrics::new());
    if let Some(deadline) = config.detection_deadline {
        metrics.set_detection_deadline_micros(deadline.as_micros().min(u64::MAX as u128) as u64);
    }
    let durability = config.data_dir.as_ref().map(|dir| DurabilityConfig {
        dir: dir.clone(),
        fsync: config.fsync,
        snapshot_every: config.snapshot_every.max(1),
        faults: (config.storage_fault_rate > 0.0).then(|| {
            StorageFaults::uniform(config.storage_fault_seed, config.storage_fault_rate.min(1.0))
        }),
    });
    let (store, recovery) = ShardedStore::open(
        config.shards,
        config.picker.stability_window,
        durability,
        Arc::clone(&metrics),
    )?;
    metrics.recovery_records_replayed.set(recovery.records_replayed.min(i64::MAX as u64) as i64);
    metrics.recovery_torn_tail_bytes.set(recovery.torn_tail_bytes.min(i64::MAX as u64) as i64);
    store.set_backlog_capacity(config.repl_backlog.max(1));
    let repl_listener = match config.repl_port {
        Some(port) => Some(TcpListener::bind((config.host.as_str(), port))?),
        None => None,
    };
    let repl_addr = repl_listener.as_ref().map(TcpListener::local_addr).transpose()?;
    let shared = Arc::new(Shared {
        world,
        store,
        metrics,
        picker: config.picker.clone(),
        cache: AnalysisCache::new(config.cache_capacity),
        shutting_down: AtomicBool::new(false),
        checkpointed: AtomicBool::new(false),
        recovery,
        addr,
        cluster: ClusterState::new(),
        repl_ack: config.repl_ack,
        repl_addr,
    });

    // Lead at startup before any serving thread exists: a fenced or
    // unreachable follower fails `start` cleanly (nothing to join), which
    // is how a stale primary learns it cannot rejoin at its old
    // generation.
    if !config.repl_followers.is_empty() {
        shared.lead(config.repl_generation, &config.repl_followers)?;
    }
    let repl_thread = repl_listener.map(|listener| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || repl_accept_loop(&shared, &listener))
    });

    if config.use_poller {
        // The sharded readiness loop owns the listener clones; the
        // original drops when `start` returns, so joining the shards
        // releases the port.
        match crate::eventloop::spawn(&shared, &listener, &config) {
            Ok(mut workers) => {
                workers.extend(repl_thread);
                return Ok(ServerHandle { shared, acceptor: None, workers });
            }
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                // No native poller here: serve with the worker pool below.
            }
            Err(e) => return Err(e),
        }
    }

    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_capacity.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let limits = config.limits;
            std::thread::spawn(move || worker_loop(&shared, &rx, limits))
        })
        .collect();
    workers.extend(repl_thread);

    let acceptor = {
        let shared = Arc::clone(&shared);
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        std::thread::spawn(move || {
            accept_loop(&shared, &listener, &tx, read_timeout, write_timeout)
        })
    };

    Ok(ServerHandle { shared, acceptor: Some(acceptor), workers })
}

fn accept_loop(
    shared: &Shared,
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) if shared.shutting_down.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break; // the wake-up self-connect, or a late arrival: drop it
        }
        shared.metrics.connections_total.inc();
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_write_timeout(Some(write_timeout));
        let _ = stream.set_nodelay(true);
        match tx.try_send(stream) {
            Ok(()) => shared.metrics.queue_depth.inc(),
            Err(TrySendError::Full(mut stream)) => {
                shared.metrics.rejected_total.inc();
                shared.metrics.record_conn_closed("shed");
                let body = error_json("server overloaded");
                let _ = write_response(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "application/json",
                    &body,
                    false,
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // `tx` drops here; workers drain whatever is still queued, then exit.
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>, limits: Limits) {
    loop {
        // The lock guards only the dequeue, never connection handling.
        let stream = rx.lock().recv();
        match stream {
            Ok(stream) => {
                shared.metrics.queue_depth.dec();
                handle_connection(shared, stream, limits);
            }
            Err(_) => break, // sender gone and queue drained
        }
    }
}

/// Serves one connection: requests until the peer closes, keep-alive ends,
/// an unrecoverable error occurs, or shutdown begins. Every exit path
/// records its cause in `cp_conn_closed_total`.
fn handle_connection(shared: &Shared, stream: TcpStream, limits: Limits) {
    let mut conn = HttpConn::new(stream, limits);
    loop {
        let request = match conn.read_request() {
            Ok(request) => request,
            Err(HttpError::Closed) => {
                // Clean EOF on an idle keep-alive: the client hung up.
                shared.metrics.record_conn_closed("client");
                return;
            }
            Err(HttpError::Io(e)) => {
                // A read timeout mid-message is a stalled peer (slowloris,
                // half-sent body); anything else is a transport fault.
                let cause = match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => "timeout",
                    _ => "error",
                };
                shared.metrics.record_conn_closed(cause);
                return;
            }
            Err(HttpError::BodyTooLarge) => {
                respond_error(shared, &mut conn, 413, "Payload Too Large", "body too large");
                shared.metrics.record_conn_closed("error");
                return;
            }
            Err(err) => {
                // Malformed / HeadTooLarge / BadVersion → 400, then close:
                // framing may be lost, so the connection cannot continue.
                let msg = err.to_string();
                respond_error(shared, &mut conn, 400, "Bad Request", &msg);
                shared.metrics.record_conn_closed("error");
                return;
            }
        };
        let started = Instant::now();
        let (endpoint, status, reason, content_type, body) = route(shared, &request);
        let draining = shared.shutting_down.load(Ordering::SeqCst);
        let keep_alive = request.keep_alive() && !draining && status < 500;
        // Record BEFORE writing: anyone who has seen the response (e.g. a
        // load generator cross-checking /metrics after its last request)
        // must also see its counters.
        shared.metrics.record(endpoint, status, started.elapsed().as_micros() as u64);
        let write_ok =
            write_response(conn.stream_mut(), status, reason, content_type, &body, keep_alive)
                .is_ok();
        if !write_ok {
            shared.metrics.record_conn_closed("write_failed");
            return;
        }
        if !keep_alive {
            let cause = if !request.keep_alive() {
                "client" // HTTP/1.0 or an explicit `Connection: close`
            } else if draining {
                "drain"
            } else {
                "error" // 5xx: close so the peer re-syncs on a fresh conn
            };
            shared.metrics.record_conn_closed(cause);
            return;
        }
    }
}

fn respond_error(
    shared: &Shared,
    conn: &mut HttpConn<TcpStream>,
    status: u16,
    reason: &str,
    msg: &str,
) {
    let body = error_json(msg);
    shared.metrics.record(Endpoint::Other, status, 0);
    let _ = write_response(conn.stream_mut(), status, reason, "application/json", &body, false);
}

type Routed = (Endpoint, u16, &'static str, &'static str, Vec<u8>);

/// Routes one request to its handler.
pub(crate) fn route(shared: &Shared, request: &HttpRequest) -> Routed {
    let method = request.method.as_str();
    let target = request.target.as_str();
    match (method, target) {
        ("GET", "/healthz") => {
            let mut body = Json::object()
                .set("status", "ok")
                .set("seed", shared.world.seed())
                .set("world", shared.world.universe().kind().to_string())
                .set("hosts", shared.world.host_count())
                .set("sites_trained", shared.store.site_count())
                .set("role", shared.cluster.role().label())
                .set("generation", shared.cluster.generation())
                .set("replication_lag_records", shared.store.replication_lag())
                .set("replication_applied_seq", shared.store.applied_seq())
                .set("replication_resyncs", shared.metrics.repl_resync_total.get())
                .set(
                    "replication_ack_stall_max_micros",
                    shared.metrics.repl_ack_stall_max_micros.get(),
                )
                .set("durable", shared.store.is_durable());
            let peers = shared.store.replication_peers();
            if !peers.is_empty() {
                let rows: Vec<Json> = peers
                    .iter()
                    .map(|p| {
                        Json::object()
                            .set("addr", p.addr.as_str())
                            .set("state", p.state.label())
                            .set("connected", p.connected)
                            .set("acked_seq", p.acked_seq)
                    })
                    .collect();
                body = body.set("replication_peers", Json::Array(rows));
            }
            if shared.store.is_durable() {
                let r = shared.recovery;
                body = body.set(
                    "recovery",
                    Json::object()
                        .set("snapshots_loaded", r.snapshots_loaded)
                        .set("records_replayed", r.records_replayed)
                        .set("torn_tail_bytes", r.torn_tail_bytes)
                        .set("recovery_ms", r.recovery_micros as f64 / 1_000.0),
                );
            }
            (Endpoint::Healthz, 200, "OK", "application/json", body.to_compact().into_bytes())
        }
        ("GET", "/metrics") => {
            let body = shared.metrics.render_prometheus().into_bytes();
            (Endpoint::Metrics, 200, "OK", "text/plain; version=0.0.4", body)
        }
        ("GET", "/v1/marks") => {
            // The crash harness's comparable artifact: every useful mark,
            // one sorted `host cookie` line each.
            let mut lines = shared.store.marks().join("\n");
            if !lines.is_empty() {
                lines.push('\n');
            }
            (Endpoint::Marks, 200, "OK", "text/plain; charset=utf-8", lines.into_bytes())
        }
        ("POST", "/v1/classify") => classify(shared, &request.body),
        ("POST", "/v1/visit") => visit(shared, &request.body),
        ("POST", "/v1/expire") => expire(shared, &request.body),
        ("POST", "/v1/repl/lead") => repl_lead(shared, &request.body),
        ("GET", "/v1/repl/snapshot") => {
            // The resync-ladder's last rung: a follower too far behind the
            // backlog downloads a consistent full-state snapshot (exact
            // on-disk `CPSNAP01` format) and installs it atomically.
            let body = shared.store.encode_bootstrap(shared.cluster.generation());
            (Endpoint::Repl, 200, "OK", "application/octet-stream", body)
        }
        ("GET", t) if t == "/v1/sites" || t.starts_with("/v1/sites?") => {
            sites_list(shared, t.strip_prefix("/v1/sites").and_then(|q| q.strip_prefix('?')))
        }
        ("GET", t) if t.starts_with("/v1/sites/") => site_summary(shared, &t["/v1/sites/".len()..]),
        ("POST", "/v1/shutdown") => {
            shared.begin_shutdown();
            let body = Json::object().set("status", "shutting down").to_compact().into_bytes();
            (Endpoint::Shutdown, 200, "OK", "application/json", body)
        }
        _ => (Endpoint::Other, 404, "Not Found", "application/json", error_json("no such route")),
    }
}

/// `POST /v1/classify`: run the Figure-5 decision on a caller-provided
/// page pair. Body: `{"regular": html, "hidden": html, "config"?: {...}}`.
fn classify(shared: &Shared, body: &[u8]) -> Routed {
    let parsed = match parse_json_body(body) {
        Ok(json) => json,
        Err(msg) => return bad_request(Endpoint::Classify, msg),
    };
    let (regular, hidden) = match (
        parsed.get("regular").and_then(Json::as_str),
        parsed.get("hidden").and_then(Json::as_str),
    ) {
        (Some(r), Some(h)) => (r, h),
        _ => return bad_request(Endpoint::Classify, "body needs string fields regular and hidden"),
    };
    let config = match parsed.get("config") {
        Some(json) => match CookiePickerConfig::from_json(json) {
            Ok(config) => config,
            Err(_) => return bad_request(Endpoint::Classify, "invalid config object"),
        },
        None => shared.picker.clone(),
    };
    // Compiled pipeline: analyses come from the page cache (repeated
    // bodies skip parse + extract), the decision runs over them.
    // `detection_micros` covers lookup/compile + both kernels, so it stays
    // comparable to the uncached path's parse-to-verdict measurement.
    let started = Instant::now();
    let (analysis_regular, hit) = shared.cache.get_or_analyze(regular, config.compare_from_body);
    shared.metrics.record_cache(hit);
    let (analysis_hidden, hit) = shared.cache.get_or_analyze(hidden, config.compare_from_body);
    shared.metrics.record_cache(hit);
    let mut decision = decide_analyzed(&analysis_regular, &analysis_hidden, &config);
    decision.detection_micros = started.elapsed().as_micros() as u64;
    shared.metrics.record_detection(decision.detection_micros);
    shared.metrics.record_verdict(decision.cookies_caused_difference);
    let body = decision.to_json().to_compact().into_bytes();
    (Endpoint::Classify, 200, "OK", "application/json", body)
}

/// A follower rejects direct writes: only the primary's replicated
/// stream may mutate it, or the router's promotion would race client
/// writes it never acked.
fn not_primary(endpoint: Endpoint) -> Routed {
    (endpoint, 503, "Service Unavailable", "application/json", error_json("not primary"))
}

/// `POST /v1/visit`: one FORCUM training step against the embedded world.
/// Body: `{"host": h, "path"?: "/", "cookie"?: "a=1; b=2"}`.
fn visit(shared: &Shared, body: &[u8]) -> Routed {
    if shared.cluster.role() == Role::Follower {
        return not_primary(Endpoint::Visit);
    }
    let parsed = match parse_json_body(body) {
        Ok(json) => json,
        Err(msg) => return bad_request(Endpoint::Visit, msg),
    };
    let host = match parsed.get("host").and_then(Json::as_str) {
        Some(host) => host,
        None => return bad_request(Endpoint::Visit, "body needs a string field host"),
    };
    if !shared.world.contains(host) {
        // Count the rejection: crawlers watch cp_site_derive_total
        // {result="unknown"} to notice they are probing a stale frontier.
        shared.metrics.record_site_derive("unknown", None);
        return (Endpoint::Visit, 404, "Not Found", "application/json", error_json("unknown host"));
    }
    let path = parsed.get("path").and_then(Json::as_str).unwrap_or("/");
    let cookie = parsed.get("cookie").and_then(Json::as_str);
    // Plan → journal → apply → respond. The WAL append inside `transact`
    // is the ack barrier: if it fails, no state changed and the client
    // sees 503 — never an acked-but-lost visit.
    let outcome = shared.store.transact(
        host,
        |entry| match shared.world.plan_visit(
            entry,
            host,
            path,
            cookie,
            &shared.picker,
            &shared.cache,
            &shared.metrics,
        ) {
            Some((event, plan)) => (Some(event), Some(plan)),
            None => (None, None),
        },
        |entry, marked_now, plan: Option<VisitPlan>| plan.map(|p| p.finish(entry, marked_now)),
    );
    let outcome = match outcome {
        Ok(outcome) => outcome.expect("host existence checked above"),
        Err(e) => {
            eprintln!("cp-serve: visit to {host} not journaled: {e}");
            return (
                Endpoint::Visit,
                503,
                "Service Unavailable",
                "application/json",
                error_json("durability unavailable"),
            );
        }
    };
    if let Some(record) = &outcome.record {
        shared.metrics.record_verdict(record.decision.cookies_caused_difference);
    }
    (Endpoint::Visit, 200, "OK", "application/json", outcome.to_compact_json().into_bytes())
}

/// `POST /v1/expire`: drop usefulness marks whose TTL decayed and restart
/// the site's training — the crawler's re-verification entry point. Body:
/// `{"host": h, "cookies": ["name", ...]}`. Only cookies currently marked
/// expire; when none are, no event is journaled and `expired` is 0.
fn expire(shared: &Shared, body: &[u8]) -> Routed {
    if shared.cluster.role() == Role::Follower {
        return not_primary(Endpoint::Expire);
    }
    let parsed = match parse_json_body(body) {
        Ok(json) => json,
        Err(msg) => return bad_request(Endpoint::Expire, msg),
    };
    let host = match parsed.get("host").and_then(Json::as_str) {
        Some(host) => host,
        None => return bad_request(Endpoint::Expire, "body needs a string field host"),
    };
    let cookies: Vec<String> = match parsed.get("cookies").and_then(Json::as_array) {
        Some(items) => items.iter().filter_map(Json::as_str).map(str::to_string).collect(),
        None => return bad_request(Endpoint::Expire, "body needs an array field cookies"),
    };
    if !shared.world.contains(host) {
        shared.metrics.record_site_derive("unknown", None);
        return (
            Endpoint::Expire,
            404,
            "Not Found",
            "application/json",
            error_json("unknown host"),
        );
    }
    let result = shared.store.transact(
        host,
        |entry| {
            let expired: Vec<String> =
                cookies.iter().filter(|c| entry.marked.contains(*c)).cloned().collect();
            if expired.is_empty() {
                (None, 0usize)
            } else {
                let n = expired.len();
                let event = crate::wal::VisitEvent {
                    host: host.to_string(),
                    observed: expired,
                    kind: crate::wal::EventKind::Expire,
                };
                (Some(event), n)
            }
        },
        |entry, _, expired: usize| {
            Json::object()
                .set("host", host)
                .set("expired", expired)
                .set("marked_total", entry.marked.len())
                .set("training_active", entry.forcum.is_active(host))
        },
    );
    match result {
        Ok(body) => {
            (Endpoint::Expire, 200, "OK", "application/json", body.to_compact().into_bytes())
        }
        Err(e) => {
            eprintln!("cp-serve: expire on {host} not journaled: {e}");
            (
                Endpoint::Expire,
                503,
                "Service Unavailable",
                "application/json",
                error_json("durability unavailable"),
            )
        }
    }
}

/// `POST /v1/repl/lead`: become the primary of a new generation — the
/// router's promotion entry point. Body:
/// `{"generation": N, "followers": ["host:port", ...]}`. Handshakes every
/// follower before any role change; a stale generation (locally or at any
/// follower) is a 409 and the node's role is untouched.
fn repl_lead(shared: &Shared, body: &[u8]) -> Routed {
    let parsed = match parse_json_body(body) {
        Ok(json) => json,
        Err(msg) => return bad_request(Endpoint::Repl, msg),
    };
    let generation = match parsed.get("generation").and_then(Json::as_f64) {
        Some(g) if g >= 1.0 => g as u64,
        _ => return bad_request(Endpoint::Repl, "body needs a positive integer generation"),
    };
    let followers: Vec<String> = match parsed.get("followers").and_then(Json::as_array) {
        Some(items) => items.iter().filter_map(Json::as_str).map(str::to_string).collect(),
        None => return bad_request(Endpoint::Repl, "body needs an array field followers"),
    };
    match shared.lead(generation, &followers) {
        Ok(()) => {
            let body = Json::object()
                .set("role", shared.cluster.role().label())
                .set("generation", generation)
                .set("followers", followers.len())
                .set("ack", shared.repl_ack.label())
                .to_compact()
                .into_bytes();
            (Endpoint::Repl, 200, "OK", "application/json", body)
        }
        Err(e) if e.to_string().contains("fenced") => {
            (Endpoint::Repl, 409, "Conflict", "application/json", error_json(&e.to_string()))
        }
        Err(e) => (
            Endpoint::Repl,
            503,
            "Service Unavailable",
            "application/json",
            error_json(&format!("cannot lead: {e}")),
        ),
    }
}

/// Default and maximum page sizes for `GET /v1/sites`. The cap is what
/// makes the route safe on a million-host world: no request enumerates
/// more than one bounded page.
const SITES_PAGE_DEFAULT: usize = 50;
const SITES_PAGE_MAX: usize = 500;

/// `GET /v1/sites[?after=<host>&limit=<n>]`: keyset pagination over the
/// world's enumerable hosts in canonical order. `after` is the last host
/// of the previous page; the response's `next` is the cursor for the
/// following page (`null` once exhausted).
fn sites_list(shared: &Shared, query: Option<&str>) -> Routed {
    let mut after: Option<&str> = None;
    let mut limit = SITES_PAGE_DEFAULT;
    for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("after", v)) => after = Some(v),
            Some(("limit", v)) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => limit = n.min(SITES_PAGE_MAX),
                _ => return bad_request(Endpoint::Sites, "limit must be a positive integer"),
            },
            _ => return bad_request(Endpoint::Sites, "unknown query parameter"),
        }
    }
    // Fetch one host beyond the page so `more` is exact: clients never
    // need a sentinel extra request to discover they hit the last page.
    let Some(mut hosts) = shared.world.hosts_after(after, limit + 1) else {
        return bad_request(Endpoint::Sites, "unknown after cursor");
    };
    let more = hosts.len() > limit;
    hosts.truncate(limit);
    let next = if more { hosts.last().cloned() } else { None };
    let body = Json::object()
        .set("total", shared.world.host_count())
        .set("count", hosts.len())
        .set("more", more)
        .set("next", next.map_or(Json::Null, Json::from))
        .set("hosts", hosts)
        .to_compact()
        .into_bytes();
    (Endpoint::Sites, 200, "OK", "application/json", body)
}

/// `GET /v1/sites/{host}`: the training summary for a visited site, read
/// lock-free from the store's seqlock mirror — the hot path never touches
/// a shard lock.
fn site_summary(shared: &Shared, host: &str) -> Routed {
    match shared.store.summary(host) {
        Some(summary) => (
            Endpoint::Sites,
            200,
            "OK",
            "application/json",
            summary.to_json().to_compact().into_bytes(),
        ),
        None if shared.world.contains(host) => (
            Endpoint::Sites,
            404,
            "Not Found",
            "application/json",
            error_json("site not yet visited"),
        ),
        None => (Endpoint::Sites, 404, "Not Found", "application/json", error_json("unknown host")),
    }
}

fn parse_json_body(body: &[u8]) -> Result<Json, &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8")?;
    Json::parse(text).map_err(|_| "body is not valid json")
}

fn bad_request(endpoint: Endpoint, msg: &str) -> Routed {
    (endpoint, 400, "Bad Request", "application/json", error_json(msg))
}

pub(crate) fn error_json(msg: &str) -> Vec<u8> {
    Json::object().set("error", msg).to_compact().into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::write_request;

    fn request(
        addr: SocketAddr,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> crate::http::HttpResponse {
        let stream = TcpStream::connect(addr).unwrap();
        let mut conn = HttpConn::new(stream, Limits::default());
        write_request(conn.stream_mut(), method, target, "127.0.0.1", body).unwrap();
        conn.read_response().unwrap()
    }

    fn test_server() -> ServerHandle {
        start(ServeConfig {
            workers: 2,
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn healthz_and_metrics() {
        let server = test_server();
        let resp = request(server.addr(), "GET", "/healthz", b"");
        assert_eq!(resp.status, 200);
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"));
        let resp = request(server.addr(), "GET", "/metrics", b"");
        assert_eq!(resp.status, 200);
        assert!(resp.body_string().contains("cp_requests_total{endpoint=\"healthz\"} 1"));
    }

    #[test]
    fn visit_then_site_summary() {
        let server = test_server();
        let body = br#"{"host":"news1.example","path":"/"}"#;
        let resp = request(server.addr(), "POST", "/v1/visit", body);
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("host").and_then(Json::as_str), Some("news1.example"));
        let resp = request(server.addr(), "GET", "/v1/sites/news1.example", b"");
        assert_eq!(resp.status, 200);
        let resp = request(server.addr(), "GET", "/v1/sites/never-visited.example", b"");
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn classify_round_trip() {
        let server = test_server();
        let payload = Json::object()
            .set("regular", "<html><body><p>with pref</p><div>extra</div></body></html>")
            .set("hidden", "<html><body><p>plain</p></body></html>")
            .to_compact();
        let resp = request(server.addr(), "POST", "/v1/classify", payload.as_bytes());
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let json = Json::parse(&resp.body_string()).unwrap();
        assert!(json.get("cookies_caused_difference").and_then(Json::as_bool).is_some());
        assert!(json.get("tree_sim").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn malformed_and_unknown() {
        let server = test_server();
        assert_eq!(request(server.addr(), "POST", "/v1/classify", b"not json").status, 400);
        assert_eq!(request(server.addr(), "POST", "/v1/visit", b"{}").status, 400);
        assert_eq!(
            request(server.addr(), "POST", "/v1/visit", br#"{"host":"nope.example"}"#).status,
            404
        );
        assert_eq!(request(server.addr(), "GET", "/nope", b"").status, 404);
    }

    #[test]
    fn close_causes_are_accounted() {
        let server = test_server();
        // A normal keep-alive request, then the client hangs up → "client".
        {
            let stream = TcpStream::connect(server.addr()).unwrap();
            let mut conn = HttpConn::new(stream, Limits::default());
            write_request(conn.stream_mut(), "GET", "/healthz", "127.0.0.1", b"").unwrap();
            assert_eq!(conn.read_response().unwrap().status, 200);
        }
        // A malformed request → 400 and a close with cause "error".
        {
            use std::io::Write as _;
            let stream = TcpStream::connect(server.addr()).unwrap();
            let mut conn = HttpConn::new(stream, Limits::default());
            conn.stream_mut().write_all(b"BOGUS\r\n\r\n").unwrap();
            assert_eq!(conn.read_response().unwrap().status, 400);
        }
        // The worker observes both closes asynchronously; poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (client, error) = (
                server.metrics().conn_closed_count("client"),
                server.metrics().conn_closed_count("error"),
            );
            if client >= 1 && error >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "close causes not accounted: client={client} error={error}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn chaos_rate_defers_some_visits() {
        let server = start(ServeConfig {
            workers: 2,
            chaos_fault_rate: 0.9,
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..ServeConfig::default()
        })
        .unwrap();
        // For every site: an initial visit collects the jar, then two
        // cookie-bearing visits probe. At a 90% fault rate with 2 retries
        // each probe defers with p≈0.46, so across ~60 probes the seeded
        // fault stream is certain to defer some.
        let hosts: Vec<String> =
            EmbeddedWorld::new(7).hosts().iter().map(|h| h.to_string()).collect();
        let mut deferred = 0u64;
        for host in &hosts {
            let body = Json::object().set("host", host.as_str()).to_compact();
            let first = request(server.addr(), "POST", "/v1/visit", body.as_bytes());
            let json = Json::parse(&first.body_string()).unwrap();
            let jar: Vec<String> = json
                .get("set_cookies")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect();
            for i in 1..=2 {
                let body = Json::object()
                    .set("host", host.as_str())
                    .set("path", format!("/page/{i}"))
                    .set("cookie", jar.join("; "))
                    .to_compact();
                let resp = request(server.addr(), "POST", "/v1/visit", body.as_bytes());
                assert_eq!(resp.status, 200, "{}", resp.body_string());
                let json = Json::parse(&resp.body_string()).unwrap();
                if json.get("inconclusive").and_then(Json::as_str).is_some() {
                    assert_eq!(json.get("probed").and_then(Json::as_bool), Some(false));
                    deferred += 1;
                }
            }
        }
        assert!(deferred > 0, "90% fault rate over ~60 probes must defer at least one");
        let metrics = request(server.addr(), "GET", "/metrics", b"").body_string();
        let total: u64 = crate::metrics::INCONCLUSIVE_REASONS
            .iter()
            .filter_map(|r| {
                let series = format!("cp_probe_inconclusive_total{{reason=\"{r}\"}}");
                crate::metrics::scrape_counter(&metrics, &series)
            })
            .sum();
        assert_eq!(total, deferred, "deferrals and inconclusive counters agree");
    }

    #[test]
    fn expire_endpoint_drops_marks_and_restarts_training() {
        let server = test_server();
        assert_eq!(
            request(
                server.addr(),
                "POST",
                "/v1/expire",
                br#"{"host":"nope.example","cookies":[]}"#
            )
            .status,
            404
        );
        assert_eq!(request(server.addr(), "POST", "/v1/expire", b"{}").status, 400);
        assert_eq!(
            request(server.addr(), "POST", "/v1/expire", br#"{"host":"news1.example"}"#).status,
            400,
            "cookies array is required"
        );
        // Train news1 far enough to plant a mark directly, then expire it.
        let body = br#"{"host":"news1.example","path":"/"}"#;
        assert_eq!(request(server.addr(), "POST", "/v1/visit", body).status, 200);
        server.shared.store.with_entry("news1.example", |e| {
            e.marked.insert("sid".to_string());
        });
        let resp = request(
            server.addr(),
            "POST",
            "/v1/expire",
            br#"{"host":"news1.example","cookies":["sid","never-marked"]}"#,
        );
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("expired").and_then(Json::as_f64), Some(1.0));
        assert_eq!(json.get("marked_total").and_then(Json::as_f64), Some(0.0));
        assert_eq!(json.get("training_active").and_then(Json::as_bool), Some(true));
        // A second expiry of the same cookie is a no-op.
        let resp = request(
            server.addr(),
            "POST",
            "/v1/expire",
            br#"{"host":"news1.example","cookies":["sid"]}"#,
        );
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("expired").and_then(Json::as_f64), Some(0.0));
        let metrics = request(server.addr(), "GET", "/metrics", b"").body_string();
        assert_eq!(
            crate::metrics::scrape_counter(&metrics, "cp_requests_total{endpoint=\"expire\"}"),
            Some(5)
        );
    }

    #[test]
    fn sites_listing_reports_the_more_hint() {
        let server = test_server();
        // 30 Table-1 hosts: a 25-page has more, its second page does not.
        let resp = request(server.addr(), "GET", "/v1/sites?limit=25", b"");
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("more").and_then(Json::as_bool), Some(true));
        let next = json.get("next").and_then(Json::as_str).expect("cursor present").to_string();
        let resp = request(server.addr(), "GET", &format!("/v1/sites?limit=25&after={next}"), b"");
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("more").and_then(Json::as_bool), Some(false));
        assert_eq!(json.get("next"), Some(&Json::Null));
        assert_eq!(json.get("count").and_then(Json::as_f64), Some(5.0));
        // An exact-boundary page still reports more=false on the last page.
        let resp = request(server.addr(), "GET", "/v1/sites?limit=30", b"");
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("more").and_then(Json::as_bool), Some(false));
        assert_eq!(json.get("next"), Some(&Json::Null));
    }

    #[test]
    fn marks_endpoint_and_healthz_durability_fields() {
        let server = test_server();
        let resp = request(server.addr(), "GET", "/v1/marks", b"");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_string(), "", "fresh store has no marks");
        let resp = request(server.addr(), "GET", "/healthz", b"");
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("durable").and_then(Json::as_bool), Some(false));
        assert!(json.get("recovery").is_none(), "in-memory servers report no recovery");
    }

    #[test]
    fn durable_server_checkpoints_on_shutdown_and_recovers() {
        let dir = std::env::temp_dir().join(format!("cp-serve-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = |dir: &PathBuf| ServeConfig {
            workers: 2,
            data_dir: Some(dir.clone()),
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..ServeConfig::default()
        };
        let mut server = start(config(&dir)).unwrap();
        assert_eq!(server.recovery().records_replayed, 0);
        assert_eq!(server.recovery().snapshots_loaded, 0, "first start has nothing on disk");
        let body = br#"{"host":"news1.example","path":"/"}"#;
        assert_eq!(request(server.addr(), "POST", "/v1/visit", body).status, 200);
        server.shutdown();
        server.wait();
        drop(server);

        let server = start(config(&dir)).unwrap();
        let recovery = server.recovery();
        assert_eq!(recovery.records_replayed, 0, "clean shutdown → snapshot covers the WAL");
        assert_eq!(recovery.snapshots_loaded, ServeConfig::default().shards);
        let resp = request(server.addr(), "GET", "/healthz", b"");
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("durable").and_then(Json::as_bool), Some(true));
        assert_eq!(json.get("sites_trained").and_then(Json::as_f64), Some(1.0));
        let recovery_json = json.get("recovery").expect("durable healthz reports recovery");
        assert_eq!(recovery_json.get("records_replayed").and_then(Json::as_f64), Some(0.0));
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_pool_fallback_still_serves() {
        let mut server = start(ServeConfig {
            use_poller: false,
            workers: 2,
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..ServeConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut conn = HttpConn::new(stream, Limits::default());
        for _ in 0..3 {
            write_request(conn.stream_mut(), "GET", "/healthz", "127.0.0.1", b"").unwrap();
            assert_eq!(conn.read_response().unwrap().status, 200);
        }
        drop(conn);
        let resp = request(server.addr(), "POST", "/v1/shutdown", b"");
        assert_eq!(resp.status, 200);
        server.wait();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let server = test_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut conn = HttpConn::new(stream, Limits::default());
        // Three requests in one burst: the serving path must answer all
        // of them, in order, without waiting for one response to be read
        // before parsing the next request.
        let mut batch = Vec::new();
        write_request(&mut batch, "GET", "/healthz", "127.0.0.1", b"").unwrap();
        write_request(&mut batch, "POST", "/v1/visit", "127.0.0.1", br#"{"host":"news1.example"}"#)
            .unwrap();
        write_request(&mut batch, "GET", "/v1/sites/news1.example", "127.0.0.1", b"").unwrap();
        use std::io::Write as _;
        conn.stream_mut().write_all(&batch).unwrap();
        let first = conn.read_response().unwrap();
        assert_eq!(first.status, 200);
        assert!(first.body_string().contains("\"status\":\"ok\""));
        let second = conn.read_response().unwrap();
        assert_eq!(second.status, 200);
        assert!(second.body_string().contains("news1.example"));
        let third = conn.read_response().unwrap();
        assert_eq!(third.status, 200, "{}", third.body_string());
    }

    #[test]
    fn event_loop_counts_wakeups_and_exposes_ready_gauge() {
        if cp_runtime::net::Poller::new().is_err() {
            return; // no native poller: the fallback path has no loop to count
        }
        let server = test_server();
        assert_eq!(request(server.addr(), "GET", "/healthz", b"").status, 200);
        let text = request(server.addr(), "GET", "/metrics", b"").body_string();
        let wakeups =
            crate::metrics::scrape_counter(&text, "cp_event_loop_wakeups_total").unwrap_or(0);
        assert!(wakeups > 0, "serving a request implies at least one wakeup:\n{text}");
        assert!(text.contains("cp_ready_conns"), "{text}");
    }

    #[test]
    fn replicated_pair_mirrors_marks_and_fences_follower_writes() {
        // Follower first (its replication listener must be up), then a
        // primary led at startup with --repl-ack all semantics.
        let follower = start(ServeConfig {
            workers: 2,
            repl_port: Some(0),
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..ServeConfig::default()
        })
        .unwrap();
        let follower_repl = follower.repl_addr().expect("repl listener bound").to_string();
        let primary = start(ServeConfig {
            workers: 2,
            repl_followers: vec![follower_repl],
            repl_ack: ReplAckPolicy::All,
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            ..ServeConfig::default()
        })
        .unwrap();
        // Train S6 — the Table-1 site with genuinely useful preference
        // cookies — accumulating the jar across visits so the probes see
        // the cookies they are judging.
        let host = cp_webworld::table1_population(7)[5].domain.clone();
        let mut jar: Vec<String> = Vec::new();
        for i in 0..8 {
            let path = if i == 0 { "/".to_string() } else { format!("/page/{i}") };
            let mut body = Json::object().set("host", host.as_str()).set("path", path);
            if !jar.is_empty() {
                body = body.set("cookie", jar.join("; "));
            }
            let resp = request(primary.addr(), "POST", "/v1/visit", body.to_compact().as_bytes());
            assert_eq!(resp.status, 200, "every acked visit is on the follower too");
            let json = Json::parse(&resp.body_string()).unwrap();
            for cookie in json.get("set_cookies").and_then(Json::as_array).into_iter().flatten() {
                let cookie = cookie.as_str().unwrap().to_string();
                if !jar.contains(&cookie) {
                    jar.push(cookie);
                }
            }
        }
        // Acks were synchronous (policy all): the follower already holds
        // every record the primary acked.
        let primary_marks = request(primary.addr(), "GET", "/v1/marks", b"").body_string();
        let follower_marks = request(follower.addr(), "GET", "/v1/marks", b"").body_string();
        assert!(!primary_marks.is_empty(), "training must have marked something");
        assert_eq!(primary_marks, follower_marks, "acked marks are on the follower");
        // Roles, generations, and lag in healthz.
        let health =
            Json::parse(&request(primary.addr(), "GET", "/healthz", b"").body_string()).unwrap();
        assert_eq!(health.get("role").and_then(Json::as_str), Some("primary"));
        assert_eq!(health.get("generation").and_then(Json::as_f64), Some(1.0));
        assert_eq!(health.get("replication_lag_records").and_then(Json::as_f64), Some(0.0));
        let health =
            Json::parse(&request(follower.addr(), "GET", "/healthz", b"").body_string()).unwrap();
        assert_eq!(health.get("role").and_then(Json::as_str), Some("follower"));
        assert_eq!(health.get("generation").and_then(Json::as_f64), Some(1.0));
        assert!(health.get("replication_applied_seq").and_then(Json::as_f64).unwrap() >= 1.0);
        // Direct writes to the follower are fenced.
        let resp = request(follower.addr(), "POST", "/v1/visit", br#"{"host":"news1.example"}"#);
        assert_eq!(resp.status, 503);
        assert!(resp.body_string().contains("not primary"));
        let resp = request(
            follower.addr(),
            "POST",
            "/v1/expire",
            br#"{"host":"news1.example","cookies":["sid"]}"#,
        );
        assert_eq!(resp.status, 503);
        // Replication metrics rendered on the primary.
        let metrics = request(primary.addr(), "GET", "/metrics", b"").body_string();
        let shipped =
            crate::metrics::scrape_counter(&metrics, "cp_repl_records_total{peer=\"0\"}").unwrap();
        assert!(shipped >= 1, "{shipped} records shipped");
        assert!(metrics.contains("cp_repl_ack_micros_count"));
    }

    #[test]
    fn lead_endpoint_fences_stale_generations() {
        let server = test_server();
        // Leading with no followers is legal (required acks 0).
        let resp =
            request(server.addr(), "POST", "/v1/repl/lead", br#"{"generation":5,"followers":[]}"#);
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("role").and_then(Json::as_str), Some("primary"));
        // An older generation is fenced with 409 and no state change.
        let resp =
            request(server.addr(), "POST", "/v1/repl/lead", br#"{"generation":3,"followers":[]}"#);
        assert_eq!(resp.status, 409, "{}", resp.body_string());
        assert!(resp.body_string().contains("fenced"));
        let health =
            Json::parse(&request(server.addr(), "GET", "/healthz", b"").body_string()).unwrap();
        assert_eq!(health.get("generation").and_then(Json::as_f64), Some(5.0));
        assert_eq!(health.get("role").and_then(Json::as_str), Some("primary"));
        // Malformed bodies are 400s.
        assert_eq!(request(server.addr(), "POST", "/v1/repl/lead", b"{}").status, 400);
        assert_eq!(
            request(server.addr(), "POST", "/v1/repl/lead", br#"{"generation":0,"followers":[]}"#)
                .status,
            400
        );
    }

    #[test]
    fn graceful_shutdown_via_endpoint() {
        let mut server = test_server();
        let resp = request(server.addr(), "POST", "/v1/shutdown", b"");
        assert_eq!(resp.status, 200);
        server.wait(); // must return: acceptor woken, workers drained
        assert!(server.shared.shutting_down.load(Ordering::SeqCst));
    }
}
