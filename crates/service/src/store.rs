//! The sharded training store.
//!
//! Per-site FORCUM training state lives in `N` shards, each an
//! `RwLock<HashMap<host, SiteEntry>>`; a host hashes to exactly one shard,
//! so concurrent visits to *different* sites never contend on a lock, and
//! visits to the *same* site serialize only with each other. Reads
//! (`GET /v1/sites/{host}`, summaries) take the shard's read lock.

use std::collections::{BTreeSet, HashMap};

use cookiepicker_core::{ForcumState, TrainingSummary};
use cp_runtime::sync::RwLock;

/// Per-site state: the FORCUM lifecycle plus the service-side accumulators
/// backing [`TrainingSummary`].
#[derive(Debug, Default)]
pub struct SiteEntry {
    /// FORCUM training state (keyed internally by this site's host).
    pub forcum: ForcumState,
    /// Cookie names marked useful so far.
    pub marked: BTreeSet<String>,
    /// Hidden-request probes issued.
    pub probes: usize,
    /// Probes whose decision attributed the difference to cookies.
    pub marking_probes: usize,
    /// Probes deferred because the (simulated) hidden fetch was faulted.
    pub deferred_probes: usize,
    /// Sum of detection times, in microseconds.
    pub detection_micros_total: u64,
    /// Sum of full visit-step durations, in milliseconds.
    pub duration_ms_total: f64,
}

impl SiteEntry {
    fn new(stability_window: usize) -> Self {
        SiteEntry { forcum: ForcumState::new(stability_window), ..SiteEntry::default() }
    }

    /// Builds the API summary for `host`.
    pub fn summary(&self, host: &str) -> TrainingSummary {
        let denom = self.probes.max(1) as f64;
        TrainingSummary {
            host: host.to_string(),
            probes: self.probes,
            marking_probes: self.marking_probes,
            deferred_probes: self.deferred_probes,
            avg_detection_ms: self.detection_micros_total as f64 / 1_000.0 / denom,
            avg_duration_ms: self.duration_ms_total / denom,
            training_active: self.forcum.is_active(host),
        }
    }
}

/// A host-sharded map of [`SiteEntry`]s.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<RwLock<HashMap<String, SiteEntry>>>,
    stability_window: usize,
}

impl ShardedStore {
    /// Creates a store with `shards` shards (rounded up to at least 1).
    pub fn new(shards: usize, stability_window: usize) -> Self {
        let shards = shards.max(1);
        ShardedStore {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            stability_window,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `host` hashes to (FNV-1a, stable across runs).
    pub fn shard_of(&self, host: &str) -> usize {
        (fnv1a(host) % self.shards.len() as u64) as usize
    }

    /// Runs `f` with exclusive access to `host`'s entry, creating the entry
    /// on first contact. Only `host`'s shard is locked.
    pub fn with_entry<R>(&self, host: &str, f: impl FnOnce(&mut SiteEntry) -> R) -> R {
        let mut shard = self.shards[self.shard_of(host)].write();
        let entry =
            shard.entry(host.to_string()).or_insert_with(|| SiteEntry::new(self.stability_window));
        f(entry)
    }

    /// Runs `f` with shared access to `host`'s entry, or returns `None` if
    /// the site has never been visited.
    pub fn read_entry<R>(&self, host: &str, f: impl FnOnce(&SiteEntry) -> R) -> Option<R> {
        let shard = self.shards[self.shard_of(host)].read();
        shard.get(host).map(f)
    }

    /// Total number of sites with state, across all shards.
    pub fn site_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_create_on_first_contact() {
        let store = ShardedStore::new(8, 5);
        assert_eq!(store.site_count(), 0);
        assert!(store.read_entry("a.example", |_| ()).is_none());
        store.with_entry("a.example", |e| {
            assert!(e.forcum.is_active("a.example"));
            e.probes = 3;
        });
        assert_eq!(store.site_count(), 1);
        assert_eq!(store.read_entry("a.example", |e| e.probes), Some(3));
    }

    #[test]
    fn sharding_is_stable_and_in_range() {
        let store = ShardedStore::new(8, 5);
        for host in ["a.example", "b.example", "news1.example", "x"] {
            let s = store.shard_of(host);
            assert!(s < 8);
            assert_eq!(s, store.shard_of(host), "stable hash");
        }
        // Degenerate constructions still work.
        assert_eq!(ShardedStore::new(0, 5).shard_count(), 1);
    }

    #[test]
    fn summary_from_accumulators() {
        let store = ShardedStore::new(4, 2);
        store.with_entry("s.example", |e| {
            e.probes = 4;
            e.marking_probes = 1;
            e.detection_micros_total = 8_000;
            e.duration_ms_total = 40.0;
            e.forcum.observe("s.example", ["c".to_string()], 0, true);
        });
        let summary = store.read_entry("s.example", |e| e.summary("s.example")).unwrap();
        assert_eq!(summary.probes, 4);
        assert_eq!(summary.marking_probes, 1);
        assert_eq!(summary.avg_detection_ms, 2.0);
        assert_eq!(summary.avg_duration_ms, 10.0);
        assert!(summary.training_active);
        // Zero-probe summaries divide by max(1).
        let empty = SiteEntry::new(3).summary("fresh.example");
        assert_eq!(empty.avg_detection_ms, 0.0);
    }

    #[test]
    fn concurrent_visits_to_distinct_sites() {
        let store = std::sync::Arc::new(ShardedStore::new(16, 5));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let store = store.clone();
                s.spawn(move || {
                    let host = format!("site{t}.example");
                    for _ in 0..500 {
                        store.with_entry(&host, |e| e.probes += 1);
                    }
                });
            }
        });
        assert_eq!(store.site_count(), 8);
        for t in 0..8 {
            assert_eq!(store.read_entry(&format!("site{t}.example"), |e| e.probes), Some(500));
        }
    }
}
