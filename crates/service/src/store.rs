//! The sharded training store, optionally crash-safe.
//!
//! Per-site FORCUM training state lives in `N` shards, each an
//! `RwLock<HashMap<host, SiteEntry>>`; a host hashes to exactly one shard,
//! so concurrent visits to *different* sites never contend on a lock, and
//! visits to the *same* site serialize only with each other. Reads
//! (`GET /v1/sites/{host}`, summaries) take the shard's read lock.
//!
//! With a [`DurabilityConfig`], every mutation is a [`VisitEvent`] that
//! goes through [`transact`](ShardedStore::transact): the event is
//! appended to the shard's WAL *before* it is applied in memory (and so
//! before any response can be written — the ack barrier), and every
//! `snapshot_every` events the shard is checkpointed into an atomic
//! snapshot and its WAL truncated. [`open`](ShardedStore::open) recovers
//! by loading each shard's snapshot and replaying the WAL records the
//! snapshot does not already cover.
//!
//! Lock order is always shard → WAL; both `transact` and
//! [`checkpoint`](ShardedStore::checkpoint) follow it.
//!
//! Hot-path reads bypass the shard locks entirely: every entry mutation
//! also publishes the summary-relevant fields into a per-host
//! [`SummaryCell`] — a seqlock — so [`summary`](ShardedStore::summary)
//! never waits behind a `transact` holding the shard write lock across a
//! WAL fsync. See `DESIGN.md` §14 for the protocol.

use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cookiepicker_core::{ForcumState, TrainingSummary};
use cp_runtime::sync::{Mutex, RwLock};

use crate::metrics::ServiceMetrics;
use crate::replication::{Backlog, PeerStatus, Replicator, DEFAULT_BACKLOG_CAP};
use crate::snapshot::{
    decode_snapshot_bytes, encode_snapshot_bytes, load_snapshot, write_snapshot,
};
use crate::storage::StorageFaults;
use crate::wal::{read_log, wal_path, EventKind, FsyncPolicy, VisitEvent, Wal};

/// Per-site state: the FORCUM lifecycle plus the service-side accumulators
/// backing [`TrainingSummary`].
#[derive(Debug, Clone, Default)]
pub struct SiteEntry {
    /// FORCUM training state (keyed internally by this site's host).
    pub forcum: ForcumState,
    /// Cookie names marked useful so far.
    pub marked: BTreeSet<String>,
    /// Hidden-request probes issued (decided + deferred).
    pub probes: usize,
    /// Probes whose decision attributed the difference to cookies.
    pub marking_probes: usize,
    /// Probes deferred because the (simulated) hidden fetch was faulted.
    pub deferred_probes: usize,
    /// Sum of detection times, in microseconds.
    pub detection_micros_total: u64,
    /// Sum of full visit-step durations, in milliseconds.
    pub duration_ms_total: f64,
}

impl SiteEntry {
    fn new(stability_window: usize) -> Self {
        SiteEntry { forcum: ForcumState::new(stability_window), ..SiteEntry::default() }
    }

    /// Applies one event to this entry — the single mutation path, shared
    /// by the live visit handler and WAL replay, so a replayed entry is
    /// bit-identical to the entry the events originally built.
    ///
    /// Returns the cookie names newly marked useful.
    pub fn apply(&mut self, event: &VisitEvent) -> Vec<String> {
        let host = event.host.as_str();
        match &event.kind {
            EventKind::Observe => {
                self.forcum.observe(host, event.observed.iter().cloned(), 0, false);
                Vec::new()
            }
            EventKind::Defer => {
                self.probes += 1;
                self.deferred_probes += 1;
                self.forcum.defer(host, event.observed.iter().cloned());
                Vec::new()
            }
            EventKind::Probe { group, marking, detection_micros, duration_ms } => {
                let mut marked_now = Vec::new();
                if *marking {
                    for name in group {
                        if self.marked.insert(name.clone()) {
                            marked_now.push(name.clone());
                        }
                    }
                }
                self.probes += 1;
                self.marking_probes += usize::from(*marking);
                self.detection_micros_total += detection_micros;
                self.duration_ms_total += duration_ms;
                self.forcum.observe(host, event.observed.iter().cloned(), marked_now.len(), true);
                marked_now
            }
            EventKind::Expire => {
                // Usefulness-TTL decay: drop the named marks and restart
                // training, so the site's next visits probe them again and
                // either re-mark (still useful) or leave them unmarked.
                for name in &event.observed {
                    self.marked.remove(name);
                }
                self.forcum.restart(host);
                Vec::new()
            }
        }
    }

    /// Builds the API summary for `host`. Averages divide by *decided*
    /// probes only: deferred probes record no detection time (the suspect
    /// hidden page is never compared), so counting them in the
    /// denominator would understate both averages under faults.
    pub fn summary(&self, host: &str) -> TrainingSummary {
        let decided = self.probes - self.deferred_probes;
        let denom = decided.max(1) as f64;
        TrainingSummary {
            host: host.to_string(),
            probes: self.probes,
            marking_probes: self.marking_probes,
            deferred_probes: self.deferred_probes,
            avg_detection_ms: self.detection_micros_total as f64 / 1_000.0 / denom,
            avg_duration_ms: self.duration_ms_total / denom,
            training_active: self.forcum.is_active(host),
        }
    }
}

/// The summary-relevant fields of one [`SiteEntry`], published through a
/// seqlock so readers never block behind the shard write lock.
///
/// Writers are already serialized per host (they hold the entries shard's
/// write lock), so the cell needs no writer mutex. The protocol is the
/// classic sequence-counter one: a writer bumps `seq` to odd, releases a
/// fence, stores the fields relaxed, then stores `seq` even with release;
/// a reader acquires `seq` (retrying while odd), loads the fields relaxed,
/// acquires a fence, and re-checks `seq` — a changed counter means the
/// loads raced a writer and the read retries. Readers therefore never see
/// a torn mix of two publishes.
#[derive(Debug, Default)]
pub struct SummaryCell {
    seq: AtomicU64,
    probes: AtomicU64,
    marking_probes: AtomicU64,
    deferred_probes: AtomicU64,
    detection_micros_total: AtomicU64,
    /// `f64::to_bits` of the duration sum (atomics carry no floats).
    duration_ms_bits: AtomicU64,
    /// 1 while FORCUM training is active for the host.
    active: AtomicU64,
}

/// One coherent read of a [`SummaryCell`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct SummarySnapshot {
    probes: u64,
    marking_probes: u64,
    deferred_probes: u64,
    detection_micros_total: u64,
    duration_ms_total: f64,
    active: bool,
}

impl SummaryCell {
    /// Publishes `entry`'s current summary fields. Caller must hold the
    /// entries shard's write lock (which serializes writers per host).
    fn publish(&self, host: &str, entry: &SiteEntry) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        self.probes.store(entry.probes as u64, Ordering::Relaxed);
        self.marking_probes.store(entry.marking_probes as u64, Ordering::Relaxed);
        self.deferred_probes.store(entry.deferred_probes as u64, Ordering::Relaxed);
        self.detection_micros_total.store(entry.detection_micros_total, Ordering::Relaxed);
        self.duration_ms_bits.store(entry.duration_ms_total.to_bits(), Ordering::Relaxed);
        self.active.store(u64::from(entry.forcum.is_active(host)), Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Reads one coherent snapshot, spinning while a publish is in flight.
    fn read(&self) -> SummarySnapshot {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snap = SummarySnapshot {
                probes: self.probes.load(Ordering::Relaxed),
                marking_probes: self.marking_probes.load(Ordering::Relaxed),
                deferred_probes: self.deferred_probes.load(Ordering::Relaxed),
                detection_micros_total: self.detection_micros_total.load(Ordering::Relaxed),
                duration_ms_total: f64::from_bits(self.duration_ms_bits.load(Ordering::Relaxed)),
                active: self.active.load(Ordering::Relaxed) != 0,
            };
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return snap;
            }
        }
    }
}

/// How a store persists itself.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the per-shard WALs and snapshots.
    pub dir: PathBuf,
    /// When WAL appends are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// Events between automatic per-shard checkpoints.
    pub snapshot_every: u64,
    /// Injected storage faults (tests / chaos harness), if any.
    pub faults: Option<StorageFaults>,
}

impl DurabilityConfig {
    /// A config with the default group-commit policy and checkpoint
    /// interval, no injected faults.
    pub fn new(dir: PathBuf) -> Self {
        DurabilityConfig {
            dir,
            fsync: FsyncPolicy::Batch,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            faults: None,
        }
    }
}

/// Default events between automatic per-shard checkpoints.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 4096;

/// What [`ShardedStore::open`] recovered from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Shards restored from a snapshot file.
    pub snapshots_loaded: usize,
    /// WAL records replayed on top of the snapshots.
    pub records_replayed: u64,
    /// Torn/corrupt trailing WAL bytes discarded.
    pub torn_tail_bytes: u64,
    /// Wall-clock recovery time, in microseconds.
    pub recovery_micros: u64,
}

/// The durability side of a store: one WAL per shard plus checkpoint
/// bookkeeping. Absent entirely for in-memory stores.
#[derive(Debug)]
struct Durable {
    config: DurabilityConfig,
    wals: Vec<Mutex<Wal>>,
    /// Events appended since the shard's last checkpoint.
    since_snapshot: Vec<AtomicU64>,
    metrics: Arc<ServiceMetrics>,
}

impl Durable {
    /// Checkpoints shard `idx`: snapshot the entries, then truncate the
    /// WAL they came from. `flush` additionally fsyncs the WAL first
    /// (graceful shutdown wants the log durable even if the snapshot
    /// write fails).
    ///
    /// Caller holds the shard lock; this takes the WAL lock (shard → WAL
    /// order). Crash-safety of the sequence: the snapshot names the exact
    /// `(generation, records)` prefix it folds in, so a crash (or a
    /// failure) anywhere between the snapshot rename and the WAL reset
    /// replays nothing twice and loses nothing.
    fn checkpoint_shard(
        &self,
        idx: usize,
        entries: &HashMap<String, SiteEntry>,
        flush: bool,
    ) -> std::io::Result<()> {
        let mut wal = self.wals[idx].lock();
        if flush {
            wal.sync()?;
        }
        write_snapshot(
            &self.config.dir,
            idx,
            entries,
            wal.generation(),
            wal.records(),
            self.config.faults,
            snapshot_fault_tag(idx),
            &self.metrics,
        )?;
        wal.reset()
    }

    /// Bumps the shard's event counter and checkpoints when it crosses
    /// the configured interval. Errors are absorbed into
    /// `cp_snapshot_total{result="error"}` — a failed checkpoint costs
    /// nothing but WAL length, so the visit itself still succeeds.
    fn maybe_checkpoint(&self, idx: usize, entries: &HashMap<String, SiteEntry>) {
        let since = self.since_snapshot[idx].fetch_add(1, Ordering::Relaxed) + 1;
        if since < self.config.snapshot_every {
            return;
        }
        // Reset the counter even when the checkpoint fails: retrying on
        // every subsequent event would turn one bad disk into a write
        // storm. The next interval will try again.
        self.since_snapshot[idx].store(0, Ordering::Relaxed);
        let ok = self.checkpoint_shard(idx, entries, false).is_ok();
        self.metrics.record_snapshot(ok);
    }
}

/// Fault-stream tag for shard `idx`'s WAL file.
fn wal_fault_tag(idx: usize) -> u64 {
    idx as u64
}

/// Fault-stream tag for shard `idx`'s snapshot file (disjoint from the
/// WAL tags so the two files draw independent fault streams).
fn snapshot_fault_tag(idx: usize) -> u64 {
    (1 << 32) | idx as u64
}

/// A host-sharded map of [`SiteEntry`]s.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<RwLock<HashMap<String, SiteEntry>>>,
    /// Per-shard seqlock'd summary mirrors. The map lock is held only for
    /// the O(1) `Arc` lookup/insert — never across a WAL write or an
    /// entry mutation — so [`summary`](Self::summary) stays wait-free
    /// with respect to `transact`.
    mirrors: Vec<RwLock<HashMap<String, Arc<SummaryCell>>>>,
    /// Sites with state, maintained at entry creation so
    /// [`site_count`](Self::site_count) never sweeps the shard locks.
    sites: AtomicUsize,
    /// Events applied since open — local mutations and replicated ones
    /// alike. The replication handshake and `/healthz` report it; the
    /// router promotes the follower with the highest value.
    applied: AtomicU64,
    /// Present while this node is a primary: every applied event is also
    /// shipped to the followers before the caller may ack it.
    repl: RwLock<Option<Arc<Replicator>>>,
    /// Bounded ring of recently applied records (wire framing), shared
    /// with the replicator so a reconnecting follower can be replayed the
    /// gap. Node-global and role-independent: a follower fills it from
    /// the stream it applies, so a promoted ex-follower can immediately
    /// serve resyncs for the records it witnessed.
    backlog: Arc<Mutex<Backlog>>,
    stability_window: usize,
    durable: Option<Durable>,
}

impl ShardedStore {
    /// Creates a purely in-memory store with `shards` shards (rounded up
    /// to at least 1).
    pub fn new(shards: usize, stability_window: usize) -> Self {
        let shards = shards.max(1);
        ShardedStore {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            mirrors: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            sites: AtomicUsize::new(0),
            applied: AtomicU64::new(0),
            repl: RwLock::new(None),
            backlog: Arc::new(Mutex::new(Backlog::new(DEFAULT_BACKLOG_CAP))),
            stability_window,
            durable: None,
        }
    }

    /// Opens a store, recovering from `durability.dir` when durability is
    /// configured: per shard, load the snapshot (if any), replay the WAL
    /// records it does not cover, discard the torn tail, and reopen the
    /// log for appending. Recovered state is exactly the acked prefix —
    /// a record either fully round-trips its checksum or is discarded.
    pub fn open(
        shards: usize,
        stability_window: usize,
        durability: Option<DurabilityConfig>,
        metrics: Arc<ServiceMetrics>,
    ) -> std::io::Result<(Self, RecoveryStats)> {
        let mut store = ShardedStore::new(shards, stability_window);
        let Some(config) = durability else {
            return Ok((store, RecoveryStats::default()));
        };
        let started = Instant::now();
        std::fs::create_dir_all(&config.dir)?;
        let mut stats = RecoveryStats::default();
        let mut wals = Vec::with_capacity(store.shards.len());
        let mut since_snapshot = Vec::with_capacity(store.shards.len());
        for idx in 0..store.shards.len() {
            let snap = load_snapshot(&config.dir, idx, stability_window)?;
            let (entries, snap_generation, covered) = match snap {
                Some(s) => {
                    stats.snapshots_loaded += 1;
                    (s.entries, s.wal_generation, s.wal_covered)
                }
                None => (HashMap::new(), 0, 0),
            };
            let path = wal_path(&config.dir, idx);
            let contents = read_log(&path)?;
            stats.torn_tail_bytes += contents.torn;
            // Same generation → the snapshot already contains the first
            // `covered` records. A different generation means the WAL was
            // truncated after that snapshot: everything in it is new.
            let skip = if contents.generation == snap_generation {
                covered.min(contents.events.len() as u64) as usize
            } else {
                0
            };
            for event in &contents.events {
                if store.shard_of(&event.host) != idx {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "wal {} holds a record for {} which hashes to shard {} — \
                             was the store created with a different shard count?",
                            path.display(),
                            event.host,
                            store.shard_of(&event.host)
                        ),
                    ));
                }
            }
            {
                let mut shard = store.shards[idx].write();
                *shard = entries;
                for event in &contents.events[skip..] {
                    let entry = shard
                        .entry(event.host.clone())
                        .or_insert_with(|| SiteEntry::new(stability_window));
                    entry.apply(event);
                    stats.records_replayed += 1;
                }
                // Seed the summary mirror with the recovered state so
                // lock-free reads see it before the first live mutation.
                let mut mirrors = store.mirrors[idx].write();
                for (host, entry) in shard.iter() {
                    mirrors.entry(host.clone()).or_default().publish(host, entry);
                }
                store.sites.fetch_add(shard.len(), Ordering::Relaxed);
            }
            let wal = Wal::open(
                &path,
                &contents,
                snap_generation + 1,
                config.fsync,
                config.faults,
                wal_fault_tag(idx),
                &metrics,
            )?;
            since_snapshot.push(AtomicU64::new(wal.records()));
            wals.push(Mutex::new(wal));
        }
        stats.recovery_micros = started.elapsed().as_micros() as u64;
        store.durable = Some(Durable { config, wals, since_snapshot, metrics });
        Ok((store, stats))
    }

    /// Whether this store persists its mutations.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `host` hashes to (FNV-1a, stable across runs).
    pub fn shard_of(&self, host: &str) -> usize {
        (fnv1a(host) % self.shards.len() as u64) as usize
    }

    /// Runs one durable mutation against `host`'s entry, creating the
    /// entry on first contact. Only `host`'s shard is locked, for the
    /// whole sequence:
    ///
    /// 1. `plan` inspects the entry and produces the [`VisitEvent`] to
    ///    apply (or `None` for a read-only visit) plus whatever context
    ///    `finish` needs;
    /// 2. the event is appended to the shard's WAL — **the ack barrier**:
    ///    an `Err` here aborts the visit before any state changes;
    /// 3. the event is applied to the entry;
    /// 4. `finish` builds the result from the updated entry;
    /// 5. the shard is checkpointed if its interval came due;
    /// 6. when this node is a primary, the event is shipped to the
    ///    followers — an `Err` here (quorum lost) also fails the visit:
    ///    the event is applied locally but, like a torn WAL tail, was
    ///    never acknowledged, so the durability contract holds.
    pub fn transact<P, R>(
        &self,
        host: &str,
        plan: impl FnOnce(&SiteEntry) -> (Option<VisitEvent>, P),
        finish: impl FnOnce(&SiteEntry, Vec<String>, P) -> R,
    ) -> std::io::Result<R> {
        let idx = self.shard_of(host);
        let mut shard = self.shards[idx].write();
        if !shard.contains_key(host) {
            self.sites.fetch_add(1, Ordering::Relaxed);
        }
        let entry =
            shard.entry(host.to_string()).or_insert_with(|| SiteEntry::new(self.stability_window));
        let (event, context) = plan(entry);
        let marked_now = match &event {
            Some(event) => {
                debug_assert_eq!(event.host, host, "event host must match the locked entry");
                if let Some(durable) = &self.durable {
                    durable.wals[idx].lock().append(event)?;
                }
                self.applied.fetch_add(1, Ordering::Release);
                entry.apply(event)
            }
            None => Vec::new(),
        };
        let result = finish(entry, marked_now, context);
        self.publish(idx, host, entry);
        if let Some(event) = &event {
            if let Some(durable) = &self.durable {
                durable.maybe_checkpoint(idx, &shard);
            }
            // Still under the shard lock: ships from different shards
            // serialize on the replicator lock (shard → replicator order),
            // so every follower sees one global record order. The ship
            // itself appends the record to the backlog ring; standalone
            // writes advance the ring's sequence without the encoding
            // cost (a later follower of this node bootstraps instead).
            let replicator = self.repl.read().clone();
            match replicator {
                Some(replicator) => replicator.ship(event)?,
                None => {
                    self.backlog.lock().advance();
                }
            }
        }
        Ok(result)
    }

    /// Applies one replicated event — the follower-side twin of
    /// [`transact`](Self::transact): journal to the local WAL (followers
    /// keep their own logs), apply through the same `SiteEntry::apply`
    /// path, publish the summary mirror, and checkpoint on the usual
    /// interval. Never re-ships: followers hold no replicator.
    pub fn apply_replicated(&self, event: &VisitEvent) -> std::io::Result<()> {
        let idx = self.shard_of(&event.host);
        let mut shard = self.shards[idx].write();
        if !shard.contains_key(&event.host) {
            self.sites.fetch_add(1, Ordering::Relaxed);
        }
        let entry = shard
            .entry(event.host.clone())
            .or_insert_with(|| SiteEntry::new(self.stability_window));
        if let Some(durable) = &self.durable {
            durable.wals[idx].lock().append(event)?;
        }
        self.applied.fetch_add(1, Ordering::Release);
        entry.apply(event);
        // Retain the record in the backlog ring (shard → backlog order):
        // if this follower is later promoted, it can replay these records
        // to peers that reconnect behind it.
        self.backlog.lock().push(Arc::new(event.encode_record()));
        self.publish(idx, &event.host, entry);
        if let Some(durable) = &self.durable {
            durable.maybe_checkpoint(idx, &shard);
        }
        Ok(())
    }

    /// Events applied since open (local and replicated).
    pub fn applied_seq(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Installs (or clears) the primary-side replicator. Leading installs
    /// one; adopting a newer generation's stream clears it. The outgoing
    /// replicator (if any) is retired so its maintenance thread exits.
    pub fn set_replicator(&self, replicator: Option<Arc<Replicator>>) {
        let old = {
            let mut repl = self.repl.write();
            std::mem::replace(&mut *repl, replicator)
        };
        if let Some(old) = old {
            old.retire();
        }
    }

    /// The shared record backlog (for wiring a replicator to it).
    pub fn backlog_handle(&self) -> Arc<Mutex<Backlog>> {
        Arc::clone(&self.backlog)
    }

    /// Reconfigures how many recent records the backlog ring retains.
    pub fn set_backlog_capacity(&self, capacity: usize) {
        self.backlog.lock().set_capacity(capacity);
    }

    /// Max records any *connected* follower is behind, when this node is
    /// a primary.
    pub fn replication_lag(&self) -> u64 {
        self.repl.read().as_ref().map_or(0, |r| r.lag())
    }

    /// Per-peer replication rows for `/healthz` (empty unless primary).
    pub fn replication_peers(&self) -> Vec<PeerStatus> {
        self.repl.read().as_ref().map(|r| r.peer_statuses()).unwrap_or_default()
    }

    /// Encodes the node's entire in-memory state as one snapshot blob for
    /// `GET /v1/repl/snapshot` — the bootstrap source for a follower too
    /// far behind the backlog. All shard read locks are held together
    /// while the entries are copied, so the blob is a consistent cut and
    /// its embedded `wal_covered` equals the applied sequence it reflects
    /// (no write can be mid-flight while every shard lock is held).
    pub fn encode_bootstrap(&self, generation: u64) -> Vec<u8> {
        let guards: Vec<_> = self.shards.iter().map(|shard| shard.read()).collect();
        let applied = self.applied.load(Ordering::Acquire);
        let mut entries: HashMap<String, SiteEntry> = HashMap::new();
        for guard in &guards {
            for (host, entry) in guard.iter() {
                entries.insert(host.clone(), entry.clone());
            }
        }
        drop(guards);
        encode_snapshot_bytes(&entries, generation, applied)
    }

    /// Installs a bootstrap blob from [`encode_bootstrap`]: replaces every
    /// shard's entries, rebuilds the summary mirrors, re-anchors the
    /// applied sequence and the backlog at the blob's cut, and (for
    /// durable stores) checkpoints so a restart recovers the installed
    /// state. Returns the new applied sequence.
    pub fn install_bootstrap(&self, bytes: &[u8]) -> std::io::Result<u64> {
        let contents = decode_snapshot_bytes(bytes, self.stability_window).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed bootstrap snapshot")
        })?;
        let mut per_shard: Vec<HashMap<String, SiteEntry>> =
            (0..self.shards.len()).map(|_| HashMap::new()).collect();
        for (host, entry) in contents.entries {
            let idx = self.shard_of(&host);
            per_shard[idx].insert(host, entry);
        }
        let mut total = 0usize;
        for (idx, entries) in per_shard.into_iter().enumerate() {
            total += entries.len();
            let mut shard = self.shards[idx].write();
            *shard = entries;
            {
                let mut mirrors = self.mirrors[idx].write();
                mirrors.clear();
                for (host, entry) in shard.iter() {
                    mirrors.entry(host.clone()).or_default().publish(host, entry);
                }
            }
            if let Some(durable) = &self.durable {
                // Fold the installed state into the shard's snapshot and
                // truncate its WAL — the old log belongs to a lineage this
                // node just abandoned.
                let ok = durable.checkpoint_shard(idx, &shard, false).is_ok();
                durable.metrics.record_snapshot(ok);
                durable.since_snapshot[idx].store(0, Ordering::Relaxed);
            }
        }
        self.sites.store(total, Ordering::Relaxed);
        self.applied.store(contents.wal_covered, Ordering::Release);
        self.backlog.lock().reset_to(contents.wal_covered);
        Ok(contents.wal_covered)
    }

    /// Publishes `entry`'s summary fields into its seqlock mirror cell,
    /// creating the cell on first contact. Caller holds the shard write
    /// lock; the mirror-map lock is held only for the lookup/insert.
    fn publish(&self, idx: usize, host: &str, entry: &SiteEntry) {
        let cell = {
            let mirrors = self.mirrors[idx].read();
            mirrors.get(host).cloned()
        };
        let cell = cell.unwrap_or_else(|| {
            let mut mirrors = self.mirrors[idx].write();
            Arc::clone(mirrors.entry(host.to_string()).or_default())
        });
        cell.publish(host, entry);
    }

    /// Builds `host`'s [`TrainingSummary`] from the seqlock mirror — the
    /// hot-path read: it never touches the entries shard lock, so it
    /// cannot wait behind a `transact` holding that lock across a WAL
    /// append. Returns `None` for never-visited sites.
    pub fn summary(&self, host: &str) -> Option<TrainingSummary> {
        let idx = self.shard_of(host);
        let cell = {
            let mirrors = self.mirrors[idx].read();
            mirrors.get(host).cloned()
        }?;
        let snap = cell.read();
        let decided = snap.probes - snap.deferred_probes;
        let denom = decided.max(1) as f64;
        Some(TrainingSummary {
            host: host.to_string(),
            probes: snap.probes as usize,
            marking_probes: snap.marking_probes as usize,
            deferred_probes: snap.deferred_probes as usize,
            avg_detection_ms: snap.detection_micros_total as f64 / 1_000.0 / denom,
            avg_duration_ms: snap.duration_ms_total / denom,
            training_active: snap.active,
        })
    }

    /// Flushes every WAL and checkpoints every shard — the graceful
    /// shutdown path. After a clean checkpoint, a restart replays zero
    /// records. Keeps going on per-shard errors and returns the first.
    pub fn checkpoint(&self) -> std::io::Result<()> {
        let Some(durable) = &self.durable else { return Ok(()) };
        let mut first_err = None;
        for idx in 0..self.shards.len() {
            let shard = self.shards[idx].read();
            let result = durable.checkpoint_shard(idx, &shard, true);
            durable.metrics.record_snapshot(result.is_ok());
            if result.is_ok() {
                durable.since_snapshot[idx].store(0, Ordering::Relaxed);
            } else if first_err.is_none() {
                first_err = result.err();
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Runs `f` with exclusive access to `host`'s entry, creating the entry
    /// on first contact. Only `host`'s shard is locked. Mutations made here
    /// are **not** journaled — durable stores must go through
    /// [`transact`](Self::transact).
    pub fn with_entry<R>(&self, host: &str, f: impl FnOnce(&mut SiteEntry) -> R) -> R {
        let idx = self.shard_of(host);
        let mut shard = self.shards[idx].write();
        if !shard.contains_key(host) {
            self.sites.fetch_add(1, Ordering::Relaxed);
        }
        let entry =
            shard.entry(host.to_string()).or_insert_with(|| SiteEntry::new(self.stability_window));
        let result = f(entry);
        self.publish(idx, host, entry);
        result
    }

    /// Runs `f` with shared access to `host`'s entry, or returns `None` if
    /// the site has never been visited.
    pub fn read_entry<R>(&self, host: &str, f: impl FnOnce(&SiteEntry) -> R) -> Option<R> {
        let shard = self.shards[self.shard_of(host)].read();
        shard.get(host).map(f)
    }

    /// Total number of sites with state, across all shards. Maintained
    /// atomically at entry creation, so this is a single load.
    pub fn site_count(&self) -> usize {
        self.sites.load(Ordering::Relaxed)
    }

    /// Every useful mark, as sorted `host cookie` lines — the comparable
    /// artifact the crash harness diffs across kill/recover cycles.
    pub fn marks(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (host, entry) in shard.iter() {
                out.extend(entry.marked.iter().map(|name| format!("{host} {name}")));
            }
        }
        out.sort_unstable();
        out
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_data_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cp-store-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn observe_event(host: &str, names: &[&str]) -> VisitEvent {
        VisitEvent {
            host: host.to_string(),
            observed: names.iter().map(|s| s.to_string()).collect(),
            kind: EventKind::Observe,
        }
    }

    fn probe_event(host: &str, group: &[&str], marking: bool, micros: u64) -> VisitEvent {
        VisitEvent {
            host: host.to_string(),
            observed: group.iter().map(|s| s.to_string()).collect(),
            kind: EventKind::Probe {
                group: group.iter().map(|s| s.to_string()).collect(),
                marking,
                detection_micros: micros,
                duration_ms: micros as f64 / 1_000.0,
            },
        }
    }

    #[test]
    fn entries_create_on_first_contact() {
        let store = ShardedStore::new(8, 5);
        assert_eq!(store.site_count(), 0);
        assert!(store.read_entry("a.example", |_| ()).is_none());
        store.with_entry("a.example", |e| {
            assert!(e.forcum.is_active("a.example"));
            e.probes = 3;
        });
        assert_eq!(store.site_count(), 1);
        assert_eq!(store.read_entry("a.example", |e| e.probes), Some(3));
    }

    #[test]
    fn sharding_is_stable_and_in_range() {
        let store = ShardedStore::new(8, 5);
        for host in ["a.example", "b.example", "news1.example", "x"] {
            let s = store.shard_of(host);
            assert!(s < 8);
            assert_eq!(s, store.shard_of(host), "stable hash");
        }
        // Degenerate constructions still work.
        assert_eq!(ShardedStore::new(0, 5).shard_count(), 1);
    }

    #[test]
    fn summary_from_accumulators() {
        let store = ShardedStore::new(4, 2);
        store.with_entry("s.example", |e| {
            e.probes = 4;
            e.marking_probes = 1;
            e.detection_micros_total = 8_000;
            e.duration_ms_total = 40.0;
            e.forcum.observe("s.example", ["c".to_string()], 0, true);
        });
        let summary = store.read_entry("s.example", |e| e.summary("s.example")).unwrap();
        assert_eq!(summary.probes, 4);
        assert_eq!(summary.marking_probes, 1);
        assert_eq!(summary.avg_detection_ms, 2.0);
        assert_eq!(summary.avg_duration_ms, 10.0);
        assert!(summary.training_active);
        // Zero-probe summaries divide by max(1).
        let empty = SiteEntry::new(3).summary("fresh.example");
        assert_eq!(empty.avg_detection_ms, 0.0);
    }

    #[test]
    fn summary_averages_exclude_deferred_probes() {
        // Two decided probes took 8 ms of detection in total; two deferred
        // probes recorded nothing. The average is per *decided* probe —
        // 4 ms — not diluted to 2 ms by the deferrals.
        let mut entry = SiteEntry::new(5);
        entry.apply(&probe_event("s.example", &["a"], false, 3_000));
        entry.apply(&probe_event("s.example", &["a"], true, 5_000));
        entry.apply(&VisitEvent {
            host: "s.example".into(),
            observed: vec!["a".into()],
            kind: EventKind::Defer,
        });
        entry.apply(&VisitEvent {
            host: "s.example".into(),
            observed: vec!["a".into()],
            kind: EventKind::Defer,
        });
        let summary = entry.summary("s.example");
        assert_eq!(summary.probes, 4, "probes counts decided + deferred");
        assert_eq!(summary.deferred_probes, 2);
        assert_eq!(summary.avg_detection_ms, 4.0, "denominator excludes deferred probes");
        assert_eq!(summary.avg_duration_ms, 4.0);
        // All-deferred sites report zero averages, not NaN.
        let mut all_deferred = SiteEntry::new(5);
        all_deferred.apply(&VisitEvent {
            host: "d.example".into(),
            observed: vec![],
            kind: EventKind::Defer,
        });
        let summary = all_deferred.summary("d.example");
        assert_eq!(summary.probes, 1);
        assert_eq!(summary.avg_detection_ms, 0.0);
    }

    #[test]
    fn expire_drops_marks_and_restarts_training() {
        let mut entry = SiteEntry::new(2);
        entry.apply(&probe_event("s.example", &["sid"], true, 1_000));
        entry.apply(&probe_event("s.example", &["theme"], true, 1_000));
        assert_eq!(entry.marked.len(), 2);
        // Drive the site dormant, then expire one mark.
        for _ in 0..4 {
            entry.apply(&observe_event("s.example", &["sid", "theme"]));
        }
        assert!(!entry.forcum.is_active("s.example"), "stable site goes dormant");
        let marked_now = entry.apply(&VisitEvent {
            host: "s.example".into(),
            observed: vec!["sid".into()],
            kind: EventKind::Expire,
        });
        assert!(marked_now.is_empty(), "expiry never marks");
        assert_eq!(entry.marked.iter().cloned().collect::<Vec<_>>(), vec!["theme".to_string()]);
        assert!(entry.forcum.is_active("s.example"), "expiry restarts training");
        // The expired cookie can be re-marked through the normal probe path.
        entry.apply(&probe_event("s.example", &["sid"], true, 1_000));
        assert_eq!(entry.marked.len(), 2);
    }

    #[test]
    fn apply_is_the_single_mutation_path() {
        let mut entry = SiteEntry::new(3);
        assert_eq!(entry.apply(&observe_event("a.example", &["sid"])), Vec::<String>::new());
        let marked = entry.apply(&probe_event("a.example", &["sid", "theme"], true, 100));
        assert_eq!(marked, vec!["sid".to_string(), "theme".to_string()]);
        // Re-marking is idempotent: already-marked names are not "new".
        let marked = entry.apply(&probe_event("a.example", &["sid"], true, 100));
        assert_eq!(marked, Vec::<String>::new());
        assert_eq!(entry.marked.len(), 2);
        assert_eq!(entry.probes, 2);
        assert_eq!(entry.marking_probes, 2);
        let site = entry.forcum.site("a.example").unwrap();
        assert_eq!(site.pages_seen, 3);
        assert_eq!(site.hidden_requests, 2);
        assert_eq!(site.marks, 2);
    }

    #[test]
    fn concurrent_visits_to_distinct_sites() {
        let store = std::sync::Arc::new(ShardedStore::new(16, 5));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let store = store.clone();
                s.spawn(move || {
                    let host = format!("site{t}.example");
                    for _ in 0..500 {
                        store.with_entry(&host, |e| e.probes += 1);
                    }
                });
            }
        });
        assert_eq!(store.site_count(), 8);
        for t in 0..8 {
            assert_eq!(store.read_entry(&format!("site{t}.example"), |e| e.probes), Some(500));
        }
    }

    #[test]
    fn transact_journals_and_recovers() {
        let dir = tmp_data_dir("transact");
        let metrics = Arc::new(ServiceMetrics::new());
        let config = DurabilityConfig::new(dir.clone());
        let (store, stats) =
            ShardedStore::open(4, 5, Some(config.clone()), Arc::clone(&metrics)).unwrap();
        assert_eq!(stats.records_replayed, 0);
        assert_eq!(stats.snapshots_loaded, 0);
        assert_eq!(stats.torn_tail_bytes, 0);
        assert!(store.is_durable());
        let marked = store
            .transact(
                "a.example",
                |_| (Some(probe_event("a.example", &["sid"], true, 500)), ()),
                |entry, marked_now, ()| {
                    assert_eq!(entry.marked.len(), 1);
                    marked_now
                },
            )
            .unwrap();
        assert_eq!(marked, vec!["sid".to_string()]);
        store
            .transact(
                "b.example",
                |_| (Some(observe_event("b.example", &["tr"])), ()),
                |_, _, ()| (),
            )
            .unwrap();
        // A plan that returns no event journals nothing.
        store.transact("a.example", |_| (None, ()), |_, _, ()| ()).unwrap();
        assert_eq!(metrics.wal_records_total.get(), 2);
        assert_eq!(store.marks(), vec!["a.example sid".to_string()]);
        // Simulated crash: drop without checkpoint, reopen from disk.
        drop(store);
        let metrics = Arc::new(ServiceMetrics::new());
        let (recovered, stats) = ShardedStore::open(4, 5, Some(config), metrics).unwrap();
        assert_eq!(stats.records_replayed, 2);
        assert_eq!(stats.torn_tail_bytes, 0);
        assert_eq!(recovered.marks(), vec!["a.example sid".to_string()]);
        assert_eq!(recovered.read_entry("a.example", |e| e.probes), Some(1));
        assert_eq!(recovered.read_entry("b.example", |e| e.probes), Some(0));
    }

    #[test]
    fn checkpoint_makes_restart_replay_nothing() {
        let dir = tmp_data_dir("checkpoint");
        let metrics = Arc::new(ServiceMetrics::new());
        let config = DurabilityConfig::new(dir.clone());
        let (store, _) =
            ShardedStore::open(2, 5, Some(config.clone()), Arc::clone(&metrics)).unwrap();
        for i in 0..20u64 {
            let host = format!("s{}.example", i % 5);
            store
                .transact(
                    &host,
                    |_| (Some(probe_event(&host, &[&format!("c{i}")], i % 2 == 0, i)), ()),
                    |_, _, ()| (),
                )
                .unwrap();
        }
        let marks = store.marks();
        let summary = store.read_entry("s0.example", |e| e.summary("s0.example")).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(metrics.snapshot_count("ok"), 2, "one snapshot per shard");
        drop(store);
        let metrics = Arc::new(ServiceMetrics::new());
        let (reopened, stats) =
            ShardedStore::open(2, 5, Some(config.clone()), Arc::clone(&metrics)).unwrap();
        assert_eq!(stats.records_replayed, 0, "clean restart replays zero records");
        assert_eq!(stats.snapshots_loaded, 2);
        assert_eq!(reopened.marks(), marks);
        let again = reopened.read_entry("s0.example", |e| e.summary("s0.example")).unwrap();
        assert_eq!(again.probes, summary.probes);
        assert_eq!(again.avg_detection_ms, summary.avg_detection_ms);
        // Work after the checkpoint lands in the fresh WAL generation and
        // replays on the next recovery.
        reopened
            .transact(
                "s9.example",
                |_| (Some(probe_event("s9.example", &["z"], true, 7)), ()),
                |_, _, ()| (),
            )
            .unwrap();
        drop(reopened);
        let (last, stats) =
            ShardedStore::open(2, 5, Some(config), Arc::new(ServiceMetrics::new())).unwrap();
        assert_eq!(stats.records_replayed, 1);
        assert!(last.marks().contains(&"s9.example z".to_string()));
    }

    #[test]
    fn automatic_checkpoint_triggers_on_interval() {
        let dir = tmp_data_dir("interval");
        let metrics = Arc::new(ServiceMetrics::new());
        let mut config = DurabilityConfig::new(dir);
        config.snapshot_every = 4;
        let (store, _) = ShardedStore::open(1, 5, Some(config), Arc::clone(&metrics)).unwrap();
        for i in 0..9u64 {
            store
                .transact(
                    "host.example",
                    |_| (Some(observe_event("host.example", &[])), ()),
                    |_, _, ()| (),
                )
                .unwrap();
            let _ = i;
        }
        assert_eq!(metrics.snapshot_count("ok"), 2, "9 events at interval 4 → 2 checkpoints");
    }

    #[test]
    fn double_recovery_is_idempotent() {
        // Recovering twice from the same directory (the second time after
        // the first recovery truncated the torn tail) yields identical
        // state — recovery itself must not mutate what it recovers.
        let dir = tmp_data_dir("double");
        let config = DurabilityConfig::new(dir.clone());
        let (store, _) =
            ShardedStore::open(2, 5, Some(config.clone()), Arc::new(ServiceMetrics::new()))
                .unwrap();
        for i in 0..10u64 {
            let host = format!("h{}.example", i % 3);
            store
                .transact(&host, |_| (Some(probe_event(&host, &["k"], true, i)), ()), |_, _, ()| ())
                .unwrap();
        }
        drop(store);
        let (a, stats_a) =
            ShardedStore::open(2, 5, Some(config.clone()), Arc::new(ServiceMetrics::new()))
                .unwrap();
        let marks_a = a.marks();
        drop(a);
        let (b, stats_b) =
            ShardedStore::open(2, 5, Some(config), Arc::new(ServiceMetrics::new())).unwrap();
        assert_eq!(stats_a.records_replayed, stats_b.records_replayed);
        assert_eq!(marks_a, b.marks());
    }

    #[test]
    fn summary_reads_match_locked_reads() {
        let store = ShardedStore::new(4, 3);
        assert_eq!(store.summary("never.example"), None);
        store.with_entry("s.example", |e| {
            e.apply(&probe_event("s.example", &["sid"], true, 3_000));
            e.apply(&probe_event("s.example", &["sid"], false, 5_000));
        });
        let lock_free = store.summary("s.example").unwrap();
        let locked = store.read_entry("s.example", |e| e.summary("s.example")).unwrap();
        assert_eq!(lock_free, locked);
        assert_eq!(lock_free.avg_detection_ms, 4.0);
        assert!(lock_free.training_active);
    }

    /// Readers hammer `summary()` while one writer publishes entries whose
    /// fields are held in a fixed arithmetic relationship — any torn read
    /// (a mix of two publishes) breaks the relationship and fails.
    #[test]
    fn seqlock_readers_never_observe_torn_entries() {
        use cp_runtime::rng::{Rng, SeedableRng, StdRng};

        let store = Arc::new(ShardedStore::new(2, 3));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let host = "torn.example";
        std::thread::scope(|s| {
            {
                let store = Arc::clone(&store);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x5EC_10C);
                    for _ in 0..4_000 {
                        // Invariants every publish maintains — and any torn
                        // mix of two publishes breaks:
                        //   detection_micros_total == probes * 1000 (avg 1.0)
                        //   duration_ms_total == probes as f64      (avg 1.0)
                        //   marking_probes == probes / 2
                        let jitter = rng.gen_range(0..3u64) as usize;
                        store.with_entry(host, |e| {
                            e.probes += 1 + jitter;
                            e.marking_probes = e.probes / 2;
                            e.detection_micros_total = e.probes as u64 * 1_000;
                            e.duration_ms_total = e.probes as f64;
                        });
                    }
                    done.store(true, Ordering::Release);
                });
            }
            for _ in 0..3 {
                let store = Arc::clone(&store);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut seen = 0u64;
                    let mut last_probes = 0usize;
                    while !done.load(Ordering::Acquire) || seen == 0 {
                        let Some(summary) = store.summary(host) else { continue };
                        seen += 1;
                        // probes*1000 / 1000.0 / probes is exactly 1.0 in
                        // f64 for any probes < 2^53 — no rounding slack.
                        assert_eq!(summary.avg_detection_ms, 1.0, "torn detection total");
                        assert_eq!(summary.avg_duration_ms, 1.0, "torn duration total");
                        assert_eq!(summary.marking_probes, summary.probes / 2, "torn marks");
                        assert!(
                            summary.probes >= last_probes,
                            "summaries must be monotone under a single writer"
                        );
                        last_probes = summary.probes;
                    }
                });
            }
        });
        // Post-quiescence the mirror agrees with the locked entry exactly.
        let lock_free = store.summary(host).unwrap();
        let locked = store.read_entry(host, |e| e.summary(host)).unwrap();
        assert_eq!(lock_free, locked);
    }

    /// Replays one seeded event stream and checks every host's seqlock
    /// summary equals the post-quiescence locked summary — the mirror
    /// publishes exactly what the entries hold, event for event.
    #[test]
    fn seqlock_summaries_equal_locked_summaries_after_event_stream() {
        use cp_runtime::rng::{Rng, SeedableRng, StdRng};

        let store = ShardedStore::new(8, 4);
        let mut rng = StdRng::seed_from_u64(0x1517_0A5E);
        let hosts: Vec<String> = (0..20).map(|i| format!("h{i}.example")).collect();
        for _ in 0..2_000 {
            let host = &hosts[rng.gen_range(0..hosts.len())];
            let roll = rng.gen_range(0..10u64);
            let event = match roll {
                0..=3 => observe_event(host, &["a", "b"]),
                4..=6 => probe_event(host, &["a"], roll == 4, rng.gen_range(0..5_000)),
                7..=8 => VisitEvent {
                    host: host.clone(),
                    observed: vec!["a".into()],
                    kind: EventKind::Defer,
                },
                _ => VisitEvent {
                    host: host.clone(),
                    observed: vec!["a".into()],
                    kind: EventKind::Expire,
                },
            };
            store.transact(host, |_| (Some(event), ()), |_, _, ()| ()).unwrap();
        }
        for host in &hosts {
            let lock_free = store.summary(host);
            let locked = store.read_entry(host, |e| e.summary(host));
            assert_eq!(lock_free, locked, "{host}");
        }
        assert_eq!(store.site_count(), hosts.len());
    }

    #[test]
    fn shard_count_mismatch_fails_loudly() {
        let dir = tmp_data_dir("mismatch");
        let config = DurabilityConfig::new(dir.clone());
        let (store, _) =
            ShardedStore::open(8, 5, Some(config.clone()), Arc::new(ServiceMetrics::new()))
                .unwrap();
        for host in ["a.example", "b.example", "c.example", "d.example"] {
            store.transact(host, |_| (Some(observe_event(host, &[])), ()), |_, _, ()| ()).unwrap();
        }
        drop(store);
        let err = ShardedStore::open(3, 5, Some(config), Arc::new(ServiceMetrics::new()))
            .expect_err("reopening with a different shard count must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different shard count"), "{err}");
    }
}
