//! WAL-shipped replication: primary → follower record streams, generation
//! fencing, and ack policies. See `DESIGN.md` §15 for the full ladder.
//!
//! The wire protocol reuses the WAL's record frame byte-for-byte. A
//! primary opens one TCP stream per follower and sends:
//!
//! ```text
//! [b"CPREPL01"][generation u64 LE]                  // 16-byte handshake
//! [len u32 LE][fnv1a64 u64 LE][payload]             // then WAL frames
//! ```
//!
//! The follower replies to the handshake with 17 bytes —
//! `[status u8][generation u64 LE][applied_seq u64 LE]` — where status 0
//! accepts the stream and status 1 **fences** it: the handshake carried a
//! generation older than one the follower has already seen, so the sender
//! is a stale primary and must stand down. After an accepted handshake the
//! follower acks every applied record with its cumulative per-connection
//! applied count (u64 LE).
//!
//! Because every record of a generation flows over a single ordered stream
//! (ships are serialized under the replicator lock), an ack of record `n`
//! implies the follower holds records `1..=n` — streams are strict
//! prefixes. That prefix property is what makes quorum acks sufficient for
//! failover: if a response reached the client, some majority-side follower
//! holds everything up to and including that event, so promoting the
//! most-caught-up follower loses no acked write.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cp_runtime::sync::Mutex;

use crate::metrics::ServiceMetrics;
use crate::store::ShardedStore;
use crate::wal::{frame_checksum, VisitEvent, HEADER_BYTES, MAX_RECORD_BYTES};

/// Handshake magic: protocol name + version.
pub const REPL_MAGIC: &[u8; 8] = b"CPREPL01";

/// Primary → follower handshake length (magic + generation).
pub const HANDSHAKE_BYTES: usize = 16;

/// Follower → primary handshake reply length (status + generation +
/// applied sequence).
pub const HANDSHAKE_REPLY_BYTES: usize = 17;

/// Socket timeouts on replication streams. Generous: a stall this long is
/// indistinguishable from a dead peer, and the read loop only treats a
/// timeout as fatal when shutdown has begun.
const STREAM_TIMEOUT: Duration = Duration::from_secs(5);

/// How many follower acks must land before a write is acknowledged to the
/// client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplAckPolicy {
    /// Ship asynchronously; ack the client on the local append alone.
    None,
    /// Ack once a majority of the cluster (primary included) holds the
    /// record — the smallest policy that survives any single node death.
    #[default]
    Quorum,
    /// Ack only when every follower holds the record.
    All,
}

impl ReplAckPolicy {
    /// Parses a `--repl-ack` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ReplAckPolicy::None),
            "quorum" => Some(ReplAckPolicy::Quorum),
            "all" => Some(ReplAckPolicy::All),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn label(self) -> &'static str {
        match self {
            ReplAckPolicy::None => "none",
            ReplAckPolicy::Quorum => "quorum",
            ReplAckPolicy::All => "all",
        }
    }

    /// Follower acks required before the client sees a response, for a
    /// cluster of `followers` + 1 primary. Quorum counts the primary
    /// itself toward the majority: with 2 followers (3 nodes) one
    /// follower ack makes 2 of 3.
    pub fn required_acks(self, followers: usize) -> usize {
        match self {
            ReplAckPolicy::None => 0,
            ReplAckPolicy::Quorum => followers.div_ceil(2),
            ReplAckPolicy::All => followers,
        }
    }
}

/// What this node currently is, cluster-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Not participating in replication.
    Standalone,
    /// Accepting writes and shipping them to followers.
    Primary,
    /// Applying a primary's stream; rejects direct writes.
    Follower,
}

impl Role {
    /// The `/healthz` label.
    pub fn label(self) -> &'static str {
        match self {
            Role::Standalone => "standalone",
            Role::Primary => "primary",
            Role::Follower => "follower",
        }
    }

    fn from_u8(v: u8) -> Role {
        match v {
            1 => Role::Primary,
            2 => Role::Follower,
            _ => Role::Standalone,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Role::Standalone => 0,
            Role::Primary => 1,
            Role::Follower => 2,
        }
    }
}

/// The node's cluster identity: its role and the highest generation it has
/// witnessed. The generation is monotone — it only ever moves forward, and
/// every fencing decision compares against it.
#[derive(Debug, Default)]
pub struct ClusterState {
    role: AtomicU8,
    generation: AtomicU64,
}

impl ClusterState {
    pub fn new() -> Self {
        ClusterState::default()
    }

    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire))
    }

    pub fn set_role(&self, role: Role) {
        self.role.store(role.as_u8(), Ordering::Release);
    }

    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Advances the witnessed generation (never backwards).
    pub fn witness_generation(&self, generation: u64) {
        self.generation.fetch_max(generation, Ordering::AcqRel);
    }
}

/// One follower connection on the primary side.
struct Peer {
    /// `None` once the peer errored — dead for the rest of this
    /// generation; the next promotion re-establishes streams.
    stream: Option<TcpStream>,
    /// Cumulative records this peer acked on this connection.
    acked: u64,
}

struct ReplInner {
    peers: Vec<Peer>,
    /// Records shipped (attempted) on this replicator.
    shipped: u64,
}

/// The primary side of replication: one ordered stream per follower,
/// created by a successful [`connect`](Replicator::connect) handshake.
///
/// [`ship`](Replicator::ship) serializes all records under one lock so
/// every follower sees the same global order — the prefix property the
/// promotion rule depends on. Lock order is shard → WAL → replicator; the
/// replicator lock is a leaf and never takes the others.
pub struct Replicator {
    inner: Mutex<ReplInner>,
    required: usize,
    generation: u64,
    metrics: Arc<ServiceMetrics>,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("generation", &self.generation)
            .field("required", &self.required)
            .finish()
    }
}

impl Replicator {
    /// Opens a stream to every follower and runs the handshake. Fails —
    /// without becoming primary — if any follower is unreachable or
    /// fences the generation (its reply names a newer one).
    pub fn connect(
        followers: &[String],
        generation: u64,
        policy: ReplAckPolicy,
        metrics: Arc<ServiceMetrics>,
    ) -> std::io::Result<Replicator> {
        let mut peers = Vec::with_capacity(followers.len());
        for addr in followers {
            let mut stream = TcpStream::connect(addr.as_str())?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(STREAM_TIMEOUT))?;
            stream.set_write_timeout(Some(STREAM_TIMEOUT))?;
            let mut handshake = [0u8; HANDSHAKE_BYTES];
            handshake[..8].copy_from_slice(REPL_MAGIC);
            handshake[8..].copy_from_slice(&generation.to_le_bytes());
            stream.write_all(&handshake)?;
            let mut reply = [0u8; HANDSHAKE_REPLY_BYTES];
            stream.read_exact(&mut reply)?;
            if reply[0] != 0 {
                let theirs = u64::from_le_bytes(reply[1..9].try_into().expect("8-byte slice"));
                return Err(std::io::Error::other(format!(
                    "follower {addr} fenced generation {generation}: it has already \
                     witnessed generation {theirs}"
                )));
            }
            peers.push(Peer { stream: Some(stream), acked: 0 });
        }
        metrics.set_repl_peers(peers.len());
        metrics.repl_lag_records.set(0);
        Ok(Replicator {
            inner: Mutex::new(ReplInner { peers, shipped: 0 }),
            required: policy.required_acks(followers.len()),
            generation,
            metrics,
        })
    }

    /// The generation this replicator streams under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Max records any peer is behind the shipped count (dead peers keep
    /// falling behind; live peers are caught up after every ship).
    pub fn lag(&self) -> u64 {
        let inner = self.inner.lock();
        inner.peers.iter().map(|p| inner.shipped.saturating_sub(p.acked)).max().unwrap_or(0)
    }

    /// Ships one event to every live follower and waits for their acks.
    /// `Err` when fewer than the policy's required acks landed — the
    /// caller must then *not* acknowledge the write to its client (the
    /// event is applied locally but unacked, exactly like a torn WAL
    /// tail: present on this node, invisible to the contract).
    pub fn ship(&self, event: &VisitEvent) -> std::io::Result<()> {
        let record = event.encode_record();
        let started = Instant::now();
        let mut inner = self.inner.lock();
        inner.shipped += 1;
        let shipped = inner.shipped;
        let mut acks = 0usize;
        for (idx, peer) in inner.peers.iter_mut().enumerate() {
            let Some(stream) = peer.stream.as_mut() else { continue };
            let acked = stream.write_all(&record).and_then(|()| {
                let mut buf = [0u8; 8];
                stream.read_exact(&mut buf)?;
                Ok(u64::from_le_bytes(buf))
            });
            match acked {
                Ok(count) => {
                    peer.acked = count;
                    acks += 1;
                    self.metrics.record_repl_ship(idx);
                }
                Err(_) => {
                    // Dead for this generation; promotion rebuilds streams.
                    peer.stream = None;
                }
            }
        }
        let lag = inner.peers.iter().map(|p| shipped.saturating_sub(p.acked)).max().unwrap_or(0);
        drop(inner);
        self.metrics.repl_lag_records.set(lag as i64);
        self.metrics.repl_ack_micros.observe(started.elapsed().as_micros() as u64);
        if acks < self.required {
            return Err(std::io::Error::other(format!(
                "replication quorum lost: {acks} of {} required follower acks",
                self.required
            )));
        }
        Ok(())
    }
}

/// Reads exactly `buf.len()` bytes, riding out socket timeouts so an idle
/// primary does not kill the stream; bails on EOF, real errors, or when
/// shutdown has begun.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutting_down: &AtomicBool) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutting_down.load(Ordering::Acquire) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Serves one inbound replication stream on the follower side: validate
/// the handshake (fencing stale generations), then apply each framed
/// record through the same [`SiteEntry::apply`](crate::store::SiteEntry)
/// path recovery uses and ack it with the cumulative applied count.
///
/// Accepting a handshake adopts its generation: the node becomes (or
/// stays) a follower of that primary and drops any replicator it held —
/// a primary receiving a newer generation's stream has been superseded
/// and steps down. If a newer generation arrives mid-stream (on another
/// connection), this stream stops acking and closes: a record from a
/// dead generation is never applied after the succession.
pub fn serve_follower_stream(
    mut stream: TcpStream,
    store: &ShardedStore,
    cluster: &ClusterState,
    shutting_down: &AtomicBool,
) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(STREAM_TIMEOUT)).ok();
    stream.set_write_timeout(Some(STREAM_TIMEOUT)).ok();
    let mut handshake = [0u8; HANDSHAKE_BYTES];
    if !read_full(&mut stream, &mut handshake, shutting_down) || &handshake[..8] != REPL_MAGIC {
        return;
    }
    let generation = u64::from_le_bytes(handshake[8..].try_into().expect("8-byte slice"));
    let current = cluster.generation();
    // Strictly older generations are fenced; an equal generation is fenced
    // too when this node is that generation's primary (two primaries of
    // one generation would be split brain).
    let stale = generation < current || (generation == current && cluster.role() == Role::Primary);
    let mut reply = [0u8; HANDSHAKE_REPLY_BYTES];
    reply[0] = u8::from(stale);
    reply[1..9].copy_from_slice(&current.to_le_bytes());
    reply[9..17].copy_from_slice(&store.applied_seq().to_le_bytes());
    if stream.write_all(&reply).is_err() || stale {
        return;
    }
    cluster.witness_generation(generation);
    cluster.set_role(Role::Follower);
    store.set_replicator(None);
    let mut applied_on_conn = 0u64;
    loop {
        let mut header = [0u8; HEADER_BYTES];
        if !read_full(&mut stream, &mut header, shutting_down) {
            return;
        }
        let len_le: [u8; 4] = header[..4].try_into().expect("4-byte slice");
        let len = u32::from_le_bytes(len_le);
        if len == 0 || len > MAX_RECORD_BYTES {
            return;
        }
        let sum = u64::from_le_bytes(header[4..].try_into().expect("8-byte slice"));
        let mut payload = vec![0u8; len as usize];
        if !read_full(&mut stream, &mut payload, shutting_down) {
            return;
        }
        if frame_checksum(&len_le, &payload) != sum {
            return;
        }
        let Some(event) = VisitEvent::decode_payload(&payload) else { return };
        // Fence mid-stream: a newer primary may have adopted this node
        // since the handshake. Never apply (or ack) a dead generation's
        // record after the succession.
        if cluster.generation() != generation || cluster.role() != Role::Follower {
            return;
        }
        if store.apply_replicated(&event).is_err() {
            return;
        }
        applied_on_conn += 1;
        if stream.write_all(&applied_on_conn.to_le_bytes()).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_policy_parse_and_label_round_trip() {
        for policy in [ReplAckPolicy::None, ReplAckPolicy::Quorum, ReplAckPolicy::All] {
            assert_eq!(ReplAckPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(ReplAckPolicy::parse("majority"), None);
        assert_eq!(ReplAckPolicy::default(), ReplAckPolicy::Quorum);
    }

    #[test]
    fn quorum_counts_the_primary_toward_the_majority() {
        // followers → required follower acks (primary + acks is a majority
        // of followers + 1 nodes).
        for (followers, required) in [(0, 0), (1, 1), (2, 1), (3, 2), (4, 2), (5, 3)] {
            assert_eq!(
                ReplAckPolicy::Quorum.required_acks(followers),
                required,
                "{followers} followers"
            );
        }
        assert_eq!(ReplAckPolicy::None.required_acks(4), 0);
        assert_eq!(ReplAckPolicy::All.required_acks(4), 4);
    }

    #[test]
    fn cluster_generation_is_monotone() {
        let cluster = ClusterState::new();
        assert_eq!(cluster.role(), Role::Standalone);
        assert_eq!(cluster.generation(), 0);
        cluster.witness_generation(3);
        cluster.witness_generation(2);
        assert_eq!(cluster.generation(), 3, "generations never move backwards");
        cluster.set_role(Role::Primary);
        assert_eq!(cluster.role(), Role::Primary);
        assert_eq!(cluster.role().label(), "primary");
    }
}
