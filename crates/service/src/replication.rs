//! WAL-shipped replication: primary → follower record streams, generation
//! fencing, ack policies, and the self-healing resync ladder. See
//! `DESIGN.md` §15–§16 for the full picture.
//!
//! The wire protocol reuses the WAL's record frame byte-for-byte. A
//! primary opens one TCP stream per follower and sends:
//!
//! ```text
//! [b"CPREPL01"][generation u64 LE]                  // 16-byte handshake
//! [len u32 LE][fnv1a64 u64 LE][payload]             // then WAL frames
//! ```
//!
//! The follower replies to the handshake with 17 bytes —
//! `[status u8][generation u64 LE][applied_seq u64 LE]` — where status 0
//! accepts the stream and status 1 **fences** it: the handshake carried a
//! generation older than one the follower has already seen, so the sender
//! is a stale primary and must stand down. After an accepted handshake the
//! follower acks every applied record with its absolute applied sequence
//! (u64 LE). The primary reads the reply's `applied_seq` and replays the
//! records the follower is missing from its in-memory [`Backlog`] before
//! the stream goes live; a follower too far behind for the backlog is sent
//! a control frame naming the primary's HTTP address and bootstraps from
//! `GET /v1/repl/snapshot` instead.
//!
//! Control frames share the record framing but set the high bit of the
//! length word ([`CONTROL_BIT`]) — real records never reach
//! [`MAX_RECORD_BYTES`], so the bit is unambiguous and the checksum still
//! covers the frame.
//!
//! Because every record of a generation flows over a single ordered stream
//! (ships are serialized under the replicator lock), an ack of record `n`
//! implies the follower holds records `1..=n` — streams are strict
//! prefixes. That prefix property is what makes quorum acks sufficient for
//! failover: if a response reached the client, some majority-side follower
//! holds everything up to and including that event, so promoting the
//! most-caught-up follower loses no acked write.
//!
//! A peer is never permanently dead. [`ship`](Replicator::ship) waits at
//! most [`ACK_DEADLINE`] per peer: a stream that stays silent is demoted
//! to *catching-up* and fed from the backlog off the write path; a stream
//! that errors goes *down* and is redialed with seeded jittered backoff by
//! the maintenance thread ([`run_maintenance`]). Only *live* peers count
//! toward the quorum and the lag gauge.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cp_runtime::sync::Mutex;

use crate::metrics::ServiceMetrics;
use crate::store::ShardedStore;
use crate::wal::{frame_checksum, VisitEvent, HEADER_BYTES, MAX_RECORD_BYTES};

/// Handshake magic: protocol name + version.
pub const REPL_MAGIC: &[u8; 8] = b"CPREPL01";

/// Primary → follower handshake length (magic + generation).
pub const HANDSHAKE_BYTES: usize = 16;

/// Follower → primary handshake reply length (status + generation +
/// applied sequence).
pub const HANDSHAKE_REPLY_BYTES: usize = 17;

/// Socket timeouts on replication streams outside the ship hot path
/// (handshakes, backlog drains). Generous: a stall this long is
/// indistinguishable from a dead peer.
const STREAM_TIMEOUT: Duration = Duration::from_secs(5);

/// How long [`ship`](Replicator::ship) waits for one peer's ack before
/// demoting it to catching-up. This bounds the stall one slow follower can
/// add to a client write — the old behavior blocked the shard lock for
/// [`STREAM_TIMEOUT`] (5 s) per stalled peer.
pub const ACK_DEADLINE: Duration = Duration::from_millis(250);

/// Default capacity of the primary's in-memory record backlog — how far a
/// reconnecting follower may be behind and still resync from the live
/// ring instead of a snapshot bootstrap.
pub const DEFAULT_BACKLOG_CAP: usize = 4096;

/// High bit of the frame length word: set on control frames, never on
/// records (records are capped at [`MAX_RECORD_BYTES`] = 1 MiB).
const CONTROL_BIT: u32 = 1 << 31;

/// Control frame kind: "you are too far behind my backlog — bootstrap
/// from `GET /v1/repl/snapshot` at the HTTP address in this payload".
const CONTROL_BOOTSTRAP: u8 = 1;

/// Largest accepted control payload (kind byte + an address).
const MAX_CONTROL_BYTES: u32 = 1024;

/// Records per chunk when draining the backlog to a catching-up peer.
const DRAIN_CHUNK: usize = 64;

/// A catching-up peer whose remaining gap is at most this many records is
/// finished synchronously under the replicator lock, so the promotion to
/// live cannot race a concurrent ship.
const FINAL_CHUNK: usize = 32;

/// Maintenance thread cadence.
const MAINT_TICK: Duration = Duration::from_millis(25);

/// Redial backoff bounds (jittered, doubling per attempt).
const REDIAL_BASE: Duration = Duration::from_millis(100);
const REDIAL_MAX: Duration = Duration::from_secs(2);

/// How long a peer that was just sent a bootstrap hint is left alone
/// before the redial probes whether the snapshot install finished.
const BOOTSTRAP_REDIAL: Duration = Duration::from_millis(500);

/// How many follower acks must land before a write is acknowledged to the
/// client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplAckPolicy {
    /// Ship asynchronously; ack the client on the local append alone.
    None,
    /// Ack once a majority of the cluster (primary included) holds the
    /// record — the smallest policy that survives any single node death.
    #[default]
    Quorum,
    /// Ack only when every follower holds the record.
    All,
}

impl ReplAckPolicy {
    /// Parses a `--repl-ack` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ReplAckPolicy::None),
            "quorum" => Some(ReplAckPolicy::Quorum),
            "all" => Some(ReplAckPolicy::All),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn label(self) -> &'static str {
        match self {
            ReplAckPolicy::None => "none",
            ReplAckPolicy::Quorum => "quorum",
            ReplAckPolicy::All => "all",
        }
    }

    /// Follower acks required before the client sees a response, for a
    /// cluster of `followers` + 1 primary. Quorum counts the primary
    /// itself toward the majority: with 2 followers (3 nodes) one
    /// follower ack makes 2 of 3.
    pub fn required_acks(self, followers: usize) -> usize {
        match self {
            ReplAckPolicy::None => 0,
            ReplAckPolicy::Quorum => followers.div_ceil(2),
            ReplAckPolicy::All => followers,
        }
    }
}

/// What this node currently is, cluster-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Not participating in replication.
    Standalone,
    /// Accepting writes and shipping them to followers.
    Primary,
    /// Applying a primary's stream; rejects direct writes.
    Follower,
}

impl Role {
    /// The `/healthz` label.
    pub fn label(self) -> &'static str {
        match self {
            Role::Standalone => "standalone",
            Role::Primary => "primary",
            Role::Follower => "follower",
        }
    }

    fn from_u8(v: u8) -> Role {
        match v {
            1 => Role::Primary,
            2 => Role::Follower,
            _ => Role::Standalone,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Role::Standalone => 0,
            Role::Primary => 1,
            Role::Follower => 2,
        }
    }
}

/// The node's cluster identity: its role and the highest generation it has
/// witnessed. The generation is monotone — it only ever moves forward, and
/// every fencing decision compares against it.
pub struct ClusterState {
    role: AtomicU8,
    generation: AtomicU64,
    /// Bumped under [`apply_gate`](Self::apply_gate) whenever a follower
    /// stream is adopted. A stream applies records only while its epoch is
    /// current, so a superseded stream can never slip an apply in after a
    /// newer stream's handshake reply reported `applied_seq` — which would
    /// make the primary's gap arithmetic resend (double-apply) a record.
    stream_epoch: AtomicU64,
    /// Serializes follower-stream adoption, record application, and
    /// snapshot-bootstrap installs against each other.
    apply_gate: Mutex<()>,
}

impl Default for ClusterState {
    fn default() -> Self {
        ClusterState {
            role: AtomicU8::new(0),
            generation: AtomicU64::new(0),
            stream_epoch: AtomicU64::new(0),
            apply_gate: Mutex::new(()),
        }
    }
}

impl std::fmt::Debug for ClusterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterState")
            .field("role", &self.role())
            .field("generation", &self.generation())
            .finish()
    }
}

impl ClusterState {
    pub fn new() -> Self {
        ClusterState::default()
    }

    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire))
    }

    pub fn set_role(&self, role: Role) {
        self.role.store(role.as_u8(), Ordering::Release);
    }

    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Advances the witnessed generation (never backwards).
    pub fn witness_generation(&self, generation: u64) {
        self.generation.fetch_max(generation, Ordering::AcqRel);
    }
}

/// Bounded ring of recently applied records, in their wire framing. Every
/// node keeps one — as a primary it is filled by [`Replicator::ship`], as
/// a follower by the stream apply path — so whichever node leads next can
/// replay the gap to a reconnecting peer without touching disk.
///
/// `head` is the node's lineage sequence (it equals
/// [`applied_seq`](crate::store::ShardedStore::applied_seq) as long as the
/// backlog is advanced for every applied event); the ring retains the
/// records for `(head - len, head]`.
#[derive(Debug)]
pub struct Backlog {
    records: VecDeque<Arc<Vec<u8>>>,
    head: u64,
    capacity: usize,
}

impl Backlog {
    pub fn new(capacity: usize) -> Self {
        Backlog { records: VecDeque::new(), head: 0, capacity: capacity.max(1) }
    }

    /// Appends one encoded record, trimming to capacity. Returns the
    /// record's sequence number.
    pub fn push(&mut self, record: Arc<Vec<u8>>) -> u64 {
        self.head += 1;
        self.records.push_back(record);
        while self.records.len() > self.capacity {
            self.records.pop_front();
        }
        self.head
    }

    /// Advances the sequence without retaining the record — the standalone
    /// write path, which has no encoded frame at hand. Gaps make the ring
    /// useless for replay, so it is cleared; a later follower of this node
    /// will bootstrap from a snapshot instead.
    pub fn advance(&mut self) -> u64 {
        self.head += 1;
        self.records.clear();
        self.head
    }

    /// Re-anchors the sequence (e.g. after a snapshot bootstrap installed
    /// `seq` events' worth of state) with an empty ring.
    pub fn reset_to(&mut self, seq: u64) {
        self.records.clear();
        self.head = seq;
    }

    /// Sequence number of the most recent record.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Whether every record in `(after, head]` is retained.
    pub fn covers(&self, after: u64) -> bool {
        after >= self.head - self.records.len() as u64
    }

    /// Up to `max` retained records with sequence `> after`, in order.
    pub fn range(&self, after: u64, max: usize) -> Vec<(u64, Arc<Vec<u8>>)> {
        let first = self.head - self.records.len() as u64 + 1;
        let start = after.saturating_sub(first).saturating_add(u64::from(after >= first)) as usize;
        self.records
            .iter()
            .enumerate()
            .skip(start)
            .take(max)
            .map(|(i, r)| (first + i as u64, Arc::clone(r)))
            .collect()
    }

    /// Changes the capacity, trimming if it shrank.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.records.len() > self.capacity {
            self.records.pop_front();
        }
    }
}

/// A peer's position in the slow-peer state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// In the synchronous ship path; counts toward the quorum.
    Live,
    /// Connected but behind; fed from the backlog by the maintenance
    /// thread, promoted back to live when it catches up.
    CatchingUp,
    /// Stream gone; redialed with backoff by the maintenance thread.
    Down,
}

impl PeerState {
    pub fn label(self) -> &'static str {
        match self {
            PeerState::Live => "live",
            PeerState::CatchingUp => "catching-up",
            PeerState::Down => "down",
        }
    }
}

/// One follower's `/healthz` row.
#[derive(Debug, Clone)]
pub struct PeerStatus {
    pub addr: String,
    pub state: PeerState,
    pub connected: bool,
    pub acked_seq: u64,
}

/// One follower connection on the primary side.
struct Peer {
    addr: String,
    stream: Option<TcpStream>,
    state: PeerState,
    /// Sequence (this node's numbering) of the last record fully written
    /// to the stream — what the backlog drain resumes from. A partially
    /// written frame is unrecoverable in-band, so write errors always
    /// close the stream.
    sent: u64,
    /// The follower's own applied sequence from its last ack.
    acked: u64,
    /// Records written whose acks have not been read yet.
    pending: u64,
    /// Partial-ack reassembly: acks are 8 bytes and a deadline can split
    /// one; the remainder is picked up on the next harvest.
    ack_buf: [u8; 8],
    ack_filled: usize,
    /// When a down peer may be redialed.
    redial_at: Instant,
    /// Consecutive failed redials (drives the backoff).
    attempts: u32,
}

impl Peer {
    fn status(&self) -> PeerStatus {
        PeerStatus {
            addr: self.addr.clone(),
            state: self.state,
            connected: self.stream.is_some(),
            acked_seq: self.acked,
        }
    }
}

struct ReplInner {
    peers: Vec<Peer>,
}

/// The primary side of replication: one ordered stream per follower,
/// created by a successful [`connect`](Replicator::connect) handshake.
///
/// [`ship`](Replicator::ship) serializes all records under one lock so
/// every follower sees the same global order — the prefix property the
/// promotion rule depends on. Lock order is shard → replicator → backlog;
/// the backlog lock is a leaf.
pub struct Replicator {
    inner: Mutex<ReplInner>,
    backlog: Arc<Mutex<Backlog>>,
    required: usize,
    generation: u64,
    /// This primary's HTTP address, sent in bootstrap hints.
    advertise: String,
    /// Set when the node stops being this generation's primary; the
    /// maintenance thread exits on it.
    retired: AtomicBool,
    metrics: Arc<ServiceMetrics>,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("generation", &self.generation)
            .field("required", &self.required)
            .finish()
    }
}

/// What establishing a stream to a follower produced.
enum Established {
    /// Stream handshaked and fully caught up.
    Live(TcpStream, u64),
    /// Stream handshaked; the gap was replayed from the backlog but new
    /// ships may have raced ahead (`sent`, `acked`, `pending` say where
    /// the stream is).
    Behind { stream: TcpStream, sent: u64, acked: u64, pending: u64 },
    /// The follower is beyond the backlog: it was sent a bootstrap hint
    /// and the stream was closed. Redial after the install window.
    Hinted,
}

impl Replicator {
    /// Opens a stream to every follower and runs the handshake. Fails —
    /// without becoming primary — if any follower is unreachable or
    /// fences the generation (its reply names a newer one). A reachable
    /// follower that is behind is *not* an error: its gap is replayed from
    /// `backlog`, or it is hinted to bootstrap and picked up by the
    /// maintenance thread.
    pub fn connect(
        followers: &[String],
        generation: u64,
        policy: ReplAckPolicy,
        advertise: String,
        backlog: Arc<Mutex<Backlog>>,
        metrics: Arc<ServiceMetrics>,
    ) -> std::io::Result<Replicator> {
        let mut peers = Vec::with_capacity(followers.len());
        for (idx, addr) in followers.iter().enumerate() {
            let established = establish(addr, generation, &advertise, &backlog, &metrics)?;
            let peer = match established {
                Established::Live(stream, seq) => Peer {
                    addr: addr.clone(),
                    stream: Some(stream),
                    state: PeerState::Live,
                    sent: seq,
                    acked: seq,
                    pending: 0,
                    ack_buf: [0u8; 8],
                    ack_filled: 0,
                    redial_at: Instant::now(),
                    attempts: 0,
                },
                Established::Behind { stream, sent, acked, pending } => Peer {
                    addr: addr.clone(),
                    stream: Some(stream),
                    state: PeerState::CatchingUp,
                    sent,
                    acked,
                    pending,
                    ack_buf: [0u8; 8],
                    ack_filled: 0,
                    redial_at: Instant::now(),
                    attempts: 0,
                },
                Established::Hinted => Peer {
                    addr: addr.clone(),
                    stream: None,
                    state: PeerState::Down,
                    sent: 0,
                    acked: 0,
                    pending: 0,
                    ack_buf: [0u8; 8],
                    ack_filled: 0,
                    redial_at: Instant::now() + BOOTSTRAP_REDIAL,
                    attempts: 0,
                },
            };
            metrics.set_repl_peer_up(idx, peer.stream.is_some());
            peers.push(peer);
        }
        metrics.set_repl_peers(peers.len());
        metrics.repl_lag_records.set(0);
        Ok(Replicator {
            inner: Mutex::new(ReplInner { peers }),
            backlog,
            required: policy.required_acks(followers.len()),
            generation,
            advertise,
            retired: AtomicBool::new(false),
            metrics,
        })
    }

    /// The generation this replicator streams under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stops the maintenance thread; called when the node is demoted or
    /// shuts down.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Max records any *connected* peer is behind the backlog head. Down
    /// peers are excluded: a dead peer's lag grows without bound and says
    /// nothing about the health of the streams actually carrying writes
    /// (it comes back as `cp_repl_peer_up == 0` instead).
    pub fn lag(&self) -> u64 {
        let inner = self.inner.lock();
        let head = self.backlog.lock().head();
        connected_lag(&inner, head)
    }

    /// Per-peer rows for `/healthz`.
    pub fn peer_statuses(&self) -> Vec<PeerStatus> {
        self.inner.lock().peers.iter().map(Peer::status).collect()
    }

    /// Ships one event to every live follower and waits up to
    /// [`ACK_DEADLINE`] per peer for its ack. `Err` when fewer than the
    /// policy's required acks landed — the caller must then *not*
    /// acknowledge the write to its client (the event is applied locally
    /// but unacked, exactly like a torn WAL tail: present on this node,
    /// invisible to the contract). A peer that misses the deadline is
    /// demoted to catching-up instead of holding the shard lock hostage.
    pub fn ship(&self, event: &VisitEvent) -> std::io::Result<()> {
        let record = Arc::new(event.encode_record());
        let started = Instant::now();
        let mut inner = self.inner.lock();
        let head = self.backlog.lock().push(Arc::clone(&record));
        let mut acks = 0usize;
        for (idx, peer) in inner.peers.iter_mut().enumerate() {
            if peer.state != PeerState::Live {
                continue;
            }
            let Some(stream) = peer.stream.as_mut() else {
                down_peer(peer, idx, &self.metrics);
                continue;
            };
            // A blocked send is bounded too: the socket buffer absorbs
            // the frame or the peer is demoted via Down (a timed-out
            // write leaves the frame torn mid-stream, so the stream
            // cannot be kept).
            stream.set_write_timeout(Some(ACK_DEADLINE)).ok();
            if stream.write_all(&record).is_err() {
                down_peer(peer, idx, &self.metrics);
                continue;
            }
            peer.sent = head;
            peer.pending += 1;
            match harvest_acks(peer, Instant::now() + ACK_DEADLINE) {
                Ok(true) => {
                    acks += 1;
                    self.metrics.record_repl_ship(idx);
                }
                Ok(false) => {
                    // Silent but intact: the stream keeps its framing, so
                    // the maintenance thread can keep feeding it and
                    // reading late acks. It no longer gates client writes.
                    peer.state = PeerState::CatchingUp;
                    self.metrics.repl_slow_demotions_total.inc();
                }
                Err(_) => down_peer(peer, idx, &self.metrics),
            }
        }
        let lag = connected_lag(&inner, head);
        drop(inner);
        self.metrics.repl_lag_records.set(lag.min(i64::MAX as u64) as i64);
        let waited = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.metrics.repl_ack_micros.observe(waited);
        self.metrics.repl_ack_stall_max_micros.set_max(waited.min(i64::MAX as u64) as i64);
        if acks < self.required {
            return Err(std::io::Error::other(format!(
                "replication quorum lost: {acks} of {} required follower acks",
                self.required
            )));
        }
        Ok(())
    }

    /// One maintenance pass: redial down peers whose backoff expired and
    /// drain the backlog to catching-up peers. Runs off the write path.
    fn maintain(&self) {
        let n = self.inner.lock().peers.len();
        for idx in 0..n {
            if self.retired.load(Ordering::Acquire) {
                return;
            }
            self.maintain_peer(idx);
        }
        let inner = self.inner.lock();
        let head = self.backlog.lock().head();
        let lag = connected_lag(&inner, head);
        drop(inner);
        self.metrics.repl_lag_records.set(lag.min(i64::MAX as u64) as i64);
    }

    fn maintain_peer(&self, idx: usize) {
        enum Job {
            Redial(String),
            Drain(DrainJob),
        }
        let job = {
            let mut inner = self.inner.lock();
            let peer = &mut inner.peers[idx];
            match peer.state {
                PeerState::Live => return,
                PeerState::Down => {
                    if Instant::now() < peer.redial_at {
                        return;
                    }
                    Job::Redial(peer.addr.clone())
                }
                PeerState::CatchingUp => {
                    // Take the stream: ship skips non-live peers and
                    // redial skips non-down peers, so this thread owns it
                    // until it is put back.
                    let Some(stream) = peer.stream.take() else {
                        down_peer(peer, idx, &self.metrics);
                        return;
                    };
                    Job::Drain(DrainJob {
                        stream,
                        sent: peer.sent,
                        acked: peer.acked,
                        pending: peer.pending,
                        ack_buf: peer.ack_buf,
                        ack_filled: peer.ack_filled,
                    })
                }
            }
        };
        match job {
            Job::Redial(addr) => self.finish_redial(idx, &addr),
            Job::Drain(job) => self.finish_drain(idx, job),
        }
    }

    /// Redials a down peer (no locks held across the dial) and installs
    /// the result.
    fn finish_redial(&self, idx: usize, addr: &str) {
        let established =
            establish(addr, self.generation, &self.advertise, &self.backlog, &self.metrics);
        let mut inner = self.inner.lock();
        let peer = &mut inner.peers[idx];
        if peer.state != PeerState::Down {
            return;
        }
        match established {
            Ok(Established::Live(stream, seq)) => {
                peer.stream = Some(stream);
                peer.sent = seq;
                peer.acked = seq;
                peer.pending = 0;
                peer.ack_filled = 0;
                peer.attempts = 0;
                // Races with concurrent ships are settled under the lock:
                // live only if nothing shipped since the replay finished.
                let head = self.backlog.lock().head();
                if seq >= head {
                    peer.state = PeerState::Live;
                    self.metrics.repl_resync_total.inc();
                } else {
                    peer.state = PeerState::CatchingUp;
                }
                self.metrics.set_repl_peer_up(idx, true);
            }
            Ok(Established::Behind { stream, sent, acked, pending }) => {
                peer.stream = Some(stream);
                peer.sent = sent;
                peer.acked = acked;
                peer.pending = pending;
                peer.ack_filled = 0;
                peer.attempts = 0;
                peer.state = PeerState::CatchingUp;
                self.metrics.set_repl_peer_up(idx, true);
            }
            Ok(Established::Hinted) => {
                peer.redial_at = Instant::now() + BOOTSTRAP_REDIAL;
                peer.attempts = 0;
            }
            Err(_) => {
                peer.attempts = peer.attempts.saturating_add(1);
                peer.redial_at =
                    Instant::now() + redial_backoff(self.generation, idx, peer.attempts);
            }
        }
    }

    /// Feeds backlog records to a catching-up peer whose stream was taken
    /// by [`maintain_peer`], then reinstalls the stream and, if the gap
    /// closed, promotes the peer back to live under the lock.
    fn finish_drain(&self, idx: usize, mut job: DrainJob) {
        let outcome = job.drain(&self.backlog, &self.metrics);
        let mut inner = self.inner.lock();
        let peer = &mut inner.peers[idx];
        peer.sent = job.sent;
        peer.acked = job.acked;
        peer.pending = job.pending;
        peer.ack_buf = job.ack_buf;
        peer.ack_filled = job.ack_filled;
        match outcome {
            DrainOutcome::Progress => {
                peer.stream = Some(job.stream);
                // Close the race window: finish a small remaining gap
                // under the lock (ships are briefly blocked), so the
                // promotion cannot miss records shipped mid-drain.
                let remaining = {
                    let backlog = self.backlog.lock();
                    backlog.range(peer.sent, FINAL_CHUNK + 1)
                };
                let head = self.backlog.lock().head();
                if peer.sent + (remaining.len() as u64) >= head && remaining.len() <= FINAL_CHUNK {
                    let mut ok = true;
                    {
                        let Peer { stream, sent, pending, .. } = &mut *peer;
                        let stream = stream.as_mut().expect("installed above");
                        stream.set_write_timeout(Some(ACK_DEADLINE)).ok();
                        for (seq, record) in &remaining {
                            if stream.write_all(record).is_err() {
                                ok = false;
                                break;
                            }
                            *sent = *seq;
                            *pending += 1;
                            self.metrics.repl_resync_records_total.inc();
                        }
                    }
                    if !ok {
                        down_peer(peer, idx, &self.metrics);
                        return;
                    }
                    match harvest_acks(peer, Instant::now() + ACK_DEADLINE) {
                        Ok(true) if peer.sent >= head => {
                            peer.state = PeerState::Live;
                            self.metrics.repl_resync_total.inc();
                        }
                        Ok(_) => {}
                        Err(_) => down_peer(peer, idx, &self.metrics),
                    }
                }
            }
            DrainOutcome::Overrun => {
                // The ring no longer covers the peer's position (it was
                // trimmed while the peer lagged): hint a bootstrap and
                // drop to down; the redial probes the install.
                let _ = send_bootstrap_hint(&mut job.stream, &self.advertise);
                self.metrics.repl_bootstrap_hints_total.inc();
                down_peer(peer, idx, &self.metrics);
                peer.redial_at = Instant::now() + BOOTSTRAP_REDIAL;
            }
            DrainOutcome::Dead => down_peer(peer, idx, &self.metrics),
        }
    }
}

/// Worst lag among *connected* peers against backlog head `head`. Down
/// peers are excluded — their staleness is visible via `cp_repl_peer_up`
/// instead of pinning the lag gauge forever.
fn connected_lag(inner: &ReplInner, head: u64) -> u64 {
    inner
        .peers
        .iter()
        .filter(|p| p.state != PeerState::Down)
        .map(|p| head.saturating_sub(p.acked))
        .max()
        .unwrap_or(0)
}

/// Marks a peer down and schedules its redial.
fn down_peer(peer: &mut Peer, idx: usize, metrics: &ServiceMetrics) {
    peer.stream = None;
    peer.state = PeerState::Down;
    peer.pending = 0;
    peer.ack_filled = 0;
    peer.attempts = peer.attempts.saturating_add(1);
    peer.redial_at = Instant::now() + redial_backoff(0, idx, peer.attempts);
    metrics.set_repl_peer_up(idx, false);
}

/// Seeded jittered backoff: doubling base capped at [`REDIAL_MAX`], plus
/// up to 50 ms of deterministic jitter so a fleet of primaries redialing
/// one recovered follower does not thundering-herd it.
fn redial_backoff(generation: u64, idx: usize, attempts: u32) -> Duration {
    let base = REDIAL_BASE.saturating_mul(1u32 << attempts.min(4)).min(REDIAL_MAX);
    let mut x = generation
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(idx as u64)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(u64::from(attempts));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    base + Duration::from_millis(x % 50)
}

/// Runs the peer-maintenance loop until the replicator is retired: redials
/// down peers with jittered backoff and drains the backlog to catching-up
/// peers, all off the client write path.
pub fn run_maintenance(replicator: Arc<Replicator>) {
    while !replicator.retired.load(Ordering::Acquire) {
        std::thread::sleep(MAINT_TICK);
        replicator.maintain();
    }
}

/// A catching-up peer's stream plus drain cursor, owned by the
/// maintenance thread while the replicator lock is released.
struct DrainJob {
    stream: TcpStream,
    sent: u64,
    acked: u64,
    pending: u64,
    ack_buf: [u8; 8],
    ack_filled: usize,
}

enum DrainOutcome {
    /// Sent what the backlog had (possibly nothing); stream healthy.
    Progress,
    /// The backlog no longer covers the peer's position.
    Overrun,
    /// The stream errored.
    Dead,
}

impl DrainJob {
    fn drain(&mut self, backlog: &Mutex<Backlog>, metrics: &ServiceMetrics) -> DrainOutcome {
        self.stream.set_write_timeout(Some(STREAM_TIMEOUT)).ok();
        loop {
            // Keep the in-flight window bounded so acks are read roughly
            // as fast as records are written.
            if self.pending > DRAIN_CHUNK as u64 {
                match harvest_acks_raw(
                    &mut self.stream,
                    &mut self.ack_buf,
                    &mut self.ack_filled,
                    &mut self.pending,
                    &mut self.acked,
                    Instant::now() + STREAM_TIMEOUT,
                ) {
                    Ok(true) => {}
                    Ok(false) => return DrainOutcome::Progress,
                    Err(_) => return DrainOutcome::Dead,
                }
            }
            let chunk = {
                let backlog = backlog.lock();
                if !backlog.covers(self.sent) {
                    return DrainOutcome::Overrun;
                }
                backlog.range(self.sent, DRAIN_CHUNK)
            };
            if chunk.is_empty() {
                // Nothing left to send; settle outstanding acks.
                let deadline = Instant::now() + ACK_DEADLINE;
                return match harvest_acks_raw(
                    &mut self.stream,
                    &mut self.ack_buf,
                    &mut self.ack_filled,
                    &mut self.pending,
                    &mut self.acked,
                    deadline,
                ) {
                    Ok(_) => DrainOutcome::Progress,
                    Err(_) => DrainOutcome::Dead,
                };
            }
            for (seq, record) in &chunk {
                if self.stream.write_all(record).is_err() {
                    return DrainOutcome::Dead;
                }
                self.sent = *seq;
                self.pending += 1;
                metrics.repl_resync_records_total.inc();
            }
        }
    }
}

/// Reads cumulative acks until none are outstanding or `deadline` passes.
/// `Ok(true)` means fully settled; `Ok(false)` is a timeout (stream
/// intact, acks still owed); `Err` is a dead stream.
fn harvest_acks(peer: &mut Peer, deadline: Instant) -> std::io::Result<bool> {
    let Peer { stream, ack_buf, ack_filled, pending, acked, .. } = peer;
    let stream = stream.as_mut().expect("caller checked the stream");
    harvest_acks_raw(stream, ack_buf, ack_filled, pending, acked, deadline)
}

fn harvest_acks_raw(
    stream: &mut TcpStream,
    ack_buf: &mut [u8; 8],
    ack_filled: &mut usize,
    pending: &mut u64,
    acked: &mut u64,
    deadline: Instant,
) -> std::io::Result<bool> {
    while *pending > 0 {
        let Some(remaining) =
            deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
        else {
            return Ok(false);
        };
        stream.set_read_timeout(Some(remaining))?;
        match stream.read(&mut ack_buf[*ack_filled..]) {
            Ok(0) => return Err(std::io::Error::other("replication stream closed")),
            Ok(n) => {
                *ack_filled += n;
                if *ack_filled == 8 {
                    *acked = (*acked).max(u64::from_le_bytes(*ack_buf));
                    *ack_filled = 0;
                    *pending -= 1;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Dials `addr`, handshakes `generation`, and brings the follower as far
/// forward as the backlog allows. `Err` only for unreachable or fenced
/// followers — a follower that is merely behind becomes `Behind` (stream
/// kept, drain continues off-path) or `Hinted` (sent a snapshot-bootstrap
/// control frame and closed).
fn establish(
    addr: &str,
    generation: u64,
    advertise: &str,
    backlog: &Mutex<Backlog>,
    metrics: &ServiceMetrics,
) -> std::io::Result<Established> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(STREAM_TIMEOUT))?;
    stream.set_write_timeout(Some(STREAM_TIMEOUT))?;
    let mut handshake = [0u8; HANDSHAKE_BYTES];
    handshake[..8].copy_from_slice(REPL_MAGIC);
    handshake[8..].copy_from_slice(&generation.to_le_bytes());
    stream.write_all(&handshake)?;
    let mut reply = [0u8; HANDSHAKE_REPLY_BYTES];
    stream.read_exact(&mut reply)?;
    if reply[0] != 0 {
        let theirs = u64::from_le_bytes(reply[1..9].try_into().expect("8-byte slice"));
        return Err(std::io::Error::other(format!(
            "follower {addr} fenced generation {generation}: it has already \
             witnessed generation {theirs}"
        )));
    }
    let follower_seq = u64::from_le_bytes(reply[9..17].try_into().expect("8-byte slice"));
    {
        let backlog = backlog.lock();
        if follower_seq >= backlog.head() {
            // Caught up — or ahead, which the rejoin path produces
            // legitimately: a demoted primary may hold events it applied
            // locally but never got acked. Those are torn-tail state, not
            // a divergence; the stream simply continues from here.
            return Ok(Established::Live(stream, follower_seq));
        }
        if !backlog.covers(follower_seq) {
            drop(backlog);
            send_bootstrap_hint(&mut stream, advertise)?;
            metrics.repl_bootstrap_hints_total.inc();
            return Ok(Established::Hinted);
        }
    }
    // Replay the gap from the ring. The backlog lock is only held to copy
    // chunk references — never across stream I/O.
    let mut job = DrainJob {
        stream,
        sent: follower_seq,
        acked: follower_seq,
        pending: 0,
        ack_buf: [0u8; 8],
        ack_filled: 0,
    };
    match job.drain(backlog, metrics) {
        DrainOutcome::Progress => {
            if job.pending == 0 && job.sent >= backlog.lock().head() {
                Ok(Established::Live(job.stream, job.acked))
            } else {
                Ok(Established::Behind {
                    stream: job.stream,
                    sent: job.sent,
                    acked: job.acked,
                    pending: job.pending,
                })
            }
        }
        DrainOutcome::Overrun => {
            send_bootstrap_hint(&mut job.stream, advertise)?;
            metrics.repl_bootstrap_hints_total.inc();
            Ok(Established::Hinted)
        }
        DrainOutcome::Dead => Err(std::io::Error::other(format!(
            "follower {addr} dropped the stream during backlog replay"
        ))),
    }
}

/// Frames and sends one bootstrap control frame naming this primary's
/// HTTP address.
fn send_bootstrap_hint(stream: &mut TcpStream, advertise: &str) -> std::io::Result<()> {
    let mut payload = Vec::with_capacity(1 + advertise.len());
    payload.push(CONTROL_BOOTSTRAP);
    payload.extend_from_slice(advertise.as_bytes());
    let len_le = (payload.len() as u32 | CONTROL_BIT).to_le_bytes();
    let sum = frame_checksum(&len_le, &payload);
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&len_le);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)
}

/// Reads exactly `buf.len()` bytes, riding out socket timeouts so an idle
/// primary does not kill the stream; bails on EOF, real errors, or when
/// shutdown has begun.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutting_down: &AtomicBool) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutting_down.load(Ordering::Acquire) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Fetches a full snapshot from `addr`'s `/v1/repl/snapshot` and installs
/// it, re-anchoring this node at the primary's applied sequence. Caller
/// holds the cluster apply gate.
fn bootstrap_from(addr: &str, store: &ShardedStore) -> std::io::Result<u64> {
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| std::io::Error::other(format!("malformed bootstrap address {addr}")))?;
    let port: u16 = port
        .parse()
        .map_err(|_| std::io::Error::other(format!("malformed bootstrap port in {addr}")))?;
    let mut client = crate::loadgen::Client::with_policy(host, port, 2, Duration::from_millis(25));
    let response = client
        .request("GET", "/v1/repl/snapshot", &[])
        .map_err(|e| std::io::Error::other(format!("snapshot fetch from {addr} failed: {e:?}")))?;
    if response.status != 200 {
        return Err(std::io::Error::other(format!(
            "snapshot fetch from {addr} failed: status {}",
            response.status
        )));
    }
    store.install_bootstrap(&response.body)
}

/// Serves one inbound replication stream on the follower side: validate
/// the handshake (fencing stale generations), then apply each framed
/// record through the same [`SiteEntry::apply`](crate::store::SiteEntry)
/// path recovery uses and ack it with this node's absolute applied
/// sequence — the number the primary's resync arithmetic is anchored on.
///
/// Accepting a handshake adopts its generation: the node becomes (or
/// stays) a follower of that primary and drops any replicator it held —
/// a primary receiving a newer generation's stream has been superseded
/// and steps down. If a newer generation arrives mid-stream (on another
/// connection), this stream stops acking and closes: a record from a
/// dead generation is never applied after the succession. Adoption and
/// application are serialized under the cluster's apply gate with a
/// stream epoch, so a superseded stream can never apply a record after a
/// newer stream's handshake reply reported the node's position.
pub fn serve_follower_stream(
    mut stream: TcpStream,
    store: &ShardedStore,
    cluster: &ClusterState,
    shutting_down: &AtomicBool,
    metrics: &ServiceMetrics,
) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(STREAM_TIMEOUT)).ok();
    stream.set_write_timeout(Some(STREAM_TIMEOUT)).ok();
    let mut handshake = [0u8; HANDSHAKE_BYTES];
    if !read_full(&mut stream, &mut handshake, shutting_down) || &handshake[..8] != REPL_MAGIC {
        return;
    }
    let generation = u64::from_le_bytes(handshake[8..].try_into().expect("8-byte slice"));
    let my_epoch = {
        let _gate = cluster.apply_gate.lock();
        let current = cluster.generation();
        // Strictly older generations are fenced; an equal generation is
        // fenced too when this node is that generation's primary (two
        // primaries of one generation would be split brain).
        let stale =
            generation < current || (generation == current && cluster.role() == Role::Primary);
        let mut reply = [0u8; HANDSHAKE_REPLY_BYTES];
        reply[0] = u8::from(stale);
        reply[1..9].copy_from_slice(&current.to_le_bytes());
        reply[9..17].copy_from_slice(&store.applied_seq().to_le_bytes());
        if stream.write_all(&reply).is_err() || stale {
            return;
        }
        cluster.witness_generation(generation);
        cluster.set_role(Role::Follower);
        store.set_replicator(None);
        cluster.stream_epoch.fetch_add(1, Ordering::AcqRel) + 1
    };
    loop {
        let mut header = [0u8; HEADER_BYTES];
        if !read_full(&mut stream, &mut header, shutting_down) {
            return;
        }
        let len_le: [u8; 4] = header[..4].try_into().expect("4-byte slice");
        let raw_len = u32::from_le_bytes(len_le);
        let control = raw_len & CONTROL_BIT != 0;
        let len = raw_len & !CONTROL_BIT;
        if len == 0 || len > MAX_RECORD_BYTES || (control && len > MAX_CONTROL_BYTES) {
            return;
        }
        let sum = u64::from_le_bytes(header[4..].try_into().expect("8-byte slice"));
        let mut payload = vec![0u8; len as usize];
        if !read_full(&mut stream, &mut payload, shutting_down) {
            return;
        }
        if frame_checksum(&len_le, &payload) != sum {
            return;
        }
        if control {
            handle_control(&payload, store, cluster, generation, my_epoch, metrics);
            return;
        }
        let Some(event) = VisitEvent::decode_payload(&payload) else { return };
        {
            let _gate = cluster.apply_gate.lock();
            // Fence mid-stream: a newer primary may have adopted this
            // node since the handshake. Never apply (or ack) a dead
            // generation's record after the succession.
            if cluster.stream_epoch.load(Ordering::Acquire) != my_epoch
                || cluster.generation() != generation
                || cluster.role() != Role::Follower
            {
                return;
            }
            if store.apply_replicated(&event).is_err() {
                return;
            }
        }
        if stream.write_all(&store.applied_seq().to_le_bytes()).is_err() {
            return;
        }
    }
}

/// Dispatches one control frame. Today there is exactly one kind: the
/// snapshot-bootstrap hint. The whole install runs under the apply gate,
/// so a concurrent new stream's handshake blocks until the node's
/// position is post-install — its reply can never advertise a stale
/// sequence the primary would then double-ship against.
fn handle_control(
    payload: &[u8],
    store: &ShardedStore,
    cluster: &ClusterState,
    generation: u64,
    my_epoch: u64,
    metrics: &ServiceMetrics,
) {
    if payload.first() != Some(&CONTROL_BOOTSTRAP) {
        return;
    }
    let Ok(addr) = std::str::from_utf8(&payload[1..]) else { return };
    let _gate = cluster.apply_gate.lock();
    if cluster.stream_epoch.load(Ordering::Acquire) != my_epoch
        || cluster.generation() != generation
        || cluster.role() != Role::Follower
    {
        return;
    }
    if bootstrap_from(addr, store).is_ok() {
        metrics.repl_bootstrap_total.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_policy_parse_and_label_round_trip() {
        for policy in [ReplAckPolicy::None, ReplAckPolicy::Quorum, ReplAckPolicy::All] {
            assert_eq!(ReplAckPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(ReplAckPolicy::parse("majority"), None);
        assert_eq!(ReplAckPolicy::default(), ReplAckPolicy::Quorum);
    }

    #[test]
    fn quorum_counts_the_primary_toward_the_majority() {
        // followers → required follower acks (primary + acks is a majority
        // of followers + 1 nodes).
        for (followers, required) in [(0, 0), (1, 1), (2, 1), (3, 2), (4, 2), (5, 3)] {
            assert_eq!(
                ReplAckPolicy::Quorum.required_acks(followers),
                required,
                "{followers} followers"
            );
        }
        assert_eq!(ReplAckPolicy::None.required_acks(4), 0);
        assert_eq!(ReplAckPolicy::All.required_acks(4), 4);
    }

    #[test]
    fn cluster_generation_is_monotone() {
        let cluster = ClusterState::new();
        assert_eq!(cluster.role(), Role::Standalone);
        assert_eq!(cluster.generation(), 0);
        cluster.witness_generation(3);
        cluster.witness_generation(2);
        assert_eq!(cluster.generation(), 3, "generations never move backwards");
        cluster.set_role(Role::Primary);
        assert_eq!(cluster.role(), Role::Primary);
        assert_eq!(cluster.role().label(), "primary");
    }

    fn rec(i: u64) -> Arc<Vec<u8>> {
        Arc::new(vec![i as u8; 4])
    }

    #[test]
    fn backlog_ring_retains_a_bounded_suffix() {
        let mut backlog = Backlog::new(4);
        assert_eq!(backlog.head(), 0);
        assert!(backlog.covers(0), "empty ring covers its own head");
        for i in 1..=10u64 {
            assert_eq!(backlog.push(rec(i)), i);
        }
        assert_eq!(backlog.head(), 10);
        // Capacity 4 retains (6, 10].
        assert!(backlog.covers(6));
        assert!(!backlog.covers(5));
        let all: Vec<u64> = backlog.range(6, 100).iter().map(|(s, _)| *s).collect();
        assert_eq!(all, vec![7, 8, 9, 10]);
        let chunk: Vec<u64> = backlog.range(7, 2).iter().map(|(s, _)| *s).collect();
        assert_eq!(chunk, vec![8, 9]);
        assert!(backlog.range(10, 8).is_empty(), "caught up → nothing to replay");
        // Payloads ride along with their sequence numbers.
        let (seq, record) = backlog.range(9, 1).pop().unwrap();
        assert_eq!(seq, 10);
        assert_eq!(*record, vec![10u8; 4]);
    }

    #[test]
    fn backlog_advance_gives_up_replay_but_keeps_the_sequence() {
        let mut backlog = Backlog::new(8);
        backlog.push(rec(1));
        backlog.push(rec(2));
        assert_eq!(backlog.advance(), 3, "standalone writes keep the lineage counter");
        assert!(backlog.covers(3), "head itself is always covered");
        assert!(!backlog.covers(2), "the gap poisons replay");
        assert!(backlog.range(0, 10).is_empty());
        backlog.reset_to(42);
        assert_eq!(backlog.head(), 42);
        assert!(backlog.covers(42));
        assert!(!backlog.covers(41));
    }

    #[test]
    fn backlog_capacity_shrink_trims_oldest() {
        let mut backlog = Backlog::new(8);
        for i in 1..=8u64 {
            backlog.push(rec(i));
        }
        backlog.set_capacity(2);
        assert!(backlog.covers(6));
        assert!(!backlog.covers(5));
        assert_eq!(backlog.range(6, 10).len(), 2);
    }

    #[test]
    fn redial_backoff_is_bounded_and_deterministic() {
        for attempts in 0..12 {
            let d = redial_backoff(3, 1, attempts);
            assert!(d >= REDIAL_BASE, "{attempts} attempts → {d:?}");
            assert!(d <= REDIAL_MAX + Duration::from_millis(50), "{attempts} attempts → {d:?}");
        }
        assert_eq!(redial_backoff(7, 2, 3), redial_backoff(7, 2, 3), "seeded jitter is stable");
    }

    #[test]
    fn control_frames_use_the_high_length_bit() {
        const { assert!(MAX_RECORD_BYTES < CONTROL_BIT, "record lengths can never look like control") };
        let payload = [CONTROL_BOOTSTRAP, b'x'];
        let len_le = (payload.len() as u32 | CONTROL_BIT).to_le_bytes();
        let raw = u32::from_le_bytes(len_le);
        assert_ne!(raw & CONTROL_BIT, 0);
        assert_eq!(raw & !CONTROL_BIT, 2);
    }

    #[test]
    fn peer_state_labels() {
        assert_eq!(PeerState::Live.label(), "live");
        assert_eq!(PeerState::CatchingUp.label(), "catching-up");
        assert_eq!(PeerState::Down.label(), "down");
    }
}
