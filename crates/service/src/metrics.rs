//! Service metrics and their Prometheus text rendering.
//!
//! A fixed, allocation-free registry: every series the server exports is a
//! named field, bumped through atomics ([`cp_runtime::metrics`]) on the hot
//! path. `GET /metrics` renders the classic text exposition format:
//!
//! ```text
//! cp_requests_total{endpoint="visit"} 9000
//! cp_request_duration_micros_bucket{endpoint="visit",le="1000"} 4123
//! cp_decisions_total{verdict="useful"} 211
//! cp_queue_depth 0
//! ```

use std::fmt::Write as _;

use cp_runtime::metrics::{Counter, Gauge, Histogram};

/// The endpoints the server distinguishes in its per-endpoint series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /v1/classify`.
    Classify,
    /// `POST /v1/visit`.
    Visit,
    /// `GET /v1/sites/{host}`.
    Sites,
    /// `POST /v1/shutdown`.
    Shutdown,
    /// Anything else (404s, bad requests).
    Other,
}

impl Endpoint {
    /// All endpoints, in rendering order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Classify,
        Endpoint::Visit,
        Endpoint::Sites,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Classify => "classify",
            Endpoint::Visit => "visit",
            Endpoint::Sites => "sites",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|e| *e == self).expect("endpoint in ALL")
    }
}

/// One endpoint's request counter + latency histogram.
#[derive(Debug, Default)]
pub struct EndpointSeries {
    /// Requests routed to this endpoint.
    pub requests: Counter,
    /// Handling latency (request parsed → response built), in microseconds.
    pub latency: Histogram,
}

/// The server's metric registry.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    endpoints: [EndpointSeries; 7],
    /// Responses by status class.
    pub responses_2xx: Counter,
    /// 4xx responses (bad requests, 404s, 413s).
    pub responses_4xx: Counter,
    /// 5xx responses (handler panics).
    pub responses_5xx: Counter,
    /// Detection verdicts: difference attributed to cookies.
    pub decisions_useful: Counter,
    /// Detection verdicts: page-dynamics noise.
    pub decisions_noise: Counter,
    /// Connections queued for a worker right now.
    pub queue_depth: Gauge,
    /// Connections accepted over the server's lifetime.
    pub connections_total: Counter,
    /// Connections rejected because the accept queue was full.
    pub rejected_total: Counter,
}

impl ServiceMetrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// The series for `endpoint`.
    pub fn endpoint(&self, endpoint: Endpoint) -> &EndpointSeries {
        &self.endpoints[endpoint.index()]
    }

    /// Records one handled request.
    pub fn record(&self, endpoint: Endpoint, status: u16, micros: u64) {
        let series = self.endpoint(endpoint);
        series.requests.inc();
        series.latency.observe(micros);
        match status {
            200..=299 => self.responses_2xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => self.responses_4xx.inc(),
        }
    }

    /// Records one decision verdict.
    pub fn record_verdict(&self, useful: bool) {
        if useful {
            self.decisions_useful.inc();
        } else {
            self.decisions_noise.inc();
        }
    }

    /// Renders the Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# TYPE cp_requests_total counter\n");
        for e in Endpoint::ALL {
            let _ = writeln!(
                out,
                "cp_requests_total{{endpoint=\"{}\"}} {}",
                e.label(),
                self.endpoint(e).requests.get()
            );
        }
        out.push_str("# TYPE cp_request_duration_micros histogram\n");
        for e in Endpoint::ALL {
            let series = self.endpoint(e);
            if series.requests.get() == 0 {
                continue; // keep the exposition small: no series for idle endpoints
            }
            for (bound, cumulative) in series.latency.snapshot() {
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                let _ = writeln!(
                    out,
                    "cp_request_duration_micros_bucket{{endpoint=\"{}\",le=\"{le}\"}} {cumulative}",
                    e.label()
                );
            }
            let _ = writeln!(
                out,
                "cp_request_duration_micros_sum{{endpoint=\"{}\"}} {}",
                e.label(),
                series.latency.sum_micros()
            );
            let _ = writeln!(
                out,
                "cp_request_duration_micros_count{{endpoint=\"{}\"}} {}",
                e.label(),
                series.latency.count()
            );
        }
        out.push_str("# TYPE cp_responses_total counter\n");
        for (class, counter) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            let _ = writeln!(out, "cp_responses_total{{class=\"{class}\"}} {}", counter.get());
        }
        out.push_str("# TYPE cp_decisions_total counter\n");
        let _ = writeln!(
            out,
            "cp_decisions_total{{verdict=\"useful\"}} {}",
            self.decisions_useful.get()
        );
        let _ =
            writeln!(out, "cp_decisions_total{{verdict=\"noise\"}} {}", self.decisions_noise.get());
        out.push_str("# TYPE cp_queue_depth gauge\n");
        let _ = writeln!(out, "cp_queue_depth {}", self.queue_depth.get());
        out.push_str("# TYPE cp_connections_total counter\n");
        let _ = writeln!(out, "cp_connections_total {}", self.connections_total.get());
        out.push_str("# TYPE cp_rejected_total counter\n");
        let _ = writeln!(out, "cp_rejected_total {}", self.rejected_total.get());
        out
    }
}

/// Parses a counter value out of a Prometheus exposition, e.g.
/// `scrape_counter(text, "cp_decisions_total{verdict=\"useful\"}")`.
/// Returns `None` when the exact series line is absent.
pub fn scrape_counter(exposition: &str, series: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_series() {
        let m = ServiceMetrics::new();
        m.record(Endpoint::Visit, 200, 500);
        m.record(Endpoint::Visit, 400, 100);
        m.record(Endpoint::Classify, 500, 100);
        assert_eq!(m.endpoint(Endpoint::Visit).requests.get(), 2);
        assert_eq!(m.responses_2xx.get(), 1);
        assert_eq!(m.responses_4xx.get(), 1);
        assert_eq!(m.responses_5xx.get(), 1);
        assert_eq!(m.endpoint(Endpoint::Visit).latency.count(), 2);
    }

    #[test]
    fn prometheus_text_is_scrapable() {
        let m = ServiceMetrics::new();
        m.record(Endpoint::Healthz, 200, 42);
        m.record_verdict(true);
        m.record_verdict(false);
        m.record_verdict(false);
        m.queue_depth.set(3);
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_requests_total{endpoint=\"healthz\"}"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_requests_total{endpoint=\"visit\"}"), Some(0));
        assert_eq!(scrape_counter(&text, "cp_decisions_total{verdict=\"useful\"}"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_decisions_total{verdict=\"noise\"}"), Some(2));
        assert_eq!(scrape_counter(&text, "cp_queue_depth"), Some(3));
        assert!(
            text.contains("cp_request_duration_micros_bucket{endpoint=\"healthz\",le=\"100\"} 1")
        );
        assert!(text.contains("le=\"+Inf\""));
        assert_eq!(scrape_counter(&text, "nope"), None);
        // Idle endpoints emit no histogram series.
        assert!(!text.contains("cp_request_duration_micros_count{endpoint=\"visit\"}"));
    }
}
