//! Service metrics and their Prometheus text rendering.
//!
//! A fixed, allocation-free registry: every series the server exports is a
//! named field, bumped through atomics ([`cp_runtime::metrics`]) on the hot
//! path. `GET /metrics` renders the classic text exposition format:
//!
//! ```text
//! cp_requests_total{endpoint="visit"} 9000
//! cp_request_duration_micros_bucket{endpoint="visit",le="1000"} 4123
//! cp_decisions_total{verdict="useful"} 211
//! cp_queue_depth 0
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use cp_runtime::metrics::{Counter, Gauge, Histogram};

/// `result` label values for `cp_hidden_fetch_total`, in rendering order.
pub const HIDDEN_FETCH_RESULTS: [&str; 6] =
    ["ok", "drop", "reset", "http_5xx", "truncated", "deadline"];

/// `reason` label values for `cp_probe_inconclusive_total`, in rendering
/// order — mirrors `cookiepicker_core::InconclusiveReason::ALL`.
pub const INCONCLUSIVE_REASONS: [&str; 4] = ["transport", "deadline", "server_error", "truncated"];

/// `result` label values for `cp_site_derive_total`, in rendering order.
pub const SITE_DERIVE_RESULTS: [&str; 3] = ["hit", "miss", "unknown"];

/// `cause` label values for `cp_conn_closed_total`, in rendering order.
/// `client` covers clean peer closes and client-requested closes
/// (HTTP/1.0, `Connection: close`); `timeout` a stalled read (slowloris,
/// half-sent body); `error` protocol violations (400/413); `shed` the
/// acceptor's inline 503; `drain` keep-alives ended by shutdown;
/// `write_failed` a response the peer stopped reading.
pub const CONN_CLOSE_CAUSES: [&str; 6] =
    ["client", "timeout", "error", "shed", "drain", "write_failed"];

/// `kind` label values for `cp_wal_faults_total`, in rendering order —
/// the injected storage-fault taxonomy (`crate::storage::StorageFaults`).
pub const WAL_FAULT_KINDS: [&str; 4] = ["short_write", "torn_write", "enospc", "fsync"];

/// The endpoints the server distinguishes in its per-endpoint series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /v1/classify`.
    Classify,
    /// `POST /v1/visit`.
    Visit,
    /// `GET /v1/sites/{host}`.
    Sites,
    /// `GET /v1/marks`.
    Marks,
    /// `POST /v1/expire`.
    Expire,
    /// `POST /v1/repl/lead` (cluster control plane).
    Repl,
    /// `POST /v1/shutdown`.
    Shutdown,
    /// Anything else (404s, bad requests).
    Other,
}

impl Endpoint {
    /// All endpoints, in rendering order.
    pub const ALL: [Endpoint; 10] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Classify,
        Endpoint::Visit,
        Endpoint::Sites,
        Endpoint::Marks,
        Endpoint::Expire,
        Endpoint::Repl,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Classify => "classify",
            Endpoint::Visit => "visit",
            Endpoint::Sites => "sites",
            Endpoint::Marks => "marks",
            Endpoint::Expire => "expire",
            Endpoint::Repl => "repl",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|e| *e == self).expect("endpoint in ALL")
    }
}

/// One endpoint's request counter + latency histogram.
#[derive(Debug, Default)]
pub struct EndpointSeries {
    /// Requests routed to this endpoint.
    pub requests: Counter,
    /// Handling latency (request parsed → response built), in microseconds.
    pub latency: Histogram,
}

/// Bucket bounds for the detection-time histogram, in microseconds. Powers
/// of two: detection times span roughly three orders of magnitude between
/// a cache-hit re-comparison and a cold parse of a large page, and
/// power-of-two buckets keep relative error constant across that range.
pub const DETECTION_BUCKETS_MICROS: [u64; 14] =
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Bucket bounds for the WAL fsync-latency histogram, in microseconds.
/// Wider than the detection buckets: an fsync is tens of microseconds on
/// a warm SSD page cache but can stall for hundreds of milliseconds when
/// the device queue backs up, and both tails matter for the fsync-policy
/// trade-off.
pub const WAL_FSYNC_BUCKETS_MICROS: [u64; 12] =
    [8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536, 262144];

/// Bucket bounds for the per-route request-time histogram
/// (`cp_request_micros`), in microseconds. Powers of two from 1µs to
/// ~32ms: a cached healthz is single-digit microseconds while a cold
/// classify parse can run tens of milliseconds, and constant relative
/// error across that span is what a latency SLO needs.
pub const REQUEST_BUCKETS_MICROS: [u64; 16] =
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

/// Bucket bounds for the crawler revisit-lag histogram, in scheduler
/// ticks. Lag is zero when the frontier keeps up and grows by whole
/// politeness windows when it falls behind, so power-of-two tick buckets
/// resolve both regimes.
pub const CRAWL_LAG_BUCKETS_TICKS: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Follower slots the fixed registry reserves for
/// `cp_repl_records_total{peer}` — the registry is allocation-free, so
/// the per-peer counters are a fixed array and peers beyond it share the
/// last slot.
pub const MAX_REPL_PEERS: usize = 8;

/// The server's metric registry.
#[derive(Debug)]
pub struct ServiceMetrics {
    endpoints: [EndpointSeries; 10],
    /// Per-route request time in power-of-two buckets
    /// ([`REQUEST_BUCKETS_MICROS`]), indexed like `endpoints`.
    request_micros: [Histogram; 10],
    /// Event-loop wakeups (`epoll_wait` returns with ≥1 event).
    pub event_loop_wakeups: Counter,
    /// Connections with readiness events in the event-loop pass being
    /// processed right now (the readiness-loop analogue of queue depth).
    pub ready_conns: Gauge,
    /// Responses by status class.
    pub responses_2xx: Counter,
    /// 4xx responses (bad requests, 404s, 413s).
    pub responses_4xx: Counter,
    /// 5xx responses (handler panics).
    pub responses_5xx: Counter,
    /// Detection verdicts: difference attributed to cookies.
    pub decisions_useful: Counter,
    /// Detection verdicts: page-dynamics noise.
    pub decisions_noise: Counter,
    /// Server-side detection time (`decide` proper, excluding transport
    /// and body parsing), in microseconds.
    pub detection: Histogram,
    /// Page-analysis cache hits (body already compiled).
    pub cache_hits: Counter,
    /// Page-analysis cache misses (parse + extract ran).
    pub cache_misses: Counter,
    /// Site lookups by result, indexed by [`SITE_DERIVE_RESULTS`].
    site_derive: [Counter; 3],
    /// Time to derive one site from the universe (cache misses only), in
    /// microseconds.
    pub site_derive_micros: Histogram,
    /// Connections queued for a worker right now.
    pub queue_depth: Gauge,
    /// Connections accepted over the server's lifetime.
    pub connections_total: Counter,
    /// Connections rejected because the accept queue was full.
    pub rejected_total: Counter,
    /// Hidden-fetch outcomes by result, indexed by [`HIDDEN_FETCH_RESULTS`].
    hidden_fetch: [Counter; 6],
    /// Deferred probes by reason, indexed by [`INCONCLUSIVE_REASONS`].
    probe_inconclusive: [Counter; 4],
    /// Hidden-fetch retries issued (attempts beyond the first).
    pub retry_total: Counter,
    /// Detections that overran the configured deadline.
    pub deadline_exceeded_total: Counter,
    /// Detection-deadline threshold, in microseconds (`u64::MAX` = off).
    detection_deadline_micros: AtomicU64,
    /// Connection closes by cause, indexed by [`CONN_CLOSE_CAUSES`].
    conn_closed: [Counter; 6],
    /// WAL records appended (and therefore durably acked).
    pub wal_records_total: Counter,
    /// WAL fsync latency, in microseconds.
    pub wal_fsync: Histogram,
    /// Snapshots written, by `result` (`ok` / `error`).
    snapshot: [Counter; 2],
    /// Injected storage faults handled, indexed by [`WAL_FAULT_KINDS`].
    wal_faults: [Counter; 4],
    /// Replicated records acked per follower, indexed by peer position;
    /// only the first `repl_peer_count` render ([`MAX_REPL_PEERS`] slots).
    repl_records: [Counter; MAX_REPL_PEERS],
    /// Followers the current replicator streams to (bounds the rendered
    /// `cp_repl_records_total{peer}` series).
    repl_peer_count: AtomicUsize,
    /// Max records any *connected* follower trails the primary's shipped
    /// count (down peers are excluded — see `cp_repl_peer_up`).
    pub repl_lag_records: Gauge,
    /// 1 while the peer's stream is connected (live or catching-up),
    /// 0 while it is down; indexed like `repl_records`.
    repl_peer_up: [Gauge; MAX_REPL_PEERS],
    /// Full replication round-trip per shipped record (encode → every
    /// live follower acked), in microseconds.
    pub repl_ack_micros: Histogram,
    /// Peers brought back to the live stream after a disconnect or
    /// demotion (each is one completed resync).
    pub repl_resync_total: Counter,
    /// Backlog records replayed to catching-up or reconnecting peers.
    pub repl_resync_records_total: Counter,
    /// Live peers demoted to catching-up for missing the per-ship ack
    /// deadline.
    pub repl_slow_demotions_total: Counter,
    /// Bootstrap hints sent to peers beyond the backlog (primary side).
    pub repl_bootstrap_hints_total: Counter,
    /// Snapshot bootstraps installed (follower side).
    pub repl_bootstrap_total: Counter,
    /// Worst single-ship wall time since start, in microseconds — the
    /// stall a slow follower actually added to a client write.
    pub repl_ack_stall_max_micros: Gauge,
    /// Primary promotions performed (bumped by the router tier).
    pub failover_total: Counter,
    /// Ring reads failed over to the next alive backend after a transport
    /// error (router tier).
    pub route_read_failover_total: Counter,
    /// Sum of `cp_repl_resync_total` across the backends a router
    /// heartbeats (router tier).
    pub route_resyncs_observed: Gauge,
    /// Max `cp_repl_ack_stall_max_micros` across those backends.
    pub route_max_ack_stall_micros: Gauge,
    /// WAL records replayed by the last startup recovery.
    pub recovery_records_replayed: Gauge,
    /// Torn-tail bytes discarded by the last startup recovery.
    pub recovery_torn_tail_bytes: Gauge,
    /// Hosts currently queued in the crawler frontier.
    pub crawl_frontier_depth: Gauge,
    /// Visits the crawler completed (any outcome).
    pub crawl_visits_total: Counter,
    /// Hosts the crawler discovered via keyset enumeration.
    pub crawl_discovered_total: Counter,
    /// Crawler visits whose probe deferred (`ProbeOutcome::Inconclusive`).
    pub crawl_inconclusive_total: Counter,
    /// Crawler reschedules forced by backoff (inconclusive or transport).
    pub crawl_backoff_total: Counter,
    /// Crawled hosts the resolver rejected (dropped from the frontier).
    pub crawl_unknown_host_total: Counter,
    /// Marks expired by the usefulness TTL into the re-verification queue.
    pub crawl_expired_marks_total: Counter,
    /// Lag between a revisit's due tick and its actual visit tick, in
    /// ticks (scheduler pressure: 0-lag means the frontier keeps up).
    pub crawl_revisit_lag: Histogram,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics::new()
    }
}

impl ServiceMetrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        ServiceMetrics {
            endpoints: Default::default(),
            request_micros: std::array::from_fn(|_| {
                Histogram::with_bounds(&REQUEST_BUCKETS_MICROS)
            }),
            event_loop_wakeups: Counter::new(),
            ready_conns: Gauge::new(),
            responses_2xx: Counter::new(),
            responses_4xx: Counter::new(),
            responses_5xx: Counter::new(),
            decisions_useful: Counter::new(),
            decisions_noise: Counter::new(),
            detection: Histogram::with_bounds(&DETECTION_BUCKETS_MICROS),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            site_derive: Default::default(),
            site_derive_micros: Histogram::with_bounds(&DETECTION_BUCKETS_MICROS),
            queue_depth: Gauge::new(),
            connections_total: Counter::new(),
            rejected_total: Counter::new(),
            hidden_fetch: Default::default(),
            probe_inconclusive: Default::default(),
            retry_total: Counter::new(),
            deadline_exceeded_total: Counter::new(),
            detection_deadline_micros: AtomicU64::new(u64::MAX),
            conn_closed: Default::default(),
            wal_records_total: Counter::new(),
            wal_fsync: Histogram::with_bounds(&WAL_FSYNC_BUCKETS_MICROS),
            snapshot: Default::default(),
            wal_faults: Default::default(),
            repl_records: Default::default(),
            repl_peer_count: AtomicUsize::new(0),
            repl_lag_records: Gauge::new(),
            repl_peer_up: Default::default(),
            repl_ack_micros: Histogram::with_bounds(&WAL_FSYNC_BUCKETS_MICROS),
            repl_resync_total: Counter::new(),
            repl_resync_records_total: Counter::new(),
            repl_slow_demotions_total: Counter::new(),
            repl_bootstrap_hints_total: Counter::new(),
            repl_bootstrap_total: Counter::new(),
            repl_ack_stall_max_micros: Gauge::new(),
            failover_total: Counter::new(),
            route_read_failover_total: Counter::new(),
            route_resyncs_observed: Gauge::new(),
            route_max_ack_stall_micros: Gauge::new(),
            recovery_records_replayed: Gauge::new(),
            recovery_torn_tail_bytes: Gauge::new(),
            crawl_frontier_depth: Gauge::new(),
            crawl_visits_total: Counter::new(),
            crawl_discovered_total: Counter::new(),
            crawl_inconclusive_total: Counter::new(),
            crawl_backoff_total: Counter::new(),
            crawl_unknown_host_total: Counter::new(),
            crawl_expired_marks_total: Counter::new(),
            crawl_revisit_lag: Histogram::with_bounds(&CRAWL_LAG_BUCKETS_TICKS),
        }
    }

    /// The series for `endpoint`.
    pub fn endpoint(&self, endpoint: Endpoint) -> &EndpointSeries {
        &self.endpoints[endpoint.index()]
    }

    /// The power-of-two request-time histogram for `endpoint`.
    pub fn request_micros(&self, endpoint: Endpoint) -> &Histogram {
        &self.request_micros[endpoint.index()]
    }

    /// Records one handled request.
    pub fn record(&self, endpoint: Endpoint, status: u16, micros: u64) {
        let series = self.endpoint(endpoint);
        series.requests.inc();
        series.latency.observe(micros);
        self.request_micros[endpoint.index()].observe(micros);
        match status {
            200..=299 => self.responses_2xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => self.responses_4xx.inc(),
        }
    }

    /// Records one decision verdict.
    pub fn record_verdict(&self, useful: bool) {
        if useful {
            self.decisions_useful.inc();
        } else {
            self.decisions_noise.inc();
        }
    }

    /// Records one page-analysis cache lookup.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.inc();
        } else {
            self.cache_misses.inc();
        }
    }

    /// Sets the detection-deadline threshold. Detections observed through
    /// [`record_detection`](Self::record_detection) that take longer bump
    /// `cp_deadline_exceeded_total`. `u64::MAX` (the default) disables it.
    pub fn set_detection_deadline_micros(&self, micros: u64) {
        self.detection_deadline_micros.store(micros, Ordering::Relaxed);
    }

    /// Observes one detection time and checks it against the deadline.
    pub fn record_detection(&self, micros: u64) {
        self.detection.observe(micros);
        if micros > self.detection_deadline_micros.load(Ordering::Relaxed) {
            self.deadline_exceeded_total.inc();
        }
    }

    /// Records one hidden-fetch outcome; `result` must be a
    /// [`HIDDEN_FETCH_RESULTS`] label (anything else is ignored).
    pub fn record_hidden_fetch(&self, result: &str) {
        if let Some(i) = HIDDEN_FETCH_RESULTS.iter().position(|r| *r == result) {
            self.hidden_fetch[i].inc();
        }
    }

    /// Records one site lookup against the lazy world; `result` must be a
    /// [`SITE_DERIVE_RESULTS`] label (anything else is ignored). `micros`
    /// is the derivation time for cache misses (`None` when nothing was
    /// derived, so the histogram measures derivation proper).
    pub fn record_site_derive(&self, result: &str, micros: Option<u64>) {
        if let Some(i) = SITE_DERIVE_RESULTS.iter().position(|r| *r == result) {
            self.site_derive[i].inc();
        }
        if let Some(micros) = micros {
            self.site_derive_micros.observe(micros);
        }
    }

    /// The current value of one `cp_site_derive_total` series.
    pub fn site_derive_count(&self, result: &str) -> u64 {
        SITE_DERIVE_RESULTS
            .iter()
            .position(|r| *r == result)
            .map_or(0, |i| self.site_derive[i].get())
    }

    /// Records one deferred probe; `reason` must be an
    /// [`INCONCLUSIVE_REASONS`] label (anything else is ignored).
    pub fn record_inconclusive(&self, reason: &str) {
        if let Some(i) = INCONCLUSIVE_REASONS.iter().position(|r| *r == reason) {
            self.probe_inconclusive[i].inc();
        }
    }

    /// Records one connection close; `cause` must be a
    /// [`CONN_CLOSE_CAUSES`] label (anything else is ignored).
    pub fn record_conn_closed(&self, cause: &str) {
        if let Some(i) = CONN_CLOSE_CAUSES.iter().position(|c| *c == cause) {
            self.conn_closed[i].inc();
        }
    }

    /// Records one handled storage fault; `kind` must be a
    /// [`WAL_FAULT_KINDS`] label (anything else is ignored).
    pub fn record_wal_fault(&self, kind: &str) {
        if let Some(i) = WAL_FAULT_KINDS.iter().position(|k| *k == kind) {
            self.wal_faults[i].inc();
        }
    }

    /// Total injected storage faults handled, across all kinds.
    pub fn wal_fault_total(&self) -> u64 {
        self.wal_faults.iter().map(Counter::get).sum()
    }

    /// Sets how many `cp_repl_records_total{peer}` series render (the
    /// follower count of the current replicator, capped at
    /// [`MAX_REPL_PEERS`]).
    pub fn set_repl_peers(&self, peers: usize) {
        self.repl_peer_count.store(peers.min(MAX_REPL_PEERS), Ordering::Relaxed);
    }

    /// Flips one `cp_repl_peer_up{peer}` series (out-of-range indices are
    /// dropped, mirroring the render cap).
    pub fn set_repl_peer_up(&self, idx: usize, up: bool) {
        if let Some(gauge) = self.repl_peer_up.get(idx) {
            gauge.set(i64::from(up));
        }
    }

    /// Records one acked replicated record for follower `peer` (peers
    /// beyond the fixed slots share the last one).
    pub fn record_repl_ship(&self, peer: usize) {
        self.repl_records[peer.min(MAX_REPL_PEERS - 1)].inc();
    }

    /// The current value of one `cp_repl_records_total{peer}` series.
    pub fn repl_records_count(&self, peer: usize) -> u64 {
        self.repl_records.get(peer).map_or(0, Counter::get)
    }

    /// Records one snapshot attempt.
    pub fn record_snapshot(&self, ok: bool) {
        self.snapshot[usize::from(!ok)].inc();
    }

    /// The current value of one `cp_snapshot_total` series.
    pub fn snapshot_count(&self, result: &str) -> u64 {
        match result {
            "ok" => self.snapshot[0].get(),
            "error" => self.snapshot[1].get(),
            _ => 0,
        }
    }

    /// The current value of one `cp_hidden_fetch_total` series.
    pub fn hidden_fetch_count(&self, result: &str) -> u64 {
        HIDDEN_FETCH_RESULTS
            .iter()
            .position(|r| *r == result)
            .map_or(0, |i| self.hidden_fetch[i].get())
    }

    /// The current value of one `cp_conn_closed_total` series.
    pub fn conn_closed_count(&self, cause: &str) -> u64 {
        CONN_CLOSE_CAUSES.iter().position(|c| *c == cause).map_or(0, |i| self.conn_closed[i].get())
    }

    /// Renders the Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# TYPE cp_requests_total counter\n");
        for e in Endpoint::ALL {
            let _ = writeln!(
                out,
                "cp_requests_total{{endpoint=\"{}\"}} {}",
                e.label(),
                self.endpoint(e).requests.get()
            );
        }
        out.push_str("# TYPE cp_request_duration_micros histogram\n");
        for e in Endpoint::ALL {
            let series = self.endpoint(e);
            if series.requests.get() == 0 {
                continue; // keep the exposition small: no series for idle endpoints
            }
            for (bound, cumulative) in series.latency.snapshot() {
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                let _ = writeln!(
                    out,
                    "cp_request_duration_micros_bucket{{endpoint=\"{}\",le=\"{le}\"}} {cumulative}",
                    e.label()
                );
            }
            let _ = writeln!(
                out,
                "cp_request_duration_micros_sum{{endpoint=\"{}\"}} {}",
                e.label(),
                series.latency.sum_micros()
            );
            let _ = writeln!(
                out,
                "cp_request_duration_micros_count{{endpoint=\"{}\"}} {}",
                e.label(),
                series.latency.count()
            );
        }
        out.push_str("# TYPE cp_request_micros histogram\n");
        for e in Endpoint::ALL {
            let hist = self.request_micros(e);
            if hist.count() == 0 {
                continue; // idle-histogram rule: no buckets until observed
            }
            for (bound, cumulative) in hist.snapshot() {
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                let _ = writeln!(
                    out,
                    "cp_request_micros_bucket{{route=\"{}\",le=\"{le}\"}} {cumulative}",
                    e.label()
                );
            }
            let _ = writeln!(
                out,
                "cp_request_micros_sum{{route=\"{}\"}} {}",
                e.label(),
                hist.sum_micros()
            );
            let _ = writeln!(
                out,
                "cp_request_micros_count{{route=\"{}\"}} {}",
                e.label(),
                hist.count()
            );
        }
        out.push_str("# TYPE cp_responses_total counter\n");
        for (class, counter) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            let _ = writeln!(out, "cp_responses_total{{class=\"{class}\"}} {}", counter.get());
        }
        out.push_str("# TYPE cp_decisions_total counter\n");
        let _ = writeln!(
            out,
            "cp_decisions_total{{verdict=\"useful\"}} {}",
            self.decisions_useful.get()
        );
        let _ =
            writeln!(out, "cp_decisions_total{{verdict=\"noise\"}} {}", self.decisions_noise.get());
        out.push_str("# TYPE cp_detection_micros histogram\n");
        if self.detection.count() > 0 {
            for (bound, cumulative) in self.detection.snapshot() {
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                let _ = writeln!(out, "cp_detection_micros_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "cp_detection_micros_sum {}", self.detection.sum_micros());
            let _ = writeln!(out, "cp_detection_micros_count {}", self.detection.count());
        }
        out.push_str("# TYPE cp_hidden_fetch_total counter\n");
        for (label, counter) in HIDDEN_FETCH_RESULTS.iter().zip(&self.hidden_fetch) {
            let _ = writeln!(out, "cp_hidden_fetch_total{{result=\"{label}\"}} {}", counter.get());
        }
        out.push_str("# TYPE cp_probe_inconclusive_total counter\n");
        for (label, counter) in INCONCLUSIVE_REASONS.iter().zip(&self.probe_inconclusive) {
            let _ = writeln!(
                out,
                "cp_probe_inconclusive_total{{reason=\"{label}\"}} {}",
                counter.get()
            );
        }
        out.push_str("# TYPE cp_retry_total counter\n");
        let _ = writeln!(out, "cp_retry_total {}", self.retry_total.get());
        out.push_str("# TYPE cp_deadline_exceeded_total counter\n");
        let _ = writeln!(out, "cp_deadline_exceeded_total {}", self.deadline_exceeded_total.get());
        out.push_str("# TYPE cp_analysis_cache_total counter\n");
        let _ =
            writeln!(out, "cp_analysis_cache_total{{result=\"hit\"}} {}", self.cache_hits.get());
        let _ =
            writeln!(out, "cp_analysis_cache_total{{result=\"miss\"}} {}", self.cache_misses.get());
        out.push_str("# TYPE cp_site_derive_total counter\n");
        for (label, counter) in SITE_DERIVE_RESULTS.iter().zip(&self.site_derive) {
            let _ = writeln!(out, "cp_site_derive_total{{result=\"{label}\"}} {}", counter.get());
        }
        out.push_str("# TYPE cp_site_derive_micros histogram\n");
        if self.site_derive_micros.count() > 0 {
            for (bound, cumulative) in self.site_derive_micros.snapshot() {
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                let _ = writeln!(out, "cp_site_derive_micros_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ =
                writeln!(out, "cp_site_derive_micros_sum {}", self.site_derive_micros.sum_micros());
            let _ =
                writeln!(out, "cp_site_derive_micros_count {}", self.site_derive_micros.count());
        }
        out.push_str("# TYPE cp_queue_depth gauge\n");
        let _ = writeln!(out, "cp_queue_depth {}", self.queue_depth.get());
        out.push_str("# TYPE cp_ready_conns gauge\n");
        let _ = writeln!(out, "cp_ready_conns {}", self.ready_conns.get());
        out.push_str("# TYPE cp_event_loop_wakeups_total counter\n");
        let _ = writeln!(out, "cp_event_loop_wakeups_total {}", self.event_loop_wakeups.get());
        out.push_str("# TYPE cp_connections_total counter\n");
        let _ = writeln!(out, "cp_connections_total {}", self.connections_total.get());
        out.push_str("# TYPE cp_rejected_total counter\n");
        let _ = writeln!(out, "cp_rejected_total {}", self.rejected_total.get());
        out.push_str("# TYPE cp_conn_closed_total counter\n");
        for (label, counter) in CONN_CLOSE_CAUSES.iter().zip(&self.conn_closed) {
            let _ = writeln!(out, "cp_conn_closed_total{{cause=\"{label}\"}} {}", counter.get());
        }
        out.push_str("# TYPE cp_wal_records_total counter\n");
        let _ = writeln!(out, "cp_wal_records_total {}", self.wal_records_total.get());
        out.push_str("# TYPE cp_wal_fsync_micros histogram\n");
        if self.wal_fsync.count() > 0 {
            for (bound, cumulative) in self.wal_fsync.snapshot() {
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                let _ = writeln!(out, "cp_wal_fsync_micros_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "cp_wal_fsync_micros_sum {}", self.wal_fsync.sum_micros());
            let _ = writeln!(out, "cp_wal_fsync_micros_count {}", self.wal_fsync.count());
        }
        out.push_str("# TYPE cp_snapshot_total counter\n");
        for (result, counter) in ["ok", "error"].iter().zip(&self.snapshot) {
            let _ = writeln!(out, "cp_snapshot_total{{result=\"{result}\"}} {}", counter.get());
        }
        out.push_str("# TYPE cp_wal_faults_total counter\n");
        for (label, counter) in WAL_FAULT_KINDS.iter().zip(&self.wal_faults) {
            let _ = writeln!(out, "cp_wal_faults_total{{kind=\"{label}\"}} {}", counter.get());
        }
        out.push_str("# TYPE cp_repl_records_total counter\n");
        for peer in 0..self.repl_peer_count.load(Ordering::Relaxed) {
            let _ = writeln!(
                out,
                "cp_repl_records_total{{peer=\"{peer}\"}} {}",
                self.repl_records[peer].get()
            );
        }
        out.push_str("# TYPE cp_repl_peer_up gauge\n");
        for peer in 0..self.repl_peer_count.load(Ordering::Relaxed) {
            let _ = writeln!(
                out,
                "cp_repl_peer_up{{peer=\"{peer}\"}} {}",
                self.repl_peer_up[peer].get()
            );
        }
        out.push_str("# TYPE cp_repl_lag_records gauge\n");
        let _ = writeln!(out, "cp_repl_lag_records {}", self.repl_lag_records.get());
        out.push_str("# TYPE cp_repl_resync_total counter\n");
        let _ = writeln!(out, "cp_repl_resync_total {}", self.repl_resync_total.get());
        out.push_str("# TYPE cp_repl_resync_records_total counter\n");
        let _ =
            writeln!(out, "cp_repl_resync_records_total {}", self.repl_resync_records_total.get());
        out.push_str("# TYPE cp_repl_slow_demotions_total counter\n");
        let _ =
            writeln!(out, "cp_repl_slow_demotions_total {}", self.repl_slow_demotions_total.get());
        out.push_str("# TYPE cp_repl_bootstrap_hints_total counter\n");
        let _ = writeln!(
            out,
            "cp_repl_bootstrap_hints_total {}",
            self.repl_bootstrap_hints_total.get()
        );
        out.push_str("# TYPE cp_repl_bootstrap_total counter\n");
        let _ = writeln!(out, "cp_repl_bootstrap_total {}", self.repl_bootstrap_total.get());
        out.push_str("# TYPE cp_repl_ack_stall_max_micros gauge\n");
        let _ =
            writeln!(out, "cp_repl_ack_stall_max_micros {}", self.repl_ack_stall_max_micros.get());
        out.push_str("# TYPE cp_repl_ack_micros histogram\n");
        if self.repl_ack_micros.count() > 0 {
            for (bound, cumulative) in self.repl_ack_micros.snapshot() {
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                let _ = writeln!(out, "cp_repl_ack_micros_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "cp_repl_ack_micros_sum {}", self.repl_ack_micros.sum_micros());
            let _ = writeln!(out, "cp_repl_ack_micros_count {}", self.repl_ack_micros.count());
        }
        out.push_str("# TYPE cp_failover_total counter\n");
        let _ = writeln!(out, "cp_failover_total {}", self.failover_total.get());
        out.push_str("# TYPE cp_route_read_failover_total counter\n");
        let _ =
            writeln!(out, "cp_route_read_failover_total {}", self.route_read_failover_total.get());
        out.push_str("# TYPE cp_route_resyncs_observed gauge\n");
        let _ = writeln!(out, "cp_route_resyncs_observed {}", self.route_resyncs_observed.get());
        out.push_str("# TYPE cp_route_max_ack_stall_micros gauge\n");
        let _ = writeln!(
            out,
            "cp_route_max_ack_stall_micros {}",
            self.route_max_ack_stall_micros.get()
        );
        out.push_str("# TYPE cp_crawl_frontier_depth gauge\n");
        let _ = writeln!(out, "cp_crawl_frontier_depth {}", self.crawl_frontier_depth.get());
        out.push_str("# TYPE cp_crawl_visits_total counter\n");
        let _ = writeln!(out, "cp_crawl_visits_total {}", self.crawl_visits_total.get());
        out.push_str("# TYPE cp_crawl_discovered_total counter\n");
        let _ = writeln!(out, "cp_crawl_discovered_total {}", self.crawl_discovered_total.get());
        out.push_str("# TYPE cp_crawl_inconclusive_total counter\n");
        let _ =
            writeln!(out, "cp_crawl_inconclusive_total {}", self.crawl_inconclusive_total.get());
        out.push_str("# TYPE cp_crawl_backoff_total counter\n");
        let _ = writeln!(out, "cp_crawl_backoff_total {}", self.crawl_backoff_total.get());
        out.push_str("# TYPE cp_crawl_unknown_host_total counter\n");
        let _ =
            writeln!(out, "cp_crawl_unknown_host_total {}", self.crawl_unknown_host_total.get());
        out.push_str("# TYPE cp_crawl_expired_marks_total counter\n");
        let _ =
            writeln!(out, "cp_crawl_expired_marks_total {}", self.crawl_expired_marks_total.get());
        out.push_str("# TYPE cp_crawl_revisit_lag_ticks histogram\n");
        if self.crawl_revisit_lag.count() > 0 {
            for (bound, cumulative) in self.crawl_revisit_lag.snapshot() {
                let le = if bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
                let _ =
                    writeln!(out, "cp_crawl_revisit_lag_ticks_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(
                out,
                "cp_crawl_revisit_lag_ticks_sum {}",
                self.crawl_revisit_lag.sum_micros()
            );
            let _ = writeln!(
                out,
                "cp_crawl_revisit_lag_ticks_count {}",
                self.crawl_revisit_lag.count()
            );
        }
        out.push_str("# TYPE cp_recovery_records_replayed gauge\n");
        let _ =
            writeln!(out, "cp_recovery_records_replayed {}", self.recovery_records_replayed.get());
        out.push_str("# TYPE cp_recovery_torn_tail_bytes gauge\n");
        let _ =
            writeln!(out, "cp_recovery_torn_tail_bytes {}", self.recovery_torn_tail_bytes.get());
        out
    }
}

/// Parses a counter value out of a Prometheus exposition, e.g.
/// `scrape_counter(text, "cp_decisions_total{verdict=\"useful\"}")`.
/// Returns `None` when the exact series line is absent.
pub fn scrape_counter(exposition: &str, series: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.trim().parse().ok()
    })
}

/// Parses the cumulative buckets of a label-free histogram out of a
/// Prometheus exposition: `scrape_histogram(text, "cp_detection_micros")`
/// returns `(upper_bound, cumulative_count)` pairs in exposition order,
/// with `+Inf` mapped to `u64::MAX`. Empty when the histogram was not
/// rendered (no observations).
pub fn scrape_histogram(exposition: &str, name: &str) -> Vec<(u64, u64)> {
    let prefix = format!("{name}_bucket{{le=\"");
    let mut buckets = Vec::new();
    for line in exposition.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        let Some((le, value)) = rest.split_once("\"}") else { continue };
        let bound = if le == "+Inf" { Some(u64::MAX) } else { le.parse().ok() };
        if let (Some(bound), Ok(cumulative)) = (bound, value.trim().parse()) {
            buckets.push((bound, cumulative));
        }
    }
    buckets
}

/// Estimates a quantile from cumulative histogram buckets (as returned by
/// [`scrape_histogram`]), linearly interpolating within the winning bucket
/// — the scrape-side mirror of `Histogram::quantile_micros`. Returns `0.0`
/// for an empty histogram.
pub fn quantile_from_buckets(buckets: &[(u64, u64)], q: f64) -> f64 {
    let total = buckets.last().map(|&(_, c)| c).unwrap_or(0);
    if total == 0 {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut lower = 0u64;
    let mut below = 0u64;
    for &(bound, cumulative) in buckets {
        if cumulative >= rank {
            let in_bucket = cumulative - below;
            let upper = if bound == u64::MAX { lower.saturating_mul(2).max(1) } else { bound };
            let fraction = (rank - below) as f64 / in_bucket.max(1) as f64;
            return lower as f64 + fraction * (upper.saturating_sub(lower)) as f64;
        }
        below = cumulative;
        if bound != u64::MAX {
            lower = bound;
        }
    }
    lower as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_series() {
        let m = ServiceMetrics::new();
        m.record(Endpoint::Visit, 200, 500);
        m.record(Endpoint::Visit, 400, 100);
        m.record(Endpoint::Classify, 500, 100);
        assert_eq!(m.endpoint(Endpoint::Visit).requests.get(), 2);
        assert_eq!(m.responses_2xx.get(), 1);
        assert_eq!(m.responses_4xx.get(), 1);
        assert_eq!(m.responses_5xx.get(), 1);
        assert_eq!(m.endpoint(Endpoint::Visit).latency.count(), 2);
    }

    #[test]
    fn prometheus_text_is_scrapable() {
        let m = ServiceMetrics::new();
        m.record(Endpoint::Healthz, 200, 42);
        m.record_verdict(true);
        m.record_verdict(false);
        m.record_verdict(false);
        m.queue_depth.set(3);
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_requests_total{endpoint=\"healthz\"}"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_requests_total{endpoint=\"visit\"}"), Some(0));
        assert_eq!(scrape_counter(&text, "cp_decisions_total{verdict=\"useful\"}"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_decisions_total{verdict=\"noise\"}"), Some(2));
        assert_eq!(scrape_counter(&text, "cp_queue_depth"), Some(3));
        assert!(
            text.contains("cp_request_duration_micros_bucket{endpoint=\"healthz\",le=\"100\"} 1")
        );
        assert!(text.contains("le=\"+Inf\""));
        assert_eq!(scrape_counter(&text, "nope"), None);
        // Idle endpoints emit no histogram series.
        assert!(!text.contains("cp_request_duration_micros_count{endpoint=\"visit\"}"));
    }

    #[test]
    fn detection_histogram_and_cache_counters_render() {
        let m = ServiceMetrics::new();
        let empty = m.render_prometheus();
        // Idle detection histogram emits no buckets, but the cache
        // counters always render (zero is meaningful there).
        assert!(!empty.contains("cp_detection_micros_bucket"));
        assert_eq!(scrape_counter(&empty, "cp_analysis_cache_total{result=\"hit\"}"), Some(0));

        m.detection.observe(3);
        m.detection.observe(100);
        m.record_cache(true);
        m.record_cache(false);
        m.record_cache(false);
        let text = m.render_prometheus();
        assert!(text.contains("cp_detection_micros_bucket{le=\"4\"} 1"));
        assert!(text.contains("cp_detection_micros_bucket{le=\"+Inf\"} 2"));
        assert_eq!(scrape_counter(&text, "cp_detection_micros_count"), Some(2));
        assert_eq!(scrape_counter(&text, "cp_analysis_cache_total{result=\"hit\"}"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_analysis_cache_total{result=\"miss\"}"), Some(2));
    }

    #[test]
    fn fault_series_render_with_zeros_and_count_by_label() {
        let m = ServiceMetrics::new();
        let empty = m.render_prometheus();
        // Zero is meaningful for all fault series (it says "no faults"),
        // so every label renders even on an untouched registry.
        for label in HIDDEN_FETCH_RESULTS {
            let series = format!("cp_hidden_fetch_total{{result=\"{label}\"}}");
            assert_eq!(scrape_counter(&empty, &series), Some(0), "{series}");
        }
        for label in INCONCLUSIVE_REASONS {
            let series = format!("cp_probe_inconclusive_total{{reason=\"{label}\"}}");
            assert_eq!(scrape_counter(&empty, &series), Some(0), "{series}");
        }
        for label in CONN_CLOSE_CAUSES {
            let series = format!("cp_conn_closed_total{{cause=\"{label}\"}}");
            assert_eq!(scrape_counter(&empty, &series), Some(0), "{series}");
        }
        assert_eq!(scrape_counter(&empty, "cp_retry_total"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_deadline_exceeded_total"), Some(0));

        m.record_hidden_fetch("ok");
        m.record_hidden_fetch("ok");
        m.record_hidden_fetch("truncated");
        m.record_hidden_fetch("bogus"); // unknown labels are ignored
        m.record_inconclusive("server_error");
        m.record_conn_closed("timeout");
        m.record_conn_closed("shed");
        m.retry_total.inc();
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_hidden_fetch_total{result=\"ok\"}"), Some(2));
        assert_eq!(scrape_counter(&text, "cp_hidden_fetch_total{result=\"truncated\"}"), Some(1));
        assert_eq!(m.hidden_fetch_count("ok"), 2);
        assert_eq!(m.hidden_fetch_count("bogus"), 0);
        assert_eq!(
            scrape_counter(&text, "cp_probe_inconclusive_total{reason=\"server_error\"}"),
            Some(1)
        );
        assert_eq!(scrape_counter(&text, "cp_conn_closed_total{cause=\"timeout\"}"), Some(1));
        assert_eq!(m.conn_closed_count("shed"), 1);
        assert_eq!(scrape_counter(&text, "cp_retry_total"), Some(1));
    }

    #[test]
    fn detection_deadline_counts_overruns_only() {
        let m = ServiceMetrics::new();
        // Default deadline is off: nothing can exceed u64::MAX.
        m.record_detection(u64::MAX - 1);
        assert_eq!(m.deadline_exceeded_total.get(), 0);
        m.set_detection_deadline_micros(1_000);
        m.record_detection(999);
        m.record_detection(1_000); // at the deadline is still on time
        m.record_detection(1_001);
        m.record_detection(50_000);
        assert_eq!(m.deadline_exceeded_total.get(), 2);
        assert_eq!(m.detection.count(), 5);
    }

    #[test]
    fn durability_series_render_with_zeros() {
        let m = ServiceMetrics::new();
        let empty = m.render_prometheus();
        // Durability counters always render: zero says "no records / no
        // faults / no snapshots", which is meaningful. The fsync histogram
        // follows the idle-histogram rule (no buckets until observed).
        assert_eq!(scrape_counter(&empty, "cp_wal_records_total"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_snapshot_total{result=\"ok\"}"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_snapshot_total{result=\"error\"}"), Some(0));
        for kind in WAL_FAULT_KINDS {
            let series = format!("cp_wal_faults_total{{kind=\"{kind}\"}}");
            assert_eq!(scrape_counter(&empty, &series), Some(0), "{series}");
        }
        assert_eq!(scrape_counter(&empty, "cp_recovery_records_replayed"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_recovery_torn_tail_bytes"), Some(0));
        assert!(!empty.contains("cp_wal_fsync_micros_bucket"));

        m.wal_records_total.add(5);
        m.wal_fsync.observe(40);
        m.record_snapshot(true);
        m.record_snapshot(true);
        m.record_snapshot(false);
        m.record_wal_fault("torn_write");
        m.record_wal_fault("enospc");
        m.record_wal_fault("bogus"); // unknown kinds are ignored
        m.recovery_records_replayed.set(17);
        m.recovery_torn_tail_bytes.set(3);
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_wal_records_total"), Some(5));
        assert_eq!(scrape_counter(&text, "cp_wal_fsync_micros_count"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_snapshot_total{result=\"ok\"}"), Some(2));
        assert_eq!(scrape_counter(&text, "cp_snapshot_total{result=\"error\"}"), Some(1));
        assert_eq!(m.snapshot_count("ok"), 2);
        assert_eq!(m.snapshot_count("error"), 1);
        assert_eq!(scrape_counter(&text, "cp_wal_faults_total{kind=\"torn_write\"}"), Some(1));
        assert_eq!(m.wal_fault_total(), 2);
        assert_eq!(scrape_counter(&text, "cp_recovery_records_replayed"), Some(17));
        assert_eq!(scrape_counter(&text, "cp_recovery_torn_tail_bytes"), Some(3));
    }

    #[test]
    fn replication_series_render() {
        let m = ServiceMetrics::new();
        let empty = m.render_prometheus();
        // No replicator → no per-peer series; the lag gauge and the
        // failover counter always render (zero is meaningful for both).
        assert!(!empty.contains("cp_repl_records_total{peer="));
        assert_eq!(scrape_counter(&empty, "cp_repl_lag_records"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_failover_total"), Some(0));
        assert!(!empty.contains("cp_repl_ack_micros_bucket"));

        m.set_repl_peers(2);
        m.record_repl_ship(0);
        m.record_repl_ship(0);
        m.record_repl_ship(1);
        m.repl_lag_records.set(3);
        m.repl_ack_micros.observe(120);
        m.failover_total.inc();
        m.set_repl_peer_up(0, true);
        m.repl_resync_total.inc();
        m.repl_resync_records_total.add(5);
        m.repl_slow_demotions_total.inc();
        m.repl_bootstrap_hints_total.inc();
        m.repl_bootstrap_total.inc();
        m.repl_ack_stall_max_micros.set_max(900);
        m.repl_ack_stall_max_micros.set_max(40);
        m.route_read_failover_total.inc();
        m.route_resyncs_observed.set(2);
        m.route_max_ack_stall_micros.set(900);
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_repl_records_total{peer=\"0\"}"), Some(2));
        assert_eq!(scrape_counter(&text, "cp_repl_records_total{peer=\"1\"}"), Some(1));
        assert!(!text.contains("cp_repl_records_total{peer=\"2\"}"));
        assert_eq!(m.repl_records_count(0), 2);
        assert_eq!(scrape_counter(&text, "cp_repl_lag_records"), Some(3));
        assert_eq!(scrape_counter(&text, "cp_repl_ack_micros_count"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_repl_peer_up{peer=\"0\"}"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_repl_peer_up{peer=\"1\"}"), Some(0));
        assert_eq!(scrape_counter(&text, "cp_repl_resync_total"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_repl_resync_records_total"), Some(5));
        assert_eq!(scrape_counter(&text, "cp_repl_slow_demotions_total"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_repl_bootstrap_hints_total"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_repl_bootstrap_total"), Some(1));
        // set_max is a running maximum: the later, smaller sample is ignored.
        assert_eq!(scrape_counter(&text, "cp_repl_ack_stall_max_micros"), Some(900));
        assert_eq!(scrape_counter(&text, "cp_route_read_failover_total"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_route_resyncs_observed"), Some(2));
        assert_eq!(scrape_counter(&text, "cp_route_max_ack_stall_micros"), Some(900));
        assert_eq!(scrape_counter(&text, "cp_failover_total"), Some(1));
        // Peers beyond the fixed slots share the last counter; the peer
        // count is capped to the rendered range.
        m.set_repl_peers(64);
        m.record_repl_ship(63);
        assert_eq!(m.repl_records_count(MAX_REPL_PEERS - 1), 1);
        let text = m.render_prometheus();
        assert!(text.contains("cp_repl_records_total{peer=\"7\"}"));
        assert!(!text.contains("cp_repl_records_total{peer=\"8\"}"));
        // The repl control endpoint participates in the per-endpoint series.
        m.record(Endpoint::Repl, 200, 10);
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_requests_total{endpoint=\"repl\"}"), Some(1));
    }

    #[test]
    fn crawl_series_render_with_zeros() {
        let m = ServiceMetrics::new();
        let empty = m.render_prometheus();
        // Crawl counters always render (zero = "crawler idle"); the lag
        // histogram follows the idle-histogram rule.
        assert_eq!(scrape_counter(&empty, "cp_crawl_frontier_depth"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_crawl_visits_total"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_crawl_unknown_host_total"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_crawl_expired_marks_total"), Some(0));
        assert!(!empty.contains("cp_crawl_revisit_lag_ticks_bucket"));

        m.crawl_frontier_depth.set(12);
        m.crawl_visits_total.add(7);
        m.crawl_discovered_total.add(3);
        m.crawl_inconclusive_total.inc();
        m.crawl_backoff_total.inc();
        m.crawl_unknown_host_total.inc();
        m.crawl_expired_marks_total.add(2);
        m.crawl_revisit_lag.observe(0);
        m.crawl_revisit_lag.observe(9);
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_crawl_frontier_depth"), Some(12));
        assert_eq!(scrape_counter(&text, "cp_crawl_visits_total"), Some(7));
        assert_eq!(scrape_counter(&text, "cp_crawl_discovered_total"), Some(3));
        assert_eq!(scrape_counter(&text, "cp_crawl_inconclusive_total"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_crawl_backoff_total"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_crawl_unknown_host_total"), Some(1));
        assert_eq!(scrape_counter(&text, "cp_crawl_expired_marks_total"), Some(2));
        assert_eq!(scrape_counter(&text, "cp_crawl_revisit_lag_ticks_count"), Some(2));
        let buckets = scrape_histogram(&text, "cp_crawl_revisit_lag_ticks");
        assert_eq!(buckets.first(), Some(&(1, 1)));
        // The expire endpoint participates in the per-endpoint series.
        m.record(Endpoint::Expire, 200, 10);
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_requests_total{endpoint=\"expire\"}"), Some(1));
    }

    #[test]
    fn event_loop_series_render() {
        let m = ServiceMetrics::new();
        let empty = m.render_prometheus();
        // Wakeups and the ready-conns gauge always render (zero says "no
        // loop activity"); the per-route pow2 histogram follows the
        // idle-histogram rule.
        assert_eq!(scrape_counter(&empty, "cp_event_loop_wakeups_total"), Some(0));
        assert_eq!(scrape_counter(&empty, "cp_ready_conns"), Some(0));
        assert!(!empty.contains("cp_request_micros_bucket"));

        m.event_loop_wakeups.add(4);
        m.ready_conns.set(2);
        m.record(Endpoint::Healthz, 200, 7);
        m.record(Endpoint::Healthz, 200, 100);
        let text = m.render_prometheus();
        assert_eq!(scrape_counter(&text, "cp_event_loop_wakeups_total"), Some(4));
        assert_eq!(scrape_counter(&text, "cp_ready_conns"), Some(2));
        // 7µs lands in the le="8" pow2 bucket; idle routes stay absent.
        assert!(text.contains("cp_request_micros_bucket{route=\"healthz\",le=\"8\"} 1"));
        assert!(text.contains("cp_request_micros_count{route=\"healthz\"} 2"));
        assert!(!text.contains("cp_request_micros_count{route=\"visit\"}"));
        assert_eq!(m.request_micros(Endpoint::Healthz).count(), 2);
        // record() feeds both the legacy duration histogram and the new
        // pow2 one.
        assert_eq!(m.endpoint(Endpoint::Healthz).latency.count(), 2);
    }

    #[test]
    fn inconclusive_labels_match_core_taxonomy() {
        let labels: Vec<&str> =
            cookiepicker_core::InconclusiveReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, INCONCLUSIVE_REASONS);
    }

    #[test]
    fn scrape_histogram_round_trips_the_rendering() {
        let m = ServiceMetrics::new();
        for micros in [1, 3, 3, 50, 5000, 100_000] {
            m.detection.observe(micros);
        }
        let text = m.render_prometheus();
        let buckets = scrape_histogram(&text, "cp_detection_micros");
        assert_eq!(buckets, m.detection.snapshot());
        assert_eq!(buckets.last().unwrap(), &(u64::MAX, 6));
        // Quantiles estimated from the scrape agree with the histogram's
        // own interpolation.
        for q in [0.5, 0.9, 0.99] {
            let scraped = quantile_from_buckets(&buckets, q);
            let native = m.detection.quantile_micros(q);
            assert!((scraped - native).abs() < 1e-9, "q={q}: {scraped} vs {native}");
        }
        assert_eq!(quantile_from_buckets(&[], 0.5), 0.0);
        assert!(scrape_histogram(&text, "cp_request_duration_micros").is_empty());
    }
}
